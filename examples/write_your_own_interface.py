"""Authoring a performance interface for *your* accelerator.

The paper argues vendors should ship interfaces.  This example plays
vendor: given a (toy) AES-GCM encryption accelerator model, write all
three representations — English, a Python program, and a ``.pnet``
Petri net — and validate them with the library's harness.  This is the
workflow §5 estimates at ~2 person-days for a real accelerator.

    python examples/write_your_own_interface.py
"""

from dataclasses import dataclass

import numpy as np

from repro.accel.base import AcceleratorModel
from repro.core import (
    EnglishInterface,
    Injection,
    PerformanceStatement,
    PetriNetInterface,
    ProgramInterface,
    Relation,
    compare_representations,
)
from repro.petri import parse


# ----------------------------------------------------------------------
# The "hardware" being described: a two-stage AES-GCM engine.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Packet:
    size: int          # bytes to encrypt
    new_key: bool      # key schedule must be recomputed?


class AesGcmModel(AcceleratorModel[Packet]):
    """Key schedule (serial, 40 cycles when the key changes) feeding a
    pipelined AES core (1 x 16 B block per cycle after a 12-cycle fill),
    then a GHASH tag unit (8 cycles, overlapped except the last block)."""

    name = "aes-gcm"

    def measure_latency(self, item: Packet) -> float:
        blocks = -(-item.size // 16)
        latency = 12 + blocks  # pipeline fill + 1 block/cycle
        if item.new_key:
            latency += 40
        return latency + 8  # final GHASH/tag flush

    def measure_throughput(self, item: Packet, repeat: int = 8) -> float:
        blocks = -(-item.size // 16)
        per_packet = blocks + (40 if item.new_key else 0) + 2
        return 1.0 / per_packet


# ----------------------------------------------------------------------
# Representation 1: English.
# ----------------------------------------------------------------------
ENGLISH = EnglishInterface(
    accelerator="aes-gcm",
    statements=(
        PerformanceStatement(
            metric="Latency",
            relation=Relation.PROPORTIONAL,
            quantity="the packet size (one 16 B block per cycle)",
            accessor=lambda p: float(-(-p.size // 16)),
        ),
        PerformanceStatement(
            metric="Latency",
            relation=Relation.INCREASES_WITH,
            quantity="key changes (a 40-cycle key schedule)",
            accessor=lambda p: float(p.new_key),
        ),
    ),
)


# ----------------------------------------------------------------------
# Representation 2: executable Python.
# ----------------------------------------------------------------------
def latency_aes(p: Packet) -> float:
    return 20 + -(-p.size // 16) + (40 if p.new_key else 0)


def tput_aes(p: Packet) -> float:
    return 1.0 / (-(-p.size // 16) + (40 if p.new_key else 0) + 2)


PROGRAM = ProgramInterface("aes-gcm", latency_fn=latency_aes, throughput_fn=tput_aes)

# ----------------------------------------------------------------------
# Representation 3: a .pnet document.
# ----------------------------------------------------------------------
AES_PNET = """
net aes_gcm

place in
place q_core capacity 4
place out

transition key_schedule
  consume in
  produce q_core
  delay expr: 40 if tok["new_key"] else 0

transition aes_core
  consume q_core
  produce out
  delay expr: 12 + ceil(tok["size"] / 16) + 8
"""


def tokenize(p: Packet):
    return [Injection("in", payload={"size": p.size, "new_key": p.new_key})]


PETRI = PetriNetInterface(
    "aes-gcm", net_factory=lambda: parse(AES_PNET), tokenize=tokenize,
    pnet_text=AES_PNET,
)


def main() -> None:
    model = AesGcmModel()
    rng = np.random.default_rng(3)
    workload = [
        Packet(size=int(rng.integers(16, 9000)), new_key=bool(rng.random() < 0.2))
        for _ in range(200)
    ]

    print("English interface:")
    print(ENGLISH.render())
    print()

    sizes = [Packet(s, False) for s in (64, 256, 1024, 4096)]
    pairs = [
        (ENGLISH.statements[0].accessor(p), model.measure_latency(p)) for p in sizes
    ]
    print(f"statement 1 validates: {ENGLISH.statements[0].check(pairs, tolerance=0.6)}")
    print()

    reports = compare_representations(
        {"program": PROGRAM, "petri-net": PETRI},
        model,
        workload,
        check_throughput=False,
    )
    for name, report in reports.items():
        print(report.summary())
    print()
    print("Two representations, one afternoon — and the validation harness")
    print("will catch you if the hardware team changes the core next year.")


if __name__ == "__main__":
    main()
