"""Example #8 — serving an accelerator that misbehaves.

The paper's workflows (§2, §5) assume the accelerator answers every
request on time.  Production offload stacks cannot: devices hang, DRAM
controllers stall in refresh storms, responses get dropped, and the
vendor's performance interface can drift off its calibrated envelope.
This example wraps the Protoacc serializer in the fault-tolerant runtime
and walks through what each layer buys you:

1. a seeded :class:`FaultPlan` injects spikes, storms, hangs, drops and
   corruptions — deterministically, so the incident is reproducible;
2. a virtual-clock :class:`Watchdog` turns hangs into bounded timeouts;
3. :class:`RetryPolicy` retries with capped, jittered backoff;
4. a :class:`CircuitBreaker` trips on failure streaks *or* interface
   drift and degrades gracefully to the Xeon software path;
5. the §5 record/replay estimator prices the whole faulted run.

    python examples/resilient_offload.py
"""

from repro.accel.cpu import offload_overhead
from repro.accel.protoacc import PROGRAM, ProtoaccSerializerModel
from repro.runtime import (
    BreakerConfig,
    CircuitBreaker,
    DriftDetector,
    FaultPlan,
    FaultSpec,
    ResilientDevice,
    ResilientOffloadEstimator,
    RetryPolicy,
    Watchdog,
    dram_storm_latency,
    rpc_cpu_fallback,
)
from repro.workloads import ENTERPRISE_MIX

FAULTS = FaultSpec(
    spike_rate=0.08,
    spike_scale=6.0,
    storm_rate=0.05,
    storm_cycles=6_000.0,
    hang_rate=0.15,
    drop_rate=0.05,
    corrupt_rate=0.02,
)


def build_device() -> ResilientDevice:
    model = ProtoaccSerializerModel()
    return ResilientDevice(
        model=model,
        interface=PROGRAM,
        fallback=rpc_cpu_fallback(),
        fault_plan=FaultPlan(seed=7, spec=FAULTS),
        watchdog=Watchdog(2_000.0),
        retry=RetryPolicy(max_attempts=3, base_delay=200.0, seed=7),
        breaker=CircuitBreaker(
            BreakerConfig(failure_threshold=3, recovery_cycles=150_000.0)
        ),
        drift=DriftDetector(window=16, threshold=0.5, min_samples=8),
        invocation_overhead=offload_overhead,
        storm_latency=dram_storm_latency(model),
    )


def main() -> None:
    messages = ENTERPRISE_MIX.sample(seed=3, count=200)

    print("=" * 70)
    print("serving 200 enterprise RPCs through a faulty Protoacc")
    print(f"(fault rate {FAULTS.total_rate:.0%}, watchdog 2000 cycles)")
    print("=" * 70)
    device = build_device()
    for msg in messages:
        device.call(msg)

    s = device.summary()
    print(f"latency: p50={s.p50:.0f}  p95={s.p95:.0f}  p99={s.p99:.0f} cycles")
    print(f"faults encountered: {device.fault_count()}  "
          f"fallback fraction: {device.fallback_fraction():.0%}")
    print("\nbreaker timeline:")
    for t in device.breaker.transitions:
        print(f"  t={t.time:>9.0f}  -> {t.state.value:9s}  ({t.reason})")

    print()
    print("=" * 70)
    print("§5 estimator: what does this fault environment cost end to end?")
    print("=" * 70)

    def app(dev):
        for msg in messages:
            payload = dev.call(msg)
            dev.host_work(120 + 0.05 * len(payload))

    estimate = ResilientOffloadEstimator(
        build_device, PROGRAM, invocation_overhead=offload_overhead
    ).estimate(app)
    print(f"clean replay:   {estimate.clean_cycles:12.0f} cycles")
    print(f"faulted replay: {estimate.faulted_cycles:12.0f} cycles")
    print(f"availability overhead: {estimate.availability_overhead:.2f}x "
          f"({estimate.fallback_calls}/{estimate.calls} calls degraded to CPU)")


if __name__ == "__main__":
    main()
