"""Example #9 — a heterogeneous accelerator pool surviving a fault storm.

One resilient device (example #8) degrades to its own CPU when its
accelerator misbehaves.  A serving fleet can do better: route around
the sick device.  This example fronts three unequal devices — Protoacc,
Optimus Prime, and a Xeon software server — with a
:class:`~repro.runtime.pool.DevicePool` and drives them *open-loop*
(Poisson arrivals, bounded admission queue, deadline shedding) while a
fault storm hammers Protoacc:

1. routing is breaker-aware: a tripped device receives nothing until
   its recovery probe succeeds;
2. the ``interface_predicted`` policy prices every admitting device
   with its performance interface (Petri net, compiled engine, shared
   EvalCache) — the paper's thesis applied to placement;
3. requests that fail mid-flight hedge to the next-best device, and
   requests that cannot make their deadline are shed un-dispatched;
4. the storm's incident tape persists to gzipped JSONL and replays to
   the identical estimate in another process.

    python examples/pool_serving.py
"""

from repro.runtime import OpenLoopServer, protoacc_message_codec, save_tape
from repro.runtime.pool import ROUTING_POLICIES, rpc_pool
from repro.runtime.tape import replay_saved_tape
from repro.workloads import ENTERPRISE_MIX

MEAN_GAP = 600.0  # cycles between arrivals (Poisson)
N_REQUESTS = 400
DEADLINE = 60_000.0


def serve(policy: str, faults: str):
    pool = rpc_pool(policy, faults=faults, seed=17)
    server = OpenLoopServer(pool, queue_limit=48, deadline=DEADLINE)
    msgs, arrivals = ENTERPRISE_MIX.sample_open(
        seed=17, count=N_REQUESTS, mean_gap=MEAN_GAP
    )
    return pool, server.run(msgs, arrivals)


def main() -> None:
    print("=" * 72)
    print(f"open-loop serving: {N_REQUESTS} enterprise RPCs, "
          f"mean gap {MEAN_GAP:.0f} cycles, deadline {DEADLINE:.0f}")
    print("devices: protoacc + optimus-prime + cpu, per-device breakers")
    print("=" * 72)

    for faults in ("none", "storm"):
        print(f"\n--- faults: {faults} ---")
        for policy in ROUTING_POLICIES:
            pool, res = serve(policy, faults)
            s = res.latency_summary()
            loads = "  ".join(f"{k}={v}" for k, v in pool.device_loads().items())
            print(f"{policy:20s} drop={res.drop_rate:5.1%}  p50={s.p50:6.0f}  "
                  f"p99={s.p99:8.0f}  hedges={res.hedge_count():2d}  [{loads}]")

    print()
    print("=" * 72)
    print("the incident tape: persist Protoacc's storm records, replay anywhere")
    print("=" * 72)
    pool, _ = serve("round_robin", "storm")
    records = pool.device("protoacc").device.records
    path = "benchmarks/results/protoacc_incident.jsonl.gz"
    save_tape(records, path, codec=protoacc_message_codec())
    estimate = replay_saved_tape(path)
    print(f"saved {estimate['calls']} records -> {path}")
    print(f"faults on tape: {estimate['faults']}  "
          f"failed calls: {estimate['failed_calls']}")
    print(f"faulted replay: {estimate['faulted_cycles']:.0f} cycles  "
          f"clean replay: {estimate['clean_cycles']:.0f} cycles  "
          f"availability overhead: {estimate['availability_overhead']:.2f}x")
    print("\n(replay it from any process: "
          f"python -m repro.runtime.tape replay {path})")


if __name__ == "__main__":
    main()
