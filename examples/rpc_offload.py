"""Example #2 — the infrastructure-stack developer (paper §2).

Your RPC stack runs on Xeons; candidate offloads are Protoacc and
Optimus Prime.  Instead of buying both and spending person-months
porting, evaluate their *interfaces* on your actual message mixes:

* Which accelerator offers the best performance per dollar?
* What is the performance impact of offloading each mix?
* Where does blind offloading actively hurt?

    python examples/rpc_offload.py
"""

from repro.accel.cpu import CpuSerializerModel, offload_overhead
from repro.accel.protoacc import PROGRAM as PROTOACC_PROGRAM
from repro.core import (
    Candidate,
    PerformanceInterface,
    offload_speedup,
    rank_by_latency,
    rank_by_speedup_per_dollar,
)
from repro.workloads import ALL_MIXES


class OptimusPrimeInterface(PerformanceInterface):
    """The vendor-shipped program interface for Optimus Prime (the
    analytic law its datasheet would encode)."""

    accelerator = "optimus-prime"
    representation = "program"

    def latency(self, msg) -> float:
        return 20.0 + 0.5 * msg.total_fields + msg.encoded_size() / 2.0


def main() -> None:
    cpu = CpuSerializerModel()
    candidates = [
        Candidate(
            "protoacc",
            PROTOACC_PROGRAM,
            price_dollars=90.0,
            invocation_overhead=offload_overhead,
        ),
        Candidate(
            "optimus-prime",
            OptimusPrimeInterface(),
            price_dollars=60.0,
            invocation_overhead=offload_overhead,
        ),
    ]

    for mix in ALL_MIXES:
        workload = mix.sample(seed=11, count=120)
        print("=" * 70)
        print(f"mix: {mix.name}  (n={len(workload)}, "
              f"mean {sum(m.encoded_size() for m in workload) / len(workload):.0f} B)")
        print("=" * 70)

        print("fastest for this mix:")
        print(rank_by_latency(candidates, workload).table())

        print("speedup per dollar vs staying on the Xeon:")
        print(
            rank_by_speedup_per_dollar(
                candidates, workload, cpu.measure_latency
            ).table()
        )

        for cand in candidates:
            speedup = offload_speedup(cand, workload, cpu.measure_latency)
            verdict = "WIN" if speedup > 1.1 else ("WASH" if speedup > 0.95 else "LOSS")
            print(f"offloading to {cand.name:<14}: {speedup:5.2f}x  [{verdict}]")
        print()

    print("Moral (paper §2): the answer depends on *your* workload —")
    print("which is exactly what an interface, unlike a benchmark score,")
    print("can tell you before you buy anything.")


if __name__ == "__main__":
    main()
