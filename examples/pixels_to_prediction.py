"""From real pixels to a performance prediction.

The other examples use statistically-generated workloads.  This one
goes end to end through the *functional* substrate: synthesize a
photo-like image, JPEG-encode it for real (DCT, quantization, Annex-K
Huffman), verify the decode reconstructs it, and then ask the decoder's
performance interfaces what decoding it will cost — checking them
against the cycle-level model.

    python examples/pixels_to_prediction.py
"""

import numpy as np

from repro.accel.jpeg import (
    JpegDecoderModel,
    decode_pixels,
    encode_pixels,
    image_from_pixels,
    latency_jpeg_decode,
    petri_interface,
    synthetic_photo,
)


def main() -> None:
    rng = np.random.default_rng(2023)
    model = JpegDecoderModel()
    petri = petri_interface()

    print(f"{'detail':>7} {'quality':>8} {'coded':>8} {'rate':>6} "
          f"{'rmse':>6} {'model':>9} {'program':>9} {'petri':>9}")
    for detail in (0.1, 0.5, 0.9):
        for quality in (35, 75, 95):
            pixels = synthetic_photo(rng, 64, 64, detail=detail)

            # Functional path: encode for real, decode, measure fidelity.
            coded = encode_pixels(pixels, quality=quality)
            restored = decode_pixels(coded)
            rmse = float(np.sqrt(np.mean((restored.astype(float) - pixels) ** 2)))

            # Bridge the real encode into the performance world.
            img = image_from_pixels(pixels, quality=quality)
            measured = model.measure_latency(img)
            program = latency_jpeg_decode(img)
            net = petri.latency(img)
            print(
                f"{detail:7.1f} {quality:8d} {img.coded_size:7d}B "
                f"{img.compress_rate:6.2f} {rmse:6.2f} "
                f"{measured:9.0f} {program:9.0f} {net:9.0f}"
            )

    print()
    print("Detail and quality move the compression rate; the interfaces'")
    print("predictions track the model across the whole range — for images")
    print("that really decode back to pixels, not just statistics.")


if __name__ == "__main__":
    main()
