"""Example #3 — auto-tuning a compiler for an accelerator (paper §2/§3).

A TVM-style tuner searches GEMM tilings for VTA.  Its bottleneck is
profiling each candidate.  Compare three profilers on the same search:

* cycle-accurate simulation (the Verilator stand-in) — slow;
* the Petri-net performance interface — fast, ~1% error;
* a learned linear cost model trained on interface-profiled samples —
  near-free, for pre-filtering.

    python examples/autotune_vta.py
"""


from repro.accel.vta import GemmWorkload, legal_tilings, random_programs
from repro.autotune import (
    CycleAccurateProfiler,
    EventModelProfiler,
    LinearCostModel,
    PetriProfiler,
    anneal_tune,
    exhaustive_tune,
)

WORK = GemmWorkload(m=8, k=8, n=8)


def main() -> None:
    space = legal_tilings(WORK)
    print(f"tuning GEMM {WORK.m}x{WORK.k}x{WORK.n} blocks: "
          f"{len(space)} legal tilings")
    print()

    # --- Full search with the slow and the fast profiler.
    for profiler in (CycleAccurateProfiler(), PetriProfiler()):
        result = exhaustive_tune(WORK, profiler)
        print(f"{profiler.name:>15}: {result.summary()}")
    print()

    # --- Verify the interface-driven winner on ground truth.
    petri_result = exhaustive_tune(WORK, PetriProfiler())
    truth = EventModelProfiler()
    remeasured = truth.profile(petri_result.best.lower(WORK))
    print(f"interface-driven pick re-measured on ground truth: "
          f"{remeasured:.0f} cycles")
    print()

    # --- Annealing with a budget (what TVM actually does).
    result = anneal_tune(WORK, PetriProfiler(), steps=30, seed=5)
    print(f"simulated annealing (30 steps): {result.summary()}")
    print()

    # --- Learned cost model: train on cheap interface profiles.
    train = random_programs(19, 40, max_dim=6)
    petri = PetriProfiler()
    cycles = [petri.profile(p) for p in train]
    model = LinearCostModel().fit(train, cycles)
    test = random_programs(20, 10, max_dim=6)
    test_cycles = [truth.profile(p) for p in test]
    print(
        f"learned cost model: {model.score(test, test_cycles) * 100:.1f}% "
        f"mean error on held-out schedules "
        f"(trained on {len(train)} interface-profiled samples in "
        f"{petri.wall_seconds * 1e3:.0f} ms)"
    )


if __name__ == "__main__":
    main()
