"""The §5 strawman — estimating end-to-end application impact.

An RPC server currently serializes responses in software.  Before
committing to a Protoacc offload, estimate the end-to-end effect with
record/replay: run once against a software implementation (recording
request/response pairs), re-run against a stub that replays correct
responses while charging interface-predicted latency.

    python examples/end_to_end_offload.py
"""

from repro.accel.cpu import CpuSerializerModel, offload_overhead
from repro.accel.protoacc import PROGRAM
from repro.core import OffloadEstimator
from repro.workloads import ENTERPRISE_MIX, STORAGE_MIX


def rpc_server(messages):
    """The application under study: dispatch + serialize + respond."""

    def app(device):
        bytes_out = 0
        for msg in messages:
            wire = device.call(msg)          # the offload candidate
            device.host_work(120 + 0.05 * len(wire))  # checksum, syscall
            bytes_out += len(wire)
        return bytes_out

    return app


def main() -> None:
    cpu = CpuSerializerModel()
    for mix in (ENTERPRISE_MIX, STORAGE_MIX):
        messages = mix.sample(seed=21, count=150)
        estimator = OffloadEstimator(
            software_fn=lambda m: m.encode(),
            software_latency=cpu.measure_latency,
            interface=PROGRAM,
            invocation_overhead=offload_overhead,
        )
        estimate = estimator.estimate(rpc_server(messages))
        print(f"mix: {mix.name}")
        print(f"  recorded software run : {estimate.software_cycles:12.0f} cycles")
        print(f"  replayed offload run  : {estimate.offloaded_cycles:12.0f} cycles")
        verdict = (
            "offload it" if estimate.speedup > 1.2
            else "keep it on the CPU" if estimate.speedup < 1.0
            else "marginal — measure more"
        )
        print(f"  estimated speedup     : {estimate.speedup:12.2f}x  -> {verdict}")
        print()

    print("Small-object mixes barely benefit (invocation overhead eats the")
    print("win); bulk mixes fly.  No hardware was purchased to learn this.")


if __name__ == "__main__":
    main()
