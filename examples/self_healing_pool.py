"""Example #10 — a performance interface that heals itself.

Example #9's pool routes by *predicted* latency, which only works while
the predictions are honest.  This example breaks that honesty on
purpose: mid-serve, Protoacc's DRAM gets 5x slower (thermal throttling,
a noisy neighbour — the model changes, the shipped interface doesn't)
and the :class:`~repro.heal.HealingManager` attached to the pool has to
repair it live:

1. the drift observatory's per-(device, size-class) detector sees the
   prediction error spike past its threshold;
2. the manager refits a candidate interface from the sliding window of
   call records the device just served (no offline profiling, no model
   access — just the tape), gated on held-out error;
3. the candidate shadow-prices live traffic next to the stale
   interface — zero routing impact — and must beat it on live error
   quantiles;
4. it is then hot-swapped into ``interface_predicted`` pricing: one
   override slot in a class-routed interface, so the breaker, retry
   state, device clock, and tape are untouched and no restart happens;
5. a promoted candidate is still on probation — if it regresses it is
   rolled back to the exact prior pricing and the key quarantined.

    python examples/self_healing_pool.py
"""

from repro.heal import run_heal_scenario


def main() -> None:
    print("=" * 72)
    print("self-healing interfaces: DRAM regime shift, repaired mid-serve")
    print("=" * 72)

    result = run_heal_scenario(requests=420)
    device, rpc_class = result.target_key
    swap = result.swap_at(device, rpc_class)

    print(f"\nshift: protoacc DRAM 5x slower at t={result.shift_at:.0f} "
          "(the interface is now lying)")
    print("\nlifecycle (drift -> refit -> shadow -> hot-swap -> probation):")
    for event in result.healer.events:
        print(f"  {event}")

    pre = result.mean_error(device, rpc_class, until=result.shift_at)
    print(f"\nmean prediction error, {device}/{rpc_class}:")
    print(f"  before the shift:    {pre:7.1%}")
    if swap is not None:
        spike = result.mean_error(
            device, rpc_class, since=result.shift_at, until=swap
        )
        post = result.mean_error(device, rpc_class, since=swap)
        print(f"  shift -> hot-swap:   {spike:7.1%}   <- the stale interface")
        print(f"  after the hot-swap:  {post:7.1%}   <- the refit one")

    breaker = result.pool.device(device).device.breaker
    print(f"\nserver restarts: 0   breaker transitions: "
          f"{len(breaker.transitions)}   "
          f"tape records: {len(result.pool.device(device).device.records)} "
          "(one continuous tape)")

    print("\nfinal lifecycle table:")
    for line in result.healer.report().splitlines():
        print(f"  {line}")

    print("\n(the operator view of the same run: "
          "python -m repro.tools.perfscope heal)")


if __name__ == "__main__":
    main()
