"""Example #1 — the SoC designer (paper §2).

You are configuring a SmartNIC SoC.  Two IP blocks are on the table: a
Bitcoin-miner-style SHA-256 engine (synthesis parameter ``Loop``) and a
JPEG decoder.  No RTL, no vendor hardware — only their performance
interfaces — yet you can answer: *which configurations should the SoC
include and how big must each be?*

    python examples/soc_designer.py
"""

import numpy as np

from repro.accel.bitcoin import (
    BitcoinMinerModel,
    area_latency_frontier,
    mining_cycles,
    random_job,
)
from repro.accel.jpeg import latency_jpeg_decode, random_images
from repro.core import DesignPoint, pareto_frontier, pick_under_area_budget

TOTAL_AREA_BUDGET = 60_000.0  # gate-equivalents for both blocks
JPEG_AREA = 28_000.0          # fixed-function decoder, one configuration


def main() -> None:
    print("SoC design: SHA-256 engine + JPEG decoder under "
          f"{TOTAL_AREA_BUDGET:.0f} gate-eq total")
    print()

    # --- Step 1: read the miner's design space off its interface.
    points = [
        DesignPoint(
            config=f"Loop={int(r['loop'])}",
            area=r["area"],
            latency=r["latency"],
            throughput=r["hashrate"],
        )
        for r in area_latency_frontier()
    ]
    print("miner frontier (from the interface, no synthesis runs):")
    for p in pareto_frontier(points):
        print(
            f"  {p.config:>8}: area {p.area:7.0f}, latency {p.latency:3.0f} cy, "
            f"{p.throughput:.4f} hashes/cy"
        )

    # --- Step 2: the decoder is fixed; allocate what remains to SHA.
    sha_budget = TOTAL_AREA_BUDGET - JPEG_AREA
    pick = pick_under_area_budget(points, sha_budget)
    print()
    print(f"JPEG decoder takes {JPEG_AREA:.0f}; {sha_budget:.0f} left for SHA-256")
    print(f"-> choose {pick.config} (area {pick.area:.0f}, {pick.throughput:.4f} hashes/cy)")

    # --- Step 3: sanity-check expected workload performance, again
    # purely from interfaces.
    loop = int(pick.latency)
    job = random_job(np.random.default_rng(7), zero_bits=6)
    expected_attempts = 2 ** job.difficulty_bits
    print()
    print("expected performance on the target workloads:")
    print(
        f"  SHA engine: ~{mining_cycles(loop, expected_attempts):.0f} cycles "
        f"per {job.difficulty_bits}-bit share (E[attempts]={expected_attempts})"
    )
    images = random_images(seed=3, count=200)
    mean_lat = float(np.mean([latency_jpeg_decode(i) for i in images]))
    print(f"  JPEG block: {mean_lat:.0f} cycles/image on the camera mix")

    # --- Step 4: after tape-out, verify the interface told the truth.
    model = BitcoinMinerModel(loop)
    result = model.mine(job, max_attempts=200_000)
    print()
    print(
        f"post-silicon check: mined a share in {result.cycles:.0f} cycles "
        f"({result.attempts} attempts); interface predicted "
        f"{mining_cycles(loop, result.attempts):.0f} for that many attempts"
    )


if __name__ == "__main__":
    main()
