"""Quickstart: the three performance-interface representations.

Runs the paper's §3 tour on the JPEG decoder: read the English
interface, evaluate the executable Python interface, simulate the
Petri-net IR — and check all of them against the ground-truth model.

    python examples/quickstart.py
"""

from repro.accel.jpeg import (
    ENGLISH,
    JpegDecoderModel,
    latency_jpeg_decode,
    petri_interface,
    random_images,
    tput_jpeg_decode,
)
from repro.core import validate_interface
from repro.core.program import ProgramInterface


def main() -> None:
    model = JpegDecoderModel()
    images = random_images(seed=42, count=25)
    img = images[0]

    print("=" * 70)
    print("Representation 1: English (what a datasheet should say)")
    print("=" * 70)
    print(ENGLISH.render())

    print()
    print("=" * 70)
    print("Representation 2: executable Python (Fig. 2)")
    print("=" * 70)
    print(f"image: {img}")
    print(f"  predicted latency:    {latency_jpeg_decode(img):12.1f} cycles")
    print(f"  predicted throughput: {tput_jpeg_decode(img):12.8f} images/cycle")
    print(f"  measured  latency:    {model.measure_latency(img):12.1f} cycles")

    print()
    print("=" * 70)
    print("Representation 3: Petri-net IR (Table 1)")
    print("=" * 70)
    petri = petri_interface()
    print(petri.describe())
    print(f"  predicted latency:    {petri.latency(img):12.1f} cycles")

    print()
    print("=" * 70)
    print(f"Validation over {len(images)} random images")
    print("=" * 70)
    program = ProgramInterface(
        "jpeg-decoder", latency_fn=latency_jpeg_decode, throughput_fn=tput_jpeg_decode
    )
    for iface in (program, petri):
        report = validate_interface(iface, model, images, throughput_repeat=4)
        print(report.summary())
    print()
    print("Note the gap: the Petri net is an order of magnitude more")
    print("accurate than the eyeball-able Python program — the paper's")
    print("precision/readability tradeoff, measured.")


if __name__ == "__main__":
    main()
