"""Tests for automatic interface extraction (§5 future work)."""

import pytest

from repro.accel.base import AcceleratorModel
from repro.accel.jpeg import JpegDecoderModel, random_images
from repro.accel.protoacc import ProtoaccSerializerModel, instances
from repro.accel.vta import VtaModel, random_programs
from repro.core import validate_interface
from repro.extract import (
    FitReport,
    extract_program_interface,
    fit_from_records,
    jpeg_features,
    protoacc_features,
    vta_features,
)
from repro.runtime.device import CallRecord


class LinearToy(AcceleratorModel[int]):
    name = "toy"

    def measure_latency(self, item: int) -> float:
        return 3.0 * item + 50.0


def toy_features(item: int) -> dict[str, float]:
    return {"n": float(item)}


class TestFitMechanics:
    def test_recovers_exact_linear_model(self):
        iface, report = extract_program_interface(
            LinearToy(), list(range(1, 20)), toy_features
        )
        assert report.train_error < 1e-6
        assert iface.latency(100) == pytest.approx(350.0, rel=1e-6)

    def test_formula_renders(self):
        iface, _ = extract_program_interface(
            LinearToy(), list(range(1, 10)), toy_features
        )
        assert iface.formula().startswith("latency = ")
        assert "n" in iface.formula()

    def test_weights_nonnegative(self):
        # A feature anticorrelated with latency must be zeroed, not
        # given a negative rate (costs are costs).
        def noisy_features(item):
            return {"n": float(item), "anti": float(100 - item)}

        iface, _ = extract_program_interface(
            LinearToy(), list(range(1, 50)), noisy_features
        )
        assert all(w >= 0 for w in iface._weights)

    def test_needs_three_items(self):
        with pytest.raises(ValueError):
            extract_program_interface(LinearToy(), [1, 2], toy_features)

    def test_inconsistent_features_rejected(self):
        def flaky(item):
            return {"a": 1.0} if item % 2 else {"b": 1.0}

        with pytest.raises(ValueError, match="same keys"):
            extract_program_interface(LinearToy(), [1, 2, 3, 4], flaky)


class TestHoldout:
    def test_holdout_slice_is_scored(self):
        _, report = extract_program_interface(
            LinearToy(), list(range(1, 40)), toy_features, holdout_fraction=0.25
        )
        assert report.holdout_items > 0
        assert report.holdout_error is not None
        assert report.holdout_error < 1e-6
        assert report.holdout_infinite == 0
        assert report.trustworthy(0.1)
        assert "holdout error" in str(report)

    def test_tiny_workload_has_no_holdout_and_is_untrustworthy(self):
        # 3 items: the 3-item training floor leaves no room to hold out.
        _, report = extract_program_interface(
            LinearToy(), [1, 2, 3], toy_features, holdout_fraction=0.25
        )
        assert report.holdout_items == 0
        assert report.holdout_error is None
        assert not report.trustworthy(1.0)

    def test_trustworthy_gates_on_holdout_not_train(self):
        report = FitReport(
            train_items=30,
            train_error=0.0,
            feature_names=("n",),
            holdout_items=10,
            holdout_error=0.4,
        )
        assert report.trustworthy(0.5)
        assert not report.trustworthy(0.3)

    def test_unbounded_holdout_pairs_block_trust(self):
        report = FitReport(
            train_items=30,
            train_error=0.0,
            feature_names=("n",),
            holdout_items=10,
            holdout_error=0.01,
            holdout_infinite=1,
        )
        assert not report.trustworthy(1.0)
        assert "unbounded" in str(report)

    @pytest.mark.parametrize("fraction", [-0.1, 1.0, 1.5])
    def test_invalid_holdout_fraction_rejected(self, fraction):
        with pytest.raises(ValueError, match="holdout_fraction"):
            extract_program_interface(
                LinearToy(),
                list(range(1, 20)),
                toy_features,
                holdout_fraction=fraction,
            )


def record(i, request, service_cycles, path="accel"):
    return CallRecord(
        index=i,
        request=request,
        response=None,
        cycles=service_cycles,
        path=path,
        attempts=1 if path == "accel" else 0,
        faults=(),
        breaker_state=None,
        service_cycles=service_cycles,
    )


class TestFitFromRecords:
    def test_recovers_linear_model_from_tape(self):
        records = [record(i, n, 3.0 * n + 50.0) for i, n in enumerate(range(1, 40))]
        iface, report = fit_from_records(records, toy_features, accelerator="toy")
        assert report.trustworthy(0.01)
        assert iface.latency(100) == pytest.approx(350.0, rel=1e-6)
        assert iface.accelerator == "toy"

    def test_non_accel_records_are_skipped(self):
        # CPU fallbacks time the software path and failed calls time
        # nothing: training on them would poison the fit.
        records = [record(i, n, 3.0 * n + 50.0) for i, n in enumerate(range(1, 40))]
        noise = [
            record(100 + i, n, 1e9, path=path)
            for i, (n, path) in enumerate([(5, "cpu"), (7, "failed"), (9, "cpu")])
        ]
        iface, _ = fit_from_records(
            records + noise, toy_features, accelerator="toy"
        )
        assert iface.latency(100) == pytest.approx(350.0, rel=1e-6)

    def test_overhead_is_subtracted(self):
        # service_cycles includes 100 cycles of host-side invocation
        # overhead; the fit should recover the device-side formula.
        records = [
            record(i, n, 3.0 * n + 50.0 + 100.0)
            for i, n in enumerate(range(1, 40))
        ]
        iface, report = fit_from_records(
            records, toy_features, accelerator="toy", overhead_fn=lambda n: 100.0
        )
        assert report.trustworthy(0.01)
        assert iface.latency(100) == pytest.approx(350.0, rel=1e-6)

    def test_zero_observation_pairs_counted_as_unbounded(self):
        records = [record(i, n, 3.0 * n + 50.0) for i, n in enumerate(range(1, 40))]
        zeros = [record(100 + i, n, 0.0) for i, n in enumerate(range(40, 52))]
        _, report = fit_from_records(
            records + zeros, toy_features, accelerator="toy", holdout_fraction=0.5
        )
        assert report.holdout_infinite > 0
        assert not report.trustworthy(1.0)

    def test_needs_three_accel_records(self):
        records = [record(0, 1, 53.0), record(1, 2, 56.0)] + [
            record(2 + i, n, 1.0, path="cpu") for i, n in enumerate(range(5))
        ]
        with pytest.raises(ValueError, match="accelerator-path"):
            fit_from_records(records, toy_features, accelerator="toy")


class TestRealAccelerators:
    def test_jpeg_extraction_close_on_holdout(self):
        model = JpegDecoderModel()
        iface, _ = extract_program_interface(
            model, random_images(1, 80), jpeg_features
        )
        holdout = validate_interface(
            iface, model, random_images(2, 40), check_throughput=False
        )
        assert holdout.latency.avg < 0.05

    def test_jpeg_extraction_recovers_decode_rate(self):
        # The model decodes at 8 cycles/coded byte; the extractor should
        # find a rate close to that — interpretability, not a black box.
        model = JpegDecoderModel()
        iface, _ = extract_program_interface(
            model, random_images(3, 80), jpeg_features
        )
        rate = dict(zip(iface._names, iface._weights))["coded_bytes"]
        assert rate == pytest.approx(8.0, rel=0.1)

    def test_protoacc_extraction(self):
        model = ProtoaccSerializerModel()
        msgs = list(instances(seed=3).values())
        iface, _ = extract_program_interface(model, msgs[:20], protoacc_features)
        holdout = validate_interface(
            iface, model, msgs[20:], check_throughput=False
        )
        assert holdout.latency.avg < 0.06

    def test_vta_extraction(self):
        model = VtaModel()
        iface, _ = extract_program_interface(
            model, random_programs(4, 40, max_dim=5), vta_features
        )
        holdout = validate_interface(
            iface, model, random_programs(5, 15, max_dim=5), check_throughput=False
        )
        assert holdout.latency.avg < 0.12

    def test_vta_extraction_recovers_mac_rate(self):
        model = VtaModel()
        iface, _ = extract_program_interface(
            model, random_programs(6, 40, max_dim=5), vta_features
        )
        rate = dict(zip(iface._names, iface._weights))["gemm_macs"]
        # One MAC row per cycle in the core; collinearity with ALU work
        # (schedules pair them) leaves the fitter some slack.
        assert 0.5 <= rate <= 1.3
