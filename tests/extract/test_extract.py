"""Tests for automatic interface extraction (§5 future work)."""

import pytest

from repro.accel.base import AcceleratorModel
from repro.accel.jpeg import JpegDecoderModel, random_images
from repro.accel.protoacc import ProtoaccSerializerModel, instances
from repro.accel.vta import VtaModel, random_programs
from repro.core import validate_interface
from repro.extract import (
    extract_program_interface,
    jpeg_features,
    protoacc_features,
    vta_features,
)


class LinearToy(AcceleratorModel[int]):
    name = "toy"

    def measure_latency(self, item: int) -> float:
        return 3.0 * item + 50.0


def toy_features(item: int) -> dict[str, float]:
    return {"n": float(item)}


class TestFitMechanics:
    def test_recovers_exact_linear_model(self):
        iface, report = extract_program_interface(
            LinearToy(), list(range(1, 20)), toy_features
        )
        assert report.train_error < 1e-6
        assert iface.latency(100) == pytest.approx(350.0, rel=1e-6)

    def test_formula_renders(self):
        iface, _ = extract_program_interface(
            LinearToy(), list(range(1, 10)), toy_features
        )
        assert iface.formula().startswith("latency = ")
        assert "n" in iface.formula()

    def test_weights_nonnegative(self):
        # A feature anticorrelated with latency must be zeroed, not
        # given a negative rate (costs are costs).
        def noisy_features(item):
            return {"n": float(item), "anti": float(100 - item)}

        iface, _ = extract_program_interface(
            LinearToy(), list(range(1, 50)), noisy_features
        )
        assert all(w >= 0 for w in iface._weights)

    def test_needs_three_items(self):
        with pytest.raises(ValueError):
            extract_program_interface(LinearToy(), [1, 2], toy_features)

    def test_inconsistent_features_rejected(self):
        def flaky(item):
            return {"a": 1.0} if item % 2 else {"b": 1.0}

        with pytest.raises(ValueError, match="same keys"):
            extract_program_interface(LinearToy(), [1, 2, 3, 4], flaky)


class TestRealAccelerators:
    def test_jpeg_extraction_close_on_holdout(self):
        model = JpegDecoderModel()
        iface, _ = extract_program_interface(
            model, random_images(1, 80), jpeg_features
        )
        holdout = validate_interface(
            iface, model, random_images(2, 40), check_throughput=False
        )
        assert holdout.latency.avg < 0.05

    def test_jpeg_extraction_recovers_decode_rate(self):
        # The model decodes at 8 cycles/coded byte; the extractor should
        # find a rate close to that — interpretability, not a black box.
        model = JpegDecoderModel()
        iface, _ = extract_program_interface(
            model, random_images(3, 80), jpeg_features
        )
        rate = dict(zip(iface._names, iface._weights))["coded_bytes"]
        assert rate == pytest.approx(8.0, rel=0.1)

    def test_protoacc_extraction(self):
        model = ProtoaccSerializerModel()
        msgs = list(instances(seed=3).values())
        iface, _ = extract_program_interface(model, msgs[:20], protoacc_features)
        holdout = validate_interface(
            iface, model, msgs[20:], check_throughput=False
        )
        assert holdout.latency.avg < 0.06

    def test_vta_extraction(self):
        model = VtaModel()
        iface, _ = extract_program_interface(
            model, random_programs(4, 40, max_dim=5), vta_features
        )
        holdout = validate_interface(
            iface, model, random_programs(5, 15, max_dim=5), check_throughput=False
        )
        assert holdout.latency.avg < 0.12

    def test_vta_extraction_recovers_mac_rate(self):
        model = VtaModel()
        iface, _ = extract_program_interface(
            model, random_programs(6, 40, max_dim=5), vta_features
        )
        rate = dict(zip(iface._names, iface._weights))["gemm_macs"]
        # One MAC row per cycle in the core; collinearity with ALU work
        # (schedules pair them) leaves the fitter some slack.
        assert 0.5 <= rate <= 1.3
