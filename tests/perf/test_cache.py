"""Cache layer: hit/miss accounting, key stability, invalidation."""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.perf import EvalCache, UncacheableError, net_fingerprint, workload_key
from repro.petri import PetriNet, parse

PNET = """\
net demo

place in
place mid capacity 4
place out

transition a
  consume in
  produce mid
  delay expr: 1 + tok["x"] % 3

transition b
  consume mid
  produce out
  delay 2
"""


def programmatic_net(delay=3.0, capacity=None):
    net = PetriNet("prog")
    net.add_place("in", capacity=capacity)
    net.add_place("out")
    net.add_transition("t", ["in"], ["out"], delay=delay)
    return net


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------


def test_same_source_same_fingerprint():
    assert net_fingerprint(parse(PNET)) == net_fingerprint(parse(PNET))


def test_programmatic_net_fingerprint_is_reproducible():
    assert net_fingerprint(programmatic_net()) == net_fingerprint(programmatic_net())


@pytest.mark.parametrize(
    "mutate",
    [
        lambda n: setattr(n.transitions["a"], "servers", 9),
        lambda n: setattr(n.transitions["a"], "priority", 5),
        lambda n: setattr(n.places["mid"], "capacity", 99),
        lambda n: setattr(n.transitions["b"], "delay", 7.0),
        lambda n: setattr(n.transitions["b"], "timeout", (4.0, "in")),
    ],
)
def test_mutated_net_changes_fingerprint(mutate):
    net = parse(PNET)
    before = net_fingerprint(net)
    mutate(net)
    assert net_fingerprint(net) != before


def test_changed_lambda_formula_changes_fingerprint():
    a = programmatic_net(delay=3.0)
    b = programmatic_net(delay=3.0)
    b.transitions["t"].delay = lambda c: 3.0 + c["in"][0].payload
    assert net_fingerprint(a) != net_fingerprint(b)


def test_closure_value_is_part_of_fingerprint():
    def with_factor(k):
        net = programmatic_net()
        net.transitions["t"].delay = lambda c: k * 1.0
        return net

    assert net_fingerprint(with_factor(2)) != net_fingerprint(with_factor(3))
    assert net_fingerprint(with_factor(2)) == net_fingerprint(with_factor(2))


def test_simulation_state_does_not_affect_fingerprint():
    from repro.petri import Simulator

    net = parse(PNET)
    before = net_fingerprint(net)
    sim = Simulator(net, sinks=["out"])
    sim.inject_stream("in", [{"x": i} for i in range(5)])
    sim.run()
    assert net_fingerprint(net) == before


def test_workload_key_distinguishes_types():
    keys = {workload_key(v) for v in (1, 1.0, True, "1", [1], (1,), {1})}
    assert len(keys) == 7


def test_workload_key_rejects_opaque_objects():
    class Opaque:
        pass

    with pytest.raises(UncacheableError):
        workload_key(Opaque())


def test_key_stable_across_processes(tmp_path: Path):
    """The whole point of content addressing: a different process building
    the same net from the same source computes the same key."""
    script = f"""
import sys
sys.path.insert(0, {str(Path("src").resolve())!r})
from repro.perf import EvalCache
from repro.petri import parse
cache = EvalCache()
print(cache.key(parse({PNET!r}), {{"items": 10, "gap": 0.5}}))
"""
    runs = [
        subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True, check=True
        ).stdout.strip()
        for _ in range(2)
    ]
    here = EvalCache().key(parse(PNET), {"items": 10, "gap": 0.5})
    assert runs[0] == runs[1] == here


# ----------------------------------------------------------------------
# EvalCache behavior
# ----------------------------------------------------------------------


def test_hit_miss_counting():
    cache = EvalCache()
    net = parse(PNET)
    calls = []

    def compute():
        calls.append(1)
        return len(calls)

    assert cache.get_or_compute(net, {"n": 1}, compute) == 1
    assert cache.get_or_compute(net, {"n": 1}, compute) == 1
    assert cache.get_or_compute(net, {"n": 2}, compute) == 2
    assert (cache.stats.hits, cache.stats.misses) == (1, 2)
    assert cache.stats.hit_rate == pytest.approx(1 / 3)
    assert len(calls) == 2
    assert len(cache) == 2


def test_uncacheable_features_always_compute():
    class Opaque:
        pass

    cache = EvalCache()
    net = parse(PNET)
    calls = []
    for _ in range(2):
        cache.get_or_compute(net, Opaque(), lambda: calls.append(1))
    assert len(calls) == 2
    assert cache.stats.uncacheable == 2
    assert cache.stats.lookups == 0


def test_mutated_fingerprint_invalidates_entries():
    cache = EvalCache()
    net = parse(PNET)
    cache.get_or_compute(net, {"n": 1}, lambda: "old")
    net.transitions["a"].servers = 4  # a different accelerator now
    assert cache.get_or_compute(net, {"n": 1}, lambda: "new") == "new"
    assert cache.stats.misses == 2 and cache.stats.hits == 0


def test_string_namespace_keys():
    cache = EvalCache()
    a = cache.get_or_compute("profiler:x", {"p": 1}, lambda: "ax")
    b = cache.get_or_compute("profiler:y", {"p": 1}, lambda: "by")
    assert (a, b) == ("ax", "by")
    assert cache.get_or_compute("profiler:x", {"p": 1}, lambda: "zz") == "ax"


def test_clear_drops_entries_but_keeps_counters():
    cache = EvalCache()
    cache.get_or_compute("ns", 1, lambda: "v")
    cache.clear()
    assert len(cache) == 0
    assert cache.stats.misses == 1
    cache.reset_stats()
    assert cache.stats.lookups == 0


def test_stats_summary_format():
    cache = EvalCache()
    cache.get_or_compute("ns", 1, lambda: "v")
    cache.get_or_compute("ns", 1, lambda: "v")
    assert cache.stats.summary() == "cache: 1/2 hits (50%)"
