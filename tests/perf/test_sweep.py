"""SweepRunner: deterministic ordering, parallel/serial mode selection."""

import math

from repro.perf import SweepRunner


def square(x):
    return x * x


def test_serial_for_small_sweeps():
    runner = SweepRunner(workers=4, min_parallel_items=100)
    assert runner.map(square, range(10)) == [x * x for x in range(10)]
    assert runner.last_mode == "serial"


def test_workers_one_forces_serial():
    runner = SweepRunner(workers=1, min_parallel_items=0)
    assert runner.map(square, range(20)) == [x * x for x in range(20)]
    assert runner.last_mode == "serial"


def test_parallel_preserves_input_order():
    runner = SweepRunner(workers=2, min_parallel_items=2)
    points = list(range(40))
    assert runner.map(math.sqrt, points) == [math.sqrt(x) for x in points]
    assert runner.last_mode == "parallel"


def test_unpicklable_work_falls_back_to_serial():
    runner = SweepRunner(workers=2, min_parallel_items=2)
    k = 3
    out = runner.map(lambda x: x + k, range(12))
    assert out == [x + 3 for x in range(12)]
    assert runner.last_mode == "serial-fallback"


def test_results_identical_across_modes():
    points = list(range(30))
    serial = SweepRunner(workers=1).map(square, points)
    parallel = SweepRunner(workers=2, min_parallel_items=2).map(square, points)
    assert serial == parallel


def test_default_workers_is_cpu_count():
    runner = SweepRunner()
    assert runner.workers >= 1


# ----------------------------------------------------------------------
# Batched mode
# ----------------------------------------------------------------------


def test_batch_fn_runs_in_process_and_sets_mode():
    runner = SweepRunner(workers=4, min_parallel_items=2)
    points = list(range(25))
    out = runner.map(square, points, batch_fn=lambda xs: [x * x for x in xs])
    assert out == [x * x for x in points]
    assert runner.last_mode == "batched"


def test_batch_fn_length_mismatch_is_an_error():
    import pytest

    runner = SweepRunner(workers=1)
    with pytest.raises(ValueError, match="batch_fn returned"):
        runner.map(square, range(5), batch_fn=lambda xs: [1.0])


def test_batched_mode_is_counted_in_metrics():
    from repro.obs import MetricsRegistry, Obs

    obs = Obs(metrics=MetricsRegistry())
    runner = SweepRunner(workers=2, obs=obs)
    runner.map(square, range(7), batch_fn=lambda xs: [x * x for x in xs])
    assert obs.metrics.counter("sweep_maps_total", mode="batched").value == 1
    assert obs.metrics.counter("sweep_points_total", mode="batched").value == 7


def test_small_sweep_batched_beats_process_pool():
    """The regression the batched mode exists for: on a small sweep the
    pool's startup cost dwarfs the work, while the batch path answers
    from one in-process engine pass."""
    import time

    from repro.accel.jpeg import interfaces as jpeg
    from repro.accel.jpeg.workload import random_images

    images = random_images(seed=51, count=32, min_dim=16, max_dim=48)
    iface = jpeg.petri_interface()

    runner = SweepRunner(workers=2, min_parallel_items=2)
    t0 = time.perf_counter()
    batched = runner.map(iface.latency, images, batch_fn=iface.evaluate_batch)
    batched_seconds = time.perf_counter() - t0
    assert runner.last_mode == "batched"

    t0 = time.perf_counter()
    fanned = runner.map(_pool_latency, images)
    fanned_seconds = time.perf_counter() - t0
    assert runner.last_mode in ("parallel", "serial-fallback")

    assert batched == fanned
    assert batched_seconds < fanned_seconds


def _pool_latency(img):
    # Module-level so the pool can pickle it; builds the interface in the
    # worker exactly like a naive fan-out would.
    from repro.accel.jpeg import interfaces as jpeg

    return jpeg.petri_interface().latency(img)
