"""SweepRunner: deterministic ordering, parallel/serial mode selection."""

import math

from repro.perf import SweepRunner


def square(x):
    return x * x


def test_serial_for_small_sweeps():
    runner = SweepRunner(workers=4, min_parallel_items=100)
    assert runner.map(square, range(10)) == [x * x for x in range(10)]
    assert runner.last_mode == "serial"


def test_workers_one_forces_serial():
    runner = SweepRunner(workers=1, min_parallel_items=0)
    assert runner.map(square, range(20)) == [x * x for x in range(20)]
    assert runner.last_mode == "serial"


def test_parallel_preserves_input_order():
    runner = SweepRunner(workers=2, min_parallel_items=2)
    points = list(range(40))
    assert runner.map(math.sqrt, points) == [math.sqrt(x) for x in points]
    assert runner.last_mode == "parallel"


def test_unpicklable_work_falls_back_to_serial():
    runner = SweepRunner(workers=2, min_parallel_items=2)
    k = 3
    out = runner.map(lambda x: x + k, range(12))
    assert out == [x + 3 for x in range(12)]
    assert runner.last_mode == "serial-fallback"


def test_results_identical_across_modes():
    points = list(range(30))
    serial = SweepRunner(workers=1).map(square, points)
    parallel = SweepRunner(workers=2, min_parallel_items=2).map(square, points)
    assert serial == parallel


def test_default_workers_is_cpu_count():
    runner = SweepRunner()
    assert runner.workers >= 1
