"""Persistent JSONL tier: round-trips, corruption recovery, concurrency."""

import json
import multiprocessing
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.perf import EvalCache, PersistentStore, spillable


# ----------------------------------------------------------------------
# Spillability
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "value",
    [None, True, 7, -3, "text", 3.25, 0.1 + 0.2, [1, 2.5, "x"], {"a": [1], "b": None}],
)
def test_plain_data_is_spillable(value):
    assert spillable(value)


@pytest.mark.parametrize(
    "value",
    [
        float("inf"),
        float("nan"),
        (1, 2),  # tuples come back as lists
        {"k": (1,)},
        {1: "non-string key"},
        object(),
    ],
)
def test_non_roundtrippable_values_are_not_spillable(value):
    assert not spillable(value)


# ----------------------------------------------------------------------
# Round-trips
# ----------------------------------------------------------------------


def test_append_load_roundtrip_preserves_floats_exactly(tmp_path: Path):
    path = tmp_path / "cache.jsonl"
    store = PersistentStore(path)
    values = {"a": 0.1 + 0.2, "b": 1e-308, "c": 123456789.000001, "d": [0.3, "x"]}
    for k, v in values.items():
        assert store.append(k, v)
    loaded = PersistentStore(path).load()
    assert loaded == values  # == on floats means bit-identical here


def test_unspillable_append_returns_false_and_writes_nothing(tmp_path: Path):
    path = tmp_path / "cache.jsonl"
    store = PersistentStore(path)
    assert not store.append("k", float("nan"))
    assert not path.exists()


def test_duplicate_keys_keep_the_last_value(tmp_path: Path):
    store = PersistentStore(tmp_path / "c.jsonl")
    store.append("k", 1)
    store.append("k", 2)
    assert store.load() == {"k": 2}


def test_load_of_missing_file_is_empty(tmp_path: Path):
    assert PersistentStore(tmp_path / "never-written.jsonl").load() == {}


# ----------------------------------------------------------------------
# Corruption tolerance
# ----------------------------------------------------------------------


def test_truncated_tail_recovers_complete_entries_with_warning(
    tmp_path: Path, caplog
):
    path = tmp_path / "c.jsonl"
    store = PersistentStore(path)
    store.append("a", 1)
    store.append("b", 2)
    # Crash mid-append: chop the final line (newline included) in half.
    raw = path.read_bytes()
    path.write_bytes(raw[: len(raw) - 5])
    fresh = PersistentStore(path)
    with caplog.at_level("WARNING", logger="repro.perf.store"):
        entries = fresh.load()
    assert entries == {"a": 1}
    assert any("incomplete final line" in r.message for r in caplog.records)
    # A writer completing the line later: the held-back tail stitches.
    with open(path, "ab") as fh:
        fh.write(raw[len(raw) - 5 :])
    assert fresh.reload_into(entries) == 1
    assert entries == {"a": 1, "b": 2}


def test_corrupt_middle_line_is_skipped_and_counted(tmp_path: Path, caplog):
    path = tmp_path / "c.jsonl"
    lines = [
        json.dumps({"k": "a", "v": 1}),
        "{not json at all",
        json.dumps({"v": 2}),  # missing key field
        json.dumps({"k": 7, "v": 3}),  # non-string key
        json.dumps({"k": "b", "v": 4}),
    ]
    path.write_text("\n".join(lines) + "\n")
    store = PersistentStore(path)
    with caplog.at_level("WARNING", logger="repro.perf.store"):
        entries = store.load()
    assert entries == {"a": 1, "b": 4}
    assert store.corrupt_lines == 3
    assert any("corrupt line" in r.message for r in caplog.records)


def test_append_after_truncation_keeps_later_entries_readable(tmp_path: Path):
    """A torn tail must never poison entries appended after it."""
    path = tmp_path / "c.jsonl"
    store = PersistentStore(path)
    store.append("a", 1)
    path.write_bytes(path.read_bytes()[:-4])  # tear the line, lose "a"
    # A fresh writer appends after the torn bytes: its first line merges
    # into the torn one (both are lost as one corrupt line), but every
    # line after that parses.
    fresh = PersistentStore(path)
    fresh.append("b", 2)
    fresh.append("c", 3)
    entries = fresh.load()
    assert entries == {"c": 3}
    assert fresh.corrupt_lines == 1


# ----------------------------------------------------------------------
# Cross-process concurrency
# ----------------------------------------------------------------------

_WRITER = """
import sys
sys.path.insert(0, {src!r})
from repro.perf import PersistentStore
store = PersistentStore({path!r})
for i in range({n}):
    store.append(f"{prefix}:{{i}}", i)
"""


def test_two_processes_appending_concurrently_never_corrupt_reads(tmp_path: Path):
    """O_APPEND + single-write lines: concurrent writers interleave whole
    lines, so a reader sees every entry from both and zero corruption."""
    path = str(tmp_path / "shared.jsonl")
    src = str(Path("src").resolve())
    n = 300
    procs = [
        subprocess.Popen(
            [
                sys.executable,
                "-c",
                _WRITER.format(src=src, path=path, n=n, prefix=prefix),
            ],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
        )
        for prefix in ("p1", "p2")
    ]
    for p in procs:
        _, err = p.communicate(timeout=120)
        assert p.returncode == 0, err.decode()
    store = PersistentStore(path)
    entries = store.load()
    assert store.corrupt_lines == 0
    assert len(entries) == 2 * n
    for prefix in ("p1", "p2"):
        for i in range(n):
            assert entries[f"{prefix}:{i}"] == i


def test_reload_picks_up_entries_written_by_another_store(tmp_path: Path):
    path = tmp_path / "c.jsonl"
    reader = PersistentStore(path)
    entries = reader.load()
    writer = PersistentStore(path)
    writer.append("x", 1)
    assert reader.reload_into(entries) == 1
    writer.append("y", 2)
    assert reader.reload_into(entries) == 1
    assert entries == {"x": 1, "y": 2}


# ----------------------------------------------------------------------
# EvalCache persistent tier
# ----------------------------------------------------------------------


def test_eval_cache_spills_and_warm_starts(tmp_path: Path):
    path = tmp_path / "evals.jsonl"
    first = EvalCache(path)
    assert first.get_or_compute("ns", {"n": 1}, lambda: 4.25) == 4.25
    assert first.stats.spills == 1
    # A second process (modeled as a fresh cache on the same file) hits
    # without ever computing.
    second = EvalCache(path)
    assert second.get_or_compute("ns", {"n": 1}, lambda: pytest.fail("recomputed")) == 4.25
    assert second.stats.hits == 1 and second.stats.misses == 0


def test_eval_cache_counts_unspillable_values(tmp_path: Path):
    cache = EvalCache(tmp_path / "evals.jsonl")
    cache.put("ns", {"n": 1}, object())  # stays in-memory only
    assert cache.stats.unspillable == 1
    assert cache.get("ns", {"n": 1}) is not EvalCache.MISS
    assert EvalCache(tmp_path / "evals.jsonl").get("ns", {"n": 1}) is EvalCache.MISS


def test_eval_cache_reload_sees_concurrent_writer(tmp_path: Path):
    path = tmp_path / "evals.jsonl"
    a = EvalCache(path)
    b = EvalCache(path)
    a.put("ns", {"n": 1}, 7.0)
    assert b.get("ns", {"n": 1}) is EvalCache.MISS
    assert b.reload() >= 1
    assert b.get("ns", {"n": 1}) == 7.0


def test_eval_cache_clear_keeps_the_disk_file(tmp_path: Path):
    path = tmp_path / "evals.jsonl"
    cache = EvalCache(path)
    cache.put("ns", 1, 2.0)
    cache.clear()
    assert len(cache) == 0
    assert cache.reload() == 1  # the disk tier restores the entry
    assert cache.get("ns", 1) == 2.0
    assert EvalCache(path).get("ns", 1) == 2.0  # fresh caches see it too


def test_eval_cache_metrics_include_spill_counters(tmp_path: Path):
    from repro.obs import MetricsRegistry

    registry = MetricsRegistry()
    cache = EvalCache(tmp_path / "evals.jsonl")
    cache.bind_metrics(registry, tier="test")
    cache.get_or_compute("ns", 1, lambda: 1.0)
    cache.put("ns", 2, object())
    assert registry.counter("eval_cache_spills_total", tier="test").value == 1
    assert registry.counter("eval_cache_unspillable_total", tier="test").value == 1
