"""Shared toy harness for the healing tests.

One linear accelerator (``latency = base + rate * bytes``) behind a
shipped interface frozen at the original rate, pooled alone under
``interface_predicted`` routing with a drift observatory.  A regime
shift is one assignment (``model.rate = ...``); the features are
exactly linear in ``bytes``, so a refit from clean post-shift records
recovers the new rate to numerical precision and the tests can make
sharp assertions about the lifecycle instead of fighting fit noise.
"""

from __future__ import annotations

import numpy as np

from repro.accel.base import AcceleratorModel
from repro.core.program import ProgramInterface
from repro.heal import HealPolicy, HealingManager
from repro.obs import DriftObservatory, MetricsRegistry, Obs
from repro.runtime import CpuFallback, DriftDetector, ResilientDevice, Watchdog
from repro.runtime.pool import DevicePool, PooledDevice
from repro.workloads.rpc import sized_message

BASE = 50.0
RATE = 2.0
#: All "large" (> 1024 encoded bytes) so one (device, class) key gets
#: every observation.
SIZES = (1200, 1800, 2400, 3000, 3600)


class LinearModel(AcceleratorModel):
    """Ground truth the tests mutate mid-run."""

    name = "toy"

    def __init__(self, rate: float = RATE, base: float = BASE):
        self.rate = rate
        self.base = base

    def measure_latency(self, m) -> float:
        return self.base + self.rate * m.encoded_size()


def shipped_interface() -> ProgramInterface:
    """The vendor interface: frozen at the original rate."""
    return ProgramInterface(
        "toy", latency_fn=lambda m: BASE + RATE * m.encoded_size()
    )


def features(m) -> dict:
    return {"bytes": float(m.encoded_size())}


def quick_policy(**overrides) -> HealPolicy:
    defaults = dict(
        window=8,
        min_records=6,
        trigger_after=2,
        shadow_samples=4,
        probation_samples=6,
        refit_cooldown=4,
        quarantine_cooldown=8,
        promote_threshold=0.3,
    )
    defaults.update(overrides)
    return HealPolicy(**defaults)


class ToyRig:
    """One pooled device + observatory + healing manager + a driver."""

    def __init__(self, policy: HealPolicy | None = None, attach: bool = True):
        self.obs = Obs(
            metrics=MetricsRegistry(),
            observatory=DriftObservatory(
                detector_factory=lambda: DriftDetector(
                    threshold=0.5, window=8, min_samples=4
                )
            ),
        )
        self.model = LinearModel()
        self.device = ResilientDevice(
            self.model,
            shipped_interface(),
            CpuFallback(software_fn=lambda m: None, latency_fn=lambda m: 1e6),
            # The rollback tests crank ``rate`` to 20x; keep the
            # watchdog out of the way so every call lands on the tape.
            watchdog=Watchdog(budget=10_000_000.0),
            name="toy",
            obs=self.obs,
        )
        self.pooled = PooledDevice("toy", self.device)
        self.pool = DevicePool(
            [self.pooled], policy="interface_predicted", obs=self.obs
        )
        self.manager = HealingManager(features, policy=policy or quick_policy())
        if attach:
            self.manager.attach(self.pool)
        self._rng = np.random.default_rng(42)
        self._sent = 0
        self.now = 0.0

    def message(self):
        return sized_message(SIZES[self._sent % len(SIZES)], self._rng)

    def drive(self, n: int, gap: float = 50_000.0) -> None:
        """Dispatch ``n`` requests, spaced far enough apart that no
        queueing perturbs the observed latencies."""
        for _ in range(n):
            self.pool.dispatch(self.message(), self.now)
            self._sent += 1
            self.now += gap

    def state(self):
        return self.manager.state("toy", "large")

    def routed(self):
        return self.manager.routed_interface("toy")


def drive_until(rig: ToyRig, phase, limit: int = 120) -> None:
    """Dispatch one request at a time until the key reaches ``phase``
    (bounded — a wrong state machine fails the test, not the runner)."""
    for _ in range(limit):
        state = rig.state()
        if state is not None and state.phase is phase:
            return
        rig.drive(1)
    raise AssertionError(
        f"never reached {phase} (stuck at {rig.state() and rig.state().phase})"
    )
