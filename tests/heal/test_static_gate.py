"""The static promotion gate: statically refuted refit candidates are
quarantined before any shadow traffic.

The seeded defect is the classic under-pricing bug: a refit whose
``bytes`` weight is *negative* prices larger messages cheaper.  NNLS
fitting cannot normally produce one, so the tests hand-construct the
candidate and splice it into the refit path — exactly the situation
the verifier exists for: a defective fit must never price live traffic,
not even in shadow.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.extract as extract
from repro.extract.fit import ExtractedInterface, FitReport
from repro.heal import HealPhase
from repro.lint import verify_candidate
from tests.heal.harness import BASE, RATE, ToyRig, features, quick_policy


def bad_candidate() -> ExtractedInterface:
    """Under-prices large messages: negative ``bytes`` weight."""
    return ExtractedInterface(
        "toy (large, refit)",
        features,
        ["bytes"],
        np.array([-0.5]),
        2000.0,
    )


def good_fit_report() -> FitReport:
    """A report the holdout gate would happily accept — the point is
    that the *static* gate fires first."""
    return FitReport(
        train_items=24,
        train_error=0.01,
        feature_names=("bytes",),
        holdout_items=8,
        holdout_error=0.01,
    )


class TestVerifyCandidate:
    def test_clean_linear_candidate_passes(self):
        candidate = ExtractedInterface(
            "toy", features, ["bytes"], np.array([RATE]), BASE
        )
        assert verify_candidate(candidate) == []

    def test_negative_weight_is_rejected_with_named_feature(self):
        problems = verify_candidate(bad_candidate())
        assert len(problems) == 1
        assert "non-monotone in bytes" in problems[0]
        assert "prices larger bytes cheaper" in problems[0]

    def test_nan_weight_is_rejected(self):
        candidate = ExtractedInterface(
            "toy", features, ["bytes"], np.array([float("nan")]), BASE
        )
        assert any("NaN" in p for p in verify_candidate(candidate))

    def test_negative_intercept_is_rejected(self):
        candidate = ExtractedInterface(
            "toy", features, ["bytes"], np.array([RATE]), -10.0
        )
        assert any("negative intercept" in p for p in verify_candidate(candidate))

    def test_contract_slope_bound_is_enforced(self):
        from repro.lint import PerfContract
        from repro.lint.verify import MonotoneCert

        contract = PerfContract(
            accelerator="toy",
            monotone=(
                MonotoneCert(
                    "bytes", "non-decreasing", slope=RATE, proof="affine"
                ),
            ),
            evaluability="closed-form",
        )
        within = ExtractedInterface(
            "toy", features, ["bytes"], np.array([RATE]), BASE
        )
        assert verify_candidate(within, contract) == []
        over = ExtractedInterface(
            "toy", features, ["bytes"], np.array([RATE * 10]), BASE
        )
        problems = verify_candidate(over, contract)
        assert any("certified slope bound" in p for p in problems)


class TestHealingStaticGate:
    """End to end: drift -> refit -> static rejection -> quarantine."""

    @pytest.fixture
    def rig(self, monkeypatch) -> ToyRig:
        rig = ToyRig(policy=quick_policy())

        def seeded_fit(records, feature_fn, **kwargs):
            return bad_candidate(), good_fit_report()

        monkeypatch.setattr(extract, "fit_from_records", seeded_fit)
        # Trigger drift: the ground truth shifts, the shipped interface
        # does not.
        rig.model.rate = RATE * 4
        return rig

    def _drive_to_quarantine(self, rig: ToyRig) -> None:
        for _ in range(120):
            state = rig.state()
            if state is not None and state.phase is HealPhase.QUARANTINED:
                return
            rig.drive(1)
        raise AssertionError(
            f"never quarantined (stuck at {rig.state() and rig.state().phase})"
        )

    def test_candidate_is_rejected_before_any_shadow_traffic(self, rig):
        self._drive_to_quarantine(rig)
        state = rig.state()
        assert state.verify_rejections == 1
        assert state.refits == 0  # never reached shadowing
        assert state.shadow_candidate == []  # not one shadow sample
        assert rig.routed().overrides == {}  # pricing untouched

    def test_quarantine_reason_names_the_static_defect(self, rig):
        self._drive_to_quarantine(rig)
        state = rig.state()
        assert state.quarantine_reason.startswith("static verification failed")
        assert "non-monotone in bytes" in state.quarantine_reason

    def test_snapshot_and_counters_surface_the_rejection(self, rig):
        self._drive_to_quarantine(rig)
        healing = rig.pool.snapshot()["healing"]
        assert healing["verify_rejections"] == 1
        key = healing["keys"]["toy/large"]
        assert key["phase"] == "quarantined"
        assert key["verify_rejections"] == 1
        assert "non-monotone in bytes" in key["quarantine_reason"]
        metrics = rig.obs.metrics.snapshot()
        rejected = [
            (series, value)
            for series, value in metrics.items()
            if series.startswith("heal_refits_total")
            and 'outcome="verify_rejected"' in series
        ]
        assert rejected and rejected[0][1] == 1
        vetoes = [
            value
            for series, value in metrics.items()
            if series.startswith("heal_verify_rejections_total")
        ]
        assert vetoes == [1]

    def test_gate_can_be_disabled_by_policy(self, monkeypatch):
        rig = ToyRig(policy=quick_policy(verify_candidates=False))

        def seeded_fit(records, feature_fn, **kwargs):
            return bad_candidate(), good_fit_report()

        monkeypatch.setattr(extract, "fit_from_records", seeded_fit)
        rig.model.rate = RATE * 4
        for _ in range(60):
            state = rig.state()
            if state is not None and state.phase is HealPhase.SHADOWING:
                break
            rig.drive(1)
        state = rig.state()
        assert state.phase is HealPhase.SHADOWING  # defect reached shadow
        assert state.verify_rejections == 0
