"""The healing state machine: drift -> refit -> shadow -> swap -> probation."""

import pytest

from repro.heal import (
    ClassRoutedInterface,
    HealPhase,
    HealPolicy,
    HealingManager,
    LifecycleEvent,
)
from repro.obs import DEFAULT_SIZE_CLASSES

from tests.heal.harness import (
    RATE,
    ToyRig,
    drive_until,
    features,
    quick_policy,
    shipped_interface,
)


class TestHealPolicy:
    def test_defaults_validate(self):
        HealPolicy()

    @pytest.mark.parametrize(
        "bad",
        [
            dict(window=4, min_records=8),
            dict(min_records=3),
            dict(trigger_after=0),
            dict(shadow_samples=0),
            dict(promote_ratio=0.0),
            dict(promote_ratio=1.5),
        ],
    )
    def test_invalid_rejected(self, bad):
        with pytest.raises(ValueError):
            HealPolicy(**bad)


class TestClassRoutedInterface:
    def test_dispatches_by_size_class(self, rig):
        routed = ClassRoutedInterface(shipped_interface(), DEFAULT_SIZE_CLASSES)
        msg = rig.message()  # large
        assert routed.latency(msg) == routed.base.latency(msg)
        override = shipped_interface()
        routed.overrides["large"] = override
        assert routed.interface_for("large") is override
        assert routed.interface_for("small") is routed.base
        assert "large" in routed.describe()


class TestAttach:
    def test_requires_observatory(self):
        rig = ToyRig(attach=False)
        rig.pool.obs = None
        with pytest.raises(ValueError, match="DriftObservatory"):
            rig.manager.attach(rig.pool)

    def test_double_attach_rejected(self, rig):
        with pytest.raises(ValueError, match="already attached"):
            rig.manager.attach(rig.pool)

    def test_wraps_both_pricing_and_scoring_interface(self, rig):
        routed = rig.routed()
        assert rig.pooled.price_interface is routed
        assert rig.device.interface is routed
        assert rig.pool.healer is rig.manager

    def test_adopts_observatory_size_classes(self, rig):
        assert rig.manager.classes is DEFAULT_SIZE_CLASSES

    def test_device_filter(self):
        rig = ToyRig(attach=False)
        manager = HealingManager(features, devices=["other"])
        manager.attach(rig.pool)
        assert rig.pooled.price_interface is rig.device.interface
        assert not isinstance(rig.pooled.price_interface, ClassRoutedInterface)


class TestHealthyPath:
    def test_faithful_interface_never_triggers(self, rig):
        rig.drive(20)
        assert rig.state().phase is HealPhase.HEALTHY
        assert rig.manager.events == []
        assert rig.routed().overrides == {}

    def test_full_cycle_on_regime_shift(self, rig):
        rig.drive(12)
        rig.model.rate = 3 * RATE  # the hardware slows; the interface lies
        rig.drive(40)
        state = rig.state()
        assert state.promotions == 1
        phases = [e.phase_to for e in rig.manager.events]
        assert HealPhase.SHADOWING in phases and HealPhase.PROBATION in phases
        # Probation completed and the override is live.
        assert state.phase is HealPhase.HEALTHY
        assert "large" in rig.routed().overrides
        # The healed interface tracks the *new* hardware to within the
        # promote threshold, where the shipped one is ~2x off.
        msg = rig.message()
        healed = rig.routed().latency(msg)
        truth = rig.model.measure_latency(msg)
        assert abs(healed - truth) / truth < 0.1
        assert abs(rig.routed().base.latency(msg) - truth) / truth > 0.5
        # And the detector is quiet again.
        assert ("toy", "large") not in rig.obs.observatory.drifting_keys()

    def test_hysteresis_one_verdict_is_not_enough(self, rig):
        policy = quick_policy(trigger_after=50)  # effectively never
        rig2 = ToyRig(policy=policy)
        rig2.drive(12)
        rig2.model.rate = 3 * RATE
        rig2.drive(30)
        assert rig2.state().refits == 0
        assert rig2.state().drift_streak > 0

    def test_starved_window_cools_down_instead_of_fitting(self):
        rig = ToyRig(policy=quick_policy(window=40, min_records=40))
        rig.drive(12)
        rig.model.rate = 3 * RATE
        rig.drive(20)
        state = rig.state()
        assert state.refits == 0 and state.promotions == 0
        # The starved trigger set a cooldown rather than spinning.
        counters = rig.obs.metrics.snapshot()
        assert any(
            "heal_refits_total" in k and "starved" in k for k in counters
        ), counters


class TestRollback:
    def test_regressing_candidate_rolled_back_and_quarantined(self, rig):
        rig.drive(12)
        rig.model.rate = 3 * RATE
        drive_until(rig, HealPhase.PROBATION)
        assert rig.state().promotions == 1
        assert "large" in rig.routed().overrides
        # The hardware shifts *again* while the candidate is on
        # probation: the loop must roll back, not double down.
        rig.model.rate = 20 * RATE
        drive_until(rig, HealPhase.QUARANTINED)
        state = rig.state()
        assert state.rollbacks == 1
        # Exact prior pricing restored: there was no override before
        # the promotion, so there is none now — the shipped interface
        # prices the class again, bit for bit.
        assert "large" not in rig.routed().overrides
        msg = rig.message()
        assert rig.routed().latency(msg) == shipped_interface().latency(msg)

    def test_quarantine_expires_back_to_healthy(self, rig):
        rig.drive(12)
        rig.model.rate = 3 * RATE
        drive_until(rig, HealPhase.PROBATION)
        rig.model.rate = 20 * RATE
        drive_until(rig, HealPhase.QUARANTINED)
        cooldown = rig.state().cooldown
        assert cooldown == rig.manager.policy.quarantine_cooldown
        rig.drive(cooldown + 1)
        assert rig.state().phase is not HealPhase.QUARANTINED
        reasons = [e.reason for e in rig.manager.events]
        assert any("quarantine expired" in r for r in reasons)

    def test_no_refits_while_quarantined(self, rig):
        rig.drive(12)
        rig.model.rate = 3 * RATE
        drive_until(rig, HealPhase.PROBATION)
        rig.model.rate = 20 * RATE
        drive_until(rig, HealPhase.QUARANTINED)
        refits = rig.state().refits
        rig.drive(rig.state().cooldown - 1)  # still inside quarantine
        assert rig.state().phase is HealPhase.QUARANTINED
        assert rig.state().refits == refits


class TestObservability:
    def test_events_and_snapshot(self, rig):
        rig.drive(12)
        rig.model.rate = 3 * RATE
        rig.drive(40)
        snap = rig.pool.snapshot()["healing"]
        assert snap["managed_devices"] == ["toy"]
        assert snap["promotions"] == 1
        key = snap["keys"]["toy/large"]
        assert key["swapped"] is True
        assert key["refits"] >= 1
        assert str(rig.manager.events[0])  # renders
        assert isinstance(rig.manager.events[0], LifecycleEvent)
        report = rig.manager.report()
        assert "toy" in report and "yes" in report

    def test_lifecycle_counters_in_metrics(self, rig):
        rig.drive(12)
        rig.model.rate = 3 * RATE
        rig.drive(40)
        counters = rig.obs.metrics.snapshot()
        assert any("heal_promotions_total" in k for k in counters)
        assert any("heal_refits_total" in k for k in counters)

    def test_report_before_any_observation(self):
        manager = HealingManager(features)
        assert "no observations" in manager.report()


class TestPoolWithoutHealer:
    def test_snapshot_has_no_healing_section(self):
        rig = ToyRig(attach=False)
        assert "healing" not in rig.pool.snapshot()
