"""Hot-swap safety: the swap is one dict-slot mutation and nothing else.

The manager's contract is that promoting or rolling back a candidate
interface touches *only* the ``ClassRoutedInterface`` override slot —
never the breaker (including half-open probe accounting mid-storm),
never the recorded tape, never replay parity of a tape saved before the
swap.  These tests pin that contract by snapshotting the delicate state
around the actual swap operations.
"""

import pytest

from repro.heal import HealPhase
from repro.runtime.breaker import BreakerState, CircuitBreaker
from repro.runtime.tape import (
    protoacc_message_codec,
    replay_saved_tape,
    save_tape,
)

from tests.heal.harness import RATE, ToyRig, drive_until, shipped_interface


def breaker_fields(b: CircuitBreaker) -> tuple:
    """Every mutable field the breaker state machine owns."""
    return (
        b.state,
        b.consecutive_failures,
        b.probe_streak,
        b.probe_inflight,
        b.opened_at,
        list(b.transitions),
    )


def shadowing_rig() -> ToyRig:
    """A rig driven to SHADOWING: a candidate exists, no swap yet."""
    rig = ToyRig()
    rig.drive(12)
    rig.model.rate = 3 * RATE
    drive_until(rig, HealPhase.SHADOWING)
    assert rig.state().candidate is not None
    return rig


class TestBreakerSurvivesSwap:
    def test_mid_storm_swap_preserves_half_open_probe_accounting(self):
        rig = shadowing_rig()
        state = rig.state()
        # Put a breaker in the most delicate state it has: tripped,
        # recovered into HALF_OPEN, one probe in flight, one success
        # banked toward closing.  A swap that resets *any* of this
        # would flood a recovering device or close on stale successes.
        b = rig.device.breaker = CircuitBreaker()
        b.state = BreakerState.HALF_OPEN
        b.consecutive_failures = 3
        b.probe_streak = 1
        b.probe_inflight = 1
        b.opened_at = 123.0
        before = breaker_fields(b)

        rig.manager._promote(state, at=rig.now, cand=0.01, act=0.5)
        assert state.phase is HealPhase.PROBATION
        assert "large" in rig.routed().overrides
        assert breaker_fields(b) == before

        rig.manager._rollback(state, at=rig.now, threshold=0.5)
        assert state.phase is HealPhase.QUARANTINED
        assert "large" not in rig.routed().overrides
        assert breaker_fields(b) == before
        # And neither operation logged a breaker transition.
        assert b.transitions == []

    def test_full_cycle_never_transitions_a_closed_breaker(self):
        rig = ToyRig()
        rig.device.breaker = CircuitBreaker()
        rig.drive(12)
        rig.model.rate = 3 * RATE
        rig.drive(40)
        assert rig.state().promotions == 1
        assert rig.device.breaker.state is BreakerState.CLOSED
        assert rig.device.breaker.transitions == []


class TestTapeSurvivesSwap:
    def test_swap_leaves_records_unmutated_and_replay_parity_intact(
        self, tmp_path
    ):
        rig = shadowing_rig()
        state = rig.state()
        codec = protoacc_message_codec()
        records = rig.device.records
        fingerprint = [
            (r.index, r.path, r.cycles, r.service_cycles, r.attempts)
            for r in records
        ]

        pre = tmp_path / "pre.tape.gz"
        save_tape(records, pre, codec=codec, device="toy")
        baseline = replay_saved_tape(pre)

        rig.manager._promote(state, at=rig.now, cand=0.01, act=0.5)

        # The tape is the same object, same records, same numbers.
        assert rig.device.records is records
        assert [
            (r.index, r.path, r.cycles, r.service_cycles, r.attempts)
            for r in records
        ] == fingerprint
        post = tmp_path / "post.tape.gz"
        save_tape(records, post, codec=codec, device="toy")
        assert replay_saved_tape(post) == baseline

        # Rollback is equally inert.
        rig.manager._rollback(state, at=rig.now, threshold=0.5)
        again = tmp_path / "rollback.tape.gz"
        save_tape(records, again, codec=codec, device="toy")
        assert replay_saved_tape(again) == baseline


class TestExactRollback:
    def test_preexisting_override_restored_by_identity(self):
        """Rollback restores the exact prior pricing object — including
        an override that was installed before the healing cycle ran."""
        rig = ToyRig()
        sentinel = shipped_interface()  # prices like base: drift unaffected
        rig.routed().overrides["large"] = sentinel
        rig.drive(12)
        rig.model.rate = 3 * RATE
        drive_until(rig, HealPhase.PROBATION)
        assert rig.routed().overrides["large"] is not sentinel
        rig.model.rate = 20 * RATE
        drive_until(rig, HealPhase.QUARANTINED)
        assert rig.routed().overrides["large"] is sentinel

    def test_promotion_is_visible_on_the_next_price_only(self):
        """The swap changes what the routed interface *returns*, not
        which object the pool and device hold."""
        rig = shadowing_rig()
        routed = rig.routed()
        msg = rig.message()
        stale_price = routed.latency(msg)
        rig.manager._promote(rig.state(), at=rig.now, cand=0.01, act=0.5)
        assert rig.pooled.price_interface is routed
        assert rig.device.interface is routed
        healed_price = routed.latency(msg)
        assert healed_price != pytest.approx(stale_price)
        truth = rig.model.measure_latency(msg)
        assert abs(healed_price - truth) / truth < 0.1
