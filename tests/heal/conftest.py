import pytest

from tests.heal.harness import ToyRig


@pytest.fixture
def rig() -> ToyRig:
    return ToyRig()
