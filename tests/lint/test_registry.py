"""Tests for the rule registry and its vendor-extension contract."""

import pytest

from repro.lint import DEFAULT_REGISTRY, Diagnostic, Rule, RuleRegistry, Severity


def _noop_rule(id="XX001", family="net"):
    return Rule(id=id, family=family, title="noop", fn=lambda ctx: [])


class TestRuleRegistry:
    def test_register_and_lookup(self):
        reg = RuleRegistry()
        rule = reg.register(_noop_rule())
        assert "XX001" in reg
        assert reg["XX001"] is rule
        assert len(reg) == 1

    def test_duplicate_id_rejected(self):
        reg = RuleRegistry()
        reg.register(_noop_rule())
        with pytest.raises(ValueError, match="duplicate rule id"):
            reg.register(_noop_rule())

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="family"):
            RuleRegistry().register(_noop_rule(family="cosmic"))

    def test_decorator_registers_and_returns_fn(self):
        reg = RuleRegistry()

        @reg.rule("XX002", "program", "decorated")
        def my_rule(ctx):
            yield Diagnostic("XX002", Severity.INFO, "hello")

        assert "XX002" in reg
        assert list(my_rule(None))[0].message == "hello"

    def test_family_grouping(self):
        reg = RuleRegistry()
        reg.register(_noop_rule("A1", "net"))
        reg.register(_noop_rule("A2", "cross"))
        assert [r.id for r in reg.family("net")] == ["A1"]
        assert [r.id for r in reg.family("cross")] == ["A2"]

    def test_copy_is_independent(self):
        reg = RuleRegistry()
        reg.register(_noop_rule("A1"))
        clone = reg.copy()
        clone.register(_noop_rule("A2"))
        assert "A2" in clone and "A2" not in reg

    def test_run_family_collects_diagnostics(self):
        reg = RuleRegistry()
        reg.register(
            Rule(
                id="A1",
                family="net",
                title="t",
                fn=lambda ctx: [Diagnostic("A1", Severity.WARNING, str(ctx))],
            )
        )
        out = reg.run_family("net", "ctx-value")
        assert len(out) == 1 and out[0].message == "ctx-value"


class TestDefaultRegistry:
    def test_builtin_rules_present(self):
        # The tentpole promise: a meaningful catalog in every family.
        ids = {r.id for r in DEFAULT_REGISTRY}
        assert len([i for i in ids if i.startswith("PL")]) >= 10
        assert len([i for i in ids if i.startswith("PG")]) >= 5
        assert len([i for i in ids if i.startswith("XR")]) >= 3
        assert len([i for i in ids if i.startswith("VR")]) >= 4

    def test_every_rule_has_title_and_valid_family(self):
        for rule in DEFAULT_REGISTRY:
            assert rule.title
            assert rule.family in ("net", "program", "cross", "verify")
