"""Tests for the net-family lint rules (PL0xx)."""

import pytest

from repro.lint import Severity, lint_pnet_text


def ids(report):
    return report.rule_ids()


def by_rule(report, rule_id):
    return [d for d in report.diagnostics if d.rule_id == rule_id]


# The acceptance fixture: one deliberately broken document tripping an
# empty siphon, an undefined token field, and a negative delay at once.
BROKEN = """\
net broken
place in
place credit capacity 1
place loopback
place out
inject in fields a
transition t1
  consume in credit
  produce loopback out
  delay expr: tok["b"] - 5
transition t2
  consume loopback
  produce credit
  delay -3
"""


class TestBrokenFixture:
    @pytest.fixture(scope="class")
    def report(self):
        return lint_pnet_text(BROKEN, filename="broken.pnet")

    def test_trips_all_three_rules(self, report):
        assert {"PL001", "PL006", "PL007"} <= ids(report)

    def test_exit_code_is_error(self, report):
        assert report.exit_code == 1
        assert len(report.errors) >= 3

    def test_empty_siphon_names_the_cycle(self, report):
        (diag,) = by_rule(report, "PL001")
        assert diag.severity is Severity.ERROR
        assert "credit" in diag.message and "loopback" in diag.message
        assert "in" not in diag.message.split("siphon")[0].split("[")[1]

    def test_undefined_field_points_at_delay_line(self, report):
        (diag,) = by_rule(report, "PL006")
        assert diag.location.file == "broken.pnet"
        assert diag.location.line == 10  # the `delay expr:` line of t1
        assert "tok['b']" in diag.message
        assert "'a'" in diag.message  # tells you what IS available

    def test_negative_delay_points_at_its_line(self, report):
        (diag,) = by_rule(report, "PL007")
        assert diag.location.line == 14
        assert diag.severity is Severity.ERROR

    def test_every_diagnostic_has_a_line(self, report):
        assert all(d.location.line is not None for d in report.diagnostics)


class TestStarvation:
    def test_pl002_unfed_input(self):
        text = """\
net n
place in
place nowhere
place out
inject in
transition t
  consume in nowhere
  produce out
  delay 1
"""
        report = lint_pnet_text(text)
        (diag,) = by_rule(report, "PL002")
        assert "nowhere" in diag.message
        assert diag.severity is Severity.ERROR

    def test_clean_chain_has_no_starvation(self):
        text = """\
net n
place in
place out
inject in
transition t
  consume in
  produce out
  delay 1
"""
        report = lint_pnet_text(text)
        assert not {"PL001", "PL002"} & ids(report)


class TestCapacityAndShape:
    def test_pl003_arc_exceeds_capacity(self):
        text = """\
net n
place in
place out capacity 1
inject in
transition t
  consume in
  produce out:2
  delay 1
"""
        (diag,) = by_rule(lint_pnet_text(text), "PL003")
        assert "capacity" in diag.message

    def test_pl004_disconnected_place(self):
        text = """\
net n
place in
place orphan
place out
inject in
transition t
  consume in
  produce out
  delay 1
"""
        (diag,) = by_rule(lint_pnet_text(text), "PL004")
        assert diag.subject == "orphan"
        assert diag.severity is Severity.WARNING

    def test_pl005_sink_is_info_only(self):
        text = """\
net n
place in
place out
inject in
transition t
  consume in
  produce out
  delay 1
"""
        report = lint_pnet_text(text)
        (diag,) = by_rule(report, "PL005")
        assert diag.severity is Severity.INFO
        assert report.exit_code == 0

    def test_pl009_unbounded_internal_place(self):
        text = """\
net n
place in
place q
place out
inject in
transition a
  consume in
  produce q
  delay 1
transition b
  consume q
  produce out
  delay 1
"""
        (diag,) = by_rule(lint_pnet_text(text), "PL009")
        assert diag.subject == "q"

    def test_pl013_duplicate_arc(self):
        text = """\
net n
place in
place out
inject in
transition t
  consume in in
  produce out
  delay 1
"""
        (diag,) = by_rule(lint_pnet_text(text), "PL013")
        assert "in" in diag.message


class TestExpressions:
    def test_pl008_unclamped_subtraction(self):
        text = """\
net n
place in
place out
inject in fields x
transition t
  consume in
  produce out
  delay expr: tok["x"] - 10
"""
        (diag,) = by_rule(lint_pnet_text(text), "PL008")
        assert "subtract" in diag.message

    def test_pl008_division_by_field(self):
        text = """\
net n
place in
place out
inject in fields x
transition t
  consume in
  produce out
  delay expr: 100 / tok["x"]
"""
        (diag,) = by_rule(lint_pnet_text(text), "PL008")
        assert "divides" in diag.message

    def test_max_clamp_suppresses_pl008(self):
        text = """\
net n
place in
place out
inject in fields x
transition t
  consume in
  produce out
  delay expr: max(0, 10 - tok["x"])
"""
        assert not by_rule(lint_pnet_text(text), "PL008")

    def test_pl007_constant_folded_expression(self):
        text = """\
net n
place in
place out
inject in
transition t
  consume in
  produce out
  delay expr: 5 - 10
"""
        (diag,) = by_rule(lint_pnet_text(text), "PL007")
        assert "-5" in diag.message

    def test_pl011_constant_false_guard_is_error(self):
        text = """\
net n
place in
place out
inject in
transition t
  consume in
  produce out
  delay 1
  guard expr: 1 > 2
"""
        (diag,) = by_rule(lint_pnet_text(text), "PL011")
        assert diag.severity is Severity.ERROR
        assert "never fire" in diag.message

    def test_pl011_constant_true_guard_is_warning(self):
        text = """\
net n
place in
place out
inject in
transition t
  consume in
  produce out
  delay 1
  guard expr: 2 > 1
"""
        (diag,) = by_rule(lint_pnet_text(text), "PL011")
        assert diag.severity is Severity.WARNING

    def test_token_dependent_guard_not_flagged(self):
        text = """\
net n
place in
place out
inject in fields x
transition t
  consume in
  produce out
  delay 1
  guard expr: tok["x"] > 0
"""
        assert not by_rule(lint_pnet_text(text), "PL011")


class TestDataflow:
    def test_opaque_injection_silences_pl006(self):
        # `inject in` without a field list means "payload unknown":
        # reading any field downstream must not be flagged.
        text = """\
net n
place in
place out
inject in
transition t
  consume in
  produce out
  delay expr: tok["whatever"]
"""
        assert not by_rule(lint_pnet_text(text), "PL006")

    def test_fields_propagate_through_stages(self):
        text = """\
net n
place in
place mid
place out
inject in fields x
transition a
  consume in
  produce mid
  delay 1
transition b
  consume mid
  produce out
  delay expr: tok["x"]
"""
        assert not by_rule(lint_pnet_text(text), "PL006")

    def test_extra_injections_parameter(self):
        # Programmatic nets declare injection points via the API.
        text = """\
net n
place in
place out
transition t
  consume in
  produce out
  delay expr: tok["x"]
"""
        report = lint_pnet_text(
            text, extra_injections={"in": frozenset({"y"})}
        )
        (diag,) = by_rule(report, "PL006")
        assert "tok['x']" in diag.message


class TestImplicitInjection:
    def test_pl017_on_legacy_document(self):
        text = """\
net n
place in
place out
transition t
  consume in
  produce out
  delay 1
"""
        report = lint_pnet_text(text)
        (diag,) = by_rule(report, "PL017")
        assert diag.subject == "in"
        # Legacy documents must not error just for predating `inject`.
        assert report.exit_code == 0

    def test_no_pl017_when_declared(self):
        text = """\
net n
place in
place out
inject in
transition t
  consume in
  produce out
  delay 1
"""
        assert not by_rule(lint_pnet_text(text), "PL017")


class TestInvariantRules:
    def test_pl010_externally_fed_cycle(self):
        text = """\
net n
place in
place credit
place out
inject in
inject credit
transition t
  consume in credit
  produce out credit
  delay 1
"""
        report = lint_pnet_text(text)
        assert by_rule(report, "PL010")

    def test_pl012_nonconservative_fork(self):
        text = """\
net n
place in
place a
place b
inject in
transition fork
  consume in
  produce a b
  delay 1
transition da
  consume a
  delay 1
transition db
  consume b
  delay 1
"""
        report = lint_pnet_text(text)
        assert by_rule(report, "PL012")


class TestFaultArcs:
    def _net(self, timeout_clause, extra=""):
        return f"""\
net n
place in
place out
place fault{extra}
inject in fields size
transition t
  consume in
  produce out
  delay expr: tok["size"] * 2
  {timeout_clause}
"""

    def test_pl014_undrained_timeout_place(self):
        report = lint_pnet_text(self._net("timeout 50 fault"))
        (diag,) = by_rule(report, "PL014")
        assert "fault" in diag.message
        assert diag.severity is Severity.WARNING

    def test_pl016_bounded_timeout_place(self):
        report = lint_pnet_text(
            self._net("timeout 50 fault", extra=" capacity 2")
        )
        assert by_rule(report, "PL016")

    def test_pl015_unreachable_fault_arc(self):
        text = """\
net n
place in
place out
place fault
inject in
transition t
  consume in
  produce out
  delay 10
  timeout 50 fault
transition drain
  consume fault
  delay 1
"""
        (diag,) = by_rule(lint_pnet_text(text), "PL015")
        assert "never trigger" in diag.message

    def test_well_formed_fault_arc_is_clean(self):
        text = """\
net n
place in
place out
place fault
inject in fields size
transition t
  consume in
  produce out
  delay expr: tok["size"] * 2
  timeout 50 fault
transition drain
  consume fault
  produce out
  delay 1
"""
        report = lint_pnet_text(text)
        assert not {"PL014", "PL015", "PL016"} & ids(report)


class TestCatalogBreadth:
    def test_many_distinct_rules_fire_across_fixtures(self):
        # The tentpole acceptance: the net linter alone produces a broad,
        # structured catalog — at least 10 distinct rule ids over these
        # small documents, each with a source line.
        fixtures = [
            BROKEN,
            """\
net n
place in
place orphan
place q
place out capacity 1
transition a
  consume in in
  produce q:2
  delay 1
transition b
  consume q
  produce out
  delay expr: 100 / tok["x"]
  guard expr: 1 > 2
""",
            """\
net n
place in
place out
place fault capacity 1
inject in fields size
transition t
  consume in
  produce out
  delay 10
  timeout 50 fault
""",
        ]
        seen = set()
        for text in fixtures:
            report = lint_pnet_text(text, filename="f.pnet")
            for diag in report.diagnostics:
                assert diag.location.line is not None, diag.rule_id
                seen.add(diag.rule_id)
        assert len(seen) >= 10, sorted(seen)
