"""The repo's self-audit: every shipped accelerator bundle lints clean.

This is the executable form of the tentpole's acceptance criterion —
``perflint`` over all five accelerator packages reports zero
error-severity findings — plus discovery-contract checks so a package
that forgets its bundle (or ships a broken one) fails here first.
"""

import pytest

from repro.lint import lint_bundle
from repro.tools.perflint import discover_bundles

EXPECTED_PACKAGES = {"bitcoin", "jpeg", "optimusprime", "protoacc", "vta"}


@pytest.fixture(scope="module")
def bundles():
    return dict(discover_bundles())


class TestDiscovery:
    def test_all_five_accelerators_ship_bundles(self, bundles):
        assert EXPECTED_PACKAGES <= set(bundles)

    def test_filtering_by_package_name(self):
        only = dict(discover_bundles(["jpeg"]))
        assert set(only) == {"jpeg"}


class TestShippedInterfacesLintClean:
    @pytest.mark.parametrize("package", sorted(EXPECTED_PACKAGES))
    def test_no_error_severity_findings(self, bundles, package):
        report = lint_bundle(bundles[package])
        assert report.exit_code == 0, report.render()
        assert not report.errors, report.render()

    def test_expected_informational_findings(self, bundles):
        # The audit is not vacuous: known-structural facts do surface.
        protoacc = lint_bundle(bundles["protoacc"])
        assert "PG007" in protoacc.rule_ids()  # read_cost recursion
        vta = lint_bundle(bundles["vta"])
        assert "PL009" in vta.rule_ids()  # elastic queues, documented

    def test_jpeg_net_declares_its_injection_contract(self, bundles):
        net, _ = bundles["jpeg"].build_net()
        assert net.injections == {"in": frozenset({"i", "bytes", "nnz", "wr"})}


class TestShippedInterfacesVerify:
    """The verifier's acceptance criterion: every shipped bundle's
    contract is provable — bounds concretize on the engine, declared
    monotonicity is certified, and only vta (whose elastic queues defeat
    bound analysis) is allowed its honest "no bound derivable" warning."""

    @pytest.fixture(scope="class")
    def verified(self, bundles):
        from repro.lint import verify_bundle

        return {
            package: verify_bundle(bundles[package])
            for package in sorted(EXPECTED_PACKAGES)
        }

    @pytest.mark.parametrize("package", sorted(EXPECTED_PACKAGES))
    def test_verification_has_no_errors(self, verified, package):
        report, _ = verified[package]
        assert report.exit_code == 0, report.render()

    @pytest.mark.parametrize("package", ["protoacc", "optimusprime", "jpeg"])
    def test_feature_dependent_bundles_prove_monotonicity(
        self, verified, package
    ):
        _, verification = verified[package]
        proven = [c for c in verification.contract.monotone if c.proven]
        assert proven, f"{package} proved nothing"
        assert all(c.direction == "non-decreasing" for c in proven)

    @pytest.mark.parametrize("package", ["protoacc", "optimusprime", "jpeg", "bitcoin"])
    def test_bounded_bundles_pass_corner_concretization(self, verified, package):
        _, verification = verified[package]
        assert verification.corners, f"{package}: no corners checked"
        assert all(c.ok for c in verification.corners)

    def test_vta_is_honestly_opaque(self, verified):
        report, verification = verified["vta"]
        assert verification.contract.evaluability == "opaque"
        assert report.rule_ids() == {"VR001"}

    def test_contracts_validate(self, verified):
        for package, (_, verification) in verified.items():
            assert verification.contract.validate() == [], package
