"""Monotonicity certificates from AST derivative-sign analysis.

The certificates are *proofs*, so the tests lean adversarial: the
interesting cases are the ones where the analysis must refuse to
certify — loops that lose information, workload objects escaping into
calls it cannot model, branches switching regimes.  A wrong "constant"
or "non-decreasing" here would wave a defective interface through the
promotion gate.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, floor

import pytest

from repro.lint.verify import (
    MonotoneCert,
    analyze_program,
    cert_for_deriv,
    sampled_cert,
)
from repro.lint.verify.domain import Interval


@dataclass
class Item:
    size: int = 0
    count: int = 0


# -- functions under analysis ------------------------------------------
def linear(item: Item) -> float:
    return 10.0 + 2.0 * item.size


def two_features(item: Item) -> float:
    return item.size / 4.0 + 3.0 * item.count


def decreasing(item: Item) -> float:
    return 100.0 - item.size


def regime_max(item: Item) -> float:
    return max(5.0 * item.size, 2.0 * item.size + 30.0)


def with_ceil(item: Item) -> float:
    return ceil(item.size / 16)


def with_floor(item: Item) -> float:
    return floor(item.size / 16)


def accumulator_loop(item: Item) -> float:
    cost = 1.0
    for _ in range(3):
        cost += item.size
    return cost


def cancelling_loop(item: Item) -> float:
    # `budget` starts at a feature, then a loop *subtracts* from it:
    # the net direction is not provable, and claiming "constant" (the
    # historical havoc bug) would be unsound.
    cost = 0.0
    budget = item.size
    for _ in range(3):
        budget -= 1.0
        cost += 2.0
    return cost + budget


def _opaque_helper(item: Item) -> float:  # pragma: no cover - never run
    return float(item.size)


def escaping_param(item: Item) -> float:
    # The whole workload object escapes into an unmodeled call: the
    # result may depend on *any* feature, so nothing is certifiable —
    # not even "constant" for features the body never names.
    return 1.0 + _opaque_helper(item)


class TestProofs:
    def test_linear_slope_is_exact(self):
        cert = analyze_program(linear, workload_type=Item).cert("size")
        assert cert.direction == "non-decreasing"
        assert cert.slope == 2.0
        assert cert.proven

    def test_independent_features_get_independent_slopes(self):
        analysis = analyze_program(two_features, workload_type=Item)
        assert analysis.cert("size").slope == 0.25
        assert analysis.cert("count").slope == 3.0

    def test_decreasing_is_proven_non_increasing(self):
        cert = analyze_program(decreasing, workload_type=Item).cert("size")
        assert cert.direction == "non-increasing"
        assert cert.proven

    def test_max_of_increasing_regimes_stays_increasing(self):
        cert = analyze_program(regime_max, workload_type=Item).cert("size")
        assert cert.direction == "non-decreasing"
        assert cert.proven
        assert cert.slope == 5.0  # hull of the two regime slopes

    def test_rounding_preserves_direction_but_widens_slope(self):
        for fn in (with_ceil, with_floor):
            cert = analyze_program(fn, workload_type=Item).cert("size")
            assert cert.direction == "non-decreasing", fn.__name__
            assert cert.slope >= 1.0 / 16.0

    def test_nonneg_accumulator_loop_keeps_direction(self):
        cert = analyze_program(accumulator_loop, workload_type=Item).cert("size")
        assert cert.direction == "non-decreasing"
        assert cert.proven


class TestSoundRefusals:
    """Where the analysis must answer "unknown"."""

    def test_cancelling_loop_is_not_constant(self):
        # Regression: loop havoc once produced an empty quotient map,
        # i.e. a *proof* of feature-independence, for this shape.
        analysis = analyze_program(cancelling_loop, workload_type=Item)
        cert = analysis.cert("size")
        assert cert.direction == "unknown"

    def test_escaped_workload_object_poisons_every_claim(self):
        # Regression: `helper(item)` once analyzed as a constant.
        analysis = analyze_program(escaping_param, workload_type=Item)
        for feature in ("size", "count"):
            assert analysis.cert(feature).direction == "unknown"

    def test_escape_is_noted(self):
        analysis = analyze_program(escaping_param, workload_type=Item)
        assert any("not modeled" in note for note in analysis.notes)


class TestCertForDeriv:
    def test_classification(self):
        assert cert_for_deriv("f", Interval(0.0, 0.0)).direction == "constant"
        assert (
            cert_for_deriv("f", Interval(0.0, 3.0)).direction == "non-decreasing"
        )
        assert (
            cert_for_deriv("f", Interval(-2.0, 0.0)).direction == "non-increasing"
        )
        assert cert_for_deriv("f", Interval(-1.0, 1.0)).direction == "unknown"

    def test_agrees(self):
        up = cert_for_deriv("f", Interval(0.0, 1.0))
        assert up.agrees(+1) is True
        assert up.agrees(-1) is False
        flat = cert_for_deriv("f", Interval(0.0, 0.0))
        assert flat.agrees(+1) is True and flat.agrees(-1) is True


class TestSampledCert:
    def test_concordant_samples_give_sampled_direction(self):
        pairs = [({"size": float(x)}, 10.0 + x) for x in range(5)]
        cert = sampled_cert("size", pairs, +1)
        assert cert.direction == "non-decreasing"
        assert cert.proof == "sampled"
        assert not cert.proven  # evidence, not proof

    def test_discordant_samples_give_witness(self):
        pairs = [
            ({"size": 1.0}, 10.0),
            ({"size": 2.0}, 20.0),
            ({"size": 3.0}, 5.0),  # big drop: the worst pair
        ]
        cert = sampled_cert("size", pairs, +1)
        assert cert.direction == "unknown"
        assert cert.witness is not None
        assert cert.witness.value_a == 20.0 and cert.witness.value_b == 5.0
        rendered = cert.witness.render()
        assert "size=2" in rendered and "size=3" in rendered


class TestCertSerialization:
    @pytest.mark.parametrize(
        "cert",
        [
            MonotoneCert("size", "non-decreasing", slope=2.0, proof="affine"),
            MonotoneCert("size", "unknown", proof="derivative"),
            MonotoneCert(
                "size", "non-decreasing", slope=float("inf"), proof="derivative"
            ),
        ],
    )
    def test_json_roundtrip(self, cert):
        assert MonotoneCert.from_json(cert.to_json()) == cert

    def test_invalid_direction_rejected(self):
        with pytest.raises(ValueError):
            MonotoneCert("size", "sideways")

    def test_invalid_proof_rejected(self):
        with pytest.raises(ValueError):
            MonotoneCert("size", "constant", proof="vibes")
