"""PerfContract: validation, serialization, and bundle analysis."""

from __future__ import annotations

import json
from dataclasses import dataclass
from math import inf

import pytest

from repro.lint import PerfContract, analyze_bundle
from repro.lint.bundle import InterfaceBundle
from repro.lint.verify import (
    MonotoneCert,
    load_contract,
    save_contract,
    sidecar_path,
)

TOY_PNET = """
net toy

place in
place out

inject in fields size

transition serve
  consume in
  produce out
  delay expr: 10 + 2 * tok["size"]
"""


@dataclass
class Item:
    size: int = 0


def toy_latency(item: Item) -> float:
    return 10.0 + 2.0 * item.size


def toy_bundle() -> InterfaceBundle:
    return InterfaceBundle(
        accelerator="toy",
        pnet_text=TOY_PNET,
        entry="in",
        sink="out",
        workload_type=Item,
        program_fns={"latency": toy_latency},
        feature_domains={"size": (0.0, 100.0)},
        declared_monotone={"size": +1},
        samples=[Item(size=s) for s in (0, 10, 50, 100)],
    )


class TestValidate:
    def test_well_formed_contract_has_no_problems(self):
        contract = PerfContract(accelerator="toy", evaluability="closed-form")
        assert contract.validate() == []

    def test_each_malformation_is_named(self):
        contract = PerfContract(
            accelerator="toy",
            evaluability="vibes",
            epsilon=0.0,
            min_latency=50.0,
            max_latency=10.0,
            domains={"size": (5.0, 1.0), "neg": (-1.0, 2.0)},
            monotone=(
                MonotoneCert("size", "non-decreasing"),
                MonotoneCert("size", "non-increasing"),
            ),
        )
        problems = contract.validate()
        joined = "\n".join(problems)
        assert "evaluability" in joined
        assert "epsilon" in joined
        assert "min latency 50 exceeds max 10" in joined
        assert "domain [5, 1] is empty" in joined
        assert "non-negative" in joined
        assert "duplicate certificate for feature 'size'" in joined

    def test_nan_bounds_rejected(self):
        contract = PerfContract(accelerator="toy", max_latency=float("nan"))
        assert any("NaN" in p for p in contract.validate())

    def test_negative_min_latency_rejected(self):
        contract = PerfContract(accelerator="toy", min_latency=-1.0)
        assert any("negative" in p for p in contract.validate())


class TestSerialization:
    def full_contract(self) -> PerfContract:
        return PerfContract(
            accelerator="toy",
            entry="in",
            sink="out",
            domains={"size": (0.0, 100.0), "open": (0.0, inf)},
            min_expr="10 + 2*size",
            max_expr="10 + 2*size",
            min_latency=10.0,
            max_latency=inf,
            monotone=(
                MonotoneCert("size", "non-decreasing", slope=2.0, proof="affine"),
            ),
            evaluability="closed-form",
            epsilon=0.01,
            notes=("hand-written",),
        )

    def test_json_roundtrip_including_infinities(self):
        contract = self.full_contract()
        restored = PerfContract.from_json(contract.to_json())
        assert restored == contract
        assert restored.max_latency == inf
        assert restored.domains["open"] == (0.0, inf)

    def test_json_is_plain_data(self):
        # json.dumps must succeed: inf encodes as the string "inf".
        encoded = json.dumps(self.full_contract().to_json())
        assert '"inf"' in encoded

    def test_save_and_load_sidecar(self, tmp_path):
        contract = self.full_contract()
        path = tmp_path / "toy.contract.json"
        save_contract(contract, str(path))
        assert load_contract(str(path)) == contract

    def test_sidecar_path(self):
        assert sidecar_path("a/b/toy.pnet") == "a/b/toy.contract.json"
        assert sidecar_path("weird.net") == "weird.net.contract.json"

    def test_from_json_defaults(self):
        contract = PerfContract.from_json({"accelerator": "toy"})
        assert contract.entry == "in"
        assert contract.max_latency == inf
        assert contract.evaluability == "opaque"


class TestAnalyzeBundle:
    def test_toy_bundle_yields_closed_form_contract(self):
        v = analyze_bundle(toy_bundle())
        contract = v.contract
        assert contract is not None
        assert contract.validate() == []
        assert contract.evaluability == "closed-form"
        assert contract.min_latency == 10.0
        assert contract.max_latency == 210.0
        assert contract.min_expr == "10 + 2*size"

    def test_toy_bundle_proves_monotonicity(self):
        v = analyze_bundle(toy_bundle())
        cert = v.contract.cert_for("size")
        assert cert is not None
        assert cert.direction == "non-decreasing"
        assert cert.proven
        assert cert.slope == 2.0

    def test_corner_checks_pass_on_engine(self):
        v = analyze_bundle(toy_bundle())
        assert v.corners, "corner concretization did not run"
        assert all(c.ok for c in v.corners)

    def test_epsilon_override_lands_in_contract(self):
        v = analyze_bundle(toy_bundle(), epsilon=0.5)
        assert v.contract.epsilon == 0.5

    def test_unparseable_net_degrades_to_opaque_with_note(self):
        bundle = InterfaceBundle(
            accelerator="toy",
            pnet_text="net broken\nplace\n",
        )
        v = analyze_bundle(bundle)
        assert v.contract.evaluability == "opaque"
        assert v.contract.max_latency == inf
        assert any("does not parse" in n for n in v.contract.notes)


@pytest.mark.parametrize("missing", ["_names", "_weights"])
def test_verify_candidate_ignores_opaque_candidates(missing):
    from repro.lint import verify_candidate

    class Opaque:
        _names = ["x"]
        _weights = [1.0]

    candidate = Opaque()
    delattr(Opaque, missing)
    assert verify_candidate(candidate) == []
