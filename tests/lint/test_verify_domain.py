"""The abstract domain under the verifier: intervals + affine forms.

Soundness is the only property that matters here — every concrete
evaluation must land inside the abstract one.  The tests therefore
check containment, not equality, except where exactness is promised.
"""

from math import inf

import pytest

from repro.lint.verify import NONNEG, TOP, AffineForm, Interval


class TestInterval:
    def test_rejects_empty_and_nan(self):
        with pytest.raises(ValueError):
            Interval(2.0, 1.0)
        with pytest.raises(ValueError):
            Interval(float("nan"), 1.0)

    def test_point_and_of(self):
        assert Interval.point(3.0) == Interval(3.0, 3.0)
        assert Interval.of(4) == Interval(4.0, 4.0)
        assert Interval.of(Interval(1.0, 2.0)) == Interval(1.0, 2.0)

    def test_arithmetic_is_sound(self):
        a, b = Interval(1.0, 2.0), Interval(-3.0, 4.0)
        for xa in (1.0, 1.5, 2.0):
            for xb in (-3.0, 0.0, 4.0):
                assert (a + b).contains(xa + xb)
                assert (a - b).contains(xa - xb)
                assert (a * b).contains(xa * xb)

    def test_division_by_zero_straddling_interval_is_top(self):
        assert Interval(1.0, 2.0) / Interval(-1.0, 1.0) == TOP

    def test_division_by_positive_interval(self):
        q = Interval(2.0, 6.0) / Interval(1.0, 2.0)
        assert q.contains(2.0 / 2.0) and q.contains(6.0 / 1.0)

    def test_zero_times_infinity_is_zero(self):
        # The convention that keeps TOP-coefficient features priced at
        # zero when the feature's domain pins them to zero.
        assert Interval.point(0.0) * TOP == Interval.point(0.0)

    def test_join_is_hull(self):
        assert Interval(1.0, 2.0).join(Interval(5.0, 6.0)) == Interval(1.0, 6.0)

    def test_rounding(self):
        ceiled = Interval(1.2, 2.7).ceil()
        floored = Interval(1.2, 2.7).floor()
        assert ceiled.lo == 1.2 and ceiled.hi == pytest.approx(3.7)
        assert floored.lo == pytest.approx(0.2) and floored.hi == 2.7
        # Both stay sound: ceil(x) <= x+1, floor(x) >= x-1.
        assert ceiled.contains(2.0)
        assert floored.contains(1.0)

    def test_min_max_abs(self):
        a, b = Interval(1.0, 5.0), Interval(3.0, 4.0)
        assert a.min_(b) == Interval(1.0, 4.0)
        assert a.max_(b) == Interval(3.0, 5.0)
        assert Interval(-3.0, 2.0).abs_() == Interval(0.0, 3.0)


class TestAffineForm:
    def test_feature_plus_constant(self):
        form = AffineForm.feature("size") + AffineForm.constant(10.0)
        iv = form.interval({"size": Interval(0.0, 100.0)})
        assert iv == Interval(10.0, 110.0)
        assert form.exact

    def test_scale_by_point_stays_exact(self):
        form = AffineForm.feature("size").scale(2.0)
        assert form.exact
        assert form.interval({"size": Interval(0.0, 3.0)}) == Interval(0.0, 6.0)

    def test_scale_by_interval_is_inexact(self):
        form = AffineForm.feature("size").scale(Interval(1.0, 2.0))
        assert not form.exact

    def test_join_widens_and_drops_exactness(self):
        a = AffineForm.constant(1.0)
        b = AffineForm.constant(5.0)
        j = a.join(b)
        assert not j.exact
        assert j.interval() == Interval(1.0, 5.0)

    def test_unbounded_feature_defaults_to_nonneg_domain(self):
        form = AffineForm.feature("size")
        assert form.interval() == NONNEG

    def test_negative_domain_is_rejected(self):
        form = AffineForm.feature("size")
        with pytest.raises(ValueError):
            form.interval({"size": Interval(-1.0, 1.0)})

    def test_bound_exprs_render(self):
        form = (
            AffineForm.feature("size").scale(2.0)
            + AffineForm.constant(10.0)
        )
        assert form.lower_expr() == "10 + 2*size"
        assert form.upper_expr() == "10 + 2*size"

    def test_corner_evaluation_brackets_concrete_values(self):
        form = AffineForm.feature("n").scale(Interval(1.0, 3.0)) + AffineForm.constant(
            Interval(5.0, 7.0), exact=False
        )
        point = {"n": 10.0}
        assert form.lower_at(point) == 5.0 + 1.0 * 10.0
        assert form.upper_at(point) == 7.0 + 3.0 * 10.0

    def test_widen_const(self):
        form = AffineForm.constant(10.0).widen_const(Interval(-1.0, 0.0))
        assert form.interval() == Interval(9.0, 10.0)
        assert not form.exact

    def test_infinite_upper_bound_propagates(self):
        form = AffineForm.constant(Interval(0.0, inf), exact=False)
        assert form.interval().hi == inf
