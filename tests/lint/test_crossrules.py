"""Tests for the cross-representation lint rules (XR0xx)."""

from dataclasses import dataclass

from repro.core.nl import EnglishInterface, PerformanceStatement, Relation
from repro.core.program import ProgramInterface
from repro.lint import InterfaceBundle, Severity, lint_bundle


@dataclass(frozen=True)
class Item:
    size: int


PNET = """\
net widget
place in
place out
inject in fields size idx
transition t
  consume in
  produce out
  delay expr: 10 + tok["size"]
"""


def _english(relation=Relation.INCREASES_WITH, metric="Latency"):
    return EnglishInterface(
        accelerator="widget",
        statements=(
            PerformanceStatement(
                metric=metric,
                relation=relation,
                quantity="the item's size",
                accessor=lambda item: float(item.size),
            ),
        ),
    )


def _program(slope=2.0):
    return ProgramInterface(
        "widget", latency_fn=lambda item: 10.0 + slope * item.size
    )


def _bundle(**kw):
    defaults = dict(
        accelerator="widget",
        english=_english(),
        program=_program(),
        pnet_text=PNET,
        samples=[Item(s) for s in (1, 2, 4, 8, 16)],
    )
    defaults.update(kw)
    return InterfaceBundle(**defaults)


def by_rule(report, rule_id):
    return [d for d in report.diagnostics if d.rule_id == rule_id]


class TestNameReconciliation:
    def test_consistent_names_are_clean(self):
        assert not by_rule(lint_bundle(_bundle()), "XR001")

    def test_xr001_program_name_mismatch(self):
        bundle = _bundle(
            program=ProgramInterface("gadget", latency_fn=lambda i: 1.0)
        )
        (diag,) = by_rule(lint_bundle(bundle), "XR001")
        assert "gadget" in diag.message

    def test_normalization_tolerates_separators(self):
        bundle = _bundle(
            program=ProgramInterface("wid-get", latency_fn=lambda i: 1.0)
        )
        assert not by_rule(lint_bundle(bundle), "XR001")


class TestInjectedFields:
    def test_xr002_unread_field(self):
        # `idx` is declared but no expression reads it.
        (diag,) = by_rule(lint_bundle(_bundle()), "XR002")
        assert "idx" in diag.message
        assert diag.severity is Severity.INFO

    def test_all_fields_read_is_clean(self):
        text = PNET.replace(
            'delay expr: 10 + tok["size"]',
            'delay expr: 10 + tok["size"] + tok["idx"]',
        )
        assert not by_rule(lint_bundle(_bundle(pnet_text=text)), "XR002")


class TestStatementChecks:
    def test_xr003_accessorless_statement(self):
        english = EnglishInterface(
            accelerator="widget",
            statements=(
                PerformanceStatement(
                    metric="Latency",
                    relation=Relation.INCREASES_WITH,
                    quantity="the phase of the moon",
                ),
            ),
        )
        (diag,) = by_rule(lint_bundle(_bundle(english=english)), "XR003")
        assert diag.severity is Severity.WARNING

    def test_xr004_contradicted_claim_is_error(self):
        bundle = _bundle(english=_english(Relation.DECREASES_WITH))
        (diag,) = by_rule(lint_bundle(bundle), "XR004")
        assert diag.severity is Severity.ERROR
        assert "other" in diag.message

    def test_xr004_agreeing_claim_is_clean(self):
        assert not by_rule(lint_bundle(_bundle()), "XR004")

    def test_xr004_constant_claim_violated(self):
        bundle = _bundle(english=_english(Relation.CONSTANT))
        (diag,) = by_rule(lint_bundle(bundle), "XR004")
        assert diag.severity is Severity.ERROR

    def test_non_latency_metrics_skipped(self):
        bundle = _bundle(
            english=_english(Relation.DECREASES_WITH, metric="Area")
        )
        assert not by_rule(lint_bundle(bundle), "XR004")


class TestDivergence:
    def test_xr005_diverging_representations(self):
        bundle = _bundle(
            petri_latency_fn=lambda item: 1000.0 + item.size
        )
        (diag,) = by_rule(lint_bundle(bundle), "XR005")
        assert diag.severity is Severity.WARNING

    def test_agreeing_representations_clean(self):
        bundle = _bundle(
            petri_latency_fn=lambda item: 10.0 + 2.0 * item.size
        )
        assert not by_rule(lint_bundle(bundle), "XR005")


class TestVendorExtension:
    def test_extra_rules_run_through_the_same_machinery(self):
        from repro.lint import Diagnostic, Rule

        def long_place_names(ctx):
            for name in ctx.net.places if ctx.net else []:
                if len(name) < 3:
                    yield Diagnostic(
                        "VN001",
                        Severity.WARNING,
                        f"place name {name!r} is too terse for our style guide",
                        subject=name,
                    )

        bundle = _bundle(
            extra_rules=[
                Rule(
                    id="VN001",
                    family="cross",
                    title="vendor naming rule",
                    fn=long_place_names,
                )
            ]
        )
        report = lint_bundle(bundle)
        assert by_rule(report, "VN001")
        # The default registry must not have been polluted.
        from repro.lint import DEFAULT_REGISTRY

        assert "VN001" not in DEFAULT_REGISTRY
