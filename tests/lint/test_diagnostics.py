"""Tests for the diagnostic data model (severity, locations, reports)."""

import json

import pytest

from repro.lint import Diagnostic, LintReport, Severity, SourceLocation


class TestSeverity:
    def test_ordering(self):
        assert Severity.ERROR > Severity.WARNING > Severity.INFO

    def test_labels_roundtrip(self):
        for sev in Severity:
            assert Severity.from_label(sev.label) is sev

    def test_from_label_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown severity"):
            Severity.from_label("fatal")


class TestSourceLocation:
    def test_render_full(self):
        assert SourceLocation("a.pnet", 3, 7).render() == "a.pnet:3:7"

    def test_render_line_only(self):
        assert SourceLocation("a.pnet", 3).render() == "a.pnet:3"

    def test_render_no_file(self):
        assert SourceLocation().render() == "<net>"


class TestDiagnostic:
    def _diag(self, **kw):
        defaults = dict(
            rule_id="PL007",
            severity=Severity.ERROR,
            message="delay is negative",
            location=SourceLocation("x.pnet", 12, 3),
            subject="t1",
            hint="clamp it",
        )
        defaults.update(kw)
        return Diagnostic(**defaults)

    def test_render_is_compiler_style(self):
        text = self._diag().render()
        assert text.startswith("x.pnet:12:3: error[PL007] delay is negative")
        assert "(hint: clamp it)" in text

    def test_render_without_hint(self):
        assert "hint" not in self._diag(hint=None).render()

    def test_to_json_is_serializable(self):
        payload = self._diag().to_json()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["rule"] == "PL007"
        assert payload["severity"] == "error"
        assert payload["line"] == 12


class TestLintReport:
    def _report(self):
        report = LintReport()
        report.extend(
            [
                Diagnostic("PL005", Severity.INFO, "sink"),
                Diagnostic(
                    "PL007",
                    Severity.ERROR,
                    "neg",
                    location=SourceLocation("a", 9, 1),
                ),
                Diagnostic(
                    "PL008",
                    Severity.WARNING,
                    "sub",
                    location=SourceLocation("a", 2, 1),
                ),
            ]
        )
        return report

    def test_errors_and_warnings_split(self):
        report = self._report()
        assert [d.rule_id for d in report.errors] == ["PL007"]
        assert [d.rule_id for d in report.warnings] == ["PL008"]

    def test_at_least_filters(self):
        report = self._report()
        assert {d.rule_id for d in report.at_least(Severity.WARNING)} == {
            "PL007",
            "PL008",
        }

    def test_sorted_is_severity_major(self):
        assert [d.rule_id for d in self._report().sorted()] == [
            "PL007",
            "PL008",
            "PL005",
        ]

    def test_render_respects_min_severity(self):
        text = self._report().render(min_severity=Severity.ERROR)
        assert "PL007" in text and "PL005" not in text

    def test_exit_code_gates_on_errors_only(self):
        assert self._report().exit_code == 1
        clean = LintReport()
        clean.extend([Diagnostic("PL005", Severity.INFO, "sink")])
        assert clean.exit_code == 0

    def test_summary_counts(self):
        assert self._report().summary() == "1 error(s), 1 warning(s), 1 info"

    def test_rule_ids(self):
        assert self._report().rule_ids() == {"PL005", "PL007", "PL008"}


class TestSortedTieBreaking:
    def test_same_severity_sorts_in_source_order(self):
        report = LintReport()
        report.extend(
            [
                Diagnostic(
                    "PL009",
                    Severity.WARNING,
                    "later line",
                    location=SourceLocation("a.pnet", 9, 1),
                ),
                Diagnostic(
                    "PL008",
                    Severity.WARNING,
                    "same line, later col",
                    location=SourceLocation("a.pnet", 4, 8),
                ),
                Diagnostic(
                    "PL007",
                    Severity.WARNING,
                    "same line, earlier col",
                    location=SourceLocation("a.pnet", 4, 2),
                ),
                Diagnostic(
                    "PL001",
                    Severity.WARNING,
                    "other file",
                    location=SourceLocation("b.pnet", 1, 1),
                ),
            ]
        )
        assert [d.rule_id for d in report.sorted()] == [
            "PL007",
            "PL008",
            "PL009",
            "PL001",
        ]

    def test_locationless_diagnostics_sort_first_within_severity(self):
        report = LintReport()
        report.extend(
            [
                Diagnostic(
                    "PL005",
                    Severity.INFO,
                    "located",
                    location=SourceLocation("a.pnet", 2, 1),
                ),
                Diagnostic("PL004", Severity.INFO, "no location"),
            ]
        )
        assert [d.rule_id for d in report.sorted()] == ["PL004", "PL005"]


SOURCE_MAPPED_PNET = """\
net roundtrip

place in capacity 4
place out

inject in fields size

transition serve
  consume in
  produce out
  delay expr: 5 + tok["size"]
"""


class TestSourceMapRoundTrip:
    """The parser's source map must point at the real line/col of each
    declaration, so diagnostics render clickable locations."""

    def _parse(self):
        from repro.petri import parse

        return parse(SOURCE_MAPPED_PNET)

    def test_every_span_points_at_the_declared_name(self):
        net = self._parse()
        lines = SOURCE_MAPPED_PNET.splitlines()
        for (kind, name), (line, col) in net.source_map.items():
            assert 1 <= line <= len(lines), (kind, name)
            raw = lines[line - 1]
            if kind in ("place", "inject", "transition"):
                # The span must land exactly on the name.
                assert raw[col - 1 : col - 1 + len(name)] == name, (kind, name)
            else:  # clause spans (delay/guard/...) point into the clause line
                assert kind in raw, (kind, name, raw)

    def test_place_and_transition_lines_are_exact(self):
        net = self._parse()
        lines = SOURCE_MAPPED_PNET.splitlines()
        assert net.source_map[("place", "in")][0] == lines.index("place in capacity 4") + 1
        assert net.source_map[("place", "out")][0] == lines.index("place out") + 1
        assert net.source_map[("transition", "serve")][0] == lines.index("transition serve") + 1

    def test_lint_diagnostics_render_mapped_locations(self):
        from repro.lint import lint_pnet_text

        report = lint_pnet_text(SOURCE_MAPPED_PNET, filename="roundtrip.pnet")
        located = [d for d in report if d.location.line is not None]
        lines = SOURCE_MAPPED_PNET.splitlines()
        assert located, "expected at least one located diagnostic"
        for d in located:
            assert d.location.file == "roundtrip.pnet"
            assert 1 <= d.location.line <= len(lines)
            rendered = d.render()
            assert rendered.startswith(f"roundtrip.pnet:{d.location.line}")
