"""Symbolic latency bounds over compiled Petri nets.

Each net here is small enough to bound by hand; the tests pin the
derived forms against those hand calculations and then close the loop
with corner-point concretization on the compiled engine.
"""

from math import inf

from repro.lint.verify import (
    Interval,
    check_corners,
    corner_points,
    net_latency_bounds,
)
from repro.petri import parse

AFFINE_PNET = """
net affine

place in
place out

inject in fields size

transition serve
  consume in
  produce out
  delay expr: 10 + 2 * tok["size"]
"""

BRANCH_PNET = """
net branch

place in
place out

inject in fields size big

transition fast
  consume in
  produce out
  guard expr: tok["big"] == 0
  delay 5

transition slow
  consume in
  produce out
  guard expr: tok["big"] == 1
  delay expr: 50 + tok["size"]
"""

CYCLE_PNET = """
net cycle

place in
place loopback
place out

inject in

transition forward
  consume in
  produce loopback
  delay 1

transition spin
  consume loopback
  produce loopback
  delay 1

transition finish
  consume loopback
  produce out
  delay 1
"""

PIPELINE_PNET = """
net pipeline

place in
place mid
place out

inject in fields n

transition first
  consume in
  produce mid
  delay expr: 1 + tok["n"]

transition second
  consume mid
  produce out
  delay 4
"""


class TestAffineNet:
    def test_exact_form(self):
        bounds = net_latency_bounds(parse(AFFINE_PNET), entry="in")
        assert bounds.form is not None and bounds.form.exact
        assert bounds.evaluability == "closed-form"
        assert bounds.form.lower_expr() == "10 + 2*size"
        iv = bounds.form.interval({"size": Interval(0.0, 100.0)})
        assert iv == Interval(10.0, 210.0)

    def test_quotients_prove_monotonicity(self):
        bounds = net_latency_bounds(parse(AFFINE_PNET), entry="in")
        q = bounds.quotients["size"]
        assert q.lo == 2.0 and q.hi == 2.0

    def test_corner_concretization_passes(self):
        bounds = net_latency_bounds(parse(AFFINE_PNET), entry="in")
        domains = {"size": (0.0, 100.0)}
        checks = check_corners(lambda: parse(AFFINE_PNET), bounds, domains)
        assert len(checks) == 2
        assert all(c.ok for c in checks)


class TestBranchJoin:
    def test_guarded_branches_join_to_envelope(self):
        bounds = net_latency_bounds(parse(BRANCH_PNET), entry="in")
        assert bounds.form is not None
        assert not bounds.form.exact  # two regimes -> piecewise envelope
        assert bounds.evaluability == "piecewise"
        iv = bounds.form.interval(
            {"size": Interval(0.0, 10.0), "big": Interval(0.0, 1.0)}
        )
        # Envelope must cover both the 5-cycle fast path and the
        # slow path's worst case 50 + 10.
        assert iv.lo <= 5.0 and iv.hi >= 60.0

    def test_guard_features_widen_their_quotients(self):
        bounds = net_latency_bounds(parse(BRANCH_PNET), entry="in")
        # `big` selects between regimes: no slope claim may survive.
        q = bounds.quotients["big"]
        assert q.lo == -inf and q.hi == inf


class TestCycle:
    def test_cycle_makes_upper_bound_infinite(self):
        bounds = net_latency_bounds(parse(CYCLE_PNET), entry="in")
        assert bounds.unbounded
        assert bounds.form is not None
        assert bounds.form.interval().hi == inf
        assert any("cycle" in note for note in bounds.notes)


class TestPipeline:
    def test_delays_accumulate_along_the_path(self):
        bounds = net_latency_bounds(parse(PIPELINE_PNET), entry="in")
        iv = bounds.form.interval({"n": Interval(0.0, 3.0)})
        assert iv == Interval(5.0, 8.0)

    def test_corner_checks_on_compiled_engine(self):
        bounds = net_latency_bounds(parse(PIPELINE_PNET), entry="in")
        checks = check_corners(
            lambda: parse(PIPELINE_PNET),
            bounds,
            {"n": (0.0, 3.0)},
            engine="compiled",
        )
        assert [c.ok for c in checks] == [True, True]
        simulated = sorted(c.simulated for c in checks)
        assert simulated == [5.0, 8.0]


class TestCornerPoints:
    def test_product_of_extremes(self):
        points = list(
            corner_points({"a": (0.0, 1.0), "b": (2.0, 3.0)})
        )
        assert len(points) == 4
        assert {"a": 0.0, "b": 2.0} in points
        assert {"a": 1.0, "b": 3.0} in points

    def test_point_domain_yields_single_value(self):
        points = list(corner_points({"a": (5.0, 5.0)}))
        assert points == [{"a": 5.0}]

    def test_empty_domains_yield_empty_point(self):
        assert list(corner_points({})) == [{}]

    def test_limit_caps_explosion(self):
        domains = {f"f{i}": (0.0, 1.0) for i in range(10)}  # 1024 corners
        points = list(corner_points(domains, limit=64))
        assert len(points) <= 64
