"""Tests for the program-family lint rules (PG0xx)."""

from dataclasses import dataclass

from repro.lint import Severity, lint_program_fn


@dataclass(frozen=True)
class Workload:
    size: int
    depth: int

    @property
    def blocks(self) -> int:
        return self.size // 64


def ids(report):
    return report.rule_ids()


def by_rule(report, rule_id):
    return [d for d in report.diagnostics if d.rule_id == rule_id]


class TestPurity:
    def test_pg001_print(self):
        def latency(w):
            print("debug", w.size)
            return 1.0 * w.size

        (diag,) = by_rule(lint_program_fn(latency), "PG001")
        assert diag.severity is Severity.ERROR
        assert "print" in diag.message
        assert diag.location.line is not None

    def test_pg001_module_io(self):
        def latency(w):
            import os

            return float(os.environ.get("X", 1)) * w.size

        assert by_rule(lint_program_fn(latency), "PG001")

    def test_pg002_random(self):
        def latency(w):
            import random

            return w.size * random.random()

        (diag,) = by_rule(lint_program_fn(latency), "PG002")
        assert "random" in diag.message

    def test_pg002_time(self):
        def latency(w):
            import time

            return w.size + time.time()

        assert by_rule(lint_program_fn(latency), "PG002")

    def test_pg003_global_mutation(self):
        def latency(w):
            global _CACHE  # noqa: PLW0603
            _CACHE = w.size
            return float(w.size)

        (diag,) = by_rule(lint_program_fn(latency), "PG003")
        assert "_CACHE" in diag.message

    def test_clean_function_has_no_findings(self):
        def latency(w):
            return 10.0 + 2.5 * w.size

        report = lint_program_fn(latency, workload_type=Workload)
        assert report.exit_code == 0
        assert not report.diagnostics


class TestTermination:
    def test_pg004_while_true_without_break(self):
        def latency(w):
            total = 0.0
            while True:
                total += w.size
            return total

        (diag,) = by_rule(lint_program_fn(latency), "PG004")
        assert diag.severity is Severity.ERROR

    def test_pg004_condition_never_updated(self):
        def latency(w):
            remaining = w.size
            total = 0.0
            while remaining > 0:
                total += 1.0
            return total

        (diag,) = by_rule(lint_program_fn(latency), "PG004")
        assert diag.severity is Severity.WARNING
        assert "remaining" in diag.message

    def test_decrementing_loop_is_clean(self):
        def latency(w):
            remaining = w.size
            total = 0.0
            while remaining > 0:
                total += 2.0
                remaining -= 64
            return total

        assert not by_rule(lint_program_fn(latency), "PG004")

    def test_loop_with_break_is_clean(self):
        def latency(w):
            total = 0.0
            while True:
                total += w.size
                if total > 100:
                    break
            return total

        assert not by_rule(lint_program_fn(latency), "PG004")


class TestWorkloadFeatures:
    def test_pg005_unknown_feature(self):
        def latency(w):
            return 1.0 * w.n_blocks  # Workload calls it `blocks`

        (diag,) = by_rule(
            lint_program_fn(latency, workload_type=Workload), "PG005"
        )
        assert "n_blocks" in diag.message
        assert "blocks" in diag.message  # the hint lists real features

    def test_properties_count_as_features(self):
        def latency(w):
            return 1.0 * w.blocks + w.depth

        assert not by_rule(
            lint_program_fn(latency, workload_type=Workload), "PG005"
        )

    def test_no_workload_type_skips_check(self):
        def latency(w):
            return 1.0 * w.anything_at_all

        assert not by_rule(lint_program_fn(latency), "PG005")


class TestShape:
    def test_pg006_no_return(self):
        def latency(w):
            _ = 2.0 * w.size

        (diag,) = by_rule(lint_program_fn(latency), "PG006")
        assert diag.severity is Severity.ERROR

    def test_pg007_recursion_is_info(self):
        def cost(msg):
            total = 1.0
            for sub in msg.children:
                total += cost(sub)
            return total

        (diag,) = by_rule(lint_program_fn(cost), "PG007")
        assert diag.severity is Severity.INFO

    def test_unsourceable_function_is_skipped(self):
        report = lint_program_fn(len)
        assert not report.diagnostics
