"""Persisted serving tapes: gzipped JSONL round-trip and cross-process replay."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.accel.cpu import offload_overhead
from repro.accel.protoacc import PROGRAM, ProtoaccSerializerModel
from repro.runtime import (
    FaultPlan,
    FaultSpec,
    ResilientDevice,
    ResilientReplayDevice,
    RetryPolicy,
    Watchdog,
    rpc_cpu_fallback,
)
from repro.runtime.tape import (
    JSON_CODEC,
    load_tape,
    protoacc_message_codec,
    replay_saved_tape,
    save_tape,
)
from repro.workloads import ENTERPRISE_MIX

from .test_device import FALLBACK, StubInterface, StubModel


def record_faulted_tape(n=20):
    device = ResilientDevice(
        model=ProtoaccSerializerModel(),
        interface=PROGRAM,
        fallback=rpc_cpu_fallback(),
        fault_plan=FaultPlan(11, FaultSpec(hang_rate=0.2, corrupt_rate=0.1)),
        watchdog=Watchdog(3_000.0),
        retry=RetryPolicy(max_attempts=2, seed=11),
        invocation_overhead=offload_overhead,
    )
    for msg in ENTERPRISE_MIX.sample(seed=5, count=n):
        device.call(msg)
    return device


class TestRoundTrip:
    def test_protoacc_tape_round_trips_to_equal_records(self, tmp_path):
        device = record_faulted_tape()
        path = save_tape(
            device.records, tmp_path / "incident.jsonl.gz", codec=protoacc_message_codec()
        )
        loaded = load_tape(path)
        assert loaded == device.records
        assert sum(len(r.faults) for r in loaded) == device.fault_count()

    def test_json_codec_round_trips_stub_payloads(self, tmp_path):
        device = ResilientDevice(
            model=StubModel(),
            interface=StubInterface(),
            fallback=FALLBACK,
            retry=RetryPolicy(max_attempts=1),
        )
        for r in [3, 1, 4]:
            device.call(r)
        path = save_tape(device.records, tmp_path / "t.jsonl.gz", codec=JSON_CODEC)
        assert load_tape(path) == device.records

    def test_loaded_tape_replays_divergence_free_to_same_cycles(self, tmp_path):
        device = record_faulted_tape()
        path = save_tape(
            device.records, tmp_path / "t.jsonl.gz", codec=protoacc_message_codec()
        )
        loaded = load_tape(path)
        original = ResilientReplayDevice(device.records, PROGRAM)
        restored = ResilientReplayDevice(loaded, PROGRAM)
        for r in device.records:
            original.call(r.request)
            restored.call(r.request)  # raises ReplayDivergence on any mismatch
        assert restored.clock == original.clock

    def test_codec_mismatch_is_refused(self, tmp_path):
        device = record_faulted_tape(n=5)
        path = save_tape(
            device.records, tmp_path / "t.jsonl.gz", codec=protoacc_message_codec()
        )
        with pytest.raises(ValueError, match="codec"):
            load_tape(path, codec=JSON_CODEC)

    def test_non_tape_file_is_refused(self, tmp_path):
        import gzip

        path = tmp_path / "not_a_tape.jsonl.gz"
        with gzip.open(path, "wt") as fh:
            fh.write(json.dumps({"format": "something-else"}) + "\n")
        with pytest.raises(ValueError, match="not a serving tape"):
            load_tape(path)


class TestFreshProcessReplay:
    def test_subprocess_replay_matches_in_process_estimate(self, tmp_path):
        device = record_faulted_tape()
        path = save_tape(
            device.records, tmp_path / "t.jsonl.gz", codec=protoacc_message_codec()
        )
        here = replay_saved_tape(path)

        src = Path(__file__).resolve().parents[2] / "src"
        out = subprocess.run(
            [sys.executable, "-m", "repro.runtime.tape", "replay", str(path)],
            capture_output=True,
            text=True,
            check=True,
            env={"PYTHONPATH": str(src)},
        )
        fresh = json.loads(out.stdout)
        assert fresh["calls"] == here["calls"] == len(device.records)
        assert fresh["faulted_cycles"] == pytest.approx(here["faulted_cycles"])
        assert fresh["clean_cycles"] == pytest.approx(here["clean_cycles"])
        # The faulted replay charges the recorded serving cycles exactly.
        assert here["faulted_cycles"] == pytest.approx(sum(device.latencies()))
