"""The observability bundle threaded through the serving stack.

These tests drive the standard ``rpc_pool`` fleet under full
observation and assert the two contracts that make the tracing
trustworthy: every layer emits into one timeline, and observing a run
does not change it.
"""

import math

import pytest

from repro.obs import Obs
from repro.runtime.pool import rpc_pool
from repro.runtime.serving import OpenLoopServer
from repro.workloads import ENTERPRISE_MIX


def traced_run(*, policy="round_robin", faults="storm", count=80, obs=None):
    obs = obs if obs is not None else Obs.enabled()
    pool = rpc_pool(policy, faults=faults, obs=obs)
    server = OpenLoopServer(pool, deadline=60_000.0)
    msgs, arrivals = ENTERPRISE_MIX.sample_open(seed=13, count=count, mean_gap=400.0)
    return obs, pool, server.run(msgs, arrivals)


class TestThreeLayerTimeline:
    def test_all_layers_emit(self):
        obs, _, _ = traced_run()
        cats = obs.tracer.categories()
        assert any(c.startswith("petri.") for c in cats), cats
        assert any(c.startswith("hw.") for c in cats), cats
        assert any(c.startswith("runtime.") for c in cats), cats

    def test_model_spans_align_with_offload_windows(self):
        # DRAM bursts emitted by the ground-truth model must land inside
        # the serving-clock window of some offload attempt on that device.
        obs, _, _ = traced_run()
        attempts = [
            s for s in obs.tracer.spans("runtime.attempt") if s[4] == "protoacc"
        ]
        drams = [s for s in obs.tracer.spans("hw.dram") if "protoacc" in s[4]]
        assert attempts and drams
        for _, start, end, _, _ in drams:
            assert any(a[1] <= start and end <= a[2] + 1e-6 for a in attempts), (
                start,
                end,
            )

    def test_breaker_trip_appears_in_trace_and_metrics(self):
        obs, pool, _ = traced_run(count=200)
        assert pool.device("protoacc").device.breaker.transitions
        snap = obs.metrics.snapshot()
        trips = [k for k in snap if k.startswith("breaker_transitions_total")]
        assert trips


class TestObservationIsInert:
    def test_traced_and_untraced_runs_are_identical(self):
        plain_pool = rpc_pool("round_robin", faults="storm")
        obs = Obs.enabled()
        traced_pool = rpc_pool("round_robin", faults="storm", obs=obs)
        msgs, arrivals = ENTERPRISE_MIX.sample_open(seed=13, count=120, mean_gap=300.0)
        plain = OpenLoopServer(plain_pool, deadline=60_000.0).run(msgs, arrivals)
        traced = OpenLoopServer(traced_pool, deadline=60_000.0).run(msgs, arrivals)
        assert len(obs.tracer) > 0
        assert [r.completed for r in plain.served] == [
            r.completed for r in traced.served
        ]
        assert [r.path for r in plain.served] == [r.path for r in traced.served]
        assert len(plain.dropped) == len(traced.dropped)
        assert len(plain.shed) == len(traced.shed)

    def test_disabled_bundle_emits_nothing(self):
        obs = Obs()
        _, pool, res = traced_run(obs=obs)
        assert res.served
        assert obs.tracer is None and obs.metrics is None


class TestPoolBreakdownAccounting:
    def test_dispatch_decomposition_is_exact(self):
        obs, pool, _ = traced_run(count=150)
        assert pool.results
        for r in pool.results:
            total = r.queue_cycles + r.service_cycles + r.retry_cycles
            assert math.isclose(
                total, r.completed - r.arrival, rel_tol=1e-9, abs_tol=1e-6
            )

    def test_service_cycles_ride_the_tape(self, tmp_path):
        from repro.runtime.tape import load_tape, protoacc_message_codec, save_tape

        _, pool, _ = traced_run(count=60)
        records = pool.device("cpu").device.records
        assert any(r.service_cycles > 0 for r in records)
        path = save_tape(records, tmp_path / "t.jsonl.gz", codec=protoacc_message_codec())
        loaded = load_tape(path)
        assert [r.service_cycles for r in loaded] == [
            r.service_cycles for r in records
        ]

    def test_snapshot_reports_cache_and_devices(self):
        obs, pool, _ = traced_run()
        snap = pool.snapshot()
        assert set(snap["devices"]) == {"protoacc", "optimus-prime", "cpu"}
        assert snap["eval_cache"]["hits"] + snap["eval_cache"]["misses"] > 0
        assert snap["invariant_violations"] == 0


class TestDriftObservatoryIntegration:
    def test_successful_calls_feed_the_observatory(self):
        obs, _, res = traced_run(count=150)
        keys = obs.observatory.keys()
        assert keys
        total = sum(obs.observatory.samples(d, c) for d, c in keys)
        accel_or_cpu = sum(1 for r in res.served if r.ok)
        assert total == pytest.approx(accel_or_cpu + res.hedge_count(), abs=5)
        # protoacc's petri interface genuinely drifts from the DRAM model.
        report = obs.observatory.report()
        assert "protoacc" in report or "optimus" in report
