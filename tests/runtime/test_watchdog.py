"""Watchdog deadline semantics on the virtual clock."""

import pytest

from repro.runtime import Watchdog, WatchdogTimeout


class TestWatchdog:
    def test_admits_within_budget(self):
        assert Watchdog(1000.0).admit(999.0) == 999.0
        assert Watchdog(1000.0).admit(1000.0) == 1000.0

    def test_timeout_carries_budget_and_observed(self):
        with pytest.raises(WatchdogTimeout) as exc:
            Watchdog(1000.0).admit(2500.0)
        assert exc.value.budget == 1000.0
        assert exc.value.observed == 2500.0

    def test_hang_is_inf_observed(self):
        with pytest.raises(WatchdogTimeout) as exc:
            Watchdog(1000.0).admit(float("inf"))
        assert exc.value.observed == float("inf")

    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            Watchdog(0.0)
        with pytest.raises(ValueError):
            Watchdog(-5.0)
