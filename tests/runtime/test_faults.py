"""Determinism and hardware hooks of the fault-injection plan."""

import pytest

from repro.hw import Dram, DramConfig, LinePipeline, StageSpec
from repro.runtime import (
    FaultEvent,
    FaultKind,
    FaultPlan,
    FaultSpec,
    ScriptedFaultPlan,
    pipeline_stalls,
)

BUSY_SPEC = FaultSpec(
    spike_rate=0.1,
    storm_rate=0.1,
    hang_rate=0.1,
    drop_rate=0.1,
    corrupt_rate=0.1,
)


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        a = FaultPlan(42, BUSY_SPEC)
        b = FaultPlan(42, BUSY_SPEC)
        assert a.schedule(500) == b.schedule(500)

    def test_digest_is_byte_identical_across_plans(self):
        assert FaultPlan(7, BUSY_SPEC).digest(300) == FaultPlan(7, BUSY_SPEC).digest(300)

    def test_different_seed_differs(self):
        assert FaultPlan(1, BUSY_SPEC).digest(300) != FaultPlan(2, BUSY_SPEC).digest(300)

    def test_random_access_matches_sequential(self):
        plan = FaultPlan(9, BUSY_SPEC)
        sched = plan.schedule(100)
        # Querying out of order must not perturb anything.
        assert plan.at(57) == sched[57]
        assert plan.at(3) == sched[3]
        assert plan.schedule(100) == sched


class TestSpec:
    def test_zero_rates_mean_no_faults(self):
        plan = FaultPlan(0, FaultSpec())
        assert all(e is None for e in plan.schedule(200))

    def test_rates_validated(self):
        with pytest.raises(ValueError, match="sum"):
            FaultSpec(spike_rate=0.6, hang_rate=0.6)
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            FaultSpec(drop_rate=-0.1)
        with pytest.raises(ValueError, match="spike_scale"):
            FaultSpec(spike_rate=0.1, spike_scale=1.0)

    def test_all_kinds_reachable_and_magnitudes_sane(self):
        plan = FaultPlan(5, BUSY_SPEC)
        events = [e for e in plan.schedule(2000) if e is not None]
        kinds = {e.kind for e in events}
        assert kinds == set(FaultKind)
        for e in events:
            if e.kind is FaultKind.LATENCY_SPIKE:
                assert e.magnitude > 1.0
            elif e.kind is FaultKind.REFRESH_STORM:
                assert e.magnitude == BUSY_SPEC.storm_cycles
            elif e.kind is FaultKind.HANG:
                assert e.magnitude == float("inf")

    def test_fault_rate_approximated(self):
        plan = FaultPlan(11, BUSY_SPEC)
        hits = sum(e is not None for e in plan.schedule(4000))
        assert 0.4 < hits / 4000 < 0.6  # spec says 50%


class TestScriptedPlan:
    def test_explicit_events(self):
        ev = FaultEvent(2, FaultKind.HANG, float("inf"))
        plan = ScriptedFaultPlan({2: ev})
        assert plan.at(0) is None
        assert plan.at(2) is ev
        assert plan.schedule(4) == (None, None, ev, None)


class TestDramStormHook:
    def test_stall_window_defers_access(self):
        clean = Dram(DramConfig())
        stormy = Dram(DramConfig())
        stormy.add_stall_window(0.0, 5_000.0)
        assert stormy.access(0, 0.0) == pytest.approx(clean.access(0, 0.0) + 5_000.0)

    def test_access_after_window_unaffected(self):
        clean = Dram(DramConfig())
        stormy = Dram(DramConfig())
        stormy.add_stall_window(0.0, 100.0)
        assert stormy.access(0, 200.0) == clean.access(0, 200.0)

    def test_stream_start_deferred(self):
        clean = Dram(DramConfig())
        stormy = Dram(DramConfig())
        stormy.add_stall_window(0.0, 1_000.0)
        assert stormy.stream(0, 0.0, 4096) == pytest.approx(
            clean.stream(0, 1_000.0, 4096), abs=1e-9
        )

    def test_window_validation(self):
        dram = Dram(DramConfig())
        with pytest.raises(ValueError):
            dram.add_stall_window(-1.0, 10.0)
        with pytest.raises(ValueError):
            dram.add_stall_window(0.0, 0.0)

    def test_clear_windows(self):
        dram = Dram(DramConfig())
        dram.add_stall_window(0.0, 100.0)
        dram.clear_stall_windows()
        assert dram.stall_windows == ()
        assert dram.access(0, 0.0) == Dram(DramConfig()).access(0, 0.0)


class TestPipelineStallHook:
    def test_hang_projected_as_stage_stall(self):
        plan = ScriptedFaultPlan({1: FaultEvent(1, FaultKind.HANG, float("inf"))})
        stalls = pipeline_stalls(plan, 3, stage=0, hang_cycles=500.0)
        assert stalls == {(1, 0): 500.0}

    def test_stalls_delay_schedule(self):
        pipe = LinePipeline([StageSpec("s", lambda _: 10.0)])
        base = pipe.schedule([None] * 3).makespan()
        stalled = pipe.schedule([None] * 3, stalls={(1, 0): 500.0}).makespan()
        assert stalled == base + 500.0
