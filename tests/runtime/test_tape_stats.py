"""Tape introspection: per-size-class stats, headers, and the CLI."""

import json
import subprocess
import sys

import numpy as np
import pytest

from repro.accel.protoacc import PROGRAM, ProtoaccSerializerModel
from repro.obs import SizeClasses
from repro.runtime import ResilientDevice, RetryPolicy, rpc_cpu_fallback
from repro.runtime.tape import (
    load_tape,
    protoacc_message_codec,
    save_tape,
    tape_header,
    tape_stats,
)
from repro.workloads.rpc import sized_message

#: One size per stock class: small (<=96), medium (<=1024), large.
SIZES = (64, 512, 2048)


def record_tape(n=12):
    device = ResilientDevice(
        model=ProtoaccSerializerModel(),
        interface=PROGRAM,
        fallback=rpc_cpu_fallback(),
        retry=RetryPolicy(max_attempts=1),
    )
    rng = np.random.default_rng(3)
    for i in range(n):
        device.call(sized_message(SIZES[i % len(SIZES)], rng))
    return device


class TestTapeStats:
    def test_counts_paths_and_summaries_per_class(self):
        device = record_tape(12)
        report = tape_stats(device.records)
        assert report["records"] == 12
        assert report["tail"] is None
        assert set(report["classes"]) == {"small", "medium", "large"}
        for entry in report["classes"].values():
            assert entry["count"] == 4
            assert entry["paths"] == {"accel": 4}
            assert entry["faults"] == 0
            for key in ("service_cycles", "cycles"):
                s = entry[key]
                assert s["mean"] <= s["max"]
                assert s["p50"] <= s["p95"] <= s["max"]
        # Bigger messages cost more cycles on the wire.
        assert (
            report["classes"]["small"]["cycles"]["mean"]
            < report["classes"]["large"]["cycles"]["mean"]
        )

    def test_tail_keeps_only_the_window_view(self):
        device = record_tape(12)
        report = tape_stats(device.records, tail=2)
        assert report["records"] == 2
        assert report["tail"] == 2
        # The last two records are sizes 512 and 2048 — no "small" left.
        assert set(report["classes"]) == {"medium", "large"}
        # A tail longer than the tape is just the whole tape.
        assert tape_stats(device.records, tail=999)["records"] == 12

    @pytest.mark.parametrize("tail", [0, -1])
    def test_non_positive_tail_rejected(self, tail):
        with pytest.raises(ValueError, match="tail"):
            tape_stats([], tail=tail)

    def test_custom_classes_relabel_the_same_tape(self):
        device = record_tape(12)
        coarse = SizeClasses(boundaries=(("tiny", 100),), overflow="huge")
        report = tape_stats(device.records, classes=coarse)
        assert set(report["classes"]) == {"tiny", "huge"}
        assert report["classes"]["tiny"]["count"] == 4
        assert report["classes"]["huge"]["count"] == 8

    def test_empty_tape(self):
        report = tape_stats([])
        assert report == {"records": 0, "tail": None, "classes": {}}


class TestDeviceHeader:
    def test_device_name_round_trips_in_header(self, tmp_path):
        device = record_tape(3)
        path = save_tape(
            device.records,
            tmp_path / "t.jsonl.gz",
            codec=protoacc_message_codec(),
            device="protoacc-0",
        )
        header = tape_header(path)
        assert header["device"] == "protoacc-0"
        assert header["codec"] == "protoacc-message"
        assert header["records"] == 3
        # The device name is header metadata only: records still load.
        assert load_tape(path) == device.records

    def test_header_omits_device_when_unset(self, tmp_path):
        device = record_tape(3)
        path = save_tape(
            device.records, tmp_path / "t.jsonl.gz", codec=protoacc_message_codec()
        )
        assert "device" not in tape_header(path)

    def test_header_rejects_non_tape(self, tmp_path):
        import gzip

        path = tmp_path / "bogus.jsonl.gz"
        with gzip.open(path, "wt", encoding="utf-8") as fh:
            fh.write(json.dumps({"format": "something-else"}) + "\n")
        with pytest.raises(ValueError, match="not a serving tape"):
            tape_header(path)


class TestStatsCli:
    def test_stats_subcommand_prints_labeled_json(self, tmp_path):
        device = record_tape(6)
        path = save_tape(
            device.records,
            tmp_path / "t.jsonl.gz",
            codec=protoacc_message_codec(),
            device="toy",
        )
        out = subprocess.run(
            [sys.executable, "-m", "repro.runtime.tape", "stats", str(path), "--tail", "4"],
            capture_output=True,
            text=True,
            check=True,
        )
        report = json.loads(out.stdout)
        assert report["device"] == "toy"
        assert report["codec"] == "protoacc-message"
        assert report["records"] == 4
        assert report["tail"] == 4
        assert report["classes"]
