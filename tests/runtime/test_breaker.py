"""Circuit-breaker state machine on the virtual clock."""

import pytest

from repro.runtime import BreakerConfig, BreakerState, CircuitBreaker


def make(threshold=3, recovery=1000.0, probes=2):
    return CircuitBreaker(
        BreakerConfig(
            failure_threshold=threshold,
            recovery_cycles=recovery,
            probe_successes=probes,
        )
    )


class TestClosed:
    def test_starts_closed_and_admits(self):
        breaker = make()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow(0.0)

    def test_trips_after_threshold_consecutive_failures(self):
        breaker = make(threshold=3)
        breaker.record_failure(10.0)
        breaker.record_failure(20.0)
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure(30.0)
        assert breaker.state is BreakerState.OPEN
        assert breaker.opened_at == 30.0

    def test_success_resets_the_failure_streak(self):
        breaker = make(threshold=2)
        breaker.record_failure(1.0)
        breaker.record_success(2.0)
        breaker.record_failure(3.0)
        assert breaker.state is BreakerState.CLOSED

    def test_explicit_trip_records_reason(self):
        breaker = make()
        breaker.trip(5.0, "interface drift: avg symmetric error 120%")
        assert breaker.state is BreakerState.OPEN
        assert "drift" in breaker.transitions[-1].reason

    def test_trip_is_idempotent_while_open(self):
        breaker = make()
        breaker.trip(5.0, "first")
        breaker.trip(9.0, "second")
        assert len(breaker.transitions) == 1
        assert breaker.opened_at == 5.0


class TestOpen:
    def test_blocks_until_recovery_window(self):
        breaker = make(recovery=1000.0)
        breaker.trip(0.0, "test")
        assert not breaker.allow(999.0)
        assert breaker.state is BreakerState.OPEN

    def test_first_call_after_window_probes_half_open(self):
        breaker = make(recovery=1000.0)
        breaker.trip(0.0, "test")
        assert breaker.allow(1000.0)
        assert breaker.state is BreakerState.HALF_OPEN


class TestHalfOpen:
    def test_closes_after_enough_probe_successes(self):
        breaker = make(recovery=100.0, probes=2)
        breaker.trip(0.0, "test")
        breaker.allow(100.0)
        breaker.record_success(110.0)
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.allow(115.0)
        breaker.record_success(120.0)
        assert breaker.state is BreakerState.CLOSED

    def test_any_probe_failure_reopens(self):
        breaker = make(recovery=100.0, probes=2)
        breaker.trip(0.0, "test")
        breaker.allow(100.0)
        breaker.record_failure(110.0, reason="watchdog timeout")
        assert breaker.state is BreakerState.OPEN
        assert breaker.opened_at == 110.0
        assert "probe failed" in breaker.transitions[-1].reason

    def test_full_timeline_is_recorded(self):
        breaker = make(threshold=1, recovery=100.0, probes=1)
        breaker.record_failure(10.0, reason="hang")
        breaker.allow(200.0)
        breaker.record_success(210.0)
        states = [t.state for t in breaker.transitions]
        assert states == [
            BreakerState.OPEN,
            BreakerState.HALF_OPEN,
            BreakerState.CLOSED,
        ]


class TestProbeAccounting:
    """Regressions for the half-open double-close bug: concurrent pool
    workers sharing one breaker must not flood a probing device, and
    successes from calls admitted *before* the trip must not close it."""

    def test_half_open_admits_at_most_probe_limit_concurrently(self):
        breaker = make(recovery=100.0, probes=2)
        breaker.trip(0.0, "test")
        assert breaker.allow(100.0)  # OPEN -> HALF_OPEN, probe #1
        assert breaker.allow(100.0)  # probe #2
        assert not breaker.allow(100.0)  # third worker is rejected
        assert breaker.probe_inflight == 2

    def test_probe_slot_frees_when_outcome_is_recorded(self):
        breaker = make(recovery=100.0, probes=1)
        breaker.trip(0.0, "test")
        assert breaker.allow(100.0)
        assert not breaker.allow(100.0)
        breaker.record_success(110.0)
        assert breaker.state is BreakerState.CLOSED

    def test_stale_successes_cannot_close_the_breaker(self):
        # Two calls admitted while CLOSED are still in flight when a
        # third worker's failures trip the breaker and the recovery
        # window elapses.  Their successes land during HALF_OPEN but
        # correspond to no admitted probe: the breaker must stay
        # HALF_OPEN until a real probe reports back.
        breaker = make(threshold=1, recovery=100.0, probes=2)
        breaker.record_failure(50.0, reason="hang")
        assert breaker.state is BreakerState.OPEN
        assert breaker.allow(200.0)  # the one real probe, in flight
        # One slot is reserved: the first success drains it (streak 1);
        # the second has no admitted probe behind it and is ignored.
        breaker.record_success(201.0)
        breaker.record_success(202.0)
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.probe_streak == 1

    def test_no_duplicate_closed_transitions(self):
        breaker = make(recovery=100.0, probes=1)
        breaker.trip(0.0, "test")
        breaker.allow(100.0)
        breaker.record_success(110.0)
        breaker.record_success(111.0)  # post-close success: no-op
        closed = [t for t in breaker.transitions if t.state is BreakerState.CLOSED]
        assert len(closed) == 1

    def test_would_allow_is_non_mutating(self):
        breaker = make(recovery=100.0, probes=1)
        breaker.trip(0.0, "test")
        assert not breaker.would_allow(99.0)
        assert breaker.would_allow(100.0)
        assert breaker.state is BreakerState.OPEN  # no OPEN -> HALF_OPEN
        assert breaker.probe_inflight == 0
        assert breaker.allow(100.0)
        assert breaker.state is BreakerState.HALF_OPEN
        assert not breaker.would_allow(100.0)  # slot taken, still honest
        assert breaker.probe_inflight == 1


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            BreakerConfig(failure_threshold=0)
        with pytest.raises(ValueError):
            BreakerConfig(recovery_cycles=0.0)
        with pytest.raises(ValueError):
            BreakerConfig(probe_successes=0)
