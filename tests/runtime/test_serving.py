"""Open-loop serving: admission, shedding, and overload behavior."""

import math

import pytest

from repro.runtime.pool import rpc_pool
from repro.runtime.serving import (
    DEFAULT_PRIORITY,
    REJECTION_REASONS,
    OpenLoopServer,
    ServeResult,
)
from repro.workloads import ENTERPRISE_MIX


def run_at(mean_gap, *, faults="none", policy="interface_predicted", count=300, **kw):
    pool = rpc_pool(policy, faults=faults)
    server = OpenLoopServer(pool, **kw)
    msgs, arrivals = ENTERPRISE_MIX.sample_open(seed=13, count=count, mean_gap=mean_gap)
    return pool, server.run(msgs, arrivals)


class TestAccounting:
    def test_every_offered_request_is_accounted_for(self):
        _, res = run_at(200.0, faults="storm", queue_limit=16, deadline=30_000.0)
        assert len(res.served) + len(res.dropped) + len(res.shed) == res.offered

    def test_unloaded_server_serves_everything(self):
        _, res = run_at(50_000.0)
        assert res.drop_rate == 0.0
        assert len(res.answered) == res.offered
        # No queueing at this rate: latency is pure service time.
        assert res.latency_summary().p99 < 10_000.0

    def test_misaligned_trace_rejected(self):
        pool = rpc_pool()
        with pytest.raises(ValueError, match="align"):
            OpenLoopServer(pool).run([], [0.0])

    def test_parameter_validation(self):
        pool = rpc_pool()
        with pytest.raises(ValueError):
            OpenLoopServer(pool, queue_limit=0)
        with pytest.raises(ValueError):
            OpenLoopServer(pool, deadline=0.0)
        with pytest.raises(ValueError):
            OpenLoopServer(pool, max_inflight=0)


class TestLossLedger:
    def test_loss_rate_of_empty_result_is_zero(self):
        # No offered traffic must read as 0% loss, not ZeroDivisionError.
        res = ServeResult(offered=0)
        assert res.loss_rate == 0.0
        assert res.drop_rate == 0.0
        assert res.losses == 0

    def test_every_loss_counted_exactly_once(self):
        # The three loss ledgers are disjoint: a rejected request never
        # reaches the pool, a pool-level failure lives only in served.
        _, res = run_at(150.0, faults="storm", queue_limit=8, deadline=25_000.0)
        failed = sum(not r.ok for r in res.served)
        assert res.losses == len(res.dropped) + len(res.shed) + failed
        rejected_ids = {id(r.request) for r in res.dropped + res.shed}
        failed_ids = {id(r.request) for r in res.served if not r.ok}
        assert not rejected_ids & failed_ids
        assert res.loss_rate == res.losses / res.offered

    def test_every_rejection_carries_a_named_reason(self):
        # A tight queue exercises the drop ledger; a roomy queue with a
        # tight deadline exercises the shed ledger.
        _, tight = run_at(150.0, faults="storm", queue_limit=8, deadline=25_000.0)
        _, aged = run_at(100.0, faults="storm", queue_limit=512, deadline=15_000.0)
        assert tight.dropped and aged.shed
        for rejection in tight.dropped + tight.shed + aged.dropped + aged.shed:
            assert rejection.reason in REJECTION_REASONS
            assert rejection.priority == DEFAULT_PRIORITY

    def test_priority_fn_stamps_rejections(self):
        pool = rpc_pool("interface_predicted", faults="storm")
        server = OpenLoopServer(
            pool, queue_limit=8, deadline=25_000.0, priority_fn=lambda r: "batch"
        )
        msgs, arrivals = ENTERPRISE_MIX.sample_open(seed=13, count=300, mean_gap=150.0)
        res = server.run(msgs, arrivals)
        assert res.dropped or res.shed
        for rejection in res.dropped + res.shed:
            assert rejection.priority == "batch"


class TestDropRateMonotonicity:
    def test_drop_rate_rises_with_arrival_rate(self):
        # Satellite: pushing the arrival rate up (mean gap down) through
        # a faulted fleet must not *reduce* the drop rate.
        rates = []
        for mean_gap in (2_000.0, 400.0, 150.0, 60.0):
            _, res = run_at(
                mean_gap, faults="storm", queue_limit=16, deadline=40_000.0
            )
            rates.append(res.drop_rate)
        assert rates == sorted(rates), rates
        assert rates[-1] > 0.0, "overload must actually drop"

    def test_queue_limit_bounds_waiting_room(self):
        # A tighter queue drops more at the same offered load.
        _, tight = run_at(100.0, faults="storm", queue_limit=4)
        _, roomy = run_at(100.0, faults="storm", queue_limit=256)
        assert len(tight.dropped) > len(roomy.dropped)


class TestDeadlineShedding:
    def test_aged_requests_are_shed_before_touching_a_device(self):
        pool, res = run_at(
            100.0, faults="storm", queue_limit=512, deadline=15_000.0, count=400
        )
        assert res.shed, "overload with a tight deadline must shed"
        served_ids = {id(r.request) for r in res.served}
        on_tape = {
            id(rec.request) for d in pool.devices for rec in d.device.records
        }
        for rejection in res.shed + res.dropped:
            assert id(rejection.request) not in served_ids
            assert id(rejection.request) not in on_tape  # never dispatched
        for rejection in res.shed:
            assert rejection.time - rejection.arrival > 15_000.0

    def test_shed_requests_never_reach_a_tripped_device(self):
        # The router invariant, end to end: under a storm that trips
        # Protoacc's breaker, no request — served, shed, or dropped —
        # is ever dispatched to a device whose breaker refused it.
        pool, res = run_at(
            150.0, faults="storm", queue_limit=64, deadline=40_000.0, count=400
        )
        assert pool.invariant_violations == 0
        from repro.runtime import BreakerState

        protoacc = pool.device("protoacc").device
        opened = [
            t for t in protoacc.breaker.transitions if t.state is BreakerState.OPEN
        ]
        assert opened, "storm should trip the breaker"
        # Every record on the tripped device's tape was admitted:
        # either it ran attempts, or it predates any trip.
        for rec in protoacc.records:
            assert rec.attempts > 0


class TestLatencyBreakdown:
    def test_components_sum_to_end_to_end(self):
        # The tentpole invariant: every served request's cycles decompose
        # exactly into admission wait + device queue + service + retry.
        _, res = run_at(
            150.0, faults="storm", queue_limit=64, deadline=40_000.0, count=300
        )
        assert len(res.breakdowns) == len(res.served)
        for b, served in zip(res.breakdowns, res.served, strict=True):
            assert math.isclose(
                b.total, b.end_to_end, rel_tol=1e-9, abs_tol=1e-6
            ), (b.total, b.end_to_end)
            assert b.completed == served.completed
            assert min(b.queue_wait, b.device_queue, b.service, b.retry) >= 0.0

    def test_overload_shows_up_as_queueing_not_service(self):
        _, fast = run_at(50_000.0, count=100)
        _, slow = run_at(100.0, count=100, queue_limit=512)
        mean_wait = lambda r: sum(b.queue_wait for b in r.breakdowns) / len(  # noqa: E731
            r.breakdowns
        )
        assert mean_wait(fast) == 0.0
        assert mean_wait(slow) > 0.0

    def test_storm_charges_retry_cycles(self):
        _, res = run_at(
            400.0, faults="storm", policy="round_robin", queue_limit=64, count=300
        )
        assert sum(b.retry for b in res.breakdowns) > 0.0


class TestHedgingUnderLoad:
    def test_storm_survival_without_hangs(self):
        # The acceptance bar: a storm trips a device, the pool keeps
        # answering (drops allowed), and the run terminates.
        pool, res = run_at(400.0, faults="storm", queue_limit=32, deadline=60_000.0)
        assert len(res.answered) > 0.5 * res.offered
        hedged_and_answered = [r for r in res.served if r.hedges > 0 and r.ok]
        assert hedged_and_answered, "a storm run should rescue some calls by hedging"
        assert pool.invariant_violations == 0
