"""DevicePool: breaker-aware routing and hedged failover."""

import pytest

from repro.runtime import FaultEvent, FaultKind, ScriptedFaultPlan
from repro.runtime.pool import (
    ROUTING_POLICIES,
    DevicePool,
    PooledDevice,
    make_routing_policy,
    rpc_pool,
)
from repro.workloads import ENTERPRISE_MIX


def small_and_large():
    msgs = sorted(ENTERPRISE_MIX.sample(seed=21, count=40), key=lambda m: m.encoded_size())
    return msgs[0], msgs[-1]


class TestPolicies:
    def test_registry_names(self):
        assert set(ROUTING_POLICIES) == {
            "round_robin",
            "least_outstanding",
            "interface_predicted",
        }

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown routing policy"):
            make_routing_policy("fastest_first")

    def test_policy_instances_pass_through(self):
        policy = make_routing_policy("round_robin")
        assert make_routing_policy(policy) is policy

    def test_round_robin_spreads_evenly_when_all_admit(self):
        pool = rpc_pool("round_robin")
        msgs = ENTERPRISE_MIX.sample(seed=1, count=30)
        for i, msg in enumerate(msgs):
            pool.dispatch(msg, float(i) * 10_000.0)
        assert set(pool.device_loads().values()) == {10}

    def test_interface_predicted_prices_by_message(self):
        # A large message must not land on the CPU software server when
        # an idle accelerator serves it an order of magnitude faster.
        small, large = small_and_large()
        pool = rpc_pool("interface_predicted")
        r_large = pool.dispatch(large, 0.0)
        assert r_large.device in ("protoacc", "optimus-prime")
        cheapest = min(pool.devices, key=lambda d: d.price(small, 1e9))
        r_small = pool.dispatch(small, 1e9)  # fresh arrival, empty queues
        assert r_small.device == cheapest.name


class TestBreakerAwareRouting:
    def test_tripped_device_is_skipped_until_recovery(self):
        pool = rpc_pool("round_robin")
        protoacc = pool.device("protoacc")
        protoacc.device.breaker.trip(0.0, "forced for test")
        msgs = ENTERPRISE_MIX.sample(seed=2, count=20)
        for i, msg in enumerate(msgs):
            pool.dispatch(msg, float(i) * 1_000.0)  # all within recovery window
        assert pool.device_loads()["protoacc"] == 0
        assert all(r.ok for r in pool.results)
        # After the recovery window the breaker probes and traffic returns.
        late = ENTERPRISE_MIX.sample(seed=3, count=10)
        for i, msg in enumerate(late):
            pool.dispatch(msg, 300_000.0 + float(i) * 1_000.0)
        assert pool.device_loads()["protoacc"] > 0

    def test_available_devices_excludes_and_filters(self):
        pool = rpc_pool()
        pool.device("optimus-prime").device.breaker.trip(0.0, "forced")
        names = [d.name for d in pool.available_devices(10.0, exclude=("cpu",))]
        assert names == ["protoacc"]


class TestHedging:
    def test_midflight_failure_rolls_over_to_next_device(self):
        pool = rpc_pool("round_robin", faults="none")
        protoacc = pool.device("protoacc")
        # Both attempts of the first dispatched call hang: the device
        # exhausts its retries and surfaces a failed record.
        protoacc.device.fault_plan = ScriptedFaultPlan(
            {
                0: FaultEvent(0, FaultKind.HANG, float("inf")),
                1: FaultEvent(1, FaultKind.HANG, float("inf")),
            }
        )
        small, _ = small_and_large()
        result = pool.dispatch(small, 0.0)
        assert result.ok
        assert result.hedges == 1
        assert result.devices_tried[0] == "protoacc"
        assert result.devices_tried[1] != "protoacc"
        assert FaultKind.HANG in result.faults
        # The burned watchdog budget is charged to the request.
        assert result.cycles > 2 * 20_000.0

    def test_hedging_respects_deadline(self):
        pool = rpc_pool("round_robin", faults="none")
        pool.device("protoacc").device.fault_plan = ScriptedFaultPlan(
            {
                0: FaultEvent(0, FaultKind.HANG, float("inf")),
                1: FaultEvent(1, FaultKind.HANG, float("inf")),
            }
        )
        small, _ = small_and_large()
        result = pool.dispatch(small, 0.0, deadline=10_000.0)
        assert not result.ok
        assert result.hedges == 0
        assert result.devices_tried == ("protoacc",)

    def test_never_rehedges_to_a_device_it_failed_on(self):
        pool = rpc_pool("round_robin", faults="storm", seed=17)
        msgs, arrivals = ENTERPRISE_MIX.sample_open(seed=5, count=200, mean_gap=2_000.0)
        for msg, at in zip(msgs, arrivals, strict=True):
            pool.dispatch(msg, at)
        hedged = [r for r in pool.results if r.hedges > 0]
        assert hedged, "storm run should hedge at least once"
        for r in pool.results:
            assert len(set(r.devices_tried)) == len(r.devices_tried)


class TestInvariants:
    def test_no_violations_under_storm_for_any_policy(self):
        msgs, arrivals = ENTERPRISE_MIX.sample_open(seed=9, count=250, mean_gap=1_500.0)
        for policy in ROUTING_POLICIES:
            pool = rpc_pool(policy, faults="storm")
            for msg, at in zip(msgs, arrivals, strict=True):
                pool.dispatch(msg, at)
            assert pool.invariant_violations == 0
            assert pool.failure_fraction() == 0.0  # the CPU always answers

    def test_duplicate_device_names_rejected(self):
        pool = rpc_pool()
        devs = [pool.devices[0], PooledDevice("protoacc", pool.devices[1].device)]
        with pytest.raises(ValueError, match="duplicate device names"):
            DevicePool(devs)

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError, match="at least one device"):
            DevicePool([])
