"""End-to-end serving loop of the ResilientDevice."""

from repro.accel.base import AcceleratorModel
from repro.core.interface import PerformanceInterface
from repro.runtime import (
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
    CpuFallback,
    DriftDetector,
    FaultEvent,
    FaultKind,
    FaultPlan,
    FaultSpec,
    ResilientDevice,
    RetryPolicy,
    ScriptedFaultPlan,
    Watchdog,
)

ACCEL_CYCLES = 100.0
CPU_CYCLES = 500.0


class StubModel(AcceleratorModel[int]):
    name = "stub"

    def __init__(self, latency: float = ACCEL_CYCLES):
        self._latency = latency

    def measure_latency(self, item: int) -> float:
        return self._latency


class StubInterface(PerformanceInterface[int]):
    accelerator = "stub"
    representation = "program"

    def __init__(self, latency: float = ACCEL_CYCLES):
        self._latency = latency

    def latency(self, item: int) -> float:
        return self._latency


FALLBACK = CpuFallback(software_fn=lambda x: -x, latency_fn=lambda x: CPU_CYCLES)

HANG = FaultEvent(0, FaultKind.HANG, float("inf"))


def make_device(**kwargs):
    defaults = dict(
        model=StubModel(),
        interface=StubInterface(),
        fallback=FALLBACK,
        watchdog=Watchdog(1000.0),
        retry=RetryPolicy(max_attempts=1),
    )
    defaults.update(kwargs)
    return ResilientDevice(**defaults)


class TestCleanServing:
    def test_accel_path_charges_model_latency(self):
        device = make_device()
        assert device.call(7) == -7
        assert device.clock == ACCEL_CYCLES
        record = device.records[0]
        assert record.index == 1
        assert record.path == "accel"
        assert record.attempts == 1
        assert record.faults == ()

    def test_invocation_overhead_is_charged(self):
        device = make_device(invocation_overhead=lambda _: 50.0)
        device.call(7)
        assert device.clock == ACCEL_CYCLES + 50.0

    def test_respond_override(self):
        device = make_device(respond=lambda x: x + 1)
        assert device.call(7) == 8


class TestFaultedServing:
    def test_hang_times_out_then_falls_back(self):
        plan = ScriptedFaultPlan({0: HANG, 1: HANG, 2: HANG})
        device = make_device(
            fault_plan=plan,
            retry=RetryPolicy(max_attempts=3, jitter=0.0),
        )
        assert device.call(7) == -7  # fallback still answers
        record = device.records[0]
        assert record.path == "cpu"
        assert record.attempts == 3
        assert record.faults == (FaultKind.HANG,) * 3
        # 3 watchdog budgets + 2 backoffs (200, 400) + CPU fallback.
        assert device.clock == 3 * 1000.0 + 200.0 + 400.0 + CPU_CYCLES

    def test_retry_faces_fresh_fault_draws(self):
        # Hang only on the first invocation: attempt 2 succeeds.
        plan = ScriptedFaultPlan({0: HANG})
        device = make_device(
            fault_plan=plan,
            retry=RetryPolicy(max_attempts=2, jitter=0.0),
        )
        assert device.call(7) == -7
        record = device.records[0]
        assert record.path == "accel"
        assert record.attempts == 2
        assert device.clock == 1000.0 + 200.0 + ACCEL_CYCLES

    def test_drop_costs_the_watchdog_budget(self):
        plan = ScriptedFaultPlan({0: FaultEvent(0, FaultKind.DROP, 0.0)})
        device = make_device(fault_plan=plan)
        device.call(7)
        assert device.clock == 1000.0 + CPU_CYCLES  # timeout, then fallback

    def test_corrupt_costs_only_observed_latency(self):
        plan = ScriptedFaultPlan({0: FaultEvent(0, FaultKind.CORRUPT, 0.0)})
        device = make_device(fault_plan=plan)
        device.call(7)
        assert device.clock == ACCEL_CYCLES + CPU_CYCLES

    def test_spike_multiplies_observed_latency(self):
        plan = ScriptedFaultPlan({0: FaultEvent(0, FaultKind.LATENCY_SPIKE, 3.0)})
        device = make_device(fault_plan=plan)
        device.call(7)
        assert device.records[0].path == "accel"
        assert device.clock == 3 * ACCEL_CYCLES

    def test_storm_defaults_to_additive_approximation(self):
        plan = ScriptedFaultPlan({0: FaultEvent(0, FaultKind.REFRESH_STORM, 250.0)})
        device = make_device(fault_plan=plan)
        device.call(7)
        assert device.clock == ACCEL_CYCLES + 250.0

    def test_storm_latency_hook_overrides(self):
        plan = ScriptedFaultPlan({0: FaultEvent(0, FaultKind.REFRESH_STORM, 250.0)})
        device = make_device(
            fault_plan=plan,
            storm_latency=lambda request, event: 777.0,
        )
        device.call(7)
        assert device.clock == 777.0


class TestBreaker:
    def test_open_breaker_short_circuits_to_cpu(self):
        breaker = CircuitBreaker(BreakerConfig(failure_threshold=1))
        plan = ScriptedFaultPlan({0: HANG})
        device = make_device(fault_plan=plan, breaker=breaker)
        device.call(1)  # hang -> failure -> breaker opens
        assert breaker.state is BreakerState.OPEN
        clock_before = device.clock
        device.call(2)
        record = device.records[1]
        assert record.path == "cpu"
        assert record.attempts == 0  # no accelerator cycles burned
        assert record.breaker_state is BreakerState.OPEN
        assert device.clock == clock_before + CPU_CYCLES

    def test_opening_breaker_stops_the_retry_loop(self):
        breaker = CircuitBreaker(BreakerConfig(failure_threshold=2))
        plan = ScriptedFaultPlan({0: HANG, 1: HANG, 2: HANG})
        device = make_device(
            fault_plan=plan,
            breaker=breaker,
            retry=RetryPolicy(max_attempts=3, jitter=0.0),
        )
        device.call(1)
        assert device.records[0].attempts == 2  # third retry never ran

    def test_half_open_probe_recovers(self):
        breaker = CircuitBreaker(
            BreakerConfig(failure_threshold=1, recovery_cycles=1000.0, probe_successes=1)
        )
        plan = ScriptedFaultPlan({0: HANG})
        device = make_device(fault_plan=plan, breaker=breaker)
        device.call(1)  # opens at clock 1000
        device.call(2)  # blocked (clock 1500 -> 2000)
        assert device.records[1].path == "cpu"
        device.call(3)  # clock 2000: recovery window elapsed -> probe
        assert device.records[2].path == "accel"
        assert breaker.state is BreakerState.CLOSED


class TestDrift:
    def test_sustained_mispredict_trips_the_breaker(self):
        breaker = CircuitBreaker(BreakerConfig(failure_threshold=100))
        drift = DriftDetector(window=8, threshold=0.5, min_samples=4)
        device = make_device(
            model=StubModel(latency=1000.0),  # device really takes 1000
            interface=StubInterface(latency=100.0),  # interface claims 100
            breaker=breaker,
            drift=drift,
        )
        for i in range(4):
            device.call(i)
        assert breaker.state is BreakerState.OPEN
        assert "drift" in breaker.transitions[-1].reason
        device.call(99)
        assert device.records[-1].path == "cpu"

    def test_accurate_interface_never_trips(self):
        breaker = CircuitBreaker(BreakerConfig(failure_threshold=100))
        drift = DriftDetector(window=8, threshold=0.5, min_samples=4)
        device = make_device(breaker=breaker, drift=drift)
        for i in range(20):
            device.call(i)
        assert breaker.state is BreakerState.CLOSED
        assert device.fallback_fraction() == 0.0


class TestDeterminism:
    SPEC = FaultSpec(
        spike_rate=0.1, storm_rate=0.05, hang_rate=0.1, drop_rate=0.05, corrupt_rate=0.05
    )

    def run_device(self):
        device = make_device(
            fault_plan=FaultPlan(13, self.SPEC),
            retry=RetryPolicy(max_attempts=3, seed=13),
            breaker=CircuitBreaker(BreakerConfig(failure_threshold=3)),
            drift=DriftDetector(window=16, threshold=0.5, min_samples=8),
        )
        for i in range(150):
            device.call(i)
        return device

    def test_same_seeds_byte_identical_run(self):
        a, b = self.run_device(), self.run_device()
        assert a.latencies() == b.latencies()
        assert a.clock == b.clock
        assert [r.path for r in a.records] == [r.path for r in b.records]
        assert [r.faults for r in a.records] == [r.faults for r in b.records]

    def test_introspection_coheres(self):
        device = self.run_device()
        assert len(device.tape) == 150
        assert device.fault_count() >= 1
        assert 0.0 < device.fallback_fraction() < 1.0
        assert device.summary().p50 > 0
