"""Replaying faulted serving tapes through the record/replay estimator."""

import pytest

from repro.core import ReplayDivergence
from repro.runtime import (
    FaultEvent,
    FaultKind,
    ResilientDevice,
    ResilientOffloadEstimator,
    ResilientReplayDevice,
    RetryPolicy,
    ScriptedFaultPlan,
    Watchdog,
)

from .test_device import ACCEL_CYCLES, CPU_CYCLES, FALLBACK, HANG, StubInterface, StubModel

REQUESTS = [3, 1, 4, 1, 5]


def record_tape(fault_plan=None):
    device = ResilientDevice(
        model=StubModel(),
        interface=StubInterface(),
        fallback=FALLBACK,
        watchdog=Watchdog(1000.0),
        retry=RetryPolicy(max_attempts=1),
        fault_plan=fault_plan,
    )
    for r in REQUESTS:
        device.call(r)
    return device


class TestResilientReplay:
    def test_replay_charges_recorded_cycles(self):
        device = record_tape(ScriptedFaultPlan({1: HANG}))
        replay = ResilientReplayDevice(device.records, StubInterface())
        for r in REQUESTS:
            replay.call(r)
        assert replay.clock == pytest.approx(sum(device.latencies()))
        assert replay.clock == pytest.approx(device.clock)

    def test_replay_returns_recorded_responses(self):
        device = record_tape()
        replay = ResilientReplayDevice(device.records, StubInterface())
        assert [replay.call(r) for r in REQUESTS] == [-r for r in REQUESTS]

    def test_divergent_request_raises_with_context(self):
        device = record_tape()
        replay = ResilientReplayDevice(device.records, StubInterface())
        replay.call(REQUESTS[0])
        with pytest.raises(ReplayDivergence) as exc:
            replay.call(999)
        assert exc.value.call == 2
        assert exc.value.expected == REQUESTS[1]
        assert exc.value.actual == 999

    def test_exhausted_tape_raises_with_context(self):
        device = record_tape()
        replay = ResilientReplayDevice(device.records, StubInterface())
        for r in REQUESTS:
            replay.call(r)
        with pytest.raises(ReplayDivergence) as exc:
            replay.call(0)
        assert exc.value.call == len(REQUESTS) + 1


class TestEstimator:
    @staticmethod
    def app(device):
        for r in REQUESTS:
            device.call(r)
        device.host_work(50.0)

    def make_estimator(self, fault_plan):
        def factory():
            return ResilientDevice(
                model=StubModel(),
                interface=StubInterface(),
                fallback=FALLBACK,
                watchdog=Watchdog(1000.0),
                retry=RetryPolicy(max_attempts=1),
                fault_plan=fault_plan,
            )

        return ResilientOffloadEstimator(factory, StubInterface())

    def test_fault_free_estimate_matches_clean_replay(self):
        estimate = self.make_estimator(None).estimate(self.app)
        expected = len(REQUESTS) * ACCEL_CYCLES + 50.0
        assert estimate.clean_cycles == pytest.approx(expected)
        assert estimate.faulted_cycles == pytest.approx(expected)
        assert estimate.availability_overhead == pytest.approx(1.0)
        assert estimate.fallback_calls == 0
        assert estimate.faults == 0

    def test_faults_show_up_as_availability_overhead(self):
        # Call 2 hangs (single attempt): watchdog budget + CPU fallback.
        estimate = self.make_estimator(ScriptedFaultPlan({1: HANG})).estimate(self.app)
        assert estimate.calls == len(REQUESTS)
        assert estimate.fallback_calls == 1
        assert estimate.faults == 1
        penalty = 1000.0 + CPU_CYCLES - ACCEL_CYCLES
        assert estimate.faulted_cycles == pytest.approx(estimate.clean_cycles + penalty)
        assert estimate.availability_overhead > 1.0

    def test_corrupt_response_still_replays(self):
        # The §5 premise holds even for calls whose accelerator response
        # was corrupted: the recorded (fallback-served) response is
        # functionally correct, so the replay follows the same path.
        plan = ScriptedFaultPlan({0: FaultEvent(0, FaultKind.CORRUPT, 0.0)})
        estimate = self.make_estimator(plan).estimate(self.app)
        assert estimate.fallback_calls == 1
        assert estimate.availability_overhead > 1.0
