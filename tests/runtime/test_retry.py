"""Backoff schedule: deterministic, capped, jittered."""

import pytest

from repro.runtime import RetryPolicy


class TestBackoff:
    def test_exponential_growth_without_jitter(self):
        policy = RetryPolicy(max_attempts=4, base_delay=100.0, multiplier=2.0, jitter=0.0)
        assert policy.backoff(1, 1) == 100.0
        assert policy.backoff(1, 2) == 200.0
        assert policy.backoff(1, 3) == 400.0

    def test_cap_applies(self):
        policy = RetryPolicy(
            max_attempts=10, base_delay=100.0, multiplier=10.0, cap=500.0, jitter=0.0
        )
        assert policy.backoff(1, 5) == 500.0

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(base_delay=100.0, jitter=0.25, seed=3)
        for call in range(20):
            delay = policy.backoff(call, 1)
            assert 75.0 <= delay <= 125.0

    def test_deterministic_in_seed_call_attempt(self):
        a = RetryPolicy(jitter=0.3, seed=11)
        b = RetryPolicy(jitter=0.3, seed=11)
        assert [a.backoff(c, 2) for c in range(50)] == [
            b.backoff(c, 2) for c in range(50)
        ]

    def test_different_calls_jitter_differently(self):
        policy = RetryPolicy(jitter=0.3, seed=11)
        delays = {policy.backoff(c, 1) for c in range(20)}
        assert len(delays) > 1

    def test_delays_enumerates_all_waits(self):
        policy = RetryPolicy(max_attempts=3, jitter=0.0)
        assert policy.delays(1) == (200.0, 400.0)

    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError, match="1-based"):
            RetryPolicy().backoff(1, 0)


class TestValidation:
    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)
