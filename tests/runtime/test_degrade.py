"""Drift detection and the CPU fallback path."""

import pytest

from repro.hw.stats import ErrorReport
from repro.runtime import CpuFallback, DriftDetector, rpc_cpu_fallback
from repro.workloads.rpc import ENTERPRISE_MIX


class TestSymmetricError:
    def test_symmetric_in_its_arguments(self):
        assert DriftDetector.symmetric_error(100.0, 600.0) == pytest.approx(5.0)
        assert DriftDetector.symmetric_error(600.0, 100.0) == pytest.approx(5.0)

    def test_does_not_saturate_when_observed_dwarfs_predicted(self):
        # Plain |p-o|/o tends to 1 as o grows; the symmetric form keeps
        # growing, which is what lets a 6x latency spike trip a 50%
        # threshold.
        plain = abs(100.0 - 600.0) / 600.0
        assert plain < 1.0
        assert DriftDetector.symmetric_error(100.0, 600.0) > 1.0

    def test_zero_handling(self):
        assert DriftDetector.symmetric_error(0.0, 0.0) == 0.0
        assert DriftDetector.symmetric_error(0.0, 5.0) == float("inf")


class TestDriftDetector:
    def test_silent_before_min_samples(self):
        det = DriftDetector(window=8, threshold=0.1, min_samples=4)
        for _ in range(3):
            assert not det.update(100.0, 1000.0)
        assert det.last_score is None

    def test_trips_on_sustained_mispredict(self):
        det = DriftDetector(window=8, threshold=0.5, min_samples=4)
        results = [det.update(100.0, 600.0) for _ in range(4)]
        assert results == [False, False, False, True]
        assert det.last_score == pytest.approx(5.0)

    def test_accurate_predictions_never_trip(self):
        det = DriftDetector(window=8, threshold=0.5, min_samples=4)
        assert not any(det.update(100.0, 105.0) for _ in range(20))

    def test_window_forgets_old_samples(self):
        det = DriftDetector(window=4, threshold=0.5, min_samples=4)
        for _ in range(4):
            det.update(100.0, 600.0)
        # Four healthy samples push the bad ones out of the window.
        healthy = [det.update(100.0, 100.0) for _ in range(4)]
        assert healthy[-1] is False
        assert det.last_score == pytest.approx(0.0)

    def test_last_report_uses_validation_machinery(self):
        det = DriftDetector(window=8, threshold=0.5, min_samples=2)
        det.update(100.0, 200.0)
        det.update(100.0, 200.0)
        assert isinstance(det.last_report, ErrorReport)

    def test_reset_clears_window(self):
        det = DriftDetector(window=8, threshold=0.5, min_samples=2)
        det.update(100.0, 600.0)
        det.update(100.0, 600.0)
        det.reset()
        assert det.samples == 0
        assert det.last_score is None
        assert not det.update(100.0, 600.0)  # min_samples applies afresh

    def test_validation(self):
        with pytest.raises(ValueError):
            DriftDetector(window=0)
        with pytest.raises(ValueError):
            DriftDetector(window=4, min_samples=5)
        with pytest.raises(ValueError):
            DriftDetector(threshold=0.0)


class TestCpuFallback:
    def test_call_returns_response_and_cycles(self):
        fb = CpuFallback(software_fn=lambda x: x * 2, latency_fn=lambda x: 500.0)
        assert fb.call(21) == (42, 500.0)

    def test_rpc_fallback_encodes_at_modeled_cost(self):
        fb = rpc_cpu_fallback()
        msg = ENTERPRISE_MIX.sample(seed=1, count=1)[0]
        response, cycles = fb.call(msg)
        assert response == msg.encode()
        assert cycles > 0


class TestDerivedThreshold:
    """Auto-refit of the drift threshold from offline validation error."""

    def test_error_report_carries_quantiles(self):
        rep = ErrorReport.of([110, 100, 130, 100], [100, 100, 100, 100])
        assert rep.p50 is not None and rep.p95 is not None and rep.p99 is not None
        assert rep.p50 <= rep.p95 <= rep.p99 <= rep.max

    def test_unbounded_errors_counted_not_poisoning(self):
        rep = ErrorReport.of([110, 5], [100, 0])  # second error is unbounded
        assert rep.infinite == 1
        assert rep.max == pytest.approx(0.10)  # finite errors only
        assert rep.avg == pytest.approx(0.10)
        assert rep.p95 is not None and rep.p95 < float("inf")
        assert "[1 unbounded]" in rep.as_percent()

    def test_threshold_scales_with_offline_p95(self):
        from repro.runtime.degrade import derive_drift_threshold

        rep = ErrorReport.of([128, 72], [100, 100])  # 28% error everywhere
        thr = derive_drift_threshold(rep, headroom=3.0)
        assert thr == pytest.approx(3.0 * rep.p95)
        # A near-perfect interface is clamped to the floor, not zero.
        perfect = ErrorReport.of([100, 100], [100, 100])
        assert derive_drift_threshold(perfect, floor=0.15) == pytest.approx(0.15)

    def test_fallback_when_no_report(self):
        from repro.runtime.degrade import DEFAULT_DRIFT_THRESHOLD, derive_drift_threshold

        assert derive_drift_threshold(None) == DEFAULT_DRIFT_THRESHOLD
        # Pre-quantile reports (hand-built, no p95) also fall back.
        legacy = ErrorReport(avg=0.2, max=0.9, count=10)
        assert derive_drift_threshold(legacy) == DEFAULT_DRIFT_THRESHOLD

    def test_from_error_report_builds_a_detector(self):
        rep = ErrorReport.of([128, 72], [100, 100])
        det = DriftDetector.from_error_report(rep, window=16, min_samples=4)
        assert det.threshold == pytest.approx(max(0.15, 3.0 * rep.p95))
        none_det = DriftDetector.from_error_report(None)
        assert none_det.threshold == pytest.approx(0.5)

    def test_headroom_must_exceed_one(self):
        from repro.runtime.degrade import derive_drift_threshold

        with pytest.raises(ValueError):
            derive_drift_threshold(None, headroom=1.0)
