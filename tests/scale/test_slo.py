"""SLO specs and the rolling time-horizon monitor."""

from types import SimpleNamespace

import pytest

from repro.scale import SLO, SloMonitor


class TestSloSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            SLO(latency_budget=0.0)
        with pytest.raises(ValueError):
            SLO(latency_budget=1.0, latency_quantile=1.0)
        with pytest.raises(ValueError):
            SLO(latency_budget=1.0, max_loss_rate=1.5)

    def test_describe_names_the_promise(self):
        text = SLO(latency_budget=30_000.0, max_loss_rate=0.05).describe()
        assert "p95" in text and "30000" in text and "5.00%" in text

    def test_pressure_is_quantile_over_budget(self):
        slo = SLO(latency_budget=10_000.0)
        monitor = SloMonitor(slo, min_samples=1)
        monitor.record_served(15_000.0, at=100.0)
        assert monitor.status(100.0).pressure(slo) == pytest.approx(1.5)


class TestSloMonitor:
    def test_abstains_below_min_samples(self):
        monitor = SloMonitor(SLO(latency_budget=1.0), min_samples=5)
        for i in range(4):
            monitor.record_served(99.0, at=float(i))  # wildly over budget
        assert monitor.status(4.0).latency_ok  # abstaining, not passing

    def test_violation_once_populated(self):
        monitor = SloMonitor(SLO(latency_budget=100.0), min_samples=3)
        for i in range(3):
            monitor.record_served(500.0, at=float(i))
        status = monitor.status(3.0)
        assert not status.latency_ok and not status.ok

    def test_time_horizon_ages_out_bad_samples(self):
        # The brownout lesson: a browned-out server admits little
        # traffic, so recovery must come from the clock, not from fresh
        # samples displacing old ones.
        monitor = SloMonitor(SLO(latency_budget=100.0), horizon=1_000.0, min_samples=3)
        for i in range(5):
            monitor.record_served(500.0, at=float(i))
        assert not monitor.status(5.0).latency_ok
        # No new traffic at all; the horizon slides past the samples.
        later = monitor.status(2_000.0)
        assert later.served == 0
        assert later.latency_ok  # abstains once the window is empty

    def test_loss_rate_over_the_window(self):
        monitor = SloMonitor(SLO(latency_budget=1e9, max_loss_rate=0.25))
        for i in range(3):
            monitor.record_served(1.0, at=float(i))
        monitor.record_loss(at=3.0)
        status = monitor.status(3.0)
        assert status.loss_rate == pytest.approx(0.25)
        assert status.loss_ok
        monitor.record_loss(at=4.0)
        assert not monitor.status(4.0).loss_ok

    def test_lifetime_counters_survive_pruning(self):
        monitor = SloMonitor(SLO(latency_budget=1.0), horizon=10.0)
        monitor.record_served(1.0, at=0.0)
        monitor.record_loss(at=1.0)
        monitor.status(1_000.0)  # prunes everything
        assert monitor.observed == 2 and monitor.lost == 1

    def test_offline_evaluate_matches_run_totals(self):
        result = SimpleNamespace(
            breakdowns=[
                SimpleNamespace(end_to_end=float(v), completed=float(i))
                for i, v in enumerate((10, 20, 30, 40, 1_000))
            ],
            loss_rate=0.5,
            losses=5,
        )
        slo = SLO(latency_budget=500.0, max_loss_rate=0.1)
        verdict = SloMonitor(slo).evaluate(result)
        assert verdict.latency > 500.0  # p95 dominated by the outlier
        assert not verdict.latency_ok and not verdict.loss_ok
        assert verdict.served == 5 and verdict.losses == 5
