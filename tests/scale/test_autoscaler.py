"""The autoscaler's control loop: hysteresis, cooldown, floor, safety."""

import pytest

from repro.obs import Obs
from repro.perf import EvalCache
from repro.runtime.pool import DevicePool, rpc_device
from repro.scale import Autoscaler, ScalePolicy, standard_templates
from repro.scale.slo import SloStatus
from repro.workloads import STORAGE_MIX


def status(ok: bool, at: float = 0.0) -> SloStatus:
    return SloStatus(
        at=at,
        latency=1.0,
        loss_rate=0.0,
        served=100,
        losses=0,
        latency_ok=ok,
        loss_ok=True,
    )


@pytest.fixture
def rig():
    obs = Obs.enabled(drift=False)
    cache = EvalCache()
    pool = DevicePool(
        [rpc_device("protoacc", cache=cache, obs=obs), rpc_device("cpu", obs=obs)],
        policy="interface_predicted",
        cache=cache,
        obs=obs,
    )
    templates = standard_templates(seed=117, cache=cache, obs=obs)
    return pool, templates, cache


def feed_sample(scaler, count: int = 8, gap: float = 50_000.0) -> None:
    """Give the scaler requests to price candidates against, spaced so
    the observed arrival rate is tiny (scale-in is always safe)."""
    for i, msg in enumerate(STORAGE_MIX.sample(3, count)):
        scaler.note_request(msg, completed=(i + 1) * gap)


class TestScaleOut:
    def test_needs_a_pressure_streak(self, rig):
        pool, templates, _ = rig
        scaler = Autoscaler(pool, templates, ScalePolicy(scale_out_after=3, cooldown=0))
        feed_sample(scaler)
        assert scaler.update(1.0, status(False), 0.0) is None
        assert scaler.update(2.0, status(False), 0.0) is None
        event = scaler.update(3.0, status(False), 0.0)
        assert event is not None and event.action == "out"
        assert len(pool.devices) == 3

    def test_one_healthy_verdict_resets_the_streak(self, rig):
        pool, templates, _ = rig
        scaler = Autoscaler(pool, templates, ScalePolicy(scale_out_after=2, cooldown=0))
        feed_sample(scaler)
        scaler.update(1.0, status(False), 0.0)
        scaler.update(2.0, status(True), 0.0)
        assert scaler.update(3.0, status(False), 0.0) is None

    def test_full_queue_is_pressure_even_when_slo_holds(self, rig):
        pool, templates, _ = rig
        scaler = Autoscaler(pool, templates, ScalePolicy(scale_out_after=1, cooldown=0))
        feed_sample(scaler)
        event = scaler.update(1.0, status(True), queue_frac=0.9)
        assert event is not None and event.action == "out"

    def test_candidates_are_interface_priced(self, rig):
        pool, templates, _ = rig
        scaler = Autoscaler(pool, templates, ScalePolicy(scale_out_after=1, cooldown=0))
        feed_sample(scaler)
        event = scaler.update(1.0, status(False), 0.0)
        # Every template was scored, and the admitted device is the
        # fastest predicted one (protoacc on the storage mix).
        assert set(event.candidate_scores) == {t.kind for t in templates}
        assert event.kind == min(event.candidate_scores, key=event.candidate_scores.get)
        assert event.kind == "protoacc"
        assert event.predicted_service == pytest.approx(
            event.candidate_scores[event.kind]
        )

    def test_nothing_to_price_means_no_scale_out(self, rig):
        pool, templates, _ = rig
        scaler = Autoscaler(pool, templates, ScalePolicy(scale_out_after=1, cooldown=0))
        assert scaler.update(1.0, status(False), 0.0) is None
        assert len(pool.devices) == 2

    def test_max_devices_ceiling(self, rig):
        pool, templates, _ = rig
        scaler = Autoscaler(
            pool, templates, ScalePolicy(scale_out_after=1, cooldown=0, max_devices=3)
        )
        feed_sample(scaler)
        scaler.update(1.0, status(False), 0.0)
        assert scaler.update(2.0, status(False), 0.0) is None
        assert len(pool.devices) == 3


class TestCooldown:
    def test_cooldown_spaces_events(self, rig):
        pool, templates, _ = rig
        scaler = Autoscaler(
            pool, templates, ScalePolicy(scale_out_after=1, cooldown=10_000.0)
        )
        feed_sample(scaler)
        assert scaler.update(1_000.0, status(False), 0.0) is not None
        assert scaler.update(2_000.0, status(False), 0.0) is None  # cooling
        assert scaler.update(12_000.0, status(False), 0.0) is not None


class TestScaleIn:
    def make_calm(self, scaler, n, start=100_000.0):
        events = [scaler.update(start + i, status(True), 0.0) for i in range(n)]
        return next((e for e in events if e is not None), None)

    def grown(self, rig, *, scale_in_after=2):
        pool, templates, _ = rig
        scaler = Autoscaler(
            pool,
            templates,
            ScalePolicy(scale_out_after=1, scale_in_after=scale_in_after, cooldown=0),
        )
        feed_sample(scaler)
        scaler.update(1.0, status(False), 0.0)
        assert scaler.added
        return pool, scaler

    def test_scale_in_after_sustained_calm(self, rig):
        pool, scaler = self.grown(rig)
        added = scaler.added[0]
        event = self.make_calm(scaler, 2)
        assert event is not None and event.action == "in"
        assert event.device == added
        assert len(pool.devices) == 2 and not scaler.added

    def test_never_removes_the_base_fleet(self, rig):
        pool, scaler = self.grown(rig)
        self.make_calm(scaler, 2)
        base = {d.name for d in pool.devices}
        # Long after the scaled device is gone, calm keeps arriving.
        for i in range(50):
            assert scaler.update(200_000.0 + i, status(True), 0.0) is None
        assert {d.name for d in pool.devices} == base == {"protoacc", "cpu"}

    def test_paused_while_healer_is_busy_on_the_device(self, rig):
        pool, scaler = self.grown(rig)

        class BusyHealer:
            def busy_devices(self_inner):
                return set(scaler.added)

        pool.healer = BusyHealer()
        assert self.make_calm(scaler, 4) is None
        assert len(pool.devices) == 3
        pool.healer = None
        assert self.make_calm(scaler, 2, start=300_000.0) is not None

    def test_removal_blocked_when_rate_unknown(self, rig):
        pool, templates, _ = rig
        scaler = Autoscaler(
            pool, templates, ScalePolicy(scale_out_after=1, scale_in_after=1, cooldown=0)
        )
        # Sample without completion times: pricing works, rate unknown.
        for msg in STORAGE_MIX.sample(3, 8):
            scaler.note_request(msg)
        scaler.update(1.0, status(False), 0.0)
        assert scaler.added
        assert self.make_calm(scaler, 4) is None  # unsafe: no rate estimate
        assert len(pool.devices) == 3

    def test_removal_blocked_when_remaining_capacity_too_thin(self, rig):
        pool, scaler = self.grown(rig)
        # Flood the completion window (evicting the sparse history):
        # the observed rate is now far beyond what the remaining two
        # devices could carry at scale_in_rho.
        for i, msg in enumerate(STORAGE_MIX.sample(5, 32)):
            scaler.note_request(msg, completed=100_000.0 + i * 10.0)
        assert self.make_calm(scaler, 4, start=110_000.0) is None
        assert len(pool.devices) == 3
