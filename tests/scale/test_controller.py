"""The controller end to end: hooks wired into a live serve, and the
``python -m repro.scale plan`` CLI."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.runtime.serving import REASON_ADMISSION_REJECTED, REASON_PRIORITY_SHED
from repro.scale import SLO, Rung, ScaleController, run_scale_scenario

SRC = str(Path(__file__).resolve().parents[2] / "src")


@pytest.fixture(scope="module")
def scenario():
    # One scaled-down run of the shared E17 scenario, reused by every
    # test in the module (the full-size arc is the benchmark's job).
    return run_scale_scenario(count=400)


class TestControllerIntegration:
    def test_decisions_happen_on_the_interval(self, scenario):
        controller = scenario["controller"]
        assert controller.decisions > 10
        assert len(controller.statuses) == controller.decisions

    def test_storm_drives_scale_out_then_calm_scales_in(self, scenario):
        scaler = scenario["controller"].scaler
        actions = [e.action for e in scaler.events]
        assert "out" in actions and "in" in actions
        assert actions.index("out") < len(actions) - actions[::-1].index("in") - 1
        # The hard floor held: never below the base fleet.
        assert len(scenario["pool"].devices) >= scaler.floor

    def test_ladder_climbed_and_fully_descended(self, scenario):
        ladder = scenario["controller"].ladder
        assert ladder.climbed() >= 1
        assert ladder.rung is Rung.NORMAL

    def test_intentional_losses_not_in_control_signal(self, scenario):
        controller = scenario["controller"]
        result = scenario["result"]
        refusals = result.dropped + result.shed
        intentional = [
            r
            for r in refusals
            if r.reason in (REASON_ADMISSION_REJECTED, REASON_PRIORITY_SHED)
        ]
        assert intentional, "the scenario should exercise brownout shedding"
        assert controller.intentional_losses == len(intentional)
        # The monitor heard only the unintentional refusals.
        assert controller.monitor.lost == len(refusals) - len(intentional)

    def test_snapshot_tells_the_whole_story(self, scenario):
        snap = scenario["controller"].snapshot()
        assert snap["decisions"] > 0
        assert snap["brownout"]["climbs"] >= 1
        assert snap["scaling"]["scale_outs"] >= 1
        pool_snap = scenario["snapshot"]
        assert "brownout" in pool_snap and "scaling" in pool_snap

    def test_scaling_emits_obs_signals(self, scenario):
        metrics = scenario["pool"].obs.metrics.render_text()
        assert "autoscaler_events_total" in metrics
        assert "brownout_transitions_total" in metrics
        assert "pool_devices" in metrics

    def test_validation(self, scenario):
        with pytest.raises(ValueError):
            ScaleController(
                scenario["pool"], SLO(latency_budget=1.0), decision_interval=0.0
            )


class TestPlanCli:
    def run_cli(self, *argv):
        return subprocess.run(
            [sys.executable, "-m", "repro.scale", *argv],
            capture_output=True,
            text=True,
            env={**os.environ, "PYTHONPATH": SRC},
        )

    def test_json_plan_is_feasible_and_machine_readable(self):
        proc = self.run_cli(
            "plan", "--mix", "storage", "--gap", "3000", "--reps", "32", "--json"
        )
        assert proc.returncode == 0, proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["best"] is not None
        assert payload["best"]["composition"]["protoacc"] >= 1
        assert payload["feasible"] >= 1
        assert payload["best"]["bound_latency"] <= 30_000.0

    def test_text_plan_names_the_cheapest_fleet(self):
        proc = self.run_cli("plan", "--mix", "enterprise", "--reps", "32")
        assert proc.returncode == 0, proc.stderr
        assert "cheapest:" in proc.stdout
        assert "1x cpu" in proc.stdout

    def test_infeasible_slo_exits_nonzero(self):
        proc = self.run_cli(
            "plan", "--mix", "storage", "--budget", "10", "--reps", "16"
        )
        assert proc.returncode == 1
        assert "no searched fleet" in proc.stdout
