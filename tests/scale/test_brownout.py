"""The brownout degradation ladder: rung mechanics and pool effects."""

import pytest

from repro.obs import Obs
from repro.runtime.pool import DevicePool, rpc_device
from repro.runtime.serving import REASON_ADMISSION_REJECTED, REASON_PRIORITY_SHED
from repro.scale import BrownoutPolicy, DegradationLadder, Rung
from repro.scale.slo import SloStatus


def status(ok: bool, at: float = 0.0) -> SloStatus:
    return SloStatus(
        at=at,
        latency=1.0,
        loss_rate=0.0,
        served=100,
        losses=0,
        latency_ok=ok,
        loss_ok=True,
    )


@pytest.fixture
def pool():
    obs = Obs.enabled(drift=False)
    return DevicePool(
        [rpc_device("protoacc", obs=obs), rpc_device("cpu", obs=obs)],
        policy="interface_predicted",
        obs=obs,
    )


def climb_to(ladder, rung: Rung, at: float = 0.0) -> None:
    while ladder.rung < rung:
        for _ in range(ladder.policy.climb_after):
            ladder.update(status(False, at))


class TestRungMechanics:
    def test_climbs_only_after_streak(self, pool):
        ladder = DegradationLadder(pool, BrownoutPolicy(climb_after=3))
        ladder.update(status(False))
        ladder.update(status(False))
        assert ladder.rung is Rung.NORMAL
        ladder.update(status(False))
        assert ladder.rung is Rung.NO_HEDGING

    def test_one_good_verdict_resets_the_climb_streak(self, pool):
        ladder = DegradationLadder(pool, BrownoutPolicy(climb_after=3))
        ladder.update(status(False))
        ladder.update(status(False))
        ladder.update(status(True))
        ladder.update(status(False))
        ladder.update(status(False))
        assert ladder.rung is Rung.NORMAL

    def test_descends_after_sustained_health(self, pool):
        policy = BrownoutPolicy(climb_after=1, descend_after=4)
        ladder = DegradationLadder(pool, policy)
        ladder.update(status(False))
        assert ladder.rung is Rung.NO_HEDGING
        for _ in range(3):
            ladder.update(status(True))
        assert ladder.rung is Rung.NO_HEDGING
        ladder.update(status(True))
        assert ladder.rung is Rung.NORMAL

    def test_caps_at_top_rung_and_floor(self, pool):
        ladder = DegradationLadder(pool, BrownoutPolicy(climb_after=1, descend_after=1))
        for _ in range(10):
            ladder.update(status(False))
        assert ladder.rung is Rung.REJECT_ADMISSION
        for _ in range(10):
            ladder.update(status(True))
        assert ladder.rung is Rung.NORMAL
        assert ladder.climbed() == 4 and ladder.descended() == 4


class TestPoolEffects:
    def test_rung_one_disables_hedging(self, pool):
        ladder = DegradationLadder(pool, BrownoutPolicy(climb_after=1))
        assert pool.hedging_enabled
        climb_to(ladder, Rung.NO_HEDGING)
        assert not pool.hedging_enabled

    def test_rung_three_coarsens_pricing(self, pool):
        ladder = DegradationLadder(pool, BrownoutPolicy(climb_after=1))
        assert not any(d.coarse_pricing for d in pool.devices)
        climb_to(ladder, Rung.COARSE_PRICING)
        assert all(d.coarse_pricing for d in pool.devices)
        # Descending re-enables exact pricing and hedging.
        for _ in range(100):
            ladder.update(status(True))
        assert not any(d.coarse_pricing for d in pool.devices)
        assert pool.hedging_enabled

    def test_transitions_visible_in_pool_snapshot_and_metrics(self, pool):
        ladder = DegradationLadder(pool, BrownoutPolicy(climb_after=1))
        climb_to(ladder, Rung.SHED_LOW, at=42.0)
        snap = pool.snapshot()["brownout"]
        assert snap["rung_label"] == "shed_low"
        assert len(snap["transitions"]) == 2
        metrics = pool.obs.metrics.render_text()
        assert "brownout_transitions_total" in metrics
        assert "brownout_rung" in metrics


class TestAdmission:
    def test_admits_everyone_at_normal(self, pool):
        ladder = DegradationLadder(pool, BrownoutPolicy())
        for priority in ("low", "normal", "high"):
            assert ladder.admission_reason(priority) is None

    def test_sheds_low_priority_from_rung_two(self, pool):
        ladder = DegradationLadder(pool, BrownoutPolicy(climb_after=1))
        climb_to(ladder, Rung.SHED_LOW)
        assert ladder.admission_reason("low") == REASON_PRIORITY_SHED
        assert ladder.admission_reason("normal") is None
        assert ladder.admission_reason("high") is None

    def test_rejects_all_but_protected_at_the_top(self, pool):
        ladder = DegradationLadder(pool, BrownoutPolicy(climb_after=1))
        climb_to(ladder, Rung.REJECT_ADMISSION)
        assert ladder.admission_reason("low") == REASON_ADMISSION_REJECTED
        assert ladder.admission_reason("normal") == REASON_ADMISSION_REJECTED
        assert ladder.admission_reason("high") is None
