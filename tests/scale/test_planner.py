"""Offline capacity planning: pricing, feasibility, the crossover."""

import pytest

from repro.perf import EvalCache
from repro.scale import SLO, CapacityPlanner, standard_templates
from repro.workloads import ENTERPRISE_MIX, STORAGE_MIX

REPS = 32


@pytest.fixture(scope="module")
def planner():
    templates = standard_templates(seed=117, cache=EvalCache())
    return CapacityPlanner(templates, reps=REPS, seed=11)


class TestProfiles:
    def test_one_profile_per_kind_sized_to_reps(self, planner):
        profiles = planner.profile_kinds(STORAGE_MIX)
        assert set(profiles) == {"protoacc", "optimus-prime", "cpu"}
        for profile in profiles.values():
            assert len(profile.services) == REPS
            assert profile.mean_service > 0

    def test_contracted_kinds_carry_their_epsilon(self, planner):
        profiles = planner.profile_kinds(STORAGE_MIX)
        assert profiles["protoacc"].epsilon > 0
        assert profiles["protoacc"].max_latency < float("inf")
        # The software server is ground truth: no contract, no slack.
        assert profiles["cpu"].epsilon == 0.0


class TestEvaluate:
    def test_bound_envelops_the_point_estimate(self, planner):
        profiles = planner.profile_kinds(STORAGE_MIX)
        plan = planner.evaluate(
            {"protoacc": 2, "optimus-prime": 0, "cpu": 0},
            profiles,
            2_000.0,
            SLO(latency_budget=30_000.0),
        )
        assert plan.bound_latency >= plan.predicted_latency
        assert plan.traffic["protoacc"] == 1.0

    def test_overloaded_composition_is_infeasible(self, planner):
        profiles = planner.profile_kinds(STORAGE_MIX)
        slo = SLO(latency_budget=30_000.0)
        # One CPU server (~7.6k cycles/req) against a 1k-cycle gap.
        plan = planner.evaluate(
            {"protoacc": 0, "optimus-prime": 0, "cpu": 1}, profiles, 1_000.0, slo
        )
        assert not planner.meets(plan, slo)

    def test_rho_ceiling_gates_feasibility(self, planner):
        profiles = planner.profile_kinds(STORAGE_MIX)
        slo = SLO(latency_budget=10_000_000.0)  # latency never binds
        plan = planner.evaluate(
            {"protoacc": 1, "optimus-prime": 0, "cpu": 0}, profiles, 1_700.0, slo
        )
        assert plan.utilization > planner.rho_max
        assert not planner.meets(plan, slo)


class TestSearch:
    def test_cheapest_feasible_wins(self, planner):
        slo = SLO(latency_budget=30_000.0)
        best, evaluated = planner.plan(STORAGE_MIX, 3_000.0, slo, max_per_kind=2)
        assert best is not None and planner.meets(best, slo)
        cheaper = [
            p for p in evaluated if p.cost < best.cost and planner.meets(p, slo)
        ]
        assert not cheaper

    def test_paper_crossover_storage_vs_enterprise(self, planner):
        # The paper's crossover, reproduced by planning alone: large
        # storage messages want the accelerator, small enterprise
        # messages are served cheapest by the plain CPU server.
        slo = SLO(latency_budget=30_000.0)
        storage, _ = planner.plan(STORAGE_MIX, 3_000.0, slo, max_per_kind=2)
        enterprise, _ = planner.plan(ENTERPRISE_MIX, 1_000.0, slo, max_per_kind=2)
        assert storage.composition["protoacc"] >= 1
        assert storage.composition["cpu"] == 0
        assert enterprise.composition == {"protoacc": 0, "optimus-prime": 0, "cpu": 1}

    def test_impossible_slo_returns_none(self, planner):
        best, evaluated = planner.plan(
            STORAGE_MIX, 3_000.0, SLO(latency_budget=10.0), max_per_kind=2
        )
        assert best is None
        assert evaluated  # the search itself still ran

    def test_build_fleet_realizes_the_composition(self, planner):
        slo = SLO(latency_budget=30_000.0)
        best, _ = planner.plan(STORAGE_MIX, 1_000.0, slo, max_per_kind=3)
        devices = planner.build_fleet(best)
        assert len(devices) == best.devices
        by_kind: dict[str, int] = {}
        for d in devices:
            kind = d.name.rsplit("-p", 1)[0]
            by_kind[kind] = by_kind.get(kind, 0) + 1
        assert by_kind == {k: n for k, n in best.composition.items() if n}

    def test_validation(self, planner):
        with pytest.raises(ValueError):
            CapacityPlanner([])
        with pytest.raises(ValueError):
            planner.plan(STORAGE_MIX, 0.0, SLO(latency_budget=1.0))
