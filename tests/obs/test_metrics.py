"""MetricsRegistry: instrument semantics, labels, exposition."""

import pytest

from repro.hw import Fifo
from repro.obs import Histogram, MetricsRegistry, watch_fifo


class TestInstruments:
    def test_counter_accumulates_and_rejects_negative(self):
        reg = MetricsRegistry()
        c = reg.counter("requests_total", path="accel")
        c.inc()
        c.inc(4)
        assert reg.counter("requests_total", path="accel").value == 5.0
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_labels_identify_series(self):
        reg = MetricsRegistry()
        reg.counter("x_total", device="a").inc()
        reg.counter("x_total", device="b").inc(2)
        snap = reg.snapshot()
        assert snap['x_total{device="a"}'] == 1.0
        assert snap['x_total{device="b"}'] == 2.0

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        reg.counter("y_total", a="1", b="2").inc()
        assert reg.counter("y_total", b="2", a="1").value == 1.0

    def test_gauge_goes_both_ways(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(5)
        g.dec(2)
        g.inc()
        assert g.value == 4.0

    def test_kind_conflicts_raise(self):
        reg = MetricsRegistry()
        reg.counter("z_total")
        with pytest.raises(ValueError, match="counter"):
            reg.gauge("z_total")

    def test_histogram_bucket_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.histogram("lat_cycles", buckets=(10.0, 100.0))
        with pytest.raises(ValueError, match="buckets"):
            reg.histogram("lat_cycles", buckets=(10.0, 50.0))


class TestHistogram:
    def test_observe_and_cumulative_snapshot(self):
        h = Histogram(buckets=(10.0, 100.0))
        for v in (1, 5, 50, 500):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 4 and snap["sum"] == 556.0
        assert snap["buckets"] == {"10": 2, "100": 3, "+Inf": 4}
        assert h.mean == pytest.approx(139.0)

    def test_quantile_is_bucket_resolution(self):
        h = Histogram(buckets=(10.0, 100.0))
        for v in (1, 2, 3, 50):
            h.observe(v)
        assert h.quantile(0.5) == 10.0
        assert h.quantile(1.0) == 100.0
        h.observe(1e9)
        assert h.quantile(1.0) == float("inf")
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_bounds_must_increase(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(10.0, 10.0))
        with pytest.raises(ValueError):
            Histogram(buckets=())


class TestExposition:
    def test_render_text_prometheus_shape(self):
        reg = MetricsRegistry()
        reg.counter("req_total", path="accel").inc(3)
        reg.histogram("lat_cycles", buckets=(10.0,)).observe(4)
        text = reg.render_text()
        assert "# TYPE req_total counter" in text
        assert 'req_total{path="accel"} 3' in text
        assert 'lat_cycles_bucket{le="10"} 1' in text
        assert "lat_cycles_count 1" in text

    def test_watch_fifo_probe_samples_at_snapshot(self):
        reg = MetricsRegistry()
        fifo = Fifo(4, "ingress")
        watch_fifo(reg, fifo)
        fifo.push(1)
        fifo.push(2)
        fifo.pop()
        snap = reg.snapshot()
        assert snap['fifo_depth{fifo="ingress"}'] == 1.0
        assert snap['fifo_high_water{fifo="ingress"}'] == 2.0
        assert snap['fifo_pushes{fifo="ingress"}'] == 2.0
