"""Tracer semantics: emission, disabled no-ops, Chrome export shape."""

import json

import pytest

from repro.obs import Tracer, active


class TestEmission:
    def test_spans_record_in_order(self):
        tr = Tracer()
        tr.add_span("a", 0.0, 10.0, cat="x.y", tid="t1")
        tr.add_span("b", 10.0, 12.0, cat="x.z", tid="t1")
        assert len(tr) == 2
        assert tr.spans() == [
            ("a", 0.0, 10.0, "x.y", "t1"),
            ("b", 10.0, 12.0, "x.z", "t1"),
        ]

    def test_category_prefix_filter(self):
        tr = Tracer()
        tr.add_span("a", 0, 1, cat="petri.fire")
        tr.add_span("b", 1, 2, cat="petri.timeout")
        tr.add_span("c", 2, 3, cat="runtime.offload")
        assert [s[0] for s in tr.spans("petri")] == ["a", "b"]
        assert tr.categories() == {"petri.fire", "petri.timeout", "runtime.offload"}

    def test_instants_and_counters_are_not_spans(self):
        tr = Tracer()
        tr.instant("trip", 5.0, cat="runtime.breaker")
        tr.counter("depth", 1.0, 3)
        assert len(tr) == 2
        assert tr.spans() == []

    def test_disabled_tracer_records_nothing(self):
        tr = Tracer(enabled=False)
        tr.add_span("a", 0, 1)
        tr.instant("b", 0)
        tr.counter("c", 0, 1)
        with tr.wall_span("d"):
            pass
        assert len(tr) == 0 and tr.dropped == 0

    def test_active_normalizes_none_and_disabled(self):
        assert active(None) is None
        assert active(Tracer(enabled=False)) is None
        tr = Tracer()
        assert active(tr) is tr

    def test_max_events_caps_memory(self):
        tr = Tracer(max_events=3)
        for i in range(10):
            tr.add_span(f"s{i}", i, i + 1)
        assert len(tr) == 3
        assert tr.dropped == 7
        tr.clear()
        assert len(tr) == 0 and tr.dropped == 0

    def test_wall_span_measures_real_time(self):
        tr = Tracer()
        with tr.wall_span("host-work", cat="perf.sweep"):
            sum(range(1000))
        (span,) = tr.spans()
        assert span[0] == "host-work"
        assert span[2] >= span[1]  # non-negative duration

    def test_rejects_bad_max_events(self):
        with pytest.raises(ValueError):
            Tracer(max_events=0)


class TestChromeExport:
    def test_document_structure(self, tmp_path):
        tr = Tracer()
        tr.add_span("fire", 100.0, 130.0, cat="petri.fire", tid="net")
        tr.instant("trip", 140.0, cat="runtime.breaker", tid="dev")
        with tr.wall_span("sweep"):
            pass
        doc = tr.export_chrome_trace()
        events = doc["traceEvents"]
        # Process metadata for both clocks plus thread names.
        proc_names = [e for e in events if e["ph"] == "M" and e["name"] == "process_name"]
        assert {e["pid"] for e in proc_names} == {1, 2}
        thread_names = [e for e in events if e["ph"] == "M" and e["name"] == "thread_name"]
        assert {e["args"]["name"] for e in thread_names} == {"net", "dev", "host"}
        xs = [e for e in events if e["ph"] == "X"]
        assert any(e["name"] == "fire" and e["dur"] == 30.0 and e["pid"] == 1 for e in xs)
        assert any(e["name"] == "sweep" and e["pid"] == 2 for e in xs)
        (inst,) = [e for e in events if e["ph"] == "i"]
        assert inst["s"] == "t" and inst["ts"] == 140.0

        # Round-trips through JSON on disk.
        path = tr.export_chrome_trace(tmp_path / "t.json")
        loaded = json.loads(path.read_text())
        assert len(loaded["traceEvents"]) == len(events)
        assert loaded["otherData"]["dropped_events"] == 0
