"""Tests for the embedded time-series store (repro.obs.tsdb)."""

import pytest

from repro.obs import TimeSeriesStore
from repro.obs.metrics import MetricsRegistry
from repro.obs.tsdb import series_key


class TestSeriesKey:
    def test_bare_name(self):
        assert series_key("queue_depth", {}) == "queue_depth"

    def test_labels_sorted_and_quoted(self):
        key = series_key("calls", {"device": "protoacc", "class": "small"})
        assert key == 'calls{class="small",device="protoacc"}'


class TestRecordAndQuery:
    def test_points_time_ordered_and_windowed(self):
        store = TimeSeriesStore()
        for at in (10.0, 20.0, 30.0, 40.0):
            store.record("lat", at, at * 2)
        assert store.points("lat") == [(10.0, 20.0), (20.0, 40.0), (30.0, 60.0), (40.0, 80.0)]
        assert store.points("lat", since=20.0, until=30.0) == [(20.0, 40.0), (30.0, 60.0)]
        assert store.points("missing") == []

    def test_labels_split_series(self):
        store = TimeSeriesStore()
        store.record("lat", 1.0, 5.0, device="a")
        store.record("lat", 1.0, 9.0, device="b")
        assert store.points('lat{device="a"}') == [(1.0, 5.0)]
        assert store.points('lat{device="b"}') == [(1.0, 9.0)]

    def test_ring_evicts_oldest(self):
        store = TimeSeriesStore(capacity=4)
        for i in range(10):
            store.record("x", float(i), float(i))
        pts = store.points("x")
        assert len(pts) == 4
        assert pts == [(6.0, 6.0), (7.0, 7.0), (8.0, 8.0), (9.0, 9.0)]

    def test_latest(self):
        store = TimeSeriesStore()
        assert store.latest("x") is None
        store.record("x", 1.0, 10.0)
        store.record("x", 5.0, 50.0)
        assert store.latest("x") == (5.0, 50.0)

    def test_rate_needs_elapsed_time(self):
        store = TimeSeriesStore()
        assert store.rate("x") is None
        store.record("x", 0.0, 0.0)
        assert store.rate("x") is None
        store.record("x", 100.0, 50.0)
        assert store.rate("x") == pytest.approx(0.5)

    def test_quantile_over_time(self):
        store = TimeSeriesStore()
        for i in range(1, 11):
            store.record("q", float(i), float(i))
        assert store.quantile_over_time("q", 0.0) == 1.0
        assert store.quantile_over_time("q", 1.0) == 10.0
        assert store.quantile_over_time("q", 0.5) in (5.0, 6.0)
        with pytest.raises(ValueError):
            store.quantile_over_time("q", 1.5)

    def test_downsampled_buckets(self):
        store = TimeSeriesStore(resolutions=(100.0,))
        for at, v in ((10.0, 1.0), (20.0, 3.0), (150.0, 10.0)):
            store.record("d", at, v)
        buckets = store.downsampled("d", 100.0)
        assert len(buckets) == 2
        start, first = buckets[0]
        assert start == 0.0
        assert first["count"] == 2 and first["sum"] == 4.0
        assert first["min"] == 1.0 and first["max"] == 3.0
        with pytest.raises(ValueError):
            store.downsampled("d", 777.0)


class TestEvents:
    def test_event_log_ordered_filtered_bounded(self):
        store = TimeSeriesStore(event_capacity=3)
        store.event("scale:out", 20.0, device="p1")
        store.event("brownout:climb", 10.0, rung=1)
        store.event("scale:in", 30.0, device="p1")
        store.event("scale:out", 40.0, device="p2")  # over capacity
        assert store.dropped_events == 1
        events = store.events()
        assert [name for _, name, _ in events] == [
            "brownout:climb",
            "scale:out",
            "scale:in",
        ]
        assert [name for _, name, _ in store.events("scale:")] == [
            "scale:out",
            "scale:in",
        ]
        assert [at for at, _, _ in store.events(since=15.0, until=25.0)] == [20.0]


class TestPump:
    def test_pump_folds_metrics_snapshot(self):
        metrics = MetricsRegistry()
        metrics.counter("calls_total", device="a").inc(3)
        metrics.gauge("depth").set(7)
        store = TimeSeriesStore()
        written = store.pump(metrics, at=100.0)
        assert written >= 2
        assert store.latest('calls_total{device="a"}') == (100.0, 3.0)
        assert store.latest("depth") == (100.0, 7.0)
        assert store.pumps == 1 and store.last_pump_at == 100.0

    def test_pump_histograms_become_count_and_sum(self):
        metrics = MetricsRegistry()
        metrics.histogram("wait").observe(5.0)
        metrics.histogram("wait").observe(15.0)
        store = TimeSeriesStore()
        store.pump(metrics, at=50.0)
        assert store.latest("wait:count") == (50.0, 2.0)
        assert store.latest("wait:sum") == (50.0, 20.0)

    def test_pump_none_metrics_is_a_noop(self):
        store = TimeSeriesStore()
        assert store.pump(None, at=1.0) == 0

    def test_maybe_pump_throttles(self):
        metrics = MetricsRegistry()
        metrics.gauge("g").set(1)
        store = TimeSeriesStore(pump_interval=1_000.0)
        assert store.maybe_pump(metrics, at=0.0) > 0
        assert store.maybe_pump(metrics, at=500.0) == 0  # inside the interval
        assert store.maybe_pump(metrics, at=1_500.0) > 0


class TestSnapshot:
    def test_snapshot_freshness(self):
        store = TimeSeriesStore()
        store.record("a", 5.0, 1.0)
        store.record("b", 9.0, 2.0)
        store.event("scale:out", 11.0)
        snap = store.snapshot()
        assert snap["series"] == 2
        assert snap["points"] == 2
        assert snap["events"] == 1
        assert snap["last_at"] == 11.0
