"""DriftObservatory: per-(device, class) error tracking and detection."""

import numpy as np
import pytest

from repro.obs import (
    DEFAULT_SIZE_CLASSES,
    DriftObservatory,
    MetricsRegistry,
    Obs,
    SizeClasses,
    rpc_size_class,
)
from repro.runtime.degrade import DriftDetector
from repro.workloads.rpc import sized_message


def msg(size):
    return sized_message(size, np.random.default_rng(0))


class TestClassifier:
    def test_size_classes(self):
        assert rpc_size_class(msg(16)) == "small"
        assert rpc_size_class(msg(512)) == "medium"
        assert rpc_size_class(msg(4096)) == "large"

    def test_non_message_falls_back_to_type_name(self):
        assert rpc_size_class(42) == "int"


class TestSizeClasses:
    def test_stock_spec_labels(self):
        assert DEFAULT_SIZE_CLASSES.labels == ("small", "medium", "large")
        assert DEFAULT_SIZE_CLASSES.classify(msg(16)) == "small"

    def test_custom_boundaries_are_inclusive(self):
        spec = SizeClasses(boundaries=(("a", 10), ("b", 20)), overflow="c")
        sized = type("Sized", (), {"encoded_size": lambda self: 10})()
        assert spec.classify(sized) == "a"
        assert spec.labels == ("a", "b", "c")

    @pytest.mark.parametrize(
        "bad",
        [
            dict(boundaries=(("a", 20), ("b", 10))),  # descending
            dict(boundaries=(("a", 10), ("b", 10))),  # duplicate bound
            dict(boundaries=(("a", 10),), overflow="a"),  # duplicate label
        ],
    )
    def test_invalid_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            SizeClasses(**bad)

    def test_observatory_adopts_spec_and_exposes_it(self):
        spec = SizeClasses(boundaries=(("tiny", 100),), overflow="huge")
        obs = DriftObservatory(classifier=spec)
        assert obs.size_classes is spec
        obs.observe("dev", msg(16), 1.0, 1.0)
        assert obs.keys() == [("dev", "tiny")]

    def test_bare_callable_classifier_has_no_spec(self):
        obs = DriftObservatory(classifier=lambda r: "all")
        assert obs.size_classes is None
        obs.observe("dev", msg(16), 1.0, 1.0)
        assert obs.keys() == [("dev", "all")]


class TestSubscribe:
    def test_subscriber_hears_every_observation(self):
        obs = DriftObservatory(
            detector_factory=lambda: DriftDetector(
                threshold=0.2, window=8, min_samples=2
            )
        )
        heard = []

        def probe(device, rpc_class, request, predicted, observed, *, drifting, at):
            heard.append((device, rpc_class, predicted, observed, drifting, at))

        obs.subscribe(probe)
        request = msg(16)
        obs.observe("dev", request, 100.0, 100.0, at=10.0)
        assert heard == [("dev", "small", 100.0, 100.0, False, 10.0)]
        # The verdict forwarded to subscribers is the live one.
        for i in range(8):
            obs.observe("dev", request, 200.0, 100.0, at=20.0 + i)
        assert heard[-1][4] is True

    def test_reset_detector_clears_verdict_but_keeps_history(self):
        obs = DriftObservatory(
            detector_factory=lambda: DriftDetector(
                threshold=0.2, window=8, min_samples=2
            )
        )
        for _ in range(8):
            obs.observe("dev", msg(16), 200.0, 100.0)
        assert obs.drifting_keys() == [("dev", "small")]
        obs.reset_detector("dev", "small")
        assert obs.drifting_keys() == []
        # Error history and sample counts survive — only the detector
        # window (which scored the replaced interface) is forgotten.
        assert obs.samples("dev", "small") == 8
        assert obs.error_summary("dev", "small").mean == pytest.approx(1.0)

    def test_reset_unknown_key_is_a_no_op(self):
        DriftObservatory().reset_detector("ghost", "small")


class TestObserve:
    def test_exact_mean_via_window_folding(self):
        obs = DriftObservatory(window=4)
        errors = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6]  # predicted = (1+e) * 100
        for e in errors:
            obs.observe("dev", msg(16), 100.0 * (1 + e), 100.0)
        summary = obs.error_summary("dev", "small")
        # Mean/min/max merge exactly across folded windows + live chunk.
        assert summary.count == 6
        assert summary.mean == pytest.approx(sum(errors) / 6)
        assert summary.minimum == pytest.approx(0.1)
        assert summary.maximum == pytest.approx(0.6)

    def test_reservoir_quantiles_track_stream(self):
        obs = DriftObservatory(reservoir_capacity=64)
        for i in range(500):
            obs.observe("dev", msg(16), 110.0, 100.0)
        quant = obs.error_quantiles("dev", "small")
        assert quant.p50 == pytest.approx(0.10)
        assert obs.samples("dev", "small") == 500

    def test_detector_flags_sustained_drift(self):
        obs = DriftObservatory(
            detector_factory=lambda: DriftDetector(
                threshold=0.2, window=8, min_samples=8
            )
        )
        for _ in range(8):
            assert not obs.observe("dev", msg(16), 100.0, 100.0)
        for _ in range(16):
            drifting = obs.observe("dev", msg(16), 200.0, 100.0)
        assert drifting
        assert obs.drifting_keys() == [("dev", "small")]
        assert "DRIFTING" in obs.report()

    def test_keys_are_per_device_and_class(self):
        obs = DriftObservatory()
        obs.observe("a", msg(16), 1.0, 1.0)
        obs.observe("a", msg(512), 1.0, 1.0)
        obs.observe("b", msg(16), 1.0, 1.0)
        assert obs.keys() == [("a", "medium"), ("a", "small"), ("b", "small")]

    def test_snapshot_carries_scores_and_timestamps(self):
        obs = DriftObservatory()
        obs.observe("dev", msg(16), 110.0, 100.0, at=1234.0)
        snap = obs.snapshot()
        entry = snap["dev/small"]
        assert entry["samples"] == 1
        assert entry["last_at"] == 1234.0
        assert entry["err_mean"] == pytest.approx(0.10)

    def test_metrics_integration(self):
        reg = MetricsRegistry()
        obs = DriftObservatory(metrics=reg)
        for _ in range(3):
            obs.observe("dev", msg(16), 110.0, 100.0)
        snap = reg.snapshot()
        assert snap['obs_drift_samples_total{device="dev",rpc_class="small"}'] == 3.0

    def test_empty_report(self):
        assert "no samples" in DriftObservatory().report()

    def test_window_validation(self):
        with pytest.raises(ValueError):
            DriftObservatory(window=0)


class TestObsBundle:
    def test_enabled_wires_observatory_to_registry(self):
        obs = Obs.enabled()
        assert obs.observatory.metrics is obs.metrics
        assert obs.active_tracer() is obs.tracer

    def test_partial_bundles(self):
        obs = Obs.enabled(tracing=False, drift=False)
        assert obs.tracer is None and obs.observatory is None
        assert obs.metrics is not None
        assert Obs().active_tracer() is None
