"""DriftObservatory: per-(device, class) error tracking and detection."""

import numpy as np
import pytest

from repro.obs import DriftObservatory, MetricsRegistry, Obs, rpc_size_class
from repro.runtime.degrade import DriftDetector
from repro.workloads.rpc import sized_message


def msg(size):
    return sized_message(size, np.random.default_rng(0))


class TestClassifier:
    def test_size_classes(self):
        assert rpc_size_class(msg(16)) == "small"
        assert rpc_size_class(msg(512)) == "medium"
        assert rpc_size_class(msg(4096)) == "large"

    def test_non_message_falls_back_to_type_name(self):
        assert rpc_size_class(42) == "int"


class TestObserve:
    def test_exact_mean_via_window_folding(self):
        obs = DriftObservatory(window=4)
        errors = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6]  # predicted = (1+e) * 100
        for e in errors:
            obs.observe("dev", msg(16), 100.0 * (1 + e), 100.0)
        summary = obs.error_summary("dev", "small")
        # Mean/min/max merge exactly across folded windows + live chunk.
        assert summary.count == 6
        assert summary.mean == pytest.approx(sum(errors) / 6)
        assert summary.minimum == pytest.approx(0.1)
        assert summary.maximum == pytest.approx(0.6)

    def test_reservoir_quantiles_track_stream(self):
        obs = DriftObservatory(reservoir_capacity=64)
        for i in range(500):
            obs.observe("dev", msg(16), 110.0, 100.0)
        quant = obs.error_quantiles("dev", "small")
        assert quant.p50 == pytest.approx(0.10)
        assert obs.samples("dev", "small") == 500

    def test_detector_flags_sustained_drift(self):
        obs = DriftObservatory(
            detector_factory=lambda: DriftDetector(
                threshold=0.2, window=8, min_samples=8
            )
        )
        for _ in range(8):
            assert not obs.observe("dev", msg(16), 100.0, 100.0)
        for _ in range(16):
            drifting = obs.observe("dev", msg(16), 200.0, 100.0)
        assert drifting
        assert obs.drifting_keys() == [("dev", "small")]
        assert "DRIFTING" in obs.report()

    def test_keys_are_per_device_and_class(self):
        obs = DriftObservatory()
        obs.observe("a", msg(16), 1.0, 1.0)
        obs.observe("a", msg(512), 1.0, 1.0)
        obs.observe("b", msg(16), 1.0, 1.0)
        assert obs.keys() == [("a", "medium"), ("a", "small"), ("b", "small")]

    def test_snapshot_carries_scores_and_timestamps(self):
        obs = DriftObservatory()
        obs.observe("dev", msg(16), 110.0, 100.0, at=1234.0)
        snap = obs.snapshot()
        entry = snap["dev/small"]
        assert entry["samples"] == 1
        assert entry["last_at"] == 1234.0
        assert entry["err_mean"] == pytest.approx(0.10)

    def test_metrics_integration(self):
        reg = MetricsRegistry()
        obs = DriftObservatory(metrics=reg)
        for _ in range(3):
            obs.observe("dev", msg(16), 110.0, 100.0)
        snap = reg.snapshot()
        assert snap['obs_drift_samples_total{device="dev",rpc_class="small"}'] == 3.0

    def test_empty_report(self):
        assert "no samples" in DriftObservatory().report()

    def test_window_validation(self):
        with pytest.raises(ValueError):
            DriftObservatory(window=0)


class TestObsBundle:
    def test_enabled_wires_observatory_to_registry(self):
        obs = Obs.enabled()
        assert obs.observatory.metrics is obs.metrics
        assert obs.active_tracer() is obs.tracer

    def test_partial_bundles(self):
        obs = Obs.enabled(tracing=False, drift=False)
        assert obs.tracer is None and obs.observatory is None
        assert obs.metrics is not None
        assert Obs().active_tracer() is None
