"""Tests for causal latency attribution (repro.obs.attribution).

The load-bearing property: for every served request of a traced run,
the attribution's segments fold left-to-right to *bit-exactly* the
observed end-to-end cycles — float ``==``, no tolerance.
"""

import pytest

from repro.obs import Obs, attribute, attribute_records, score_mispredictions
from repro.obs.attribution import STAGES, exact_residual
from repro.runtime import OpenLoopServer
from repro.runtime.pool import rpc_pool
from repro.workloads import ENTERPRISE_MIX, STORAGE_MIX


def serve(policy="round_robin", faults="storm", count=80, gap=500.0, seed=7, obs=None):
    obs = obs if obs is not None else Obs.enabled()
    pool = rpc_pool(policy, faults=faults, seed=seed, obs=obs)
    server = OpenLoopServer(pool, queue_limit=48, deadline=60_000.0, obs=obs)
    msgs, arrivals = ENTERPRISE_MIX.sample_open(seed=seed, count=count, mean_gap=gap)
    return obs, pool, server.run(msgs, arrivals)


class TestExactResidual:
    def test_fold_hits_total_exactly(self):
        prefix = [0.1, 0.2, 0.3]
        total = 1.0
        residual = exact_residual(prefix, total)
        acc = 0.0
        for v in [*prefix, residual]:
            acc += v
        assert acc == total

    def test_empty_prefix(self):
        assert exact_residual([], 42.5) == 42.5

    def test_adversarial_magnitudes(self):
        # Catastrophic-cancellation bait: huge and tiny terms mixed.
        prefix = [1e16, 1.0, -1e16, 3.14159, 1e-9]
        total = 7.25
        residual = exact_residual(prefix, total)
        acc = 0.0
        for v in [*prefix, residual]:
            acc += v
        assert acc == total


class TestExactSumInvariant:
    """The tentpole property, on the real serving stack."""

    @pytest.mark.parametrize("faults", ["none", "storm", "dram"])
    @pytest.mark.parametrize("policy", ["round_robin", "interface_predicted"])
    def test_every_request_sums_exactly(self, policy, faults):
        obs, _, result = serve(policy=policy, faults=faults)
        attrs = attribute(result, obs.tracer)
        assert len(attrs) == len(result.served)
        for a in attrs:
            assert a.total == a.end_to_end, (a.seq, a.segments)

    def test_segments_use_the_stage_vocabulary(self):
        obs, _, result = serve()
        for a in attribute(result, obs.tracer):
            for seg in a.segments:
                assert seg.stage in STAGES
            stages = a.stages()
            assert set(stages) <= set(STAGES)

    def test_dram_faults_surface_as_memory_segments(self):
        obs, _, result = serve(faults="dram", count=120, seed=11)
        attrs = attribute(result, obs.tracer)
        protoacc = [a for a in attrs if a.device == "protoacc" and a.path == "accel"]
        assert protoacc, "no protoacc traffic — widen the workload"
        assert any(a.segment("memory") > 0 for a in protoacc)

    def test_attribution_without_tracer_degrades_to_breakdowns(self):
        obs = Obs.enabled(tracing=False)
        obs2, _, result = serve(obs=obs)
        attrs = attribute(result, None)
        assert len(attrs) == len(result.served)
        for a in attrs:
            assert a.total == a.end_to_end


class TestMispredictionScoring:
    def test_scores_feed_the_observatory(self):
        obs, pool, result = serve(faults="dram", count=120, seed=11)
        attrs = attribute(result, obs.tracer, pool)
        comparisons = score_mispredictions(attrs, pool, obs.observatory)
        assert comparisons
        for c in comparisons:
            assert c["predicted"]["total"] > 0
            assert c["observed"]["total"] == c["end_to_end"]
        top = obs.observatory.top_mispredicted_stage("protoacc")
        assert top is not None
        stage, err = top
        assert stage == "memory" and err > 0

    def test_stage_snapshot_has_per_key_entries(self):
        obs, pool, result = serve(faults="dram", count=120, seed=11)
        score_mispredictions(attribute(result, obs.tracer, pool), pool, obs.observatory)
        snap = obs.observatory.stage_snapshot()
        assert any(key.startswith("protoacc/") for key in snap)
        for entry in snap.values():
            assert entry["samples"] >= 1
            assert 0.0 <= entry["err_mean"]


class TestPoolSnapshotExcerpts:
    """Satellite: pool.snapshot() carries the attribution excerpt and
    tsdb freshness info."""

    def test_snapshot_names_top_mispredicted_stage_per_device(self):
        obs, pool, result = serve(faults="dram", count=120, seed=11)
        score_mispredictions(attribute(result, obs.tracer, pool), pool, obs.observatory)
        snap = pool.snapshot()
        assert "attribution" in snap
        assert snap["attribution"]["protoacc"]["stage"] == "memory"
        assert snap["attribution"]["protoacc"]["err_mean"] > 0

    def test_snapshot_carries_tsdb_freshness(self):
        obs = Obs.enabled(tsdb=True)
        _, pool, _ = serve(obs=obs)
        snap = pool.snapshot()
        assert snap["tsdb"]["points"] > 0
        assert snap["tsdb"]["pumps"] >= 1
        assert snap["tsdb"]["last_pump_at"] is not None

    def test_snapshot_omits_excerpts_when_not_wired(self):
        obs = Obs.enabled(drift=False)
        _, pool, _ = serve(obs=obs)
        snap = pool.snapshot()
        assert "attribution" not in snap
        assert "tsdb" not in snap


class TestOfflineTapeAttribution:
    def test_records_split_exactly_and_blame_dram(self):
        from repro.runtime.pool import rpc_pool as build_pool

        obs = Obs.enabled()
        pool = build_pool("round_robin", faults="dram", seed=11, obs=obs)
        server = OpenLoopServer(pool, queue_limit=48, deadline=60_000.0, obs=obs)
        msgs, arrivals = STORAGE_MIX.sample_open(seed=11, count=120, mean_gap=600.0)
        server.run(msgs, arrivals)
        records = pool.device("protoacc").device.records
        assert records
        attrs = attribute_records(records)
        assert len(attrs) == len(records)
        for a in attrs:
            assert a.total == a.end_to_end
        faulted = [
            a for r, a in zip(records, attrs) if r.faults and r.path == "accel"
        ]
        assert faulted, "dram regime produced no faulted accel records"
        assert any(a.segment("memory") > 0 for a in faulted)
