"""Tests for the event kernel, FIFO, and statistics helpers."""

import math

import pytest

from repro.hw import ClockedSim, ErrorReport, EventSim, Fifo, SimError, Summary
from repro.hw.stats import relative_error, relative_errors


class TestEventSim:
    def test_events_run_in_time_order(self):
        sim = EventSim()
        log = []
        sim.at(5.0, lambda: log.append("b"))
        sim.at(1.0, lambda: log.append("a"))
        sim.run()
        assert log == ["a", "b"]

    def test_ties_run_in_schedule_order(self):
        sim = EventSim()
        log = []
        sim.at(1.0, lambda: log.append(1))
        sim.at(1.0, lambda: log.append(2))
        sim.run()
        assert log == [1, 2]

    def test_after_is_relative(self):
        sim = EventSim()
        times = []
        sim.at(3.0, lambda: sim.after(2.0, lambda: times.append(sim.now)))
        sim.run()
        assert times == [5.0]

    def test_past_scheduling_rejected(self):
        sim = EventSim()
        sim.at(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimError, match="cannot schedule"):
            sim.at(1.0, lambda: None)

    def test_until_stops(self):
        sim = EventSim()
        log = []
        for t in (1.0, 2.0, 3.0):
            sim.at(t, lambda t=t: log.append(t))
        end = sim.run(until=2.5)
        assert log == [1.0, 2.0]
        assert end == 2.5
        assert sim.pending() == 1

    def test_runaway_guard(self):
        sim = EventSim()

        def loop():
            sim.after(0.0, loop)

        sim.at(0.0, loop)
        with pytest.raises(SimError, match="events"):
            sim.run(max_events=100)


class TestClockedSim:
    def test_ticks_until_done(self):
        sim = ClockedSim()
        counter = {"n": 0}

        class M:
            def tick(self, cycle):
                counter["n"] = cycle

        sim.add(M())
        cycles = sim.run_until(lambda: counter["n"] >= 9)
        assert cycles == 10

    def test_hang_guard(self):
        sim = ClockedSim()

        class Idle:
            def tick(self, cycle):
                pass

        sim.add(Idle())
        with pytest.raises(SimError, match="cycles"):
            sim.run_until(lambda: False, max_cycles=100)


class TestFifo:
    def test_push_pop_order(self):
        f = Fifo(3)
        f.push(1)
        f.push(2)
        assert f.pop() == 1
        assert f.front() == 2

    def test_capacity_enforced(self):
        f = Fifo(1)
        f.push(1)
        assert not f.can_push()
        with pytest.raises(OverflowError):
            f.push(2)

    def test_empty_pop_raises(self):
        with pytest.raises(IndexError):
            Fifo(1).pop()
        with pytest.raises(IndexError):
            Fifo(1).front()

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Fifo(0)

    def test_statistics(self):
        f = Fifo(2)
        f.push(1)
        f.push(2)
        f.pop()
        assert (f.pushes, f.pops, f.high_water) == (2, 1, 2)


class TestStats:
    def test_summary_basic(self):
        s = Summary.of([1, 2, 3, 4])
        assert s.count == 4
        assert s.mean == 2.5
        assert s.minimum == 1
        assert s.maximum == 4

    def test_summary_empty_rejected(self):
        with pytest.raises(ValueError):
            Summary.of([])

    def test_relative_error(self):
        assert relative_error(110, 100) == pytest.approx(0.1)
        assert relative_error(0, 0) == 0.0
        assert math.isinf(relative_error(1, 0))

    def test_relative_errors_vectorized(self):
        errs = relative_errors([110, 90], [100, 100])
        assert errs.tolist() == pytest.approx([0.1, 0.1])

    def test_relative_errors_length_mismatch(self):
        with pytest.raises(ValueError):
            relative_errors([1], [1, 2])

    def test_error_report(self):
        rep = ErrorReport.of([110, 100], [100, 100])
        assert rep.avg == pytest.approx(0.05)
        assert rep.max == pytest.approx(0.1)
        assert "avg 5.00%" in rep.as_percent()
