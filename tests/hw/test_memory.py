"""Tests for the DRAM timing model."""

import pytest

from repro.hw import Dram, DramConfig


def cfg(**kw):
    defaults = dict(
        cas_latency=10,
        row_miss_penalty=20,
        banks=4,
        row_size=1024,
        bytes_per_beat=16,
        refresh_interval=1000,
        refresh_duration=50,
    )
    defaults.update(kw)
    return DramConfig(**defaults)


def test_first_access_is_a_row_miss():
    d = Dram(cfg())
    # Issue at t=100 to dodge the refresh window at t in [0, 50).
    done = d.access(0, at=100.0, size=16)
    assert done == 100 + 10 + 20 + 1
    assert d.row_hits == 0


def test_second_access_same_row_hits():
    d = Dram(cfg())
    t = d.access(0, at=100.0, size=16)
    done = d.access(16, at=t, size=16)
    assert done == t + 10 + 1
    assert d.row_hits == 1


def test_bank_conflict_queues():
    d = Dram(cfg())
    # Same bank (same row region), issued simultaneously: second queues.
    first = d.access(0, at=100.0, size=16)
    second = d.access(0, at=100.0, size=16)
    assert second > first


def test_different_banks_overlap():
    d = Dram(cfg())
    a = d.access(0, at=100.0, size=16)  # bank 0
    b = d.access(1024, at=100.0, size=16)  # bank 1
    assert a == b  # identical timing, no queueing


def test_refresh_window_delays_start():
    d = Dram(cfg())
    # t=1010 falls inside the refresh window [1000, 1050).
    done = d.access(0, at=1010.0, size=16)
    assert done >= 1050 + 10 + 20 + 1


def test_burst_beats_rounds_up():
    c = cfg()
    assert c.burst_beats(1) == 1
    assert c.burst_beats(16) == 1
    assert c.burst_beats(17) == 2


def test_read_span_crosses_rows():
    d = Dram(cfg())
    t_one_row = Dram(cfg()).read_span(0, 100.0, 512)
    t_two_rows = d.read_span(512, 100.0, 1024)  # crosses a row boundary
    assert d.accesses == 2
    assert t_two_rows > t_one_row


def test_expected_latency_tracks_hit_ratio():
    c = cfg()
    assert c.expected_latency(hit_ratio=1.0) < c.expected_latency(hit_ratio=0.0)


def test_mean_latency_statistic():
    d = Dram(cfg())
    d.access(0, at=100.0)
    d.access(4096, at=100.0)
    assert d.mean_latency > 0
    assert d.accesses == 2


def test_invalid_access_rejected():
    d = Dram(cfg())
    with pytest.raises(ValueError):
        d.access(-1, 0.0)
    with pytest.raises(ValueError):
        d.access(0, 0.0, size=0)


def test_reset_clears_state():
    d = Dram(cfg())
    d.access(0, at=100.0)
    d.reset()
    assert d.accesses == 0
    assert d.access(0, at=100.0) == 100 + 10 + 20 + 4  # miss again, 64B burst
