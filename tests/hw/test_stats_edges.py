"""Edge-case tests for repro.hw.stats: Summary.merge, Reservoir, and
the degenerate samples the happy-path suites never hit."""

import pytest

from repro.hw.stats import ErrorReport, Reservoir, Summary, relative_error


class TestSummaryEdges:
    def test_empty_sample_raises(self):
        with pytest.raises(ValueError, match="empty"):
            Summary.of([])

    def test_single_sample_quantiles_collapse_to_the_value(self):
        s = Summary.of([42.0])
        assert s.count == 1
        assert s.mean == s.minimum == s.maximum == 42.0
        assert s.p50 == s.p95 == s.p99 == 42.0

    def test_merge_zero_summaries_raises(self):
        with pytest.raises(ValueError, match="zero summaries"):
            Summary.merge()

    def test_merge_single_summary_is_identity(self):
        s = Summary.of([1.0, 2.0, 3.0])
        m = Summary.merge(s)
        assert m == s

    def test_merge_count_weighting(self):
        heavy = Summary.of([10.0] * 9)
        light = Summary.of([100.0])
        m = Summary.merge(heavy, light)
        assert m.count == 10
        assert m.mean == pytest.approx(19.0)
        assert m.minimum == 10.0 and m.maximum == 100.0
        # Quantiles are count-weighted averages of input quantiles.
        assert m.p50 == pytest.approx(0.9 * heavy.p50 + 0.1 * light.p50)

    def test_merge_is_order_invariant_on_exact_fields(self):
        a = Summary.of([1.0, 5.0])
        b = Summary.of([2.0, 8.0, 11.0])
        ab, ba = Summary.merge(a, b), Summary.merge(b, a)
        assert ab.count == ba.count
        assert ab.mean == pytest.approx(ba.mean)
        assert ab.minimum == ba.minimum and ab.maximum == ba.maximum


class TestReservoirEdges:
    def test_capacity_floor(self):
        with pytest.raises(ValueError):
            Reservoir(0)

    def test_underfull_keeps_everything_in_order(self):
        r = Reservoir(8, seed=1)
        r.extend([3.0, 1.0, 2.0])
        assert r.values == [3.0, 1.0, 2.0]
        assert r.seen == 3 and len(r) == 3

    def test_overflow_is_deterministic_under_seed(self):
        def fill(seed):
            r = Reservoir(16, seed=seed)
            r.extend(float(i) for i in range(1_000))
            return r

        a, b = fill(7), fill(7)
        assert a.values == b.values
        assert a.seen == b.seen == 1_000
        assert len(a) == 16
        # A different seed keeps a different sample of the same stream.
        c = fill(8)
        assert c.values != a.values

    def test_overflow_sample_is_bounded_and_from_the_stream(self):
        r = Reservoir(4, seed=0)
        stream = [float(i) for i in range(100)]
        r.extend(stream)
        assert len(r) == 4
        assert all(v in stream for v in r.values)

    def test_values_returns_a_copy(self):
        r = Reservoir(4, seed=0)
        r.add(1.0)
        r.values.append(99.0)
        assert r.values == [1.0]

    def test_summary_of_empty_reservoir_raises(self):
        with pytest.raises(ValueError):
            Reservoir(4).summary()

    def test_summary_counts_sample_not_stream(self):
        r = Reservoir(4, seed=0)
        r.extend(float(i) for i in range(50))
        s = r.summary()
        assert s.count == 4
        assert r.seen == 50


class TestRelativeErrorEdges:
    def test_zero_zero_is_zero(self):
        assert relative_error(0.0, 0.0) == 0.0

    def test_nonzero_prediction_against_zero_actual_is_inf(self):
        assert relative_error(5.0, 0.0) == float("inf")

    def test_error_report_isolates_unbounded_pairs(self):
        report = ErrorReport.of([1.0, 5.0], [1.0, 0.0])
        assert report.infinite == 1
        assert report.count == 2
        assert report.avg == 0.0 and report.max == 0.0
