"""Property test: the fast recurrence equals the cycle-ticking reference.

This is the license for calling the analytical models "cycle-level":
for arbitrary integer stage costs, fifo capacities, and arrival times,
LinePipeline and TickPipeline must produce identical schedules.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import LinePipeline, StageSpec, TickPipeline


@st.composite
def pipeline_case(draw):
    n_stages = draw(st.integers(min_value=1, max_value=4))
    n_items = draw(st.integers(min_value=1, max_value=12))
    costs = draw(
        st.lists(
            st.lists(st.integers(min_value=0, max_value=9), min_size=n_stages, max_size=n_stages),
            min_size=n_items,
            max_size=n_items,
        )
    )
    caps = draw(
        st.lists(st.integers(min_value=1, max_value=3), min_size=max(0, n_stages - 1), max_size=max(0, n_stages - 1))
    )
    gaps = draw(st.lists(st.integers(min_value=0, max_value=6), min_size=n_items, max_size=n_items))
    arrivals = []
    t = 0
    for g in gaps:
        t += g
        arrivals.append(t)
    return costs, caps, arrivals


@given(pipeline_case())
@settings(max_examples=120, deadline=None)
def test_recurrence_matches_tick_reference(case):
    costs, caps, arrivals = case
    n_stages = len(costs[0])
    stages = [
        StageSpec(f"s{s}", lambda item, s=s: item[s]) for s in range(n_stages)
    ]
    fast = LinePipeline(stages, fifo_capacity=caps or 1)
    slow = TickPipeline(stages, fifo_capacity=caps or 1)
    sched_fast = fast.schedule(costs, arrivals=arrivals)
    sched_slow = slow.schedule(costs, arrivals=arrivals)
    assert sched_fast.begin == sched_slow.begin
    assert sched_fast.done == sched_slow.done
    assert sched_fast.exit == sched_slow.exit


def test_equivalence_on_known_backpressure_case():
    stages = [StageSpec("a", lambda i: 1), StageSpec("b", lambda i: 10)]
    fast = LinePipeline(stages, fifo_capacity=1).schedule([0, 1, 2])
    slow = TickPipeline(stages, fifo_capacity=1).schedule([0, 1, 2])
    assert fast.exit == slow.exit
