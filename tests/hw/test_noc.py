"""Tests for the shared-interconnect model and its component interface."""

import pytest

from repro.hw.noc import BusConfig, SharedBus, expected_bus_delay


def test_config_validation():
    with pytest.raises(ValueError):
        BusConfig(background_utilization=0.95)
    with pytest.raises(ValueError):
        BusConfig(bytes_per_cycle=0)


def test_idle_bus_costs_service_only():
    bus = SharedBus(BusConfig())
    done = bus.request(at=100.0, size=64)
    assert done == 100.0 + 4 + 64 / 16
    assert bus.mean_wait == 0.0


def test_back_to_back_requests_queue():
    bus = SharedBus(BusConfig())
    first = bus.request(at=0.0, size=160)
    second = bus.request(at=0.0, size=16)
    assert second == first + 4 + 1


def test_size_validation():
    with pytest.raises(ValueError):
        SharedBus().request(0.0, 0)


def test_background_traffic_adds_waiting():
    idle = SharedBus(BusConfig())
    busy = SharedBus(BusConfig(background_utilization=0.6))
    t_idle = t_busy = 0.0
    for k in range(200):
        at = k * 100.0
        t_idle += idle.request(at, 64) - at
        t_busy += busy.request(at, 64) - at
    assert t_busy > t_idle
    assert busy.mean_wait > 0


def test_background_deterministic_given_seed():
    a = SharedBus(BusConfig(background_utilization=0.5, seed=3))
    b = SharedBus(BusConfig(background_utilization=0.5, seed=3))
    times_a = [a.request(k * 50.0, 64) for k in range(50)]
    times_b = [b.request(k * 50.0, 64) for k in range(50)]
    assert times_a == times_b


def test_expected_delay_matches_simulation():
    # The M/D/1 component interface must track the simulated mean.
    cfg = BusConfig(background_utilization=0.5)
    bus = SharedBus(cfg)
    total = 0.0
    n = 3000
    for k in range(n):
        at = k * 120.0  # sparse foreground: samples steady-state waiting
        total += bus.request(at, 64) - at
    simulated = total / n
    predicted = expected_bus_delay(64, cfg)
    assert abs(predicted - simulated) / simulated < 0.15


def test_expected_delay_grows_with_utilization():
    low = expected_bus_delay(64, BusConfig(background_utilization=0.1))
    high = expected_bus_delay(64, BusConfig(background_utilization=0.8))
    assert high > low
