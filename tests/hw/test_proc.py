"""Tests for the generator-process layer (repro.hw.proc)."""

import pytest

from repro.hw import EventSim
from repro.hw.kernel import SimError
from repro.hw.proc import Delay, Get, ProcQueue, Put, spawn


def run_procs(*gens):
    sim = EventSim()
    statuses = [spawn(sim, g(sim)) for g in gens]
    sim.run()
    return sim, statuses


def test_delay_advances_time():
    def proc(sim):
        yield Delay(5)
        yield Delay(7)

    sim, (status,) = run_procs(proc)
    assert status["done"]
    assert status["end"] == 12.0


def test_negative_delay_rejected():
    def proc(sim):
        yield Delay(-1)

    sim = EventSim()
    spawn(sim, proc(sim))
    with pytest.raises(SimError, match="negative delay"):
        sim.run()


def test_queue_transfers_items_in_order():
    sim = EventSim()
    q = ProcQueue(sim)
    received = []

    def producer(sim):
        for k in range(3):
            yield Delay(10)
            yield Put(q, k)

    def consumer(sim):
        for _ in range(3):
            item = yield Get(q)
            received.append((item, sim.now))

    spawn(sim, producer(sim))
    spawn(sim, consumer(sim))
    sim.run()
    assert [r[0] for r in received] == [0, 1, 2]
    assert [r[1] for r in received] == [10.0, 20.0, 30.0]


def test_get_blocks_until_put():
    sim = EventSim()
    q = ProcQueue(sim)
    times = {}

    def consumer(sim):
        item = yield Get(q)
        times["got"] = (sim.now, item)

    def producer(sim):
        yield Delay(42)
        yield Put(q, "x")

    spawn(sim, consumer(sim))
    spawn(sim, producer(sim))
    sim.run()
    assert times["got"] == (42.0, "x")


def test_bounded_queue_blocks_putter():
    sim = EventSim()
    q = ProcQueue(sim, capacity=1)
    log = []

    def producer(sim):
        yield Put(q, 1)
        yield Put(q, 2)  # blocks until consumer pops
        log.append(("put2", sim.now))

    def consumer(sim):
        yield Delay(100)
        yield Get(q)
        yield Get(q)

    spawn(sim, producer(sim))
    spawn(sim, consumer(sim))
    sim.run()
    assert log[0][1] == 100.0


def test_capacity_validation():
    sim = EventSim()
    with pytest.raises(SimError):
        ProcQueue(sim, capacity=0)


def test_unfinished_process_reports_not_done():
    sim = EventSim()
    q = ProcQueue(sim)

    def stuck(sim):
        yield Get(q)  # never satisfied

    status = spawn(sim, stuck(sim))
    sim.run()
    assert not status["done"]


def test_statistics():
    sim = EventSim()
    q = ProcQueue(sim)

    def producer(sim):
        yield Put(q, 1)
        yield Put(q, 2)

    def consumer(sim):
        yield Get(q)

    spawn(sim, producer(sim))
    spawn(sim, consumer(sim))
    sim.run()
    assert q.puts == 2
    assert q.gets == 1
    assert len(q) == 1
