"""Tests for the TLB model (§5 extension substrate)."""

import pytest

from repro.hw.tlb import Tlb, TlbConfig


def cfg(**kw):
    defaults = dict(entries=8, ways=2, page_bits=12, hit_cycles=1, walk_cycles=100)
    defaults.update(kw)
    return TlbConfig(**defaults)


def test_geometry_validated():
    with pytest.raises(ValueError):
        TlbConfig(entries=10, ways=4)


def test_first_access_misses_then_hits():
    tlb = Tlb(cfg())
    assert tlb.translate(0x1000, at=0.0) == 101.0
    assert tlb.translate(0x1FFF, at=0.0) == 1.0  # same page
    assert tlb.miss_ratio == 0.5


def test_different_pages_miss_separately():
    tlb = Tlb(cfg())
    tlb.translate(0x0000, 0.0)
    assert tlb.translate(0x2000, 0.0) == 101.0


def test_lru_eviction_within_set():
    tlb = Tlb(cfg(entries=2, ways=2))  # one set, two ways
    tlb.translate(0x0000, 0.0)  # page 0
    tlb.translate(0x1000, 0.0)  # page 1
    tlb.translate(0x0000, 0.0)  # touch page 0 (now MRU)
    tlb.translate(0x2000, 0.0)  # page 2 evicts page 1 (LRU)
    assert tlb.translate(0x0000, 0.0) == 1.0   # page 0 still resident
    assert tlb.translate(0x1000, 0.0) == 101.0  # page 1 evicted


def test_set_indexing_isolates_pages():
    tlb = Tlb(cfg(entries=8, ways=2))  # 4 sets
    # Pages 0 and 4 map to set 0; pages 1 and 5 to set 1 — filling set 0
    # never evicts set 1 residents.
    for page in (0, 4, 8, 12):  # all set 0, overflows 2 ways
        tlb.translate(page << 12, 0.0)
    tlb.translate(1 << 12, 0.0)
    assert tlb.translate(1 << 12, 0.0) == 1.0


def test_reset():
    tlb = Tlb(cfg())
    tlb.translate(0x0, 0.0)
    tlb.reset()
    assert tlb.lookups == 0
    assert tlb.translate(0x0, 0.0) == 101.0


def test_negative_vaddr_rejected():
    with pytest.raises(ValueError):
        Tlb(cfg()).translate(-1, 0.0)
