"""Unit tests for the analytical pipeline recurrence."""

import pytest

from repro.hw import LinePipeline, SimError, StageSpec


def const(c):
    return StageSpec(name=f"c{c}", cost=lambda _item, c=c: c)


def test_single_stage_serial():
    pipe = LinePipeline([const(4)])
    sched = pipe.schedule([None] * 3)
    assert sched.completion_times() == [4.0, 8.0, 12.0]
    assert sched.latencies() == [4.0, 8.0, 12.0]


def test_two_stage_overlap():
    # Classic pipelining: stages of 3 and 5; steady-state II = 5.
    pipe = LinePipeline([const(3), const(5)])
    sched = pipe.schedule([None] * 4)
    assert sched.completion_times() == [8.0, 13.0, 18.0, 23.0]


def test_throughput_is_bottleneck_rate():
    pipe = LinePipeline([const(3), const(5), const(2)])
    sched = pipe.schedule([None] * 200)
    assert sched.throughput() == pytest.approx(1 / 5, rel=0.05)


def test_backpressure_with_tiny_fifo():
    # Slow consumer with capacity-1 fifo stalls the producer.
    pipe = LinePipeline([const(1), const(10)], fifo_capacity=1)
    sched = pipe.schedule([None] * 3)
    assert sched.completion_times() == [11.0, 21.0, 31.0]


def test_larger_fifo_decouples_jitter():
    # Alternating slow/fast first stage; a big fifo lets stage 2 keep busy.
    costs = [9, 1, 9, 1, 9, 1]
    items = list(range(6))
    pipe_small = LinePipeline(
        [StageSpec("a", lambda i: costs[i]), StageSpec("b", lambda i: 5)],
        fifo_capacity=1,
    )
    pipe_big = LinePipeline(
        [StageSpec("a", lambda i: costs[i]), StageSpec("b", lambda i: 5)],
        fifo_capacity=8,
    )
    assert pipe_big.schedule(items).makespan() <= pipe_small.schedule(items).makespan()


def test_arrivals_gap_open_loop():
    pipe = LinePipeline([const(2)])
    sched = pipe.schedule([None] * 3, arrivals=[0, 10, 20])
    assert sched.latencies() == [2.0, 2.0, 2.0]


def test_arrivals_must_be_sorted():
    pipe = LinePipeline([const(2)])
    with pytest.raises(SimError, match="non-decreasing"):
        pipe.schedule([None, None], arrivals=[5, 1])


def test_arrivals_length_mismatch():
    pipe = LinePipeline([const(2)])
    with pytest.raises(SimError, match="length"):
        pipe.schedule([None], arrivals=[0, 1])


def test_negative_cost_rejected():
    pipe = LinePipeline([StageSpec("bad", lambda _i: -1)])
    with pytest.raises(SimError, match="negative cost"):
        pipe.schedule([None])


def test_empty_pipeline_rejected():
    with pytest.raises(SimError, match="at least one stage"):
        LinePipeline([])


def test_fifo_capacity_list_validated():
    with pytest.raises(SimError, match="capacities"):
        LinePipeline([const(1), const(1)], fifo_capacity=[1, 2])


def test_stage_busy_accounts_blocking():
    pipe = LinePipeline([const(1), const(10)], fifo_capacity=1)
    sched = pipe.schedule([None] * 3)
    # Stage 0 spends most of its life blocked on the fifo.
    assert sched.stage_busy(0) > 3 * 1


def test_empty_run():
    pipe = LinePipeline([const(1)])
    sched = pipe.schedule([])
    assert sched.makespan() == 0.0
    assert sched.throughput() == 0.0
