"""Streaming statistics: Summary.merge, Reservoir, zero-actual guards."""

import numpy as np
import pytest

from repro.hw import ErrorReport, Reservoir, Summary
from repro.hw.stats import relative_error, relative_errors


class TestSummaryMerge:
    def test_exact_fields_match_whole_sample(self):
        rng = np.random.default_rng(11)
        values = rng.exponential(100.0, size=1000)
        whole = Summary.of(values)
        parts = [Summary.of(chunk) for chunk in np.array_split(values, 7)]
        merged = Summary.merge(*parts)
        assert merged.count == whole.count
        assert merged.mean == pytest.approx(whole.mean)
        assert merged.minimum == whole.minimum
        assert merged.maximum == whole.maximum

    def test_quantiles_exact_for_identical_windows(self):
        window = Summary.of([1.0, 2.0, 3.0, 4.0])
        merged = Summary.merge(window, window, window)
        assert merged.p50 == window.p50
        assert merged.p95 == window.p95

    def test_quantiles_are_count_weighted(self):
        # 99 samples at p50=1.0 vs 1 sample at p50=101 → weighted close to 1.
        big = Summary.of([1.0] * 99)
        outlier = Summary.of([101.0])
        merged = Summary.merge(big, outlier)
        assert merged.p50 == pytest.approx(2.0)

    def test_merge_rejects_empty(self):
        with pytest.raises(ValueError):
            Summary.merge()

    def test_single_summary_is_identity(self):
        s = Summary.of([5.0, 7.0])
        assert Summary.merge(s) == s


class TestReservoir:
    def test_fills_then_stays_capped(self):
        r = Reservoir(50, seed=1)
        r.extend(range(500))
        assert len(r) == 50
        assert r.seen == 500
        assert all(0 <= v < 500 for v in r.values)

    def test_deterministic_for_seed(self):
        a, b = Reservoir(10, seed=3), Reservoir(10, seed=3)
        a.extend(range(100))
        b.extend(range(100))
        assert a.values == b.values

    def test_small_stream_is_kept_verbatim(self):
        r = Reservoir(100, seed=0)
        r.extend([3.0, 1.0, 2.0])
        assert r.values == [3.0, 1.0, 2.0]
        assert r.summary().count == 3

    def test_sample_quantiles_approximate_stream(self):
        rng = np.random.default_rng(5)
        stream = rng.exponential(1.0, size=20_000)
        r = Reservoir(2_000, seed=9)
        r.extend(stream)
        assert r.summary().p50 == pytest.approx(float(np.median(stream)), rel=0.1)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Reservoir(0)


class TestZeroActualGuard:
    """Satellite regression: zero actuals must follow the scalar guard,
    never numpy's nan/inf divide-by-zero path."""

    def test_vectorized_matches_scalar_elementwise(self):
        predicted = [1.0, 0.0, 2.0, 0.0, 5.0]
        actual = [0.0, 0.0, 4.0, 1.0, 0.0]
        vec = relative_errors(predicted, actual)
        for p, a, v in zip(predicted, actual, vec, strict=True):
            assert v == relative_error(p, a)
        assert not np.isnan(vec).any()

    def test_no_runtime_warnings(self):
        with np.errstate(divide="raise", invalid="raise"):
            out = relative_errors([1.0, 0.0], [0.0, 0.0])
        assert out[0] == float("inf") and out[1] == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="length"):
            relative_errors([1.0], [1.0, 2.0])

    def test_error_report_unbounded_pairs_counted(self):
        rep = ErrorReport.of([110.0, 5.0, 90.0], [100.0, 0.0, 100.0])
        assert rep.infinite == 1
        assert rep.count == 3
        assert np.isfinite(rep.avg) and np.isfinite(rep.max)
        assert rep.avg == pytest.approx(0.10)
        assert "[1 unbounded]" in rep.as_percent()

    def test_error_report_all_unbounded(self):
        rep = ErrorReport.of([5.0], [0.0])
        assert rep.infinite == 1 and rep.avg == 0.0 and rep.p50 is None

    def test_clean_report_unchanged(self):
        rep = ErrorReport.of([110.0, 90.0], [100.0, 100.0])
        assert rep.infinite == 0
        assert "unbounded" not in rep.as_percent()
