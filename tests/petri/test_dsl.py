"""Tests for the .pnet DSL parser and serializer."""

import pytest

from repro.petri import DslError, parse, run_workload, to_pnet

DOC = """
# A two-stage decoder.
net demo

place in
place q capacity 4
place out

transition front
  consume in
  produce q
  delay expr: tok * 2 + 1
  servers 1

transition back
  consume q
  produce out
  delay 3
  servers 2
  priority 1
"""


def test_parse_structure():
    net = parse(DOC)
    assert net.name == "demo"
    assert net.places["q"].capacity == 4
    assert net.transitions["back"].servers == 2
    assert net.transitions["back"].priority == 1


def test_parsed_net_simulates():
    net = parse(DOC)
    res = run_workload(net, [1])
    # front: 1*2+1 = 3, back: 3 -> 6 total.
    assert res.latencies() == [6.0]


def test_expr_delay_uses_math_whitelist():
    doc = """
net m
place in
place out
transition t
  consume in
  produce out
  delay expr: ceil(tok / 32) * 4
"""
    net = parse(doc)
    res = run_workload(net, [33])
    assert res.latencies() == [8.0]


def test_fn_delay_resolved_from_env():
    doc = """
net m
place in
place out
transition t
  consume in
  produce out
  delay fn: my_cost
"""
    net = parse(doc, env={"my_cost": lambda consumed: 7.0})
    assert run_workload(net, [None]).latencies() == [7.0]


def test_fn_delay_unknown_name_errors():
    doc = "net m\nplace in\nplace out\ntransition t\n consume in\n produce out\n delay fn: nope\n"
    with pytest.raises(DslError, match="unknown delay function"):
        parse(doc)


def test_guard_expr():
    doc = """
net m
place in
place out
place big
transition small
  consume in
  produce out
  delay 1
  guard expr: tok < 10
transition large
  consume in
  produce big
  delay 1
  guard expr: tok >= 10
"""
    net = parse(doc)
    res = run_workload(net, [3, 30], sinks=["out", "big"])
    assert len(res.completions["out"]) == 1
    assert len(res.completions["big"]) == 1


def test_arc_weights_in_dsl():
    doc = """
net m
place in
place out
transition t
  consume in:2
  produce out:3
  delay 1
"""
    net = parse(doc)
    res = run_workload(net, [None, None])
    assert len(res.sink()) == 3


def test_round_trip_preserves_behavior():
    net = parse(DOC)
    text = to_pnet(net)
    net2 = parse(text)
    r1 = run_workload(net, [1, 2, 3])
    r2 = run_workload(net2, [1, 2, 3])
    assert r1.latencies() == r2.latencies()


@pytest.mark.parametrize(
    "doc,msg",
    [
        ("place p\n", "place before net"),
        ("net a\nnet b\n", "multiple net"),
        ("net a\nplace p capacity x\n", "bad capacity"),
        ("net a\nplace in\ntransition t\n delay 1\n", "no consume clause"),
        ("net a\nbogus\n", "unexpected keyword"),
        ("net a\nplace in\nplace out\ntransition t\n consume in\n produce out\n delay expr: ][\n", "bad delay expression"),
        ("net a\nplace in\nplace out\ntransition t\n consume in\n produce out\n guard 1\n", "guard requires"),
    ],
)
def test_parse_errors(doc, msg):
    with pytest.raises(DslError, match=msg):
        parse(doc)


def test_error_carries_line_number():
    with pytest.raises(DslError) as exc:
        parse("net a\nplace p capacity zzz\n")
    assert exc.value.line == 2


def test_empty_document_rejected():
    with pytest.raises(DslError, match="no net declaration"):
        parse("# only a comment\n")
