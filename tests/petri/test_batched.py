"""Batch engines: chain detection, routing, and per-item compiled parity.

The parity sections drive ``repro.petri.differential``'s batched case
families — the same harness the CI engine-parity job runs — so a local
``pytest`` failure and a CI failure point at the same digest diff.
"""

import pytest

from repro.petri import (
    BatchEvaluator,
    CompiledNet,
    CompiledSimulator,
    PetriNet,
    chain_spec,
    chain_unsupported_reasons,
    codegen_supported,
    default_batch_engine,
    parse,
)
from repro.petri.batched import BATCH_ENGINE_ENV_VAR
from repro.petri.differential import (
    accel_batch_cases,
    batch_cases,
    compare_batch_engines,
    edge_batch_cases,
    random_chain_case,
    random_structural_batch_case,
)
from repro.petri.errors import SimulationError

CHAIN_PNET = """\
net chain

place in
place mid capacity 3
place out

transition a
  consume in
  produce mid
  delay expr: 1 + tok["x"] % 3

transition b
  consume mid
  produce out
  delay 2
"""


def chain_net():
    return parse(CHAIN_PNET)


def items_for(n_items, per_item=8):
    return [
        [("in", {"x": i * per_item + k}, 0.5 * k) for k in range(per_item)]
        for i in range(n_items)
    ]


# ----------------------------------------------------------------------
# Chain detection
# ----------------------------------------------------------------------


def test_dsl_chain_is_codegen_supported():
    net = chain_net()
    assert chain_unsupported_reasons(net, ["out"]) == []
    assert codegen_supported(net, ["out"])
    spec = chain_spec(net, ["out"])
    assert spec.stage_names == ("a", "b")
    assert spec.out_caps == (3, None)
    # The DSL expr delay is inlinable; the constant stage has no fn.
    assert spec.delay_srcs[0] is not None
    assert spec.delay_fns[1] is None


@pytest.mark.parametrize(
    "mutate, fragment",
    [
        (lambda n: setattr(n.transitions["a"], "servers", 2), "single-server"),
        (lambda n: setattr(n.transitions["a"], "servers", None), "single-server"),
        (lambda n: setattr(n.transitions["b"], "delay", 0.0), "non-positive"),
        (
            lambda n: setattr(n.transitions["a"], "guard", lambda c: True),
            "guard",
        ),
        (
            lambda n: setattr(n.transitions["b"], "timeout", (4.0, "mid")),
            "timeout",
        ),
    ],
)
def test_non_chain_features_are_rejected(mutate, fragment):
    net = chain_net()
    mutate(net)
    reasons = chain_unsupported_reasons(net, ["out"])
    assert reasons and any(fragment in r for r in reasons)
    assert chain_spec(net, ["out"]) is None


def test_fan_out_topology_is_rejected():
    net = PetriNet("fan")
    net.add_place("in")
    net.add_place("a")
    net.add_place("out")
    net.add_transition("t1", ["in"], ["a"], delay=1, servers=1)
    net.add_transition("t2", ["in"], ["out"], delay=1, servers=1)
    assert not codegen_supported(net, ["out"])


# ----------------------------------------------------------------------
# BatchEvaluator facade
# ----------------------------------------------------------------------


def test_auto_engine_picks_codegen_for_chains(monkeypatch):
    monkeypatch.delenv(BATCH_ENGINE_ENV_VAR, raising=False)
    ev = BatchEvaluator(chain_net(), ["out"])
    assert ev.engine == "codegen"
    ev.evaluate(items_for(3))
    assert ev.items_codegen == 3 and ev.items_columnar == 0


def test_forced_columnar_never_uses_codegen():
    ev = BatchEvaluator(chain_net(), ["out"], engine="columnar")
    assert ev.engine == "columnar"
    ev.evaluate(items_for(2))
    assert ev.items_codegen == 0 and ev.items_columnar == 2


def test_forced_codegen_rejects_non_chain_nets():
    net = chain_net()
    net.transitions["a"].servers = 4
    with pytest.raises(SimulationError, match="codegen"):
        BatchEvaluator(net, ["out"], engine="codegen")


def test_unknown_engine_and_place_raise():
    with pytest.raises(ValueError, match="unknown batch engine"):
        BatchEvaluator(chain_net(), ["out"], engine="warp")
    ev = BatchEvaluator(chain_net(), ["out"])
    with pytest.raises(SimulationError, match="unknown place"):
        ev.evaluate([[("nowhere", {"x": 1}, 0.0)]])


def test_empty_batch_and_empty_item():
    ev = BatchEvaluator(chain_net(), ["out"])
    assert ev.evaluate([]) == []
    [res] = ev.evaluate([[]])
    assert res.makespan == 0.0 and res.total_completions == 0


def test_shared_compiled_net_must_belong_to_the_net():
    net = chain_net()
    other = chain_net()
    with pytest.raises(SimulationError, match="different net"):
        BatchEvaluator(net, ["out"], compiled=CompiledNet(other))


def test_evaluate_makespans_matches_per_item_compiled_runs():
    items = items_for(4)
    got = BatchEvaluator(chain_net(), ["out"]).evaluate_makespans(items)
    want = []
    for item in items:
        sim = CompiledSimulator(chain_net(), sinks=["out"])
        for place, payload, at in item:
            sim.inject(place, payload, at=at)
        want.append(sim.run().makespan())
    assert got == want  # bit-identical, not approx


def test_env_var_forces_batch_engine(monkeypatch):
    monkeypatch.setenv(BATCH_ENGINE_ENV_VAR, "columnar")
    assert default_batch_engine() == "columnar"
    assert BatchEvaluator(chain_net(), ["out"]).engine == "columnar"
    monkeypatch.setenv(BATCH_ENGINE_ENV_VAR, "warp-drive")
    with pytest.raises(ValueError, match=BATCH_ENGINE_ENV_VAR):
        default_batch_engine()


# ----------------------------------------------------------------------
# Differential parity vs the compiled engine (the contract)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("case", accel_batch_cases(), ids=lambda c: c.name)
def test_accelerator_batch_parity(case):
    digests = compare_batch_engines(case)
    assert "columnar" in digests
    for per_item in digests.values():
        assert all(d[0] == "ok" for d in per_item)


def test_chain_shaped_accelerators_exercise_codegen():
    by_name = {c.name: compare_batch_engines(c) for c in accel_batch_cases()}
    codegen_nets = {n for n, d in by_name.items() if "codegen" in d}
    # The acceptance bar: at least two real accelerator nets run the
    # codegen engine with proven per-item equality.
    assert {"jpeg", "optimusprime"} <= codegen_nets


@pytest.mark.parametrize("case", edge_batch_cases(), ids=lambda c: c.name)
def test_edge_batch_parity(case):
    compare_batch_engines(case)


@pytest.mark.parametrize("seed", range(6))
def test_random_chain_batch_parity(seed):
    case = random_chain_case(seed)
    digests = compare_batch_engines(case)
    assert "codegen" in digests  # the family must exercise codegen


@pytest.mark.parametrize("seed", [500, 501, 502, 503])
def test_random_structural_batch_parity(seed):
    compare_batch_engines(random_structural_batch_case(seed))


def test_batch_case_family_is_reproducible():
    a = [(c.name, c.items) for c in batch_cases()]
    b = [(c.name, c.items) for c in batch_cases()]
    assert a == b
