"""Tests for the analysis additions behind perf-lint: T-invariants,
siphon computation, invariant coverage, and honest cycle truncation."""

import numpy as np
import pytest

from repro.petri import (
    AnalysisError,
    PetriNet,
    chain,
    covers_all_positive,
    find_cycles,
    incidence_matrix,
    maximal_siphon,
    p_invariants,
    t_invariants,
)


def pipeline(name="pipe", stages=(("s1", 1.0), ("s2", 2.0))):
    net = PetriNet(name)
    chain(net, list(stages))
    return net


def credit_ring(n=3):
    """n places in a ring, each transition moving the token onward —
    a free-spinning cycle with a T-invariant."""
    net = PetriNet("ring")
    for i in range(n):
        net.add_place(f"p{i}")
    for i in range(n):
        net.add_transition(f"t{i}", [f"p{i}"], [f"p{(i + 1) % n}"], delay=1)
    return net


class TestTInvariants:
    def test_ring_has_the_all_ones_invariant(self):
        c, _, _ = incidence_matrix(credit_ring())
        inv = t_invariants(c)
        assert inv.shape[0] == 1
        # Firing every transition once returns to the initial marking.
        ratio = inv[0] / inv[0][0]
        assert np.allclose(ratio, 1.0)
        assert np.allclose(c @ inv[0], 0.0)

    def test_pipeline_has_no_t_invariant(self):
        c, _, _ = incidence_matrix(pipeline())
        assert t_invariants(c).shape[0] == 0


class TestPInvariantEdgeCases:
    def test_empty_incidence(self):
        empty = np.zeros((0, 0))
        assert p_invariants(empty).shape[0] == 0
        assert not covers_all_positive(p_invariants(empty))

    def test_rank_deficient_incidence(self):
        # Two identical transitions: the incidence matrix has rank 1
        # over 3 places, so the left-nullspace has dimension 2.
        net = PetriNet("rankdef")
        for p in ("a", "b", "c"):
            net.add_place(p)
        net.add_transition("t1", ["a"], ["b"], delay=1)
        net.add_transition("t2", ["a"], ["b"], delay=1)
        c, places, _ = incidence_matrix(net)
        inv = p_invariants(c)
        assert inv.shape[0] == 2
        assert np.allclose(inv @ c, 0.0)

    def test_covers_all_positive_accepts_negated_basis(self):
        # SVD may hand back an invariant with every entry negative; the
        # conservativeness test must treat it as its positive mirror.
        assert covers_all_positive(np.array([[-0.5, -0.5, -0.7]]))

    def test_mixed_sign_rows_do_not_cover(self):
        assert not covers_all_positive(np.array([[0.7, -0.7, 0.1]]))

    def test_zero_entry_means_uncovered_place(self):
        assert not covers_all_positive(np.array([[0.7, 0.0, 0.7]]))


class TestMaximalSiphon:
    def test_clean_chain_has_empty_siphon(self):
        assert maximal_siphon(pipeline(), excluded=["in"]) == set()

    def test_unfed_cycle_is_a_siphon(self):
        net = credit_ring()
        # Nothing injects into the ring: every place is cyclically starved.
        assert maximal_siphon(net) == {"p0", "p1", "p2"}

    def test_injection_breaks_the_siphon(self):
        net = credit_ring()
        assert maximal_siphon(net, excluded=["p0"]) == set()

    def test_timeout_arcs_count_as_producers(self):
        net = PetriNet("n")
        for p in ("in", "out", "fault"):
            net.add_place(p)
        net.add_place("recovered")
        net.add_transition("t", ["in"], ["out"], delay=100, timeout=(5.0, "fault"))
        net.add_transition("r", ["fault"], ["recovered"], delay=1)
        # `fault` is fed (by the fault arc), so only nothing is starved.
        assert maximal_siphon(net, excluded=["in"]) == set()


class TestFindCyclesTruncation:
    def _deep_ring(self, n=80):
        return credit_ring(n)

    def test_truncation_is_reported_not_silent(self):
        cycles = find_cycles(self._deep_ring(), max_depth=16)
        assert cycles.truncated is True
        assert cycles == []  # the only cycle is longer than the bound

    def test_untruncated_search_finds_the_cycle(self):
        cycles = find_cycles(self._deep_ring(40), max_depth=200)
        assert cycles.truncated is False
        assert len(cycles) == 1

    def test_on_truncate_raise(self):
        with pytest.raises(AnalysisError, match="truncated"):
            find_cycles(self._deep_ring(), max_depth=16, on_truncate="raise")

    def test_result_is_still_a_list(self):
        cycles = find_cycles(pipeline())
        assert isinstance(cycles, list)
        assert cycles.truncated is False
