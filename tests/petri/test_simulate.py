"""Execution-semantics tests for the Petri-net simulator."""

import pytest

from repro.petri import (
    DeadlineError,
    DeadlockError,
    PetriNet,
    SimulationError,
    Simulator,
    Token,
    run_workload,
)


def single_stage_net(delay=5, servers=1, capacity=None):
    net = PetriNet("single")
    net.add_place("in", capacity=capacity)
    net.add_place("out")
    net.add_transition("t", ["in"], ["out"], delay=delay, servers=servers)
    return net


def test_single_transition_latency():
    res = run_workload(single_stage_net(delay=7), [None])
    assert res.latencies() == [7.0]
    assert res.end_time == 7.0


def test_serial_server_serializes_items():
    # 3 items through a serial 5-cycle unit: completions at 5, 10, 15.
    res = run_workload(single_stage_net(delay=5), [None] * 3)
    assert [c.time for c in res.sink()] == [5.0, 10.0, 15.0]
    assert res.latencies() == [5.0, 10.0, 15.0]


def test_infinite_servers_overlap_fully():
    res = run_workload(single_stage_net(delay=5, servers=None), [None] * 3)
    assert [c.time for c in res.sink()] == [5.0, 5.0, 5.0]


def test_k_servers_allow_k_in_flight():
    res = run_workload(single_stage_net(delay=5, servers=2), [None] * 4)
    assert [c.time for c in res.sink()] == [5.0, 5.0, 10.0, 10.0]


def test_data_dependent_delay_reads_payload():
    net = single_stage_net(delay=lambda c: c["in"][0].payload * 2)
    res = run_workload(net, [1, 2, 3])
    assert [c.time for c in res.sink()] == [2.0, 6.0, 12.0]


def test_open_loop_arrivals_respected():
    net = single_stage_net(delay=1)
    res = run_workload(net, [None] * 3, gap=10.0)
    assert [c.time for c in res.sink()] == [1.0, 11.0, 21.0]
    assert res.latencies() == [1.0, 1.0, 1.0]


def test_backpressure_from_bounded_place():
    # Stage a (1 cycle) feeds a capacity-1 queue drained by stage b
    # (10 cycles). Stage a must stall: it can only start an item when
    # the queue slot is free to reserve.
    net = PetriNet("bp")
    net.add_place("in")
    net.add_place("q", capacity=1)
    net.add_place("out")
    net.add_transition("a", ["in"], ["q"], delay=1)
    net.add_transition("b", ["q"], ["out"], delay=10)
    res = run_workload(net, [None] * 3)
    # a fires at 0; deposits at 1. b runs [1,11). a can reserve q's slot
    # again only when b consumes at t=1... queue slot frees at 1, a fires
    # at 1, deposits at 2, waits for b to consume at 11, etc.
    assert [c.time for c in res.sink()] == [11.0, 21.0, 31.0]


def test_join_waits_for_both_inputs():
    net = PetriNet("join")
    net.add_place("a")
    net.add_place("b")
    net.add_place("out")
    net.add_transition("j", ["a", "b"], ["out"], delay=2)
    sim = Simulator(net, sinks=["out"])
    sim.inject("a", at=0.0)
    sim.inject("b", at=9.0)
    res = sim.run()
    assert [c.time for c in res.sink()] == [11.0]


def test_fork_duplicates_tokens_with_weights():
    net = PetriNet("fork")
    net.add_place("in")
    net.add_place("out")
    net.add_transition("f", ["in"], [("out", 3)], delay=1)
    res = run_workload(net, [None])
    assert len(res.sink()) == 3


def test_weighted_input_batches_tokens():
    net = PetriNet("batch")
    net.add_place("in")
    net.add_place("out")
    net.add_transition("b", [("in", 2)], ["out"], delay=4)
    res = run_workload(net, [None] * 5)
    # Only two full batches fire; one token is left over.
    assert len(res.sink()) == 2
    assert res.residual_tokens == 1


def test_guard_blocks_until_satisfied():
    net = PetriNet("guard")
    net.add_place("in")
    net.add_place("small_out")
    net.add_place("big_out")
    net.add_transition(
        "small", ["in"], ["small_out"], delay=1,
        guard=lambda c: c["in"][0].payload < 10,
    )
    net.add_transition(
        "big", ["in"], ["big_out"], delay=2,
        guard=lambda c: c["in"][0].payload >= 10,
    )
    res = run_workload(net, [5, 50], sinks=["small_out", "big_out"])
    assert len(res.completions["small_out"]) == 1
    assert len(res.completions["big_out"]) == 1


def test_custom_produce_function():
    net = PetriNet("produce")
    net.add_place("in")
    net.add_place("out")

    def split(consumed):
        tok = consumed["in"][0]
        return {"out": [tok.child(payload=tok.payload * 10)]}

    net.add_transition("p", ["in"], ["out"], delay=1, produce=split)
    res = run_workload(net, [7])
    assert res.sink()[0].token.payload == 70


def test_produce_wrong_arity_is_an_error():
    net = PetriNet("bad")
    net.add_place("in")
    net.add_place("out")
    net.add_transition(
        "p", ["in"], [("out", 2)], delay=1, produce=lambda c: {"out": [Token()]}
    )
    sim = Simulator(net, sinks=["out"])
    sim.inject("in")
    with pytest.raises(Exception, match="produced 1 tokens"):
        sim.run()


def test_zero_delay_cascade_within_one_instant():
    net = PetriNet("zero")
    net.add_place("in")
    net.add_place("m1")
    net.add_place("m2")
    net.add_place("out")
    net.add_transition("a", ["in"], ["m1"], delay=0)
    net.add_transition("b", ["m1"], ["m2"], delay=0)
    net.add_transition("c", ["m2"], ["out"], delay=0)
    res = run_workload(net, [None])
    assert [c.time for c in res.sink()] == [0.0]


def test_deadlock_reported_not_raised_by_default():
    net = PetriNet("dl")
    net.add_place("in")
    net.add_place("never")
    net.add_place("out")
    net.add_transition("t", ["in", "never"], ["out"], delay=1)
    res = run_workload(net, [None])
    assert res.deadlocked
    assert res.residual_tokens == 1


def test_deadlock_raises_when_asked():
    net = PetriNet("dl")
    net.add_place("in")
    net.add_place("never")
    net.add_place("out")
    net.add_transition("t", ["in", "never"], ["out"], delay=1)
    sim = Simulator(net, sinks=["out"])
    sim.inject("in")
    with pytest.raises(DeadlockError):
        sim.run(on_deadlock="raise")


def test_priority_breaks_same_instant_ties():
    net = PetriNet("prio")
    net.add_place("in")
    net.add_place("lo")
    net.add_place("hi")
    net.add_transition("low", ["in"], ["lo"], delay=1, priority=5)
    net.add_transition("high", ["in"], ["hi"], delay=1, priority=1)
    res = run_workload(net, [None], sinks=["lo", "hi"])
    assert len(res.completions["hi"]) == 1
    assert len(res.completions["lo"]) == 0


def test_until_stops_early():
    net = single_stage_net(delay=5)
    sim = Simulator(net, sinks=["out"])
    sim.inject_stream("in", [None] * 10)
    res = sim.run(until=12.0)
    assert len(res.sink()) == 2
    assert res.end_time == 12.0


def test_determinism_two_runs_identical():
    def build():
        net = PetriNet("det")
        net.add_place("in")
        net.add_place("q", capacity=2)
        net.add_place("out")
        net.add_transition("a", ["in"], ["q"], delay=lambda c: 1 + c["in"][0].payload % 3)
        net.add_transition("b", ["q"], ["out"], delay=2)
        return net

    r1 = run_workload(build(), range(20))
    r2 = run_workload(build(), range(20))
    assert [c.time for c in r1.sink()] == [c.time for c in r2.sink()]


def test_run_resets_state_between_runs():
    net = single_stage_net(delay=5)
    first = run_workload(net, [None] * 2)
    second = run_workload(net, [None] * 2)
    assert [c.time for c in first.sink()] == [c.time for c in second.sink()]
    assert net.transitions["t"].fire_count == 2


def test_trace_records_token_path():
    net = PetriNet("tr")
    net.add_place("in")
    net.add_place("m")
    net.add_place("out")
    net.add_transition("a", ["in"], ["m"], delay=1)
    net.add_transition("b", ["m"], ["out"], delay=2)
    sim = Simulator(net, sinks=["out"], trace=True)
    sim.inject("in")
    res = sim.run()
    tok = res.sink()[0].token
    assert [name for name, _ in tok.trace] == ["a", "b"]


def test_throughput_measures_completions_per_time():
    res = run_workload(single_stage_net(delay=2), [None] * 10)
    assert res.throughput() == pytest.approx(10 / 20)


def test_sink_requires_name_when_ambiguous():
    net = PetriNet("two")
    net.add_place("in")
    net.add_place("o1")
    net.add_place("o2")
    net.add_transition("t", ["in"], ["o1", "o2"], delay=1)
    res = run_workload(net, [None], sinks=["o1", "o2"])
    with pytest.raises(ValueError, match="sinks"):
        res.sink()
    assert len(res.sink("o1")) == 1


# ---------------------------------------------------------------------------
# Watchdog deadline (max_time) — the Petri-net counterpart of
# repro.runtime.watchdog.
# ---------------------------------------------------------------------------


def test_max_time_stops_with_partial_progress():
    net = single_stage_net(delay=5)
    sim = Simulator(net, sinks=["out"])
    sim.inject_stream("in", [None] * 10)  # quiescence would be t=50
    res = sim.run(max_time=12.0)
    assert res.deadline_exceeded
    assert res.end_time == 12.0
    assert [c.time for c in res.sink()] == [5.0, 10.0]
    assert res.residual_tokens > 0  # truncated, not drained


def test_max_time_not_hit_leaves_flag_clear():
    res = run_workload(single_stage_net(delay=5), [None] * 2, max_time=100.0)
    assert not res.deadline_exceeded
    assert res.end_time == 10.0


def test_max_time_raise_carries_partial_result():
    net = single_stage_net(delay=5)
    sim = Simulator(net, sinks=["out"])
    sim.inject_stream("in", [None] * 10)
    with pytest.raises(DeadlineError, match="max_time") as exc:
        sim.run(max_time=12.0, on_deadline="raise")
    partial = exc.value.result
    assert partial is not None
    assert partial.deadline_exceeded
    assert len(partial.sink()) == 2


def test_max_time_through_run_workload():
    with pytest.raises(DeadlineError):
        run_workload(
            single_stage_net(delay=5), [None] * 10, max_time=1.0, on_deadline="raise"
        )


def test_deadline_differs_from_until():
    # ``until`` is a planned horizon: same truncation, no flag, no raise.
    net = single_stage_net(delay=5)
    sim = Simulator(net, sinks=["out"])
    sim.inject_stream("in", [None] * 10)
    res = sim.run(until=12.0, on_deadline="raise")
    assert not res.deadline_exceeded
    assert res.end_time == 12.0


def test_deadlock_error_reports_marking():
    net = PetriNet("dl")
    net.add_place("in")
    net.add_place("never")
    net.add_place("out")
    net.add_transition("t", ["in", "never"], ["out"], delay=1)
    sim = Simulator(net, sinks=["out"])
    sim.inject("in")
    with pytest.raises(DeadlockError, match="1 resident tokens"):
        sim.run(on_deadlock="raise")


def test_deadlock_and_deadline_can_coexist():
    # A net that deadlocks *before* the deadline reports the deadlock,
    # not a deadline truncation.
    net = PetriNet("dl")
    net.add_place("in")
    net.add_place("never")
    net.add_place("out")
    net.add_transition("t", ["in", "never"], ["out"], delay=1)
    sim = Simulator(net, sinks=["out"])
    sim.inject("in")
    res = sim.run(max_time=100.0)
    assert res.deadlocked
    assert not res.deadline_exceeded


def test_throughput_windows_on_first_injection():
    # 10 items injected starting at t=100: throughput must be measured
    # over the first-injection->end window, not from t=0 — otherwise a
    # late-starting workload looks artificially slow.
    sim = Simulator(single_stage_net(delay=2), sinks=["out"])
    sim.inject_stream("in", [None] * 10, start=100.0)
    res = sim.run()
    assert res.first_injection == 100.0
    assert res.end_time == 120.0
    assert res.throughput() == pytest.approx(10 / 20)


def test_throughput_default_window_without_injections_metadata():
    res = run_workload(single_stage_net(delay=2), [None] * 10)
    assert res.first_injection == 0.0
    assert res.throughput() == pytest.approx(10 / 20)


def test_firing_budget_counts_firings_not_batches(monkeypatch):
    # 60 zero-delay firings all land in one _fire_all batch; a budget of
    # 50 must still trip (the old accounting counted batches, so a single
    # huge batch slipped through).
    net = PetriNet("burst")
    net.add_place("in")
    net.add_place("out")
    net.add_transition("t", ["in"], ["out"], delay=0, servers=None)
    monkeypatch.setattr(Simulator, "MAX_FIRINGS_PER_INSTANT", 50)
    sim = Simulator(net, sinks=["out"])
    sim.inject_stream("in", range(60))
    with pytest.raises(SimulationError, match="more than 50 firings at t=0.0"):
        sim.run()


def test_firing_budget_not_tripped_by_exact_limit(monkeypatch):
    net = PetriNet("burst")
    net.add_place("in")
    net.add_place("out")
    net.add_transition("t", ["in"], ["out"], delay=0, servers=None)
    monkeypatch.setattr(Simulator, "MAX_FIRINGS_PER_INSTANT", 50)
    sim = Simulator(net, sinks=["out"])
    sim.inject_stream("in", range(50))
    assert len(sim.run().sink()) == 50
