"""Tests for structural analysis of performance-IR nets."""

import numpy as np

from repro.petri import (
    PetriNet,
    analyze_structure,
    bottleneck_estimate,
    find_cycles,
    incidence_matrix,
    p_invariants,
    run_workload,
)


def pipeline_net():
    net = PetriNet("pipe")
    net.add_place("in")
    net.add_place("q", capacity=2)
    net.add_place("out")
    net.add_transition("a", ["in"], ["q"], delay=1)
    net.add_transition("b", ["q"], ["out"], delay=3)
    return net


def test_incidence_matrix_shape_and_values():
    c, places, transitions = incidence_matrix(pipeline_net())
    assert places == ["in", "out", "q"]
    assert transitions == ["a", "b"]
    # a: in -1, q +1 ; b: q -1, out +1
    expected = np.array([[-1, 0], [0, 1], [1, -1]])
    assert (c == expected).all()


def test_pipeline_is_conservative():
    report = analyze_structure(pipeline_net())
    # Token count in+q+out is invariant: y = (1,1,1) is a P-invariant.
    assert report.conservative
    assert report.source_places == ["in"]
    assert report.sink_places == ["out"]


def test_weighted_fork_is_still_conservative():
    # in -> 2x out admits the invariant y = (2, 1): weighted token mass
    # is conserved, which is the standard definition.
    net = PetriNet("fork")
    net.add_place("in")
    net.add_place("out")
    net.add_transition("f", ["in"], [("out", 2)], delay=1)
    assert analyze_structure(net).conservative


def test_nonconservative_net_detected():
    # Two routes from in to out with inconsistent weights admit no
    # nonzero invariant: -y1 + y2 = 0 and -y1 + 2*y2 = 0 force y = 0.
    net = PetriNet("noncons")
    net.add_place("in")
    net.add_place("out")
    net.add_transition("t1", ["in"], ["out"], delay=1)
    net.add_transition("t2", ["in"], [("out", 2)], delay=1)
    assert not analyze_structure(net).conservative


def test_p_invariants_annihilate_incidence():
    c, _, _ = incidence_matrix(pipeline_net())
    inv = p_invariants(c)
    assert inv.shape[0] >= 1
    assert np.allclose(inv @ c, 0, atol=1e-8)


def test_find_cycles_on_credit_loop():
    net = PetriNet("credit")
    net.add_place("in")
    net.add_place("credits")
    net.add_place("out")
    net.add_transition("use", ["in", "credits"], ["out", "credits"], delay=1)
    cycles = find_cycles(net)
    assert any("credits" in cyc and "use" in cyc for cyc in cycles)


def test_acyclic_pipeline_has_no_cycles():
    assert find_cycles(pipeline_net()) == []


def test_bottleneck_estimate_identifies_slow_stage():
    net = pipeline_net()
    run_workload(net, [None] * 10)
    busy = bottleneck_estimate(net)
    assert busy["b"] > busy["a"]


def test_summary_mentions_warnings():
    net = PetriNet("warn")
    net.add_place("in")
    net.add_place("orphan")
    net.add_place("out")
    net.add_transition("t", ["in"], ["out"], delay=1)
    text = analyze_structure(net).summary()
    assert "orphan" in text
