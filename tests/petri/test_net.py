"""Structural tests for repro.petri.net."""

import pytest

from repro.petri import Arc, DefinitionError, PetriNet, Token, chain
from repro.petri.errors import CapacityError


def test_add_place_rejects_duplicates():
    net = PetriNet("n")
    net.add_place("a")
    with pytest.raises(DefinitionError, match="duplicate place"):
        net.add_place("a")


def test_add_place_rejects_zero_capacity():
    net = PetriNet("n")
    with pytest.raises(DefinitionError, match="capacity"):
        net.add_place("a", capacity=0)


def test_transition_requires_inputs():
    net = PetriNet("n")
    net.add_place("out")
    with pytest.raises(DefinitionError, match="no input arcs"):
        net.add_transition("t", [], ["out"])


def test_transition_rejects_unknown_place():
    net = PetriNet("n")
    net.add_place("in")
    with pytest.raises(DefinitionError, match="unknown place"):
        net.add_transition("t", ["in"], ["nowhere"])


def test_transition_rejects_duplicate_name():
    net = PetriNet("n")
    net.add_place("in")
    net.add_place("out")
    net.add_transition("t", ["in"], ["out"])
    with pytest.raises(DefinitionError, match="duplicate transition"):
        net.add_transition("t", ["in"], ["out"])


def test_arc_specs_accept_strings_tuples_and_arcs():
    net = PetriNet("n")
    for p in ("a", "b", "c", "out"):
        net.add_place(p)
    t = net.add_transition("t", ["a", ("b", 2), Arc("c", 3)], ["out"])
    assert [(a.place, a.weight) for a in t.inputs] == [("a", 1), ("b", 2), ("c", 3)]


def test_arc_weight_must_be_positive():
    with pytest.raises(DefinitionError, match="weight"):
        Arc("p", 0)


def test_place_take_is_fifo():
    net = PetriNet("n")
    p = net.add_place("p")
    t1, t2 = Token(payload=1), Token(payload=2)
    p.put(t1)
    p.put(t2)
    assert [t.payload for t in p.take(2)] == [1, 2]


def test_place_capacity_enforced_on_put():
    net = PetriNet("n")
    p = net.add_place("p", capacity=1)
    p.put(Token())
    with pytest.raises(CapacityError):
        p.put(Token())


def test_place_free_slots_counts_reservations():
    net = PetriNet("n")
    p = net.add_place("p", capacity=3)
    p.put(Token())
    p.reserved = 1
    assert p.free_slots() == 1


def test_negative_delay_rejected_at_fire_time():
    net = PetriNet("n")
    net.add_place("in")
    net.add_place("out")
    t = net.add_transition("t", ["in"], ["out"], delay=lambda c: -1)
    net.places["in"].put(Token())
    consumed = {"in": net.places["in"].peek(1)}
    with pytest.raises(DefinitionError, match="negative delay"):
        t.compute_delay(consumed)


def test_validate_flags_impossible_output_capacity():
    net = PetriNet("n")
    net.add_place("in")
    net.add_place("out", capacity=1)
    net.add_transition("t", ["in"], [("out", 2)])
    warnings = net.validate()
    assert any("can never fire" in w for w in warnings)


def test_validate_flags_disconnected_place():
    net = PetriNet("n")
    net.add_place("in")
    net.add_place("orphan")
    net.add_place("out")
    net.add_transition("t", ["in"], ["out"])
    assert any("disconnected" in w for w in net.validate())


def test_marking_and_reset():
    net = PetriNet("n")
    net.add_place("a")
    net.places["a"].put(Token())
    assert net.marking() == {"a": 1}
    assert net.total_tokens() == 1
    net.reset()
    assert net.total_tokens() == 0


def test_ordered_transitions_sorts_by_priority_then_name():
    net = PetriNet("n")
    net.add_place("in")
    net.add_place("out")
    net.add_transition("b", ["in"], ["out"], priority=0)
    net.add_transition("a", ["in"], ["out"], priority=1)
    net.add_transition("c", ["in"], ["out"], priority=0)
    assert [t.name for t in net.ordered_transitions()] == ["b", "c", "a"]


def test_chain_builds_linear_pipeline():
    net = PetriNet("n")
    chain(net, [("s1", 2), ("s2", 3)], capacity=4)
    assert set(net.places) == {"in", "q_s1", "out"}
    assert net.places["q_s1"].capacity == 4
    assert net.input_places_of("s2") == ["q_s1"]
    assert net.output_places_of("s2") == ["out"]


def test_chain_rejects_empty_stage_list():
    with pytest.raises(DefinitionError):
        chain(PetriNet("n"), [])
