"""Tests for the reusable performance-IR components."""

import pytest

from repro.petri import PetriNet, Simulator
from repro.petri.components import (
    add_bounded_stage,
    add_fcfs_port,
    add_mutex,
    mutex_injections,
)
from repro.petri.errors import DefinitionError


class TestMutex:
    def test_serializes_concurrent_users(self):
        net = PetriNet("m")
        net.add_place("in")
        net.add_place("out")
        add_mutex(net, "lock")
        net.add_transition("work", ["in", "lock"], ["lock", "out"], delay=10, servers=None)
        sim = Simulator(net, sinks=["out"])
        for place, token in mutex_injections(["lock"]):
            sim.inject(place, token)
        sim.inject_stream("in", [None] * 3)
        result = sim.run()
        # Despite unlimited servers, the mutex forces serial execution.
        assert [c.time for c in result.sink()] == [10.0, 20.0, 30.0]


class TestFcfsPort:
    def build(self):
        net = PetriNet("port")
        net.add_place("a_req_src")
        net.add_place("b_req_src")
        net.add_place("done")
        # Two user classes funnel into one request place.
        names = add_fcfs_port(
            net,
            "mem",
            users={"a": 5, "b": 50},
            done_place="done",
            classify=lambda consumed: consumed["mem_req"][0].payload,
        )
        net.add_transition("a_issue", ["a_req_src"], [names["request"]], delay=1)
        net.add_transition("b_issue", ["b_req_src"], [names["request"]], delay=2)
        return net

    def test_grants_in_request_order(self):
        net = self.build()
        sim = Simulator(net, sinks=["done"])
        for place, token in mutex_injections(["mem"]):
            sim.inject(place, token)
        sim.inject("a_req_src", "a", at=0.0)   # requests at t=1
        sim.inject("b_req_src", "b", at=0.0)   # requests at t=2
        sim.inject("a_req_src", "a", at=0.0)   # a_issue is serial: t=2
        result = sim.run()
        done = sorted(c.time for c in result.sink())
        # FCFS: a@1 -> 6; b@2 (scheduled before the 2nd a at the same
        # instant) holds the port 6..56; the 2nd a then runs -> 61.
        assert done == [6.0, 56.0, 61.0]

    def test_requires_users(self):
        net = PetriNet("x")
        net.add_place("done")
        with pytest.raises(DefinitionError):
            add_fcfs_port(net, "p", users={}, done_place="done")


class TestBoundedStage:
    def test_queue_backpressure(self):
        net = PetriNet("s")
        net.add_place("in")
        net.add_place("mid")
        net.add_place("out")
        add_bounded_stage(net, "fast", "in", "mid", delay=1)
        add_bounded_stage(net, "slow", "mid", "out", delay=10, queue_capacity=1)
        sim = Simulator(net, sinks=["out"])
        sim.inject_stream("in", [None] * 3)
        result = sim.run()
        assert result.makespan() >= 30.0  # slow stage dominates

    def test_unqueued_stage(self):
        net = PetriNet("s2")
        net.add_place("in")
        net.add_place("out")
        add_bounded_stage(net, "only", "in", "out", delay=4)
        sim = Simulator(net, sinks=["out"])
        sim.inject_stream("in", [None] * 2)
        assert [c.time for c in sim.run().sink()] == [4.0, 8.0]
