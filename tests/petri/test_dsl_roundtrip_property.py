"""Property test: DSL serialization round-trips arbitrary chain nets.

Generates random linear nets (the dominant accelerator topology) with
constant and expression delays, serializes them with to_pnet, reparses,
and requires identical structure and identical simulated behavior.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.petri import parse, run_workload, to_pnet
from repro.petri.dsl import _compile_expr


@st.composite
def random_chain_doc(draw):
    n_stages = draw(st.integers(min_value=1, max_value=5))
    lines = ["net generated", "", "place in"]
    prev = "in"
    for s in range(n_stages):
        is_last = s == n_stages - 1
        nxt = "out" if is_last else f"q{s}"
        cap = draw(st.one_of(st.none(), st.integers(min_value=1, max_value=4)))
        if is_last or cap is None:
            lines.append(f"place {nxt}")
        else:
            lines.append(f"place {nxt} capacity {cap}")
        servers = draw(st.sampled_from(["1", "2", "inf"]))
        kind = draw(st.sampled_from(["const", "expr"]))
        if kind == "const":
            delay = f"delay {draw(st.integers(min_value=0, max_value=20))}.0"
        else:
            a = draw(st.integers(min_value=0, max_value=5))
            b = draw(st.integers(min_value=0, max_value=9))
            delay = f"delay expr: tok * {a} + {b}"
        lines += [
            "",
            f"transition t{s}",
            f"  consume {prev}",
            f"  produce {nxt}",
            f"  {delay}",
            f"  servers {servers}",
        ]
        prev = nxt
    return "\n".join(lines) + "\n"


@given(random_chain_doc(), st.lists(st.integers(0, 9), min_size=1, max_size=6))
@settings(max_examples=60, deadline=None)
def test_round_trip_preserves_structure_and_behavior(doc, payloads):
    net1 = parse(doc)
    text = to_pnet(net1)
    net2 = parse(text)

    assert set(net1.places) == set(net2.places)
    assert {p: net1.places[p].capacity for p in net1.places} == {
        p: net2.places[p].capacity for p in net2.places
    }
    assert set(net1.transitions) == set(net2.transitions)
    for name in net1.transitions:
        t1, t2 = net1.transitions[name], net2.transitions[name]
        assert t1.servers == t2.servers
        assert t1.priority == t2.priority

    r1 = run_workload(net1, payloads)
    r2 = run_workload(net2, payloads)
    assert r1.latencies() == r2.latencies()
    assert r1.makespan() == r2.makespan()


def test_expr_compile_exposes_source():
    fn = _compile_expr("tok * 2", 1, "delay")
    assert fn.src == "tok * 2"
