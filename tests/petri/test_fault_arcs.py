"""Tests for fault arcs: ``timeout AFTER PLACE`` transitions.

ROADMAP item "fault-aware transitions": a transition with a timeout
abandons any firing whose delay exceeds the budget and deposits a
fault token into the declared fault place at the deadline, instead of
completing normally.
"""

import pytest

from repro.petri import DefinitionError, PetriNet, Simulator, parse, to_pnet

FAULTY = """\
net faulty
place in
place out
place fault
inject in fields size
transition work
  consume in
  produce out
  delay expr: tok["size"] * 10
  timeout 25 fault
"""


def _run(sizes, text=FAULTY):
    net = parse(text)
    sim = Simulator(net, sinks=["out", "fault"])
    for i, size in enumerate(sizes):
        sim.inject("in", {"size": size}, at=float(i))
    result = sim.run()
    return net, result


class TestTimeoutSemantics:
    def test_fast_item_completes_normally(self):
        _, result = _run([2])  # delay 20 < 25
        assert len(result.completions["out"]) == 1
        assert not result.completions["fault"]
        assert result.completions["out"][0].time == pytest.approx(20.0)

    def test_slow_item_faults_at_the_deadline(self):
        # delay 30 > 25: the token lands in `fault` at t=25, not t=30.
        _, result = _run([3])
        assert not result.completions["out"]
        assert len(result.completions["fault"]) == 1
        assert result.completions["fault"][0].time == pytest.approx(25.0)

    def test_mixed_stream_splits_by_size(self):
        _, result = _run([1, 5, 2, 9])
        assert len(result.completions["out"]) == 2
        assert len(result.completions["fault"]) == 2

    def test_fault_token_inherits_payload(self):
        _, result = _run([4])
        token = result.completions["fault"][0].token
        assert token.payload == {"size": 4}

    def test_output_reservation_released_on_fault(self):
        # With out bounded to 1 token, a faulted firing must release its
        # reserved slot so later items can still complete.
        text = FAULTY.replace("place out", "place out capacity 1")
        net = parse(text)
        sim = Simulator(net, sinks=["fault"])
        sim.inject("in", {"size": 9}, at=0.0)  # faults
        sim.inject("in", {"size": 1}, at=1.0)  # completes into out
        result = sim.run()
        assert len(result.completions["fault"]) == 1
        assert net.marking()["out"] == 1

    def test_trace_records_the_fault(self):
        net = parse(FAULTY)
        sim = Simulator(net, sinks=["out", "fault"], trace=True)
        sim.inject("in", {"size": 9}, at=0.0)
        result = sim.run()
        trace = result.completions["fault"][0].token.trace
        assert ("work!timeout", 25.0) in trace


class TestTimeoutDefinition:
    def test_timeout_must_be_positive(self):
        net = PetriNet("n")
        net.add_place("a")
        net.add_place("b")
        net.add_place("f")
        with pytest.raises(DefinitionError):
            net.add_transition("t", ["a"], ["b"], delay=1, timeout=(0.0, "f"))

    def test_timeout_place_must_exist(self):
        net = PetriNet("n")
        net.add_place("a")
        net.add_place("b")
        with pytest.raises(DefinitionError):
            net.add_transition("t", ["a"], ["b"], delay=1, timeout=(5.0, "ghost"))

    def test_dsl_rejects_unknown_fault_place(self):
        from repro.petri import DslError

        bad = FAULTY.replace("timeout 25 fault", "timeout 25 ghost")
        with pytest.raises(DslError):
            parse(bad)


class TestRoundtrip:
    def test_timeout_and_inject_survive_serialization(self):
        net = parse(FAULTY)
        text = to_pnet(net)
        assert "timeout 25" in text and "fault" in text
        assert "inject in fields" in text
        reparsed = parse(text)
        assert reparsed.transitions["work"].timeout == (25.0, "fault")
        assert reparsed.injections == {"in": frozenset({"size"})}
        # And the reserialized net behaves identically.
        sim = Simulator(reparsed, sinks=["out", "fault"])
        sim.inject("in", {"size": 9})
        result = sim.run()
        assert result.completions["fault"][0].time == pytest.approx(25.0)
