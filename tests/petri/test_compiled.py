"""Engine selection, fallback rules, and compiled-engine edge cases."""

import pytest

from repro.petri import (
    ENGINES,
    CompiledNet,
    CompiledSimulator,
    DefinitionError,
    PetriNet,
    SimulationError,
    Simulator,
    default_engine,
    make_simulator,
    supports,
    unsupported_features,
)
from repro.petri.compiled import ENGINE_ENV_VAR


def simple_net():
    net = PetriNet("simple")
    net.add_place("in")
    net.add_place("out")
    net.add_transition("t", ["in"], ["out"], delay=3)
    return net


def hooked_net():
    net = PetriNet("hooked")
    net.add_place("in")
    net.add_place("out")
    net.add_transition(
        "t", ["in"], ["out"], delay=1, produce=lambda consumed, out: {}
    )
    return net


# ----------------------------------------------------------------------
# Feature support and fallback
# ----------------------------------------------------------------------


def test_plain_net_is_supported():
    assert supports(simple_net())
    assert unsupported_features(simple_net()) == []


def test_trace_is_unsupported():
    reasons = unsupported_features(simple_net(), trace=True)
    assert reasons and "trace" in reasons[0]


def test_produce_hook_is_unsupported():
    assert not supports(hooked_net())


def test_auto_selects_compiled_when_supported():
    sim = make_simulator(simple_net(), sinks=("out",), engine="auto")
    assert isinstance(sim, CompiledSimulator)


def test_auto_falls_back_to_reference():
    sim = make_simulator(hooked_net(), sinks=("out",), engine="auto")
    assert isinstance(sim, Simulator)
    assert not isinstance(sim, CompiledSimulator)


def test_auto_falls_back_for_trace():
    sim = make_simulator(simple_net(), sinks=("out",), engine="auto", trace=True)
    assert not isinstance(sim, CompiledSimulator)


def test_explicit_compiled_refuses_unsupported_net():
    with pytest.raises(SimulationError, match="produce"):
        make_simulator(hooked_net(), sinks=("out",), engine="compiled")


def test_explicit_reference_always_honored():
    sim = make_simulator(simple_net(), sinks=("out",), engine="reference")
    assert not isinstance(sim, CompiledSimulator)


def test_unknown_engine_rejected():
    with pytest.raises(ValueError, match="unknown engine"):
        make_simulator(simple_net(), sinks=("out",), engine="turbo")


def test_env_var_sets_default_engine(monkeypatch):
    monkeypatch.setenv(ENGINE_ENV_VAR, "reference")
    assert default_engine() == "reference"
    sim = make_simulator(simple_net(), sinks=("out",))
    assert not isinstance(sim, CompiledSimulator)
    monkeypatch.setenv(ENGINE_ENV_VAR, "compiled")
    sim = make_simulator(simple_net(), sinks=("out",))
    assert isinstance(sim, CompiledSimulator)


def test_env_var_invalid_value_rejected(monkeypatch):
    monkeypatch.setenv(ENGINE_ENV_VAR, "warp")
    with pytest.raises(ValueError, match=ENGINE_ENV_VAR):
        default_engine()


def test_engines_constant_lists_all_modes():
    assert set(ENGINES) == {"auto", "reference", "compiled"}


# ----------------------------------------------------------------------
# Compiled-engine behavior
# ----------------------------------------------------------------------


def test_compiled_basic_run_matches_reference_latencies():
    net = simple_net()
    sim = CompiledSimulator(net, sinks=["out"])
    sim.inject_stream("in", range(4))
    result = sim.run()
    # one server: completions serialize at 3, 6, 9, 12 (all born at t=0)
    assert result.latencies() == [3.0, 6.0, 9.0, 12.0]
    assert result.fired == {"t": 4}


def test_compiled_net_reuse_across_runs():
    net = simple_net()
    compiled = CompiledNet(net)
    for _ in range(3):
        sim = CompiledSimulator(net, sinks=["out"], compiled=compiled)
        sim.inject_stream("in", range(5))
        assert len(sim.run().sink()) == 5


def test_compiled_net_must_match_simulator_net():
    other = simple_net()
    with pytest.raises(SimulationError):
        CompiledSimulator(simple_net(), sinks=["out"], compiled=CompiledNet(other))


def test_compiled_unknown_sink_rejected():
    with pytest.raises(SimulationError, match="sink"):
        CompiledSimulator(simple_net(), sinks=["nope"])


def test_compiled_unknown_injection_place_rejected():
    sim = CompiledSimulator(simple_net(), sinks=["out"])
    with pytest.raises(SimulationError, match="unknown place"):
        sim.inject_stream("nope", range(3))


def test_compiled_negative_delay_raises_definition_error():
    net = PetriNet("neg")
    net.add_place("in")
    net.add_place("out")
    net.add_transition("t", ["in"], ["out"], delay=lambda c: -1.0)
    sim = CompiledSimulator(net, sinks=["out"])
    sim.inject("in")
    with pytest.raises(DefinitionError, match="negative delay"):
        sim.run()


def test_compiled_instant_budget_matches_reference(monkeypatch):
    """Both engines bound firings per instant with the same message."""

    def build():
        net = PetriNet("burst")
        net.add_place("in")
        net.add_place("out")
        net.add_transition("t", ["in"], ["out"], delay=0, servers=None)
        return net

    monkeypatch.setattr(Simulator, "MAX_FIRINGS_PER_INSTANT", 50)
    monkeypatch.setattr(CompiledSimulator, "MAX_FIRINGS_PER_INSTANT", 50)
    messages = []
    for cls in (Simulator, CompiledSimulator):
        sim = cls(build(), sinks=["out"])
        sim.inject_stream("in", range(60))  # all at t=0: 60 firings > 50
        with pytest.raises(SimulationError, match="firings at t=") as exc:
            sim.run()
        messages.append(str(exc.value))
    assert messages[0] == messages[1]
