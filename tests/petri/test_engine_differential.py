"""Differential tests: compiled engine vs reference simulator.

These are the executable form of the compiled engine's parity contract —
see ``repro.petri.differential`` for the harness and digest definition.
"""

import pytest

from repro.petri import PetriNet
from repro.petri.differential import (
    DiffCase,
    EngineMismatch,
    accel_cases,
    compare_engines,
    edge_cases,
    random_cases,
    run_differential,
    summarize,
)


@pytest.mark.parametrize("case", accel_cases(), ids=lambda c: c.name)
def test_accelerator_nets_match(case):
    digest = compare_engines(case)
    # Accelerator nets must complete, not error.
    assert digest[0] == "ok"


@pytest.mark.parametrize("case", edge_cases(), ids=lambda c: c.name)
def test_edge_cases_match(case):
    compare_engines(case)


@pytest.mark.parametrize("case", random_cases(seed=1, count=15), ids=lambda c: c.name)
def test_random_structural_nets_match(case):
    compare_engines(case)


def test_run_differential_returns_digest_per_case():
    cases = random_cases(seed=2, count=3)
    digests = run_differential(cases)
    assert set(digests) == {c.name for c in cases}


def test_tracing_does_not_perturb_either_engine():
    # Observability contract: a tracer riding along must leave the
    # digest identical on both engines, for real accelerator nets too.
    cases = accel_cases() + random_cases(seed=4, count=5)
    traced = run_differential(cases, tracing=True)
    plain = run_differential(cases)
    assert traced == plain


def test_mismatch_raises_with_both_digests():
    """A case whose behavior differs per engine must be flagged loudly.

    We fabricate divergence with a guard that reads mutable external
    state (forbidden by the engine contract, perfect for this test)."""
    calls = {"n": 0}

    def build():
        calls["n"] += 1
        net = PetriNet("diverge")
        net.add_place("in")
        net.add_place("out")
        net.add_transition("t", ["in"], ["out"], delay=float(calls["n"]))
        return net, ["out"], lambda sim: sim.inject("in", payload=0)

    with pytest.raises(EngineMismatch, match="diverge|reference"):
        compare_engines(DiffCase("divergent", build))


def test_unsupported_net_is_rejected_not_silently_skipped():
    def build():
        net = PetriNet("hooked")
        net.add_place("in")
        net.add_place("out")
        net.add_transition(
            "t", ["in"], ["out"], delay=1, produce=lambda consumed, out: []
        )
        return net, ["out"], lambda sim: sim.inject("in")

    with pytest.raises(EngineMismatch, match="not supported"):
        compare_engines(DiffCase("hooked", build))


def test_summarize_excludes_token_uids():
    """Two runs of the *same* engine differ only in uids; the digest must
    not see them."""
    from repro.petri import Simulator

    def run_once():
        net = PetriNet("twice")
        net.add_place("in")
        net.add_place("out")
        net.add_transition("t", ["in"], ["out"], delay=2)
        sim = Simulator(net, sinks=["out"])
        sim.inject_stream("in", range(5))
        return summarize(sim.run(), net)

    assert run_once() == run_once()
