"""Tests for the RPC workload mixes."""

import numpy as np

from repro.accel.protoacc import Message, decode
from repro.workloads import (
    ALL_MIXES,
    ANALYTICS_MIX,
    ENTERPRISE_MIX,
    STORAGE_MIX,
    sized_message,
)


class TestSizedMessage:
    def test_payload_size_respected(self):
        rng = np.random.default_rng(0)
        msg = sized_message(300, rng)
        assert msg.blob_bytes == 300
        # Encoded size = payload + tags/header scalars.
        assert 300 < msg.encoded_size() < 340

    def test_nested_variant_wraps(self):
        rng = np.random.default_rng(0)
        msg = sized_message(64, rng, nested=True)
        assert msg.nesting_depth == 1

    def test_wire_format_round_trips(self):
        rng = np.random.default_rng(5)
        msg = sized_message(48, rng)
        back = decode(msg.encode())
        assert back.num_fields == msg.num_fields


class TestMixes:
    def test_reproducible(self):
        a = ENTERPRISE_MIX.sample(seed=4, count=10)
        b = ENTERPRISE_MIX.sample(seed=4, count=10)
        assert [m.encode() for m in a] == [m.encode() for m in b]

    def test_mix_size_profiles_differ(self):
        ent = ENTERPRISE_MIX.sample(seed=1, count=200)
        sto = STORAGE_MIX.sample(seed=1, count=200)
        mean_ent = np.mean([m.encoded_size() for m in ent])
        mean_sto = np.mean([m.encoded_size() for m in sto])
        assert mean_sto > 10 * mean_ent  # storage is bulk, enterprise small

    def test_enterprise_mostly_small(self):
        msgs = ENTERPRISE_MIX.sample(seed=2, count=300)
        median = np.median([m.encoded_size() for m in msgs])
        assert median < 200

    def test_analytics_is_field_heavy(self):
        msgs = ANALYTICS_MIX.sample(seed=3, count=50)
        assert np.mean([m.num_fields for m in msgs]) > 15
        assert all(m.blob_bytes == 0 for m in msgs)

    def test_all_mixes_yield_messages(self):
        for mix in ALL_MIXES:
            msgs = mix.sample(seed=0, count=5)
            assert len(msgs) == 5
            assert all(isinstance(m, Message) for m in msgs)
            assert all(m.encoded_size() > 0 for m in msgs)
