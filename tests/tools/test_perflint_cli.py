"""Tests for the perflint sweep CLI and the pnet lint subcommand."""

import json

import pytest

from repro.tools.perflint import main as perflint_main
from repro.tools.pnet import main as pnet_main

BROKEN = """\
net broken
place in
place out
inject in fields a
transition t
  consume in
  produce out
  delay expr: tok["b"] - 5
transition never
  consume out
  delay -1
"""


@pytest.fixture
def pnet_file(tmp_path):
    def write(text, name="net.pnet"):
        path = tmp_path / name
        path.write_text(text)
        return str(path)

    return write


class TestPnetLint:
    def test_broken_file_exits_nonzero(self, pnet_file, capsys):
        path = pnet_file(BROKEN)
        assert pnet_main(["lint", path]) == 1
        out = capsys.readouterr().out
        # Compiler-style diagnostics with file:line:col prefixes.
        assert f"{path}:8" in out
        assert "error[PL006]" in out
        assert "error[PL007]" in out

    def test_min_severity_filters_output_not_exit(self, pnet_file, capsys):
        path = pnet_file(BROKEN)
        code = pnet_main(["lint", path, "--min-severity", "error"])
        out = capsys.readouterr().out
        assert code == 1
        assert "error[" in out and "info[" not in out

    def test_json_output(self, pnet_file, capsys):
        path = pnet_file(BROKEN)
        pnet_main(["lint", path, "--json"])
        payload = json.loads(capsys.readouterr().out)
        rules = {d["rule"] for d in payload}
        assert {"PL006", "PL007"} <= rules
        assert all("severity" in d and "line" in d for d in payload)

    def test_clean_file_exits_zero(self, pnet_file, capsys):
        text = """\
net demo
place in
place out
inject in
transition t
  consume in
  produce out
  delay 3
"""
        assert pnet_main(["lint", pnet_file(text)]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_parse_error_is_a_diagnostic(self, pnet_file, capsys):
        assert pnet_main(["lint", pnet_file("net x\nbogus clause\n")]) == 1
        assert "PL000" in capsys.readouterr().out

    def test_inject_flag_declares_injection(self, pnet_file, capsys):
        # Without the flag the legacy net gets an implicit-injection
        # info; with it, the declaration is explicit and field-checked.
        text = """\
net demo
place in
place out
transition t
  consume in
  produce out
  delay expr: tok["missing"]
"""
        path = pnet_file(text)
        assert pnet_main(["lint", path]) == 0  # opaque implicit injection
        assert pnet_main(["lint", path, "--inject", "in:x,y"]) == 1
        assert "PL006" in capsys.readouterr().out


class TestPerflintSweep:
    def test_all_shipped_bundles_are_error_free(self, capsys):
        assert perflint_main([]) == 0
        out = capsys.readouterr().out
        assert "5 bundle(s)" in out
        assert "0 error(s)" in out.splitlines()[-1]

    def test_single_accelerator_selection(self, capsys):
        assert perflint_main(["jpeg"]) == 0
        out = capsys.readouterr().out
        assert "jpeg-decoder" in out and "vta" not in out

    def test_unknown_accelerator_is_an_error(self, capsys):
        assert perflint_main(["nonexistent"]) == 2
        assert "no lint bundle" in capsys.readouterr().err

    def test_json_output_per_accelerator(self, capsys):
        assert perflint_main(["--json", "protoacc"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["accelerator"] == "protoacc-ser"
        assert any(
            d["rule"] == "PG007" for d in payload[0]["diagnostics"]
        )

    def test_text_sweep_prints_timing_table(self, capsys):
        assert perflint_main(["jpeg"]) == 0
        out = capsys.readouterr().out
        assert "rules per bundle" in out
        assert "wall-time" in out
        assert "total" in out

    def test_json_carries_rule_count_and_elapsed(self, capsys):
        assert perflint_main(["--json", "jpeg"]) == 0
        payload = json.loads(capsys.readouterr().out)
        for entry in payload:
            assert entry["rules"] > 20
            assert entry["elapsed_ms"] >= 0.0
