"""Tests for the .pnet CLI."""

import pytest

from repro.accel.jpeg import JPEG_PNET
from repro.tools.pnet import main

GOOD = """
net demo
place in
place out
transition t
  consume in
  produce out
  delay 3
"""

DEADLOCKING = """
net dl
place in
place never
place out
transition t
  consume in never
  produce out
  delay 1
"""


@pytest.fixture
def pnet_file(tmp_path):
    def write(text, name="net.pnet"):
        path = tmp_path / name
        path.write_text(text)
        return str(path)

    return write


class TestValidate:
    def test_clean_net(self, pnet_file, capsys):
        assert main(["validate", pnet_file(GOOD)]) == 0
        out = capsys.readouterr().out
        assert "net 'demo'" in out

    def test_parse_error_exit_code(self, pnet_file, capsys):
        assert main(["validate", pnet_file("net x\nbogus\n")]) == 1
        assert "parse error" in capsys.readouterr().err

    def test_shipped_jpeg_interface_validates(self, pnet_file):
        assert main(["validate", pnet_file(JPEG_PNET)]) == 0

    def test_warning_net_fails(self, pnet_file, capsys):
        text = GOOD + "place orphan\n"
        # 'place' after a transition is fine; orphan produces a warning.
        assert main(["validate", pnet_file(text)]) == 1


class TestDot:
    def test_emits_digraph(self, pnet_file, capsys):
        assert main(["dot", pnet_file(GOOD)]) == 0
        assert capsys.readouterr().out.startswith("digraph")


class TestSimulate:
    def test_basic_run(self, pnet_file, capsys):
        rc = main(["simulate", pnet_file(GOOD), "--items", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "completions: 5" in out
        assert "throughput" in out

    def test_payload_drives_delays(self, pnet_file, capsys):
        text = """
net p
place in
place out
transition t
  consume in
  produce out
  delay expr: tok["n"] * 2
"""
        rc = main(
            ["simulate", pnet_file(text), "--items", "1", "--payload", '{"n": 21}']
        )
        assert rc == 0
        assert "mean=42.000" in capsys.readouterr().out

    def test_deadlock_reported(self, pnet_file, capsys):
        rc = main(["simulate", pnet_file(DEADLOCKING), "--items", "2"])
        assert rc == 1
        assert "DEADLOCK" in capsys.readouterr().err

    def test_unknown_entry_rejected(self, pnet_file, capsys):
        rc = main(["simulate", pnet_file(GOOD), "--entry", "nope"])
        assert rc == 1
        assert "entry place" in capsys.readouterr().err

    def test_jpeg_interface_simulates_from_cli(self, pnet_file, capsys):
        payload = '{"i": 0, "bytes": 16, "nnz": 12, "wr": true}'
        rc = main(
            [
                "simulate",
                pnet_file(JPEG_PNET),
                "--items",
                "8",
                "--payload",
                payload,
            ]
        )
        assert rc == 0
        assert "completions: 8" in capsys.readouterr().out


EXPR_CHAIN = """
net p
place in
place out
transition t
  consume in
  produce out
  delay expr: tok["n"] * 2
"""


class TestBatched:
    def test_batch_file_runs_the_batch_engine(self, pnet_file, tmp_path, capsys):
        batch = tmp_path / "sweep.jsonl"
        batch.write_text('{"n": 1}\n{"n": 2}\n\n{"n": 7}\n')  # blank line skipped
        rc = main(["run", pnet_file(EXPR_CHAIN), "--items", "3", "--batch", str(batch)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "items: 3 x 3 tokens" in out
        assert "batch engine: codegen" in out
        assert "items/sec" in out

    def test_engine_batched_without_batch_file_uses_payload(self, pnet_file, capsys):
        rc = main(
            [
                "run",
                pnet_file(EXPR_CHAIN),
                "--items",
                "1",
                "--payload",
                '{"n": 21}',
                "--engine",
                "batched",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "items: 1 x 1 tokens" in out
        assert "mean=42.000" in out

    def test_batched_makespans_match_the_per_item_engine(self, pnet_file, capsys):
        path = pnet_file(EXPR_CHAIN)
        assert main(["run", path, "--items", "4", "--payload", '{"n": 3}']) == 0
        per_item = capsys.readouterr().out
        args = ["--items", "4", "--payload", '{"n": 3}', "--engine", "batched"]
        assert main(["run", path, *args]) == 0
        batched = capsys.readouterr().out
        # Per-item mode prints "makespan: 24.0"; batched summarizes the
        # same value as "... mean=24.000 ...". Compare the numbers.
        per_line = next(ln for ln in per_item.splitlines() if "makespan" in ln)
        want = float(per_line.split(":")[1].split()[0])
        batch_line = next(ln for ln in batched.splitlines() if "makespan" in ln)
        mean = float(batch_line.split("mean=")[1].split()[0])
        assert mean == want

    def test_invalid_json_line_is_reported_with_line_number(
        self, pnet_file, tmp_path, capsys
    ):
        batch = tmp_path / "bad.jsonl"
        batch.write_text('{"n": 1}\nnot json\n')
        rc = main(["run", pnet_file(EXPR_CHAIN), "--batch", str(batch)])
        assert rc == 1
        assert "bad.jsonl:2: invalid JSON" in capsys.readouterr().err

    def test_empty_batch_file_is_an_error(self, pnet_file, tmp_path, capsys):
        batch = tmp_path / "empty.jsonl"
        batch.write_text("\n\n")
        rc = main(["run", pnet_file(EXPR_CHAIN), "--batch", str(batch)])
        assert rc == 1
        assert "no items" in capsys.readouterr().err

    def test_deadlock_in_batch_exits_nonzero(self, pnet_file, tmp_path, capsys):
        batch = tmp_path / "one.jsonl"
        batch.write_text("{}\n")
        rc = main(["run", pnet_file(DEADLOCKING), "--items", "2", "--batch", str(batch)])
        assert rc == 1
        assert "DEADLOCK" in capsys.readouterr().err


class TestVerify:
    def test_all_shipped_bundles_verify(self, capsys):
        assert main(["verify"]) == 0
        out = capsys.readouterr().out
        for name in ("protoacc", "optimusprime", "jpeg", "bitcoin", "vta"):
            assert f"== {name} ==" in out
        assert "proven:" in out
        assert "corner concretization:" in out

    def test_single_package_target(self, capsys):
        assert main(["verify", "protoacc"]) == 0
        out = capsys.readouterr().out
        assert "== protoacc ==" in out
        assert "bounds: [" in out

    def test_unknown_target_is_a_hard_error(self):
        with pytest.raises(SystemExit, match="unknown verify target 'nope'"):
            main(["verify", "nope"])

    def test_broken_fixture_fails_with_bound_and_direction_errors(self, capsys):
        rc = main(["verify", "tests/fixtures/broken_contract.pnet"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "VR003" in out  # derived bounds escape the declared ones
        assert "VR004" in out  # declared direction refuted with witness

    def test_json_output_shape(self, capsys):
        assert main(["verify", "protoacc", "--json"]) == 0
        import json as _json

        payload = _json.loads(capsys.readouterr().out)
        assert len(payload) == 1
        entry = payload[0]
        assert entry["target"] == "protoacc"
        assert entry["exit_code"] == 0
        assert entry["corners"]["checked"] == entry["corners"]["passed"] > 0
        contract = entry["contract"]
        assert contract["evaluability"] == "closed-form"
        assert any(c["proof"] in ("affine", "derivative") for c in contract["monotone"])

    def test_json_broken_fixture_carries_diagnostics(self, capsys):
        rc = main(["verify", "tests/fixtures/broken_contract.pnet", "--json"])
        assert rc == 1
        import json as _json

        payload = _json.loads(capsys.readouterr().out)
        rules = {d["rule"] for d in payload[0]["diagnostics"]}
        assert {"VR003", "VR004"} <= rules
