"""Tests for the perfscope observability CLI."""

import json

from repro.tools.perfscope import main, run_scenario

# Small and fast, but still enough traffic under round_robin + storm to
# exercise every layer: petri firings, protoacc DRAM bursts, breaker trips.
ARGS = ["--policy", "round_robin", "--faults", "storm", "--requests", "60", "--gap", "400"]


class TestReport:
    def test_exits_zero_with_full_report(self, capsys):
        assert main(["report", *ARGS]) == 0
        out = capsys.readouterr().out
        assert "protoacc" in out and "optimus-prime" in out and "cpu" in out
        assert "latency breakdown" in out
        assert "drift observatory" in out
        assert "eval cache" in out

    def test_quiet_fleet_report(self, capsys):
        assert main(["report", "--faults", "none", "--requests", "20"]) == 0
        assert "served" in capsys.readouterr().out


class TestTrace:
    def test_trace_export_parses_and_spans_all_layers(self, tmp_path, capsys):
        out_path = tmp_path / "scope.trace.json"
        assert main(["trace", *ARGS, "--out", str(out_path)]) == 0
        payload = json.loads(out_path.read_text())
        events = payload["traceEvents"]
        assert events, "trace must be non-empty"
        cats = {e.get("cat", "") for e in events}
        assert any(c.startswith("petri.") for c in cats), sorted(cats)
        assert any(c.startswith("hw.") for c in cats), sorted(cats)
        assert any(c.startswith("runtime.") for c in cats), sorted(cats)
        # Complete events carry durations; the virtual timeline is pid 1.
        xs = [e for e in events if e["ph"] == "X"]
        assert xs and all(e["dur"] >= 0 for e in xs)
        assert {e["pid"] for e in xs} <= {1, 2}
        assert str(out_path) in capsys.readouterr().out


class TestMetrics:
    def test_metrics_exposition(self, capsys):
        assert main(["metrics", *ARGS]) == 0
        out = capsys.readouterr().out
        assert "# TYPE pool_requests_total counter" in out
        assert 'device_calls_total{device="cpu"' in out
        assert "server_queue_wait_cycles_bucket" in out


class TestScale:
    def test_scale_report_tells_the_scaling_story(self, capsys):
        assert main(["scale", "--requests", "400"]) == 0
        out = capsys.readouterr().out
        assert "verdict: MET" in out
        assert "scaling events" in out and "predicted service" in out
        assert "brownout ladder" in out
        assert "final rung normal" in out

    def test_fixed_fleet_mode_skips_membership_changes(self, capsys):
        main(["scale", "--requests", "200", "--no-autoscale"])
        out = capsys.readouterr().out
        assert "scaling events" not in out
        assert "brownout ladder" in out


class TestScenario:
    def test_run_scenario_is_deterministic(self):
        obs_a, _, res_a = run_scenario(requests=40, seed=3)
        obs_b, _, res_b = run_scenario(requests=40, seed=3)
        assert [r.completed for r in res_a.served] == [
            r.completed for r in res_b.served
        ]
        assert len(obs_a.tracer) == len(obs_b.tracer)
