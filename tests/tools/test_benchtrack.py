"""Tests for the perf-regression sentinel (repro.tools.benchtrack)."""

import json

import pytest

from repro.tools.benchtrack import bless, check, compare, main


def baseline(**metrics):
    return {"bench": "demo", "metrics": metrics}


def fresh(**metrics):
    return {"bench": "demo", "metrics": metrics}


def spec(value, tolerance=0.05, direction="both"):
    return {"value": value, "tolerance": tolerance, "direction": direction}


class TestCompare:
    def test_within_band_is_ok(self):
        findings = compare(fresh(p95=104.0), baseline(p95=spec(100.0)))
        assert [f.status for f in findings] == ["ok"]

    def test_max_direction_fails_high_only(self):
        base = baseline(p95=spec(100.0, direction="max"))
        assert compare(fresh(p95=106.0), base)[0].status == "regressed"
        assert compare(fresh(p95=50.0), base)[0].status == "ok"  # faster is fine

    def test_min_direction_fails_low_only(self):
        base = baseline(hit_rate=spec(0.9, direction="min"))
        assert compare(fresh(hit_rate=0.5), base)[0].status == "regressed"
        assert compare(fresh(hit_rate=0.99), base)[0].status == "ok"

    def test_both_direction_fails_either_way(self):
        base = baseline(canary=spec(100.0, direction="both"))
        assert compare(fresh(canary=110.0), base)[0].status == "regressed"
        assert compare(fresh(canary=90.0), base)[0].status == "regressed"
        assert compare(fresh(canary=102.0), base)[0].status == "ok"

    def test_zero_baseline_uses_absolute_band(self):
        base = baseline(drops=spec(0.0, tolerance=0.5, direction="max"))
        assert compare(fresh(drops=0.4), base)[0].status == "ok"
        assert compare(fresh(drops=0.6), base)[0].status == "regressed"

    def test_missing_metric_is_a_failure(self):
        findings = compare(fresh(), baseline(p95=spec(100.0)))
        assert findings[0].status == "missing"
        assert not findings[0].ok

    def test_new_metric_is_informational(self):
        findings = compare(fresh(extra=1.0), baseline())
        assert findings[0].status == "new"
        assert findings[0].ok

    def test_bad_direction_rejected(self):
        with pytest.raises(ValueError, match="direction"):
            compare(fresh(x=1.0), baseline(x=spec(1.0, direction="up")))

    def test_regression_message_names_the_metric(self):
        finding = compare(
            fresh(p95=200.0), baseline(p95=spec(100.0, direction="max"))
        )[0]
        text = str(finding)
        assert "REGRESSED" in text and "demo.p95" in text


class TestCheckAndBless:
    def write(self, directory, name, document):
        directory.mkdir(parents=True, exist_ok=True)
        (directory / name).write_text(json.dumps(document))

    def test_bless_then_check_round_trips(self, tmp_path):
        results, baselines = tmp_path / "results", tmp_path / "baselines"
        self.write(results, "BENCH_demo.json", fresh(p95=100.0, drop=0.1))
        written = bless(results=results, baselines=baselines)
        assert [p.name for p in written] == ["BENCH_demo.json"]
        findings, problems = check(results=results, baselines=baselines)
        assert not problems
        assert all(f.ok for f in findings)

    def test_bless_preserves_existing_tolerance_and_direction(self, tmp_path):
        results, baselines = tmp_path / "results", tmp_path / "baselines"
        self.write(results, "BENCH_demo.json", fresh(p95=120.0))
        self.write(
            baselines,
            "BENCH_demo.json",
            baseline(p95=spec(100.0, tolerance=0.2, direction="max")),
        )
        bless(results=results, baselines=baselines)
        blessed = json.loads((baselines / "BENCH_demo.json").read_text())
        assert blessed["metrics"]["p95"] == {
            "value": 120.0,
            "tolerance": 0.2,
            "direction": "max",
        }

    def test_check_flags_missing_baseline_and_stale_baseline(self, tmp_path):
        results, baselines = tmp_path / "results", tmp_path / "baselines"
        self.write(results, "BENCH_new.json", fresh(x=1.0))
        self.write(baselines, "BENCH_gone.json", baseline(x=spec(1.0)))
        _, problems = check(results=results, baselines=baselines)
        assert any("no committed baseline for BENCH_new.json" in p for p in problems)
        assert any("BENCH_gone.json has no fresh result" in p for p in problems)

    def test_check_skips_nonconforming_json(self, tmp_path):
        results, baselines = tmp_path / "results", tmp_path / "baselines"
        baselines.mkdir()
        self.write(results, "BENCH_wallclock.json", {"jpeg": {"items_per_sec": 1e6}})
        _, problems = check(results=results, baselines=baselines)
        # The schema-less file is invisible, so the only problem is the
        # empty fresh set.
        assert problems == [f"no BENCH_*.json results under {results}"]


class TestCli:
    def write(self, directory, name, document):
        directory.mkdir(parents=True, exist_ok=True)
        (directory / name).write_text(json.dumps(document))

    def args(self, tmp_path, command):
        return [
            command,
            "--results",
            str(tmp_path / "results"),
            "--baselines",
            str(tmp_path / "baselines"),
        ]

    def test_check_exits_zero_when_clean(self, tmp_path, capsys):
        self.write(tmp_path / "results", "BENCH_demo.json", fresh(p95=100.0))
        assert main(self.args(tmp_path, "bless")) == 0
        assert main(self.args(tmp_path, "check")) == 0
        assert "within tolerance" in capsys.readouterr().out

    def test_check_exits_nonzero_and_names_the_regressed_metric(
        self, tmp_path, capsys
    ):
        self.write(
            tmp_path / "baselines",
            "BENCH_demo.json",
            baseline(p95=spec(100.0, direction="max")),
        )
        self.write(tmp_path / "results", "BENCH_demo.json", fresh(p95=150.0))
        assert main(self.args(tmp_path, "check")) == 1
        out = capsys.readouterr().out
        assert "REGRESSED demo.p95" in out
        assert "FAILED" in out

    def test_check_exits_nonzero_with_no_results(self, tmp_path, capsys):
        (tmp_path / "results").mkdir()
        (tmp_path / "baselines").mkdir()
        assert main(self.args(tmp_path, "check")) == 1
        assert "no BENCH_*.json results" in capsys.readouterr().out
