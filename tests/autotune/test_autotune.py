"""Tests for the auto-tuner: profilers, search, and cost model."""

import numpy as np
import pytest

from repro.accel.vta import GemmWorkload, legal_tilings, random_programs
from repro.autotune import (
    CycleAccurateProfiler,
    EventModelProfiler,
    LinearCostModel,
    PetriProfiler,
    RooflineProfiler,
    anneal_tune,
    exhaustive_tune,
    features,
    profiling_speedups,
    random_tune,
)

WORK = GemmWorkload(4, 4, 4)


class TestProfilers:
    def test_accounting(self):
        prof = EventModelProfiler()
        progs = random_programs(1, 3, max_dim=4)
        for p in progs:
            prof.profile(p)
        assert prof.queries == 3
        assert prof.wall_seconds > 0
        prof.reset_accounting()
        assert prof.queries == 0

    def test_tiers_agree_on_ordering(self):
        # All fidelity tiers must rank a clearly-better schedule first.
        progs = random_programs(2, 4, max_dim=4)
        event = [EventModelProfiler().profile(p) for p in progs]
        petri = [PetriProfiler().profile(p) for p in progs]
        assert np.argsort(event).tolist() == np.argsort(petri).tolist()

    def test_petri_close_to_cycle_accurate(self):
        prog = random_programs(3, 1, max_dim=4)[0]
        cyc = CycleAccurateProfiler().profile(prog)
        pet = PetriProfiler().profile(prog)
        assert abs(pet - cyc) / cyc < 0.05

    def test_speedup_samples(self):
        progs = random_programs(4, 2, max_dim=4)
        samples = profiling_speedups(
            CycleAccurateProfiler(), PetriProfiler(), progs
        )
        assert len(samples) == 2
        assert all(s.speedup > 1.0 for s in samples)

    def test_roofline_is_cheap_and_rough(self):
        prof = RooflineProfiler()
        prog = random_programs(5, 1, max_dim=4)[0]
        estimate = prof.profile(prog)
        truth = EventModelProfiler().profile(prog)
        assert 0.3 * truth < estimate < 1.5 * truth


class TestSearch:
    def test_exhaustive_finds_global_best(self):
        prof = EventModelProfiler()
        result = exhaustive_tune(WORK, prof)
        assert result.trials == len(legal_tilings(WORK))
        assert result.best_cycles == min(c for _, c in result.history)

    def test_petri_driven_search_matches_simulation_driven(self):
        # The paper's point: searching with the interface finds the same
        # (or equally good) schedule, much faster.
        by_event = exhaustive_tune(WORK, EventModelProfiler())
        by_petri = exhaustive_tune(WORK, PetriProfiler())
        # Re-measure petri's pick with the ground truth: within 5% of
        # the true optimum (the interface's ~1% error can swap closely
        # clustered tilings, but never picks a bad schedule).
        truth = EventModelProfiler()
        petri_pick = truth.profile(by_petri.best.lower(WORK))
        assert petri_pick <= by_event.best_cycles * 1.05

    def test_random_tune_respects_budget(self):
        result = random_tune(WORK, EventModelProfiler(), budget=5, seed=1)
        assert result.trials == 5

    def test_random_tune_budget_validation(self):
        with pytest.raises(ValueError):
            random_tune(WORK, EventModelProfiler(), budget=0)

    def test_anneal_deterministic_and_reasonable(self):
        a = anneal_tune(WORK, EventModelProfiler(), steps=15, seed=3)
        b = anneal_tune(WORK, EventModelProfiler(), steps=15, seed=3)
        assert a.best_cycles == b.best_cycles
        exhaustive = exhaustive_tune(WORK, EventModelProfiler())
        assert a.best_cycles <= exhaustive.best_cycles * 1.5

    def test_summary_text(self):
        result = random_tune(WORK, EventModelProfiler(), budget=3)
        assert "cycles" in result.summary()


class TestCostModel:
    def test_features_shape(self):
        prog = random_programs(6, 1, max_dim=4)[0]
        vec = features(prog)
        assert vec.shape == (8,)
        assert vec[0] == prog.total_macs

    def test_fit_and_predict(self):
        progs = random_programs(7, 30, max_dim=5)
        prof = EventModelProfiler()
        cycles = [prof.profile(p) for p in progs]
        model = LinearCostModel().fit(progs[:20], cycles[:20])
        err = model.score(progs[20:], cycles[20:])
        assert err < 0.25  # linear features capture most of the timing

    def test_unfitted_predict_rejected(self):
        with pytest.raises(RuntimeError):
            LinearCostModel().predict(random_programs(8, 1)[0])

    def test_fit_validation(self):
        with pytest.raises(ValueError):
            LinearCostModel().fit([], [])
