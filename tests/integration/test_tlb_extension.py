"""§5 extension: interface accuracy with and without the TLB component.

The paper's open question: "since co-processors like Protoacc access
memory via the TLB, the Petri net model would need to include the TLB
state to be able to reason precisely about memory access latencies",
with the proposed fix of modeling such components once and composing.
These tests pin the demonstration: the plain Fig. 3 interface collapses
on a TLB-mediated deployment, and composing it with the TLB component
interface restores useful accuracy.
"""

import pytest

from repro.accel.protoacc import (
    ProtoaccSerializerModel,
    instances,
    tput_protoacc_ser,
)
from repro.accel.protoacc.interfaces import (
    accesses_per_message,
    read_cost_with_tlb,
    tlb_translation_cost,
    tput_protoacc_ser_tlb,
)
from repro.hw.stats import ErrorReport
from repro.hw.tlb import Tlb, TlbConfig


@pytest.fixture(scope="module")
def tlb_world():
    model = ProtoaccSerializerModel(tlb_config=TlbConfig())
    msgs = list(instances(seed=3).values())
    actual = [model.measure_throughput(m, repeat=8) for m in msgs]
    return model, msgs, actual


def test_plain_interface_collapses_under_tlb(tlb_world):
    _, msgs, actual = tlb_world
    naive = ErrorReport.of([tput_protoacc_ser(m) for m in msgs], actual)
    assert naive.avg > 0.5  # catastrophically wrong, as §5 warns


def test_composed_interface_recovers(tlb_world):
    _, msgs, actual = tlb_world
    composed = ErrorReport.of(
        [tput_protoacc_ser_tlb(m, miss_ratio=0.85) for m in msgs], actual
    )
    assert composed.avg < 0.10
    assert composed.max < 0.20


def test_miss_ratio_parameter_validated():
    msg = list(instances(seed=1).values())[0]
    with pytest.raises(ValueError):
        tput_protoacc_ser_tlb(msg, miss_ratio=1.5)


def test_translation_cost_shape():
    assert tlb_translation_cost(0.0) == 1.0
    assert tlb_translation_cost(1.0) == 111.0


def test_accesses_per_message_recursive():
    msgs = instances(seed=2)
    flat = msgs["flat_varint_32"]
    nested = msgs["nested_depth_4"]
    assert accesses_per_message(flat) == 3  # header + base + 1 group
    assert accesses_per_message(nested) > accesses_per_message(flat)


def test_read_cost_with_tlb_monotone_in_miss_ratio():
    msg = list(instances(seed=1).values())[5]
    assert read_cost_with_tlb(msg, 0.9) > read_cost_with_tlb(msg, 0.1)


def test_model_tlb_statistics_visible():
    model = ProtoaccSerializerModel(tlb_config=TlbConfig())
    msg = list(instances(seed=4).values())[10]
    # Warm stream: miss ratio should fall below 1 (locality in the arena).
    tlb = Tlb(TlbConfig())
    rng_msgs = [msg] * 6
    t = 0.0
    for k, m in enumerate(rng_msgs):
        ops = []
        rng = model._addr_rng(m, salt=k)
        t = model._read_message(m, t, __import__("repro.hw", fromlist=["Dram"]).Dram(), rng, ops, tlb)
    assert 0.0 < tlb.miss_ratio <= 1.0
