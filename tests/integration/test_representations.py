"""Integration: the three representations of each accelerator hold the
paper's precision ordering, and the shipped artifacts are well-formed.
"""

import pytest

from repro.accel import jpeg as jpeg_pkg
from repro.accel.jpeg import JpegDecoderModel, random_images
from repro.core import compare_representations
from repro.petri import analyze_structure, parse, to_pnet


class TestPrecisionOrdering:
    def test_jpeg_petri_beats_program_on_both_metrics(self):
        model = JpegDecoderModel()
        images = random_images(77, 30)
        reports = compare_representations(
            {
                "program": jpeg_pkg.PROGRAM,
                "petri-net": jpeg_pkg.petri_interface(),
            },
            model,
            images,
            throughput_repeat=4,
        )
        assert reports["petri-net"].latency.avg < reports["program"].latency.avg
        assert reports["petri-net"].throughput.avg < reports["program"].throughput.avg


class TestShippedArtifacts:
    def test_jpeg_pnet_parses_and_is_structurally_clean(self):
        net = parse(jpeg_pkg.JPEG_PNET)
        report = analyze_structure(net)
        # The only acceptable notice is the informational sink marker.
        real_warnings = [w for w in report.warnings if "sink" not in w]
        assert not real_warnings
        assert report.source_places == ["in"]
        assert report.sink_places == ["out"]
        assert report.conservative  # pipeline: no token creation

    def test_jpeg_pnet_round_trips_with_identical_predictions(self):
        img = random_images(5, 1)[0]
        original = jpeg_pkg.petri_interface()
        reparsed = parse(to_pnet(original.net))
        from repro.core import PetriNetInterface

        clone = PetriNetInterface(
            "jpeg-decoder",
            net_factory=lambda: reparsed,
            tokenize=jpeg_pkg.interfaces.tokenize_image,
            epilogue=jpeg_pkg.interfaces.EOI_FLUSH,
        )
        assert clone.latency(img) == original.latency(img)

    def test_vta_net_is_structurally_sound(self):
        from repro.accel.vta import build_vta_net

        net = build_vta_net()
        report = analyze_structure(net)
        # Command queues are sources (fed by injection); out is the sink.
        assert "out" in report.sink_places
        assert any(p.startswith("cmd_") for p in report.source_places)

    def test_miner_net_dot_export(self):
        from repro.accel.bitcoin import petri_interface
        from repro.petri import to_dot

        dot = to_dot(petri_interface(8).net)
        assert "hash1" in dot and "hash2" in dot
        assert dot.startswith("digraph")


class TestGroundTruthStability:
    """Pin a few ground-truth measurements: any timing-semantics change
    must be deliberate (update these values and DESIGN.md together)."""

    def test_jpeg_reference_latency(self):
        img = random_images(123, 1)[0]
        assert JpegDecoderModel().measure_latency(img) == pytest.approx(
            JpegDecoderModel().measure_latency(img)
        )

    def test_vta_reference_latency_pinned(self):
        from repro.accel.vta import GemmWorkload, Tiling, VtaModel, tiled_gemm_program

        prog = tiled_gemm_program(GemmWorkload(4, 4, 4), Tiling(2, 2, 2))
        cycles = VtaModel().measure_latency(prog)
        assert cycles == 2465.0  # pinned reference value

    def test_protoacc_reference_latency_pinned(self):
        import numpy as np

        from repro.accel.protoacc import ProtoaccSerializerModel, build

        msg = build("rpc_request", np.random.default_rng(0))
        lat = ProtoaccSerializerModel().measure_latency(msg)
        assert lat == ProtoaccSerializerModel().measure_latency(msg)
        assert 300 < lat < 2000
