"""Integration: causal attribution localizes an injected DRAM bottleneck.

Acceptance (per ISSUE): under a DRAM-stall FaultPlan the top
mispredicted stage for the faulted device is ``memory`` — found by the
library API, surfaced in ``pool.snapshot()``, and printed by
``perfscope explain``.
"""

from repro.obs import Obs, attribute, score_mispredictions
from repro.runtime import OpenLoopServer
from repro.runtime.pool import rpc_pool
from repro.tools.perfscope import main as perfscope_main
from repro.workloads import STORAGE_MIX


def run_dram_storm(seed=11, count=140):
    obs = Obs.enabled(tsdb=True)
    pool = rpc_pool("round_robin", faults="dram", seed=seed, obs=obs)
    server = OpenLoopServer(pool, queue_limit=48, deadline=60_000.0, obs=obs)
    msgs, arrivals = STORAGE_MIX.sample_open(seed=seed, count=count, mean_gap=600.0)
    return obs, pool, server.run(msgs, arrivals)


class TestDramBottleneckLocalization:
    def test_memory_is_the_top_mispredicted_stage(self):
        obs, pool, result = run_dram_storm()
        attrs = attribute(result, obs.tracer, pool)
        assert attrs and all(a.total == a.end_to_end for a in attrs)
        score_mispredictions(attrs, pool, obs.observatory)

        top = obs.observatory.top_mispredicted_stage("protoacc")
        assert top is not None
        stage, err = top
        assert stage == "memory", (
            f"DRAM storm misattributed: top stage {stage} (err {err:.1%})"
        )
        assert err > 0.1, "memory misprediction too small to have found the fault"

    def test_snapshot_and_heal_hint_agree(self):
        obs, pool, result = run_dram_storm()
        score_mispredictions(attribute(result, obs.tracer, pool), pool, obs.observatory)
        snap = pool.snapshot()
        assert snap["attribution"]["protoacc"]["stage"] == "memory"
        # The tsdb excerpt proves the serving loop pumped while faulted.
        assert snap["tsdb"]["pumps"] >= 1 and snap["tsdb"]["points"] > 0

    def test_unfaulted_device_does_not_blame_memory(self):
        obs, pool, result = run_dram_storm()
        score_mispredictions(attribute(result, obs.tracer, pool), pool, obs.observatory)
        top = obs.observatory.top_mispredicted_stage("optimus-prime")
        if top is not None:  # optimus may see little storage traffic
            stage, err = top
            assert stage != "memory" or err < 0.1, (
                "healthy optimus-prime blamed for memory misprediction"
            )


class TestPerfscopeExplainNamesIt:
    def test_explain_names_the_memory_stage(self, capsys):
        assert (
            perfscope_main(
                [
                    "explain",
                    "--policy",
                    "round_robin",
                    "--faults",
                    "dram",
                    "--requests",
                    "120",
                    "--top",
                    "3",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "worst-mispredicted stage per device" in out
        protoacc_lines = [
            line
            for line in out.splitlines()
            if line.strip().startswith("protoacc") and "symmetric error" in line
        ]
        assert protoacc_lines, out
        assert any("memory" in line for line in protoacc_lines), protoacc_lines
        assert "slowest 3 requests" in out
        assert "predicted vs observed stages" in out
