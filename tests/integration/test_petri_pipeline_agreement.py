"""Cross-substrate property: the Petri-net engine and the pipeline
recurrence implement the same timing semantics.

A linear chain of serial transitions with unbounded intermediate places
is exactly the unbounded-FIFO pipeline recurrence: item i enters stage
s when the stage frees and the item arrives; no backpressure exists.
The two implementations were written independently (event-driven
colored nets vs an analytic recurrence), so their agreement on random
workloads is strong evidence both are right.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import LinePipeline, StageSpec
from repro.petri import PetriNet, chain, run_workload


@st.composite
def chain_case(draw):
    n_stages = draw(st.integers(min_value=1, max_value=4))
    n_items = draw(st.integers(min_value=1, max_value=10))
    costs = draw(
        st.lists(
            st.lists(
                st.integers(min_value=0, max_value=12),
                min_size=n_stages,
                max_size=n_stages,
            ),
            min_size=n_items,
            max_size=n_items,
        )
    )
    return costs


@given(chain_case())
@settings(max_examples=80, deadline=None)
def test_unbounded_chain_matches_recurrence(costs):
    n_stages = len(costs[0])

    net = PetriNet("chain")
    chain(
        net,
        [
            (
                f"s{s}",
                lambda consumed, s=s: consumed[
                    "in" if s == 0 else f"q_s{s-1}"
                ][0].payload[s],
            )
            for s in range(n_stages)
        ],
        capacity=None,
    )
    net_result = run_workload(net, costs)

    pipe = LinePipeline(
        [StageSpec(f"s{s}", lambda item, s=s: item[s]) for s in range(n_stages)],
        fifo_capacity=max(len(costs), 1),  # effectively unbounded
    )
    sched = pipe.schedule(costs)

    assert sorted(c.time for c in net_result.sink()) == sorted(
        sched.completion_times()
    )


@given(chain_case())
@settings(max_examples=40, deadline=None)
def test_chain_conserves_tokens(costs):
    n_stages = len(costs[0])
    net = PetriNet("chain")
    chain(net, [(f"s{s}", 1) for s in range(n_stages)], capacity=2)
    result = run_workload(net, costs)
    assert len(result.sink()) == len(costs)
    assert result.residual_tokens == 0
    for s in range(n_stages):
        assert result.fired[f"s{s}"] == len(costs)


@given(
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=12),
)
@settings(max_examples=30, deadline=None)
def test_more_servers_never_slower(servers, items):
    def build(k):
        net = PetriNet("srv")
        net.add_place("in")
        net.add_place("out")
        net.add_transition("t", ["in"], ["out"], delay=7, servers=k)
        return net

    slow = run_workload(build(servers), [None] * items)
    fast = run_workload(build(servers + 1), [None] * items)
    assert fast.makespan() <= slow.makespan()
