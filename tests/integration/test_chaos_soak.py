"""Chaos soak: rolling fault storms + live autoscaling, invariants held.

A long open-loop serve where everything moves at once — the arrival
rate swings diurnally, the base Protoacc's fault plan turns hostile
mid-trace (:class:`~repro.runtime.faults.WindowedFaultPlan`), the
brownout ladder climbs and descends, and the autoscaler adds and
removes devices while requests are in flight.  The point is not the
SLO verdict (the benchmark owns that); it is that the bookkeeping
invariants the rest of the repo relies on survive membership churn:

* every offered request is accounted for exactly once;
* every served request's cycles decompose exactly;
* the router never dispatches past a refusing breaker;
* each device's tape stays monotone and gap-free, across scale events;
* breaker transition logs stay time-ordered and non-repeating.
"""

import math

import pytest

from repro.runtime import BreakerState
from repro.scale import run_scale_scenario


@pytest.fixture(scope="module")
def soak():
    # Two diurnal periods and a storm window that spans the first
    # trough-to-peak ramp: the fleet churns repeatedly.
    return run_scale_scenario(count=700, storm_window=(30, 200))


class TestAccountingUnderChurn:
    def test_every_request_accounted_once(self, soak):
        result = soak["result"]
        assert result.offered == 700
        assert len(result.served) + len(result.dropped) + len(result.shed) == 700
        failed = sum(not r.ok for r in result.served)
        assert result.losses == len(result.dropped) + len(result.shed) + failed

    def test_decomposition_exact_for_every_served_request(self, soak):
        result = soak["result"]
        assert result.breakdowns
        for b in result.breakdowns:
            assert math.isclose(b.total, b.end_to_end, rel_tol=1e-9, abs_tol=1e-6)
            assert min(b.queue_wait, b.device_queue, b.service, b.retry) >= 0.0

    def test_scaling_actually_churned(self, soak):
        scaler = soak["controller"].scaler
        assert scaler.scale_outs() >= 1 and scaler.scale_ins() >= 1
        ladder = soak["controller"].ladder
        # The extended storm keeps pressure on into the trace's end, so
        # the ladder need not be home yet — but it must have moved both
        # ways (full descent is the benchmark's claim, on the tuned
        # default window).
        assert ladder.climbed() >= 1 and ladder.descended() >= 1


class TestDeviceInvariantsUnderChurn:
    def test_router_never_crossed_a_breaker(self, soak):
        assert soak["pool"].invariant_violations == 0

    def test_storm_faults_were_actually_injected(self, soak):
        protoacc = soak["pool"].device("protoacc").device
        assert any(r.faults for r in protoacc.records)

    def test_tapes_monotone_and_gap_free(self, soak):
        # Includes devices added mid-run: their tapes start at 1 too.
        pool = soak["pool"]
        seen = 0
        for pooled in pool.devices:
            records = pooled.device.records
            indices = [r.index for r in records]
            assert indices == list(range(1, len(indices) + 1)), pooled.name
            seen += len(indices)
        assert seen > 0

    def test_breaker_transitions_sane(self, soak):
        valid = {
            BreakerState.CLOSED: {BreakerState.OPEN},
            BreakerState.OPEN: {BreakerState.HALF_OPEN},
            BreakerState.HALF_OPEN: {BreakerState.CLOSED, BreakerState.OPEN},
        }
        tripped = 0
        for pooled in soak["pool"].devices:
            breaker = getattr(pooled.device, "breaker", None)
            if breaker is None:
                continue
            transitions = breaker.transitions
            times = [t.time for t in transitions]
            assert times == sorted(times), pooled.name
            state = BreakerState.CLOSED
            for t in transitions:
                assert t.state in valid[state], (pooled.name, state, t.state)
                state = t.state
            tripped += any(t.state is BreakerState.OPEN for t in transitions)
        assert tripped >= 1, "the storm should trip at least one breaker"
