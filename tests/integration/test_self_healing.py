"""End-to-end self-healing over the real heterogeneous RPC fleet.

The unit tests in ``tests/heal`` pin the state machine on a toy linear
device; these drive the whole stack — storage mix, open-loop server,
``interface_predicted`` routing, drift observatory, refit-from-tape —
through the E16 regime shift and check the acceptance criteria of the
healing loop: the error comes back under the drift threshold with no
restart, and a candidate that regresses on probation is rolled back
and quarantined.
"""

from repro.heal import (
    E16_HEAL_POLICY,
    HealPhase,
    HealPolicy,
    run_heal_scenario,
    slowed_dram,
)

#: The floor for a complete cycle at E16 pacing (see the benchmark).
REQUESTS = 320


class TestHealCycle:
    def test_detect_refit_shadow_swap_recover_without_restart(self):
        result = run_heal_scenario(requests=REQUESTS)
        device, rpc_class = result.target_key
        state = result.healer.state(device, rpc_class)
        detector = result.obs.observatory.detector(device, rpc_class)

        # The cycle completed: one promotion, no rollback.
        swap = result.swap_at(device, rpc_class)
        assert swap is not None
        assert state.refits >= 1 and state.promotions == 1
        assert state.rollbacks == 0

        # Final mean error for the affected key is back under the
        # drift threshold, and the detector agrees.
        post = result.mean_error(device, rpc_class, since=swap)
        assert post < detector.threshold
        assert (device, rpc_class) not in result.obs.observatory.drifting_keys()

        # No restart: one pool, one breaker (never transitioned), one
        # continuous tape across the shift.
        pooled = result.pool.device(device)
        assert pooled.device.breaker.transitions == []
        assert result.errors(device, rpc_class, until=result.shift_at)
        assert result.errors(device, rpc_class, since=result.shift_at)

        # The healed pricing is live in the router.
        routed = result.healer.routed_interface(device)
        assert pooled.price_interface is routed
        assert rpc_class in routed.overrides


class TestRegressingCandidate:
    def test_rolled_back_and_quarantined(self):
        # Stretch probation past the end of the serve so the run
        # finishes with the candidate still on probation...
        policy = HealPolicy(
            window=E16_HEAL_POLICY.window,
            min_records=E16_HEAL_POLICY.min_records,
            trigger_after=E16_HEAL_POLICY.trigger_after,
            shadow_samples=E16_HEAL_POLICY.shadow_samples,
            probation_samples=500,
            refit_cooldown=E16_HEAL_POLICY.refit_cooldown,
            quarantine_cooldown=E16_HEAL_POLICY.quarantine_cooldown,
        )
        result = run_heal_scenario(requests=REQUESTS, heal_policy=policy)
        device, rpc_class = result.target_key
        state = result.healer.state(device, rpc_class)
        assert state.phase is HealPhase.PROBATION
        assert state.promotions == 1
        routed = result.healer.routed_interface(device)
        swapped_iface = routed.overrides[rpc_class]

        # ...then shift the regime *again* under the promoted
        # candidate.  It was fit to the 5x-slow DRAM; the hardware is
        # now 6x slower still, so it regresses on live traffic.
        protoacc = result.pool.device(device).device
        protoacc.model.dram_config = slowed_dram(protoacc.model.dram_config, 6.0)

        from repro.workloads.rpc import ALL_MIXES

        mix = next(m for m in ALL_MIXES if m.name == "storage")
        msgs, arrivals = mix.sample_open(99, 150, 900.0)
        t0 = protoacc.clock
        for msg, offset in zip(msgs, arrivals):
            result.pool.dispatch(msg, t0 + offset)
            if state.phase is HealPhase.QUARANTINED:
                break

        assert state.phase is HealPhase.QUARANTINED
        assert state.rollbacks == 1
        # Exact prior pricing restored: no override existed before the
        # promotion, so the shipped interface prices the class again.
        assert rpc_class not in routed.overrides
        assert routed.interface_for(rpc_class) is routed.base
        assert routed.interface_for(rpc_class) is not swapped_iface
        quarantine = [e for e in result.healer.events if e.phase_to is HealPhase.QUARANTINED]
        assert len(quarantine) == 1 and "quarantined" in quarantine[0].reason
