"""Tests for the Optimus Prime and CPU baselines (paper §2 example #2)."""

import numpy as np
import pytest

from repro.accel.cpu import CpuSerializerModel, offload_overhead, offloaded_latency
from repro.accel.optimusprime import OptimusPrimeModel
from repro.accel.protoacc import ProtoaccSerializerModel
from repro.workloads import ENTERPRISE_MIX, STORAGE_MIX, sized_message


def msg(size, seed=0):
    return sized_message(size, np.random.default_rng(seed))


class TestOptimusPrime:
    def test_peak_rate_matches_published_headline(self):
        # ~33 Gbps peak at 2 GHz (paper §4 quotes 33).
        assert OptimusPrimeModel.peak_gbps() == pytest.approx(32.0)

    def test_realistic_mix_rate_drops(self):
        # Paper §4: drops to ~14 Gbps on realistic workloads; we require
        # a clearly sub-peak rate on the enterprise mix.
        op = OptimusPrimeModel()
        msgs = ENTERPRISE_MIX.sample(seed=7, count=150)
        total_bytes = sum(m.encoded_size() for m in msgs)
        total_cycles = sum(op.measure_latency(m) for m in msgs)
        gbps = total_bytes / total_cycles * 2.0 * 8
        assert gbps < 0.72 * OptimusPrimeModel.peak_gbps()

    def test_descriptor_cache_miss_costs(self):
        hit = OptimusPrimeModel(descriptor_cache_hit=True)
        miss = OptimusPrimeModel(descriptor_cache_hit=False)
        m = msg(64)
        assert miss.measure_latency(m) > hit.measure_latency(m) + 100


class TestCpu:
    def test_software_cost_structure(self):
        cpu = CpuSerializerModel()
        small, large = msg(16), msg(4096)
        assert cpu.measure_latency(large) > cpu.measure_latency(small) * 5

    def test_offload_overhead_scales_with_payload(self):
        assert offload_overhead(msg(4096)) > offload_overhead(msg(16))


class TestCrossovers:
    """The paper's §2 claims, measured end to end."""

    pa = ProtoaccSerializerModel()
    op = OptimusPrimeModel()
    cpu = CpuSerializerModel()

    def winner(self, size):
        m = msg(size)
        options = {
            "protoacc": offloaded_latency(self.pa, m),
            "optimus-prime": offloaded_latency(self.op, m),
            "cpu": self.cpu.measure_latency(m),
        }
        return min(options, key=options.get)

    def test_protoacc_loses_to_cpu_on_tiny_objects(self):
        # "Protoacc can perform worse than a regular Xeon" (§2).
        m = msg(32)
        assert offloaded_latency(self.pa, m) > self.cpu.measure_latency(m)

    def test_optimus_prime_best_for_small_objects(self):
        assert self.winner(300) == "optimus-prime"

    def test_protoacc_best_for_large_objects(self):
        assert self.winner(4096) == "protoacc"
        assert self.winner(16384) == "protoacc"

    def test_mix_dependent_choice(self):
        # Whole-mix decisions flip between mixes: that is exactly why a
        # workload-specific answer (an interface) beats a benchmark score.
        def mix_winner(mix):
            msgs = mix.sample(seed=3, count=60)
            totals = {
                "protoacc": sum(offloaded_latency(self.pa, m) for m in msgs),
                "optimus-prime": sum(offloaded_latency(self.op, m) for m in msgs),
            }
            return min(totals, key=totals.get)

        assert mix_winner(STORAGE_MIX) == "protoacc"
        assert mix_winner(ENTERPRISE_MIX) == "optimus-prime"
