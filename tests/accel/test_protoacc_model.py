"""Tests for the Protoacc ground-truth models and format suite."""

import numpy as np
import pytest

from repro.accel.protoacc import (
    Field,
    FieldKind,
    Message,
    ProtoaccDeserializerModel,
    ProtoaccSerializerModel,
    build,
    format_names,
    instances,
)


def flat(n, rng=None):
    rng = rng or np.random.default_rng(0)
    fields = tuple(
        Field(i + 1, FieldKind.VARINT, int(v))
        for i, v in enumerate(rng.integers(0, 1 << 40, size=n))
    )
    return Message(fields, schema_name=f"flat{n}")


def nested(depth):
    msg = flat(4)
    for _ in range(depth):
        msg = Message((Field(1, FieldKind.MESSAGE, msg),), schema_name="wrap")
    return msg


class TestFormats:
    def test_exactly_32_formats(self):
        assert len(format_names()) == 32

    def test_instances_reproducible(self):
        a = instances(seed=5)
        b = instances(seed=5)
        assert {k: v.encode() for k, v in a.items()} == {
            k: v.encode() for k, v in b.items()
        }

    def test_unknown_format_rejected(self):
        with pytest.raises(KeyError, match="unknown format"):
            build("nope", np.random.default_rng(0))

    def test_suite_spans_the_performance_axes(self):
        msgs = instances(seed=1)
        depths = [m.nesting_depth for m in msgs.values()]
        sizes = [m.encoded_size() for m in msgs.values()]
        fields = [m.num_fields for m in msgs.values()]
        assert max(depths) >= 6 and min(depths) == 0
        assert max(sizes) > 8_000 and min(sizes) < 64
        assert max(fields) >= 128 and min(fields) == 1

    def test_field_count_formats_match_their_names(self):
        msgs = instances(seed=2)
        for n in (1, 32, 33, 128):
            assert msgs[f"flat_varint_{n}"].num_fields == n


class TestSerializerModel:
    @pytest.fixture(scope="class")
    def model(self):
        return ProtoaccSerializerModel()

    def test_deterministic(self, model):
        msg = flat(8)
        assert model.measure_latency(msg) == model.measure_latency(msg)

    def test_latency_grows_with_nesting(self, model):
        lats = [model.measure_latency(nested(d)) for d in (0, 2, 4, 8)]
        assert lats == sorted(lats)
        # Each extra level adds two dependent accesses: super-linear in
        # wall terms, roughly linear per level.
        assert lats[3] > lats[0] * 3

    def test_throughput_decreases_with_nesting(self, model):
        tps = [model.measure_throughput(nested(d), repeat=6) for d in (0, 2, 4, 8)]
        assert tps == sorted(tps, reverse=True)

    def test_descriptor_fetch_step_at_32_fields(self, model):
        # Crossing a 32-field boundary costs one extra descriptor fetch;
        # within a group, latency moves only via encoded-size drain.
        l32 = model.measure_latency(flat(32))
        l33 = model.measure_latency(flat(33))
        l34 = model.measure_latency(flat(34))
        assert l33 - l32 > 20  # full memory access + decode
        assert l34 - l33 < 10

    def test_write_bound_for_large_blobs(self, model):
        msg = Message((Field(1, FieldKind.BYTES, b"z" * 8192),))
        lat = model.measure_latency(msg)
        # Drain alone needs ~encoded/16 cycles.
        assert lat >= msg.num_writes

    def test_throughput_streaming_beats_isolated_inverse_latency(self, model):
        # Read of message k+1 overlaps write of message k.
        msg = build("rpc_request", np.random.default_rng(7))
        tput = model.measure_throughput(msg, repeat=8)
        assert tput >= 0.9 / model.measure_latency(msg)

    def test_repeat_validation(self, model):
        with pytest.raises(ValueError):
            model.measure_throughput(flat(2), repeat=0)

    def test_timing_breakdown_consistent(self, model):
        timing = model.serialize_timing(flat(16))
        assert timing.write_end >= timing.read_end - 20  # drain ends after data
        assert timing.latency > timing.write_end


class TestDeserializerModel:
    def test_latency_positive_and_deterministic(self):
        model = ProtoaccDeserializerModel()
        msg = build("kv_pairs", np.random.default_rng(1))
        lat = model.measure_latency(msg)
        assert lat > 0
        assert lat == model.measure_latency(msg)

    def test_nesting_costs_allocations(self):
        model = ProtoaccDeserializerModel()
        assert model.measure_latency(nested(6)) > model.measure_latency(nested(0))
