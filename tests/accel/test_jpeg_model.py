"""Tests for the JPEG decoder ground-truth model."""

import pytest

from repro.accel.jpeg import JpegDecoderModel, random_images
from repro.accel.jpeg.model import (
    EOI_CYCLES,
    HEADER_PARSE_CYCLES,
    HUFF_BASE,
    HUFF_PER_BYTE,
    IDCT_BASE,
    OUTPUT_PER_BLOCK,
)
from tests.accel.test_jpeg_workload import make_image


@pytest.fixture(scope="module")
def model():
    return JpegDecoderModel()


def test_single_block_latency_decomposes(model):
    img = make_image(8, 8, bytes_per_block=10, nnz=10)
    lat = model.measure_latency(img)
    # header + huffman + idct + output + write burst + eoi; the write
    # burst and alignment add a few tens of cycles on top of the fixed
    # path below.
    fixed = (
        HEADER_PARSE_CYCLES
        + HUFF_BASE
        + HUFF_PER_BYTE * 10
        + IDCT_BASE
        + OUTPUT_PER_BLOCK
        + EOI_CYCLES
    )
    assert fixed <= lat <= fixed + 80


def test_latency_monotone_in_blocks(model):
    small = make_image(16, 16)
    big = make_image(64, 64)
    assert model.measure_latency(big) > model.measure_latency(small)


def test_latency_monotone_in_coded_bytes(model):
    light = make_image(32, 32, bytes_per_block=4)
    heavy = make_image(32, 32, bytes_per_block=120)
    assert model.measure_latency(heavy) > model.measure_latency(light)


def test_output_bound_regime_is_insensitive_to_coded_size(model):
    # Both images decode compute-bound (few coded bytes): latency should
    # barely move with coded size.
    a = make_image(64, 64, bytes_per_block=4)
    b = make_image(64, 64, bytes_per_block=8)
    la, lb = model.measure_latency(a), model.measure_latency(b)
    assert abs(la - lb) / la < 0.02


def test_input_bound_regime_scales_with_coded_size(model):
    a = make_image(64, 64, bytes_per_block=60)
    b = make_image(64, 64, bytes_per_block=120)
    la, lb = model.measure_latency(a), model.measure_latency(b)
    assert lb / la > 1.6  # roughly doubles with coded size


def test_deterministic(model):
    img = random_images(5, 1)[0]
    assert model.measure_latency(img) == model.measure_latency(img)


def test_throughput_close_to_inverse_latency(model):
    img = make_image(32, 32, bytes_per_block=20)
    lat = model.measure_latency(img)
    tput = model.measure_throughput(img, repeat=4)
    assert tput == pytest.approx(1 / lat, rel=0.05)


def test_throughput_repeat_validation(model):
    img = make_image(16, 16)
    with pytest.raises(ValueError):
        model.measure_throughput(img, repeat=0)


def test_restart_marker_cost_visible(model):
    # 65 blocks crosses one restart interval; compare against an image
    # one block-row shorter scaled: check super-linear bump exists by
    # comparing per-block latency.
    small = make_image(8 * 8, 8 * 8)  # 64 blocks
    big = make_image(8 * 10, 8 * 13)  # 130 blocks: two restart markers
    lat_small = model.measure_latency(small)
    lat_big = model.measure_latency(big)
    per_small = (lat_small - HEADER_PARSE_CYCLES) / 64
    per_big = (lat_big - HEADER_PARSE_CYCLES) / 130
    # Amortized restart cost shifts per-block cost by < 1 cycle; both
    # should be near IDCT_BASE but big slightly larger than tiny jitter.
    assert per_big == pytest.approx(per_small, rel=0.05)


def test_batch_measurement(model):
    imgs = random_images(11, 3)
    lats = model.measure_batch(imgs)
    assert len(lats) == 3
    assert all(lat > HEADER_PARSE_CYCLES for lat in lats)
