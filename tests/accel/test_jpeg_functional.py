"""Tests for the functional JPEG codec path."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel.jpeg.functional import (
    BitReader,
    BitWriter,
    decode_block,
    decode_pixels,
    encode_block,
    encode_pixels,
    fdct,
    idct,
    image_from_pixels,
    quant_table,
    synthetic_photo,
)
from repro.accel.jpeg import JpegDecoderModel, latency_jpeg_decode


class TestDct:
    def test_round_trip_identity(self):
        rng = np.random.default_rng(1)
        block = rng.uniform(-128, 127, (8, 8))
        assert np.allclose(idct(fdct(block)), block, atol=1e-9)

    def test_dc_of_constant_block(self):
        block = np.full((8, 8), 64.0)
        coeffs = fdct(block)
        assert coeffs[0, 0] == pytest.approx(64.0 * 8)
        assert np.allclose(coeffs.flatten()[1:], 0, atol=1e-9)

    def test_orthonormal_energy(self):
        rng = np.random.default_rng(2)
        block = rng.normal(0, 50, (8, 8))
        assert np.sum(block**2) == pytest.approx(np.sum(fdct(block) ** 2))


class TestQuantTable:
    def test_quality_bounds(self):
        with pytest.raises(ValueError):
            quant_table(0)
        with pytest.raises(ValueError):
            quant_table(101)

    def test_higher_quality_finer_steps(self):
        assert quant_table(90).mean() < quant_table(30).mean()

    def test_q50_is_base_table(self):
        from repro.accel.jpeg.functional import BASE_QUANT

        assert (quant_table(50) == BASE_QUANT).all()
        assert (quant_table(1) >= 1).all()  # clipping floor holds


class TestBits:
    def test_writer_reader_round_trip(self):
        w = BitWriter()
        w.write(0b101, 3)
        w.write(0b0110, 4)
        r = BitReader(w.to_bytes())
        assert r.read(3) == 0b101
        assert r.read(4) == 0b0110

    def test_writer_rejects_overflow(self):
        with pytest.raises(ValueError):
            BitWriter().write(4, 2)

    @given(st.lists(st.tuples(st.integers(0, 255), st.integers(1, 8)), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_round_trip_property(self, chunks):
        w = BitWriter()
        expect = []
        for value, length in chunks:
            value &= (1 << length) - 1
            w.write(value, length)
            expect.append((value, length))
        r = BitReader(w.to_bytes())
        for value, length in expect:
            assert r.read(length) == value


class TestBlockCoding:
    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_block_round_trip(self, seed):
        rng = np.random.default_rng(seed)
        # Sparse-ish quantized blocks, like real post-quantization data.
        block = np.zeros((8, 8), dtype=np.int64)
        n = int(rng.integers(0, 20))
        idx = rng.choice(64, size=n, replace=False)
        block.flat[idx] = rng.integers(-255, 256, size=n)
        w = BitWriter()
        dc, nnz = encode_block(block, prev_dc=0, writer=w)
        decoded, dc_out = decode_block(BitReader(w.to_bytes()), prev_dc=0)
        assert (decoded == block).all()
        assert dc_out == block[0, 0]

    def test_dc_prediction_chain(self):
        blocks = [np.zeros((8, 8), dtype=np.int64) for _ in range(3)]
        for i, b in enumerate(blocks):
            b[0, 0] = 10 * (i + 1)
        w = BitWriter()
        prev = 0
        for b in blocks:
            prev, _ = encode_block(b, prev, w)
        r = BitReader(w.to_bytes())
        prev = 0
        for b in blocks:
            decoded, prev = decode_block(r, prev)
            assert decoded[0, 0] == b[0, 0]


class TestImagePath:
    def test_encode_decode_high_quality_close_to_original(self):
        rng = np.random.default_rng(3)
        pixels = synthetic_photo(rng, 32, 32, detail=0.3)
        coded = encode_pixels(pixels, quality=95)
        restored = decode_pixels(coded)
        rmse = np.sqrt(np.mean((restored.astype(float) - pixels) ** 2))
        assert rmse < 6.0

    def test_quality_controls_size(self):
        rng = np.random.default_rng(4)
        pixels = synthetic_photo(rng, 32, 32, detail=0.6)
        small = encode_pixels(pixels, quality=20)
        large = encode_pixels(pixels, quality=95)
        assert len(large.bitstream) > len(small.bitstream)

    def test_detail_controls_compressibility(self):
        rng = np.random.default_rng(5)
        smooth = encode_pixels(synthetic_photo(rng, 32, 32, detail=0.0), 75)
        rough = encode_pixels(synthetic_photo(rng, 32, 32, detail=1.0), 75)
        assert len(rough.bitstream) > len(smooth.bitstream)

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            encode_pixels(np.zeros((10, 16), dtype=np.uint8))

    def test_block_stats_shape(self):
        rng = np.random.default_rng(6)
        coded = encode_pixels(synthetic_photo(rng, 24, 16), 75)
        assert coded.n_blocks == 6
        assert len(coded.block_bits) == 6
        assert (coded.block_nnz >= 0).all() and (coded.block_nnz <= 64).all()


class TestBridgeToTimingModel:
    def test_real_encodes_flow_through_interfaces(self):
        rng = np.random.default_rng(7)
        pixels = synthetic_photo(rng, 48, 48, detail=0.5)
        img = image_from_pixels(pixels, quality=75)
        model = JpegDecoderModel()
        measured = model.measure_latency(img)
        predicted = latency_jpeg_decode(img)
        assert abs(predicted - measured) / measured < 0.10

    def test_detail_moves_compression_rate(self):
        rng = np.random.default_rng(8)
        smooth = image_from_pixels(synthetic_photo(rng, 64, 64, 0.0), 75)
        rough = image_from_pixels(synthetic_photo(rng, 64, 64, 1.0), 75)
        assert smooth.compress_rate > rough.compress_rate

    def test_statistical_generator_in_real_encode_range(self):
        # The statistical workload's per-block coded sizes must overlap
        # the range real encodes produce (cross-validation of DESIGN §2).
        rng = np.random.default_rng(9)
        real = image_from_pixels(synthetic_photo(rng, 64, 64, 0.5), 75)
        assert 2 <= real.coded_bytes.mean() <= 64
