"""Equivalence of the cycle-ticking VTA simulator and the event model.

The tick simulator exists so that "cycle-accurate simulation" costs
wall-clock time proportional to simulated cycles (the E6 comparison).
Its *timing results* must agree with the event-driven ground truth:
makespans match exactly; per-instruction times may differ only where
same-cycle arbitration ties resolve in a different order.
"""

import numpy as np
import pytest

from repro.accel.vta import (
    GemmWorkload,
    Instruction,
    Opcode,
    Program,
    Tiling,
    VtaModel,
    random_programs,
    tiled_gemm_program,
)
from repro.accel.vta.ticksim import TickVtaSimulator
from repro.hw.kernel import SimError


@pytest.fixture(scope="module")
def pair():
    return VtaModel(), TickVtaSimulator()


def test_makespans_match_exactly_on_random_programs(pair):
    event, tick = pair
    for prog in random_programs(17, 15, max_dim=5):
        assert tick.run(prog).cycles == event.run(prog).cycles, prog.name


def test_makespan_matches_on_dense_schedule(pair):
    event, tick = pair
    prog = tiled_gemm_program(GemmWorkload(8, 8, 8), Tiling(4, 4, 4))
    assert tick.run(prog).cycles == event.run(prog).cycles


def test_intermediate_times_close(pair):
    event, tick = pair
    for prog in random_programs(18, 5, max_dim=5):
        a = np.array(event.run(prog).insn_end)
        b = np.array(tick.run(prog).insn_end)
        # Ties may reorder mid-stream DMA slots but never drift far.
        assert np.max(np.abs(a - b)) / a.max() < 0.05


def test_rejects_unbalanced_program(pair):
    _, tick = pair
    bad = Program(
        (Instruction(Opcode.GEMM, uop_count=1, lp0=1, lp1=1, pop_prev=True),)
    )
    with pytest.raises(SimError, match="pops tokens"):
        tick.run(bad)


def test_cycle_guard(pair):
    _, tick = pair
    prog = tiled_gemm_program(GemmWorkload(2, 2, 2), Tiling(1, 1, 1))
    with pytest.raises(SimError, match="exceeded"):
        tick.run(prog, max_cycles=10)
