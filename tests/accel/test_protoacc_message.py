"""Tests for the protobuf wire-format substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel.protoacc import (
    Field,
    FieldKind,
    Message,
    decode,
    decode_varint,
    decode_with_kinds,
    encode_varint,
)


class TestVarint:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (0, b"\x00"),
            (1, b"\x01"),
            (127, b"\x7f"),
            (128, b"\x80\x01"),
            (300, b"\xac\x02"),
            (2**64 - 1, b"\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01"),
        ],
    )
    def test_known_encodings(self, value, expected):
        assert encode_varint(value) == expected

    def test_negative_uses_twos_complement(self):
        # protobuf int64 -1 encodes as 10 bytes of 0xff.. 0x01
        assert len(encode_varint(-1)) == 10

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    @settings(max_examples=200, deadline=None)
    def test_round_trip(self, value):
        data = encode_varint(value)
        decoded, pos = decode_varint(data)
        assert decoded == value
        assert pos == len(data)

    def test_truncated_varint_rejected(self):
        with pytest.raises(ValueError, match="truncated"):
            decode_varint(b"\x80")

    def test_overlong_varint_rejected(self):
        with pytest.raises(ValueError, match="64 bits"):
            decode_varint(b"\x80" * 10 + b"\x01")


class TestFieldValidation:
    def test_field_number_positive(self):
        with pytest.raises(ValueError):
            Field(0, FieldKind.VARINT, 1)

    def test_kind_value_type_checked(self):
        with pytest.raises(TypeError):
            Field(1, FieldKind.BYTES, 42)
        with pytest.raises(TypeError):
            Field(1, FieldKind.VARINT, b"x")
        with pytest.raises(TypeError):
            Field(1, FieldKind.MESSAGE, b"x")


class TestEncoding:
    def test_varint_field_wire_bytes(self):
        msg = Message((Field(1, FieldKind.VARINT, 150),))
        # tag = (1<<3)|0 = 0x08, value 150 = 0x96 0x01  (protobuf docs example)
        assert msg.encode() == b"\x08\x96\x01"

    def test_bytes_field_wire_bytes(self):
        msg = Message((Field(2, FieldKind.BYTES, b"testing"),))
        assert msg.encode() == b"\x12\x07testing"

    def test_fixed_fields(self):
        msg = Message(
            (Field(1, FieldKind.FIXED32, 1), Field(2, FieldKind.FIXED64, 2))
        )
        data = msg.encode()
        assert data == b"\x0d" + (1).to_bytes(4, "little") + b"\x11" + (2).to_bytes(8, "little")

    def test_nested_message_length_delimited(self):
        inner = Message((Field(1, FieldKind.VARINT, 150),))
        outer = Message((Field(3, FieldKind.MESSAGE, inner),))
        assert outer.encode() == b"\x1a\x03\x08\x96\x01"

    def test_decode_round_trip_flat(self):
        msg = Message(
            (
                Field(1, FieldKind.VARINT, 12345),
                Field(2, FieldKind.FIXED64, 7),
                Field(3, FieldKind.BYTES, b"hello"),
            )
        )
        back = decode(msg.encode())
        assert back.num_fields == 3
        assert back.fields[0].value == 12345
        assert back.fields[2].value == b"hello"

    def test_schema_guided_decode_recovers_nesting(self):
        inner = Message((Field(1, FieldKind.VARINT, 9),))
        outer = Message(
            (Field(1, FieldKind.VARINT, 5), Field(2, FieldKind.MESSAGE, inner))
        )
        back = decode_with_kinds(outer.encode(), outer)
        assert back.fields[1].kind is FieldKind.MESSAGE
        assert back.fields[1].value.fields[0].value == 9
        assert back.encode() == outer.encode()

    def test_truncated_payload_rejected(self):
        with pytest.raises(ValueError, match="truncated"):
            decode(b"\x12\x09short")


class TestMetrics:
    def test_nesting_depth(self):
        flat = Message((Field(1, FieldKind.VARINT, 1),))
        assert flat.nesting_depth == 0
        d1 = Message((Field(1, FieldKind.MESSAGE, flat),))
        d2 = Message((Field(1, FieldKind.MESSAGE, d1),))
        assert d2.nesting_depth == 2

    def test_total_fields_and_messages(self):
        leaf = Message((Field(1, FieldKind.VARINT, 1), Field(2, FieldKind.VARINT, 2)))
        root = Message(
            (Field(1, FieldKind.MESSAGE, leaf), Field(2, FieldKind.MESSAGE, leaf))
        )
        assert root.total_fields == 6
        assert root.total_messages == 3

    def test_num_writes_tracks_encoded_size(self):
        msg = Message((Field(1, FieldKind.BYTES, b"x" * 160),))
        assert msg.num_writes == -(-msg.encoded_size() // 8)

    def test_blob_bytes_not_recursive(self):
        inner = Message((Field(1, FieldKind.BYTES, b"y" * 100),))
        outer = Message(
            (Field(1, FieldKind.BYTES, b"x" * 10), Field(2, FieldKind.MESSAGE, inner))
        )
        assert outer.blob_bytes == 10
        assert inner.blob_bytes == 100

    def test_payload_bytes_recursive(self):
        inner = Message((Field(1, FieldKind.FIXED32, 1),))
        outer = Message(
            (Field(1, FieldKind.VARINT, 1), Field(2, FieldKind.MESSAGE, inner))
        )
        assert outer.payload_bytes == 8 + 4
