"""Tests for the from-scratch SHA-256 (against hashlib as oracle)."""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel.bitcoin.sha256 import (
    compress,
    count_leading_zero_bits,
    hash_meets_target,
    midstate,
    padding,
    sha256,
    sha256d,
)


@pytest.mark.parametrize(
    "message",
    [b"", b"abc", b"a" * 55, b"a" * 56, b"a" * 63, b"a" * 64, b"a" * 65, b"x" * 1000],
)
def test_matches_hashlib(message):
    assert sha256(message) == hashlib.sha256(message).digest()


@given(st.binary(max_size=300))
@settings(max_examples=60, deadline=None)
def test_matches_hashlib_random(message):
    assert sha256(message) == hashlib.sha256(message).digest()


def test_sha256d_is_double_hash():
    data = b"block header"
    assert sha256d(data) == hashlib.sha256(hashlib.sha256(data).digest()).digest()


def test_known_vector():
    assert (
        sha256(b"abc").hex()
        == "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    )


def test_midstate_plus_tail_equals_full_hash():
    data = b"q" * 80  # like a block header
    mid = midstate(data)
    final = compress(mid, data[64:] + padding(80))
    import struct

    assert struct.pack(">8I", *final) == sha256(data)


def test_midstate_requires_full_block():
    with pytest.raises(ValueError):
        midstate(b"short")


def test_compress_requires_64_bytes():
    with pytest.raises(ValueError):
        compress((0,) * 8, b"x" * 63)


def test_padding_lengths():
    for n in (0, 1, 55, 56, 63, 64, 80, 119):
        assert (n + len(padding(n))) % 64 == 0


def test_target_comparison_little_endian():
    digest = b"\xff" + b"\x00" * 31  # tiny as little-endian int
    assert hash_meets_target(digest, 0xFF)
    assert not hash_meets_target(digest, 0xFE)


def test_leading_zero_bits():
    digest = (1).to_bytes(32, "little")
    assert count_leading_zero_bits(digest) == 255
    digest = (2**255).to_bytes(32, "little")
    assert count_leading_zero_bits(digest) == 0
