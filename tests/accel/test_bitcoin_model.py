"""Tests for the Bitcoin miner model and its interfaces."""

import numpy as np
import pytest

from repro.accel.bitcoin import (
    ENGLISH,
    VALID_LOOPS,
    BitcoinMinerModel,
    area_latency_frontier,
    area_miner,
    latency_attempt,
    latency_miner,
    mining_cycles,
    petri_interface,
    random_job,
    sha256d,
    target_for_zero_bits,
    tput_miner,
)
from repro.accel.bitcoin.sha256 import hash_meets_target
from repro.core.nl import Relation


def job(zero_bits=8, seed=0):
    return random_job(np.random.default_rng(seed), zero_bits=zero_bits)


class TestModel:
    def test_invalid_loop_rejected(self):
        with pytest.raises(ValueError, match="loop must be one of"):
            BitcoinMinerModel(3)

    @pytest.mark.parametrize("loop", VALID_LOOPS)
    def test_pass_latency_equals_loop(self, loop):
        # The paper's Fig. 1 claim, measured from the round schedule.
        assert BitcoinMinerModel(loop).pass_latency() == loop

    def test_attempt_latency_is_two_passes(self):
        assert BitcoinMinerModel(16).attempt_latency() == 32

    def test_area_grows_inversely_with_loop(self):
        areas = [BitcoinMinerModel(loop).area() for loop in VALID_LOOPS]
        assert areas == sorted(areas, reverse=True)
        # Inverse proportionality up to the small control constant.
        assert areas[0] / areas[-1] > 30

    def test_hashrate_is_inverse_loop(self):
        assert BitcoinMinerModel(4).hashrate() == pytest.approx(1 / 4)

    def test_mine_finds_real_nonce(self):
        j = job(zero_bits=8)
        result = BitcoinMinerModel(8).mine(j, max_attempts=200_000)
        assert result.found
        digest = sha256d(j.header(result.nonce))
        assert digest == result.digest
        assert hash_meets_target(digest, j.target)

    def test_mine_cycle_accounting(self):
        j = job(zero_bits=6)
        model = BitcoinMinerModel(8)
        result = model.mine(j, max_attempts=100_000)
        expected = model.attempt_latency() + (result.attempts - 1) * 8
        assert result.cycles == expected

    def test_mine_gives_up_at_max_attempts(self):
        j = job(zero_bits=200)  # unfindable
        result = BitcoinMinerModel(8).mine(j, max_attempts=10)
        assert not result.found
        assert result.attempts == 10

    def test_measure_contract(self):
        model = BitcoinMinerModel(16)
        j = job()
        assert model.measure_latency(j) == 32
        assert model.measure_throughput(j) == pytest.approx(1 / 16)


class TestWorkload:
    def test_header_is_80_bytes(self):
        assert len(job().header(0)) == 80

    def test_nonce_lands_in_last_word(self):
        j = job()
        a, b = j.header(0), j.header(1)
        assert a[:76] == b[:76]
        assert a[76:] != b[76:]

    def test_target_for_zero_bits(self):
        t = target_for_zero_bits(8)
        assert t.bit_length() == 248

    def test_bad_inputs_rejected(self):
        with pytest.raises(ValueError):
            target_for_zero_bits(256)


class TestInterfaces:
    def test_english_renders_fig1(self):
        text = ENGLISH.render()
        assert "Latency (cycles) is equal to the configuration parameter Loop" in text
        assert "area" in text and "inversely proportional to Loop" in text

    def test_equals_param_statement_validates(self):
        pairs = [
            (loop, float(BitcoinMinerModel(loop).pass_latency()))
            for loop in VALID_LOOPS
        ]
        stmt = ENGLISH.statements[0]
        assert stmt.relation is Relation.EQUALS_PARAM
        assert stmt.check(pairs)

    def test_area_statement_validates(self):
        pairs = [(loop, area_miner(loop)) for loop in VALID_LOOPS]
        assert ENGLISH.statements[1].check(pairs, tolerance=0.15)

    @pytest.mark.parametrize("loop", VALID_LOOPS)
    def test_program_matches_model(self, loop):
        model = BitcoinMinerModel(loop)
        assert latency_miner(loop) == model.pass_latency()
        assert latency_attempt(loop) == model.attempt_latency()
        assert tput_miner(loop) == model.hashrate()
        assert area_miner(loop) == model.area()

    def test_mining_cycles_matches_model_accounting(self):
        j = job(zero_bits=6)
        model = BitcoinMinerModel(8)
        result = model.mine(j, max_attempts=100_000)
        assert mining_cycles(8, result.attempts) == result.cycles

    @pytest.mark.parametrize("loop", (1, 8, 64))
    def test_petri_latency_matches_model(self, loop):
        iface = petri_interface(loop)
        j = job()
        assert iface.latency(j) == BitcoinMinerModel(loop).attempt_latency()

    def test_frontier_covers_all_loops(self):
        rows = area_latency_frontier()
        assert [r["loop"] for r in rows] == [float(x) for x in VALID_LOOPS]
        assert all(r["area"] > 0 for r in rows)
