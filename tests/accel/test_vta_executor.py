"""Tests for the VTA schedule executor: every lowering computes the
same matmul (schedule-equivalence, the autotuner's safety net)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel.vta import GemmWorkload, Tiling, legal_tilings, tiled_gemm_program
from repro.accel.vta.executor import (
    SemanticsError,
    execute_gemm,
    random_operands,
    reference_gemm,
)


def test_matches_reference_simple():
    work = GemmWorkload(2, 2, 2)
    a, b = random_operands(work, np.random.default_rng(0))
    out = execute_gemm(work, Tiling(1, 1, 1), a, b)
    assert (out == reference_gemm(a, b)).all()


def test_all_legal_tilings_equivalent():
    work = GemmWorkload(4, 2, 4)
    a, b = random_operands(work, np.random.default_rng(1))
    expected = reference_gemm(a, b)
    for tiling in legal_tilings(work):
        assert (execute_gemm(work, tiling, a, b) == expected).all(), tiling


@given(
    st.integers(1, 4), st.integers(1, 4), st.integers(1, 4), st.integers(0, 2**31)
)
@settings(max_examples=25, deadline=None)
def test_random_workloads_and_tilings(m, k, n, seed):
    work = GemmWorkload(m, k, n)
    rng = np.random.default_rng(seed)
    a, b = random_operands(work, rng)
    tilings = legal_tilings(work)
    tiling = tilings[seed % len(tilings)]
    relu = bool(seed % 2)
    out = execute_gemm(work, tiling, a, b, relu=relu)
    assert (out == reference_gemm(a, b, relu=relu)).all()


def test_relu_clamps_negatives():
    work = GemmWorkload(1, 1, 1)
    a = -np.ones((16, 16), dtype=np.int64)
    b = np.ones((16, 16), dtype=np.int64)
    out = execute_gemm(work, Tiling(1, 1, 1), a, b, relu=True)
    assert (out == 0).all()


def test_program_walker_accepts_matching_lowering():
    work = GemmWorkload(2, 2, 2)
    tiling = Tiling(1, 2, 1)
    program = tiled_gemm_program(work, tiling, alu_relu=True)
    a, b = random_operands(work, np.random.default_rng(2))
    out = execute_gemm(work, tiling, a, b, relu=True, program=program)
    assert (out == reference_gemm(a, b, relu=True)).all()


def test_program_walker_rejects_wrong_tiling():
    work = GemmWorkload(2, 2, 2)
    program = tiled_gemm_program(work, Tiling(2, 1, 1), alu_relu=True)
    a, b = random_operands(work, np.random.default_rng(3))
    with pytest.raises(SemanticsError):
        execute_gemm(work, Tiling(1, 1, 1), a, b, relu=True, program=program)


def test_program_walker_rejects_truncated_program():
    work = GemmWorkload(2, 1, 1)
    tiling = Tiling(1, 1, 1)
    program = tiled_gemm_program(work, tiling, alu_relu=False)
    from repro.accel.vta import Program

    truncated = Program(program.instructions[:-2], name="trunc")
    a, b = random_operands(work, np.random.default_rng(4))
    with pytest.raises(SemanticsError):
        execute_gemm(work, tiling, a, b, relu=False, program=truncated)


def test_shape_validation():
    work = GemmWorkload(2, 2, 2)
    a, b = random_operands(GemmWorkload(1, 2, 2), np.random.default_rng(5))
    with pytest.raises(ValueError, match="a must be"):
        execute_gemm(work, Tiling(1, 1, 1), a, b)


def test_tiling_must_divide():
    work = GemmWorkload(3, 3, 3)
    a, b = random_operands(work, np.random.default_rng(6))
    with pytest.raises(ValueError, match="divide"):
        execute_gemm(work, Tiling(2, 1, 1), a, b)
