"""Petri-net interfaces shipped for the pooled serving devices.

The paper's repos only built nets for JPEG/VTA-class pipelines; the pool
runtime's ``interface_predicted`` router prices *every* device through a
net, so Protoacc and Optimus Prime now ship one too.  These tests pin
the properties routing depends on: validated accuracy, lint cleanliness,
and compiled-engine + shared-cache evaluation.
"""

import pytest

from repro.accel.optimusprime import OptimusPrimeModel
from repro.accel.optimusprime import petri_interface as optimus_petri
from repro.accel.protoacc import PROGRAM, ProtoaccSerializerModel
from repro.accel.protoacc import petri_interface as protoacc_petri
from repro.hw.stats import ErrorReport
from repro.perf import EvalCache
from repro.workloads import ENTERPRISE_MIX


class TestProtoaccNet:
    def test_more_accurate_than_program_midpoint_on_enterprise_mix(self):
        model = ProtoaccSerializerModel()
        net = protoacc_petri()
        msgs = ENTERPRISE_MIX.sample(seed=3, count=25)
        observed = [model.measure_latency(m) for m in msgs]
        net_err = ErrorReport.of([net.latency(m) for m in msgs], observed)
        prog_err = ErrorReport.of([PROGRAM.latency(m) for m in msgs], observed)
        assert net_err.avg < prog_err.avg
        assert net_err.avg < 0.20  # routing-grade accuracy

    def test_one_token_per_submessage(self):
        from repro.accel.protoacc.interfaces import tokenize_message

        msgs = ENTERPRISE_MIX.sample(seed=9, count=10)
        for msg in msgs:
            assert len(tokenize_message(msg)) == msg.total_messages


class TestOptimusNet:
    def test_matches_the_program_interface_exactly(self):
        # The parser array has no cross-item overlap: the net's single
        # transition should reproduce the closed-form latency.
        from repro.accel.optimusprime import PROGRAM as OPTIMUS_PROGRAM

        net = optimus_petri()
        for msg in ENTERPRISE_MIX.sample(seed=4, count=10):
            assert net.latency(msg) == pytest.approx(OPTIMUS_PROGRAM.latency(msg))

    def test_tracks_the_model(self):
        model = OptimusPrimeModel()
        net = optimus_petri()
        msgs = ENTERPRISE_MIX.sample(seed=4, count=15)
        err = ErrorReport.of(
            [net.latency(m) for m in msgs], [model.measure_latency(m) for m in msgs]
        )
        assert err.max < 1e-9  # exact by construction (descriptor-cache hits)


class TestLintAndEngines:
    def test_both_nets_lint_clean(self):
        from repro.accel.optimusprime.interfaces import OPTIMUS_PNET
        from repro.accel.protoacc.interfaces import PROTOACC_PNET
        from repro.lint import Severity, lint_pnet_text

        for text in (PROTOACC_PNET, OPTIMUS_PNET):
            report = lint_pnet_text(text)
            errors = [d for d in report.diagnostics if d.severity is Severity.ERROR]
            assert not errors, errors

    def test_compiled_and_reference_engines_agree(self):
        msgs = ENTERPRISE_MIX.sample(seed=6, count=8)
        for factory in (protoacc_petri, optimus_petri):
            ref = factory(engine="reference")
            comp = factory(engine="compiled")
            for msg in msgs:
                assert comp.latency(msg) == ref.latency(msg)

    def test_one_shared_cache_serves_both_nets(self):
        cache = EvalCache()
        protoacc = protoacc_petri(cache=cache)
        optimus = optimus_petri(cache=cache)
        msg = ENTERPRISE_MIX.sample(seed=7, count=1)[0]
        first = (protoacc.latency(msg), optimus.latency(msg))
        misses_after_first = cache.stats.misses
        assert misses_after_first > 0
        again = (protoacc.latency(msg), optimus.latency(msg))
        assert again == first
        assert cache.stats.misses == misses_after_first  # all repeat evals hit
        assert cache.stats.hits > 0
