"""Tests for the JPEG decoder's three interface representations."""

import pytest

from repro.accel.jpeg import (
    ENGLISH,
    PROGRAM,
    JpegDecoderModel,
    latency_jpeg_decode,
    petri_interface,
    random_images,
    tput_jpeg_decode,
)
from repro.core.nl import Relation
from repro.hw.stats import ErrorReport
from tests.accel.test_jpeg_workload import make_image


class TestEnglish:
    def test_renders_fig1_sentence(self):
        text = ENGLISH.render()
        assert text == (
            "Latency is inversely proportional to the input image's compression rate"
        )

    def test_statement_relation(self):
        assert ENGLISH.statements[0].relation is Relation.INVERSELY_PROPORTIONAL

    def test_statement_validates_against_model(self):
        # Sweep coded size in the input-bound regime with geometry fixed:
        # compression rate halves => latency doubles.
        model = JpegDecoderModel()
        pairs = []
        for bpb in (60, 80, 100, 120):
            img = make_image(64, 64, bytes_per_block=bpb)
            pairs.append(
                (img.compress_rate, model.measure_latency(img))
            )
        assert ENGLISH.statements[0].check(pairs, tolerance=0.2)


class TestProgram:
    def test_latency_positive_and_finite(self):
        img = make_image(32, 32)
        assert 0 < latency_jpeg_decode(img) < 1e9

    def test_throughput_is_inverse_latency(self):
        img = make_image(32, 32)
        assert tput_jpeg_decode(img) == pytest.approx(1 / latency_jpeg_decode(img))

    def test_max_structure_output_bound(self):
        # Very compressible image: latency ~ blocks * 136.5 + fill.
        img = make_image(64, 64, bytes_per_block=2)
        assert latency_jpeg_decode(img) == pytest.approx(64 * 136.5 + 330.0)

    def test_max_structure_input_bound(self):
        # Incompressible image: latency tracks coded bytes.
        img = make_image(64, 64, bytes_per_block=120)
        expected = 64 * 6 + 64 * 120 * 8.0 + 330.0
        assert latency_jpeg_decode(img) == pytest.approx(expected)

    def test_program_accuracy_against_model(self):
        # Paper §3: avg (max) error 2.1% (10.3%) for latency over random
        # images.  Same order on our hardware: avg < 5%, max < 15%.
        model = JpegDecoderModel()
        imgs = random_images(202, 40)
        actual = model.measure_batch(imgs)
        pred = [latency_jpeg_decode(i) for i in imgs]
        rep = ErrorReport.of(pred, actual)
        assert rep.avg < 0.05
        assert rep.max < 0.15

    def test_wrapper_agrees_with_functions(self):
        img = make_image(16, 24)
        assert PROGRAM.latency(img) == latency_jpeg_decode(img)
        assert PROGRAM.throughput(img) == tput_jpeg_decode(img)


class TestPetriNet:
    @pytest.fixture(scope="class")
    def iface(self):
        return petri_interface()

    def test_latency_close_to_model(self, iface):
        # Paper Table 1: avg (max) error 0.09% (0.5%).  Same order here:
        # every image within 1%.
        model = JpegDecoderModel()
        for img in random_images(303, 12):
            act = model.measure_latency(img)
            pred = iface.latency(img)
            assert abs(pred - act) / act < 0.01

    def test_petri_beats_program(self, iface):
        # The paper's headline: the IR is ~20x more accurate than the
        # Python program.  Require at least 5x on an aggregate basis.
        model = JpegDecoderModel()
        imgs = random_images(404, 25)
        actual = model.measure_batch(imgs)
        prog = ErrorReport.of([latency_jpeg_decode(i) for i in imgs], actual)
        petri = ErrorReport.of([iface.latency(i) for i in imgs], actual)
        assert petri.avg * 5 < prog.avg

    def test_reusable_across_items(self, iface):
        a = make_image(16, 16)
        b = make_image(32, 32)
        la1 = iface.latency(a)
        iface.latency(b)
        assert iface.latency(a) == la1

    def test_describe_mentions_structure(self, iface):
        assert "places" in iface.describe()
