"""Tests for the VTA ISA, assembler, and workload generator."""

import pytest

from repro.accel.vta import (
    AssemblyError,
    Buffer,
    GemmWorkload,
    Instruction,
    Module,
    Opcode,
    Program,
    Tiling,
    assert_valid,
    from_text,
    legal_tilings,
    random_programs,
    tiled_gemm_program,
    to_text,
    token_balance,
    validate,
)


def gemm(**kw):
    args = dict(uop_count=4, lp0=2, lp1=16)
    args.update(kw)
    return Instruction(Opcode.GEMM, **args)


class TestInstruction:
    def test_load_requires_buffer_and_size(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.LOAD, size=64)
        with pytest.raises(ValueError):
            Instruction(Opcode.LOAD, buffer=Buffer.INP, size=0)

    def test_gemm_requires_positive_dims(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.GEMM, uop_count=0)

    def test_alu_requires_operands(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.ALU, vector_len=8, iterations=1)

    def test_module_routing(self):
        assert Instruction(Opcode.LOAD, buffer=Buffer.INP, size=1).module is Module.LOAD
        assert Instruction(Opcode.LOAD, buffer=Buffer.WGT, size=1).module is Module.LOAD
        assert Instruction(Opcode.LOAD, buffer=Buffer.UOP, size=1).module is Module.COMPUTE
        assert Instruction(Opcode.LOAD, buffer=Buffer.ACC, size=1).module is Module.COMPUTE
        assert Instruction(Opcode.STORE, size=1).module is Module.STORE
        assert gemm().module is Module.COMPUTE

    def test_gemm_macs(self):
        assert gemm(uop_count=3, lp0=4, lp1=5).gemm_macs == 60
        assert Instruction(Opcode.FINISH).gemm_macs == 0

    def test_describe_shows_flags(self):
        text = gemm(pop_prev=True, push_next=True).describe()
        assert "[P--n]" in text


class TestProgram:
    def test_needs_instructions(self):
        with pytest.raises(ValueError):
            Program(())

    def test_by_module_partitions(self):
        prog = tiled_gemm_program(GemmWorkload(2, 2, 2), Tiling(1, 1, 1))
        total = sum(len(prog.by_module(m)) for m in Module)
        assert total == len(prog)

    def test_token_balance_nonnegative_for_generated(self):
        for prog in random_programs(3, 10, max_dim=5):
            assert all(v >= 0 for v in token_balance(prog).values())

    def test_streamed_uses_warm_variant(self):
        prog = tiled_gemm_program(GemmWorkload(2, 1, 1), Tiling(1, 1, 1))
        combined = prog.streamed(3)
        assert len(combined) == 3 * len(prog)
        # Warm copies arm every double-buffering pop on input loads.
        warm_loads = [
            i for i in combined.instructions[len(prog):]
            if i.op is Opcode.LOAD and i.buffer is Buffer.INP
        ]
        assert all(i.pop_next for i in warm_loads)

    def test_streamed_validates_copies(self):
        prog = tiled_gemm_program(GemmWorkload(1, 1, 1), Tiling(1, 1, 1))
        with pytest.raises(ValueError):
            prog.streamed(0)


class TestWorkload:
    def test_legal_tilings_divide_and_fit(self):
        work = GemmWorkload(4, 8, 4)
        for t in legal_tilings(work):
            assert work.m % t.tm == 0
            assert work.k % t.tk == 0
            assert work.n % t.tn == 0
            assert t.fits()

    def test_tiling_must_divide(self):
        with pytest.raises(ValueError, match="divide"):
            tiled_gemm_program(GemmWorkload(3, 3, 3), Tiling(2, 1, 1))

    def test_reproducible(self):
        a = random_programs(7, 5)
        b = random_programs(7, 5)
        assert [p.instructions for p in a] == [p.instructions for p in b]

    def test_generated_programs_pass_validation(self):
        for prog in random_programs(11, 15, max_dim=6):
            assert_valid(prog)

    def test_workload_macs(self):
        assert GemmWorkload(2, 3, 4).macs == 2 * 3 * 4 * 16


class TestAssembler:
    def test_validate_catches_negative_balance(self):
        prog = Program((gemm(pop_prev=True),))
        problems = validate(prog)
        assert any("no matching push" in p for p in problems)

    def test_validate_catches_buffer_overflow(self):
        prog = Program(
            (Instruction(Opcode.LOAD, buffer=Buffer.UOP, size=1 << 20),)
        )
        assert any("exceeds" in p for p in validate(prog))

    def test_validate_catches_bad_flags_for_module(self):
        prog = Program(
            (Instruction(Opcode.LOAD, buffer=Buffer.INP, size=64, pop_prev=True),)
        )
        assert any("no 'prev' queue" in p for p in validate(prog))

    def test_validate_finish_placement(self):
        prog = Program((Instruction(Opcode.FINISH), gemm(push_prev=True)))
        assert any("last instruction" in p for p in validate(prog))

    def test_assert_valid_raises(self):
        prog = Program((gemm(pop_prev=True),))
        with pytest.raises(AssemblyError):
            assert_valid(prog)

    def test_text_round_trip(self):
        prog = tiled_gemm_program(
            GemmWorkload(2, 2, 2), Tiling(1, 2, 1), uop_reload_every=2
        )
        back = from_text(to_text(prog))
        assert back.instructions == prog.instructions
        assert back.name == prog.name

    def test_text_parse_errors(self):
        with pytest.raises(AssemblyError, match="unknown flag"):
            from_text("gemm uops=1 lp0=1 lp1=1 !bogus\n")
        with pytest.raises(AssemblyError, match="unknown mnemonic"):
            from_text("frobnicate\n")
        with pytest.raises(AssemblyError, match="no instructions"):
            from_text("# nothing\n")
