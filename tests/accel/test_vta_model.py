"""Tests for the VTA model and its interfaces."""

import pytest

from repro.accel.vta import (
    ENGLISH,
    GemmWorkload,
    Instruction,
    Opcode,
    Program,
    Tiling,
    VtaModel,
    latency_vta_roofline,
    petri_interface,
    random_programs,
    tiled_gemm_program,
)
from repro.hw.kernel import SimError
from repro.hw.stats import ErrorReport


@pytest.fixture(scope="module")
def model():
    return VtaModel()


def prog(m=2, k=2, n=2, tm=1, tk=1, tn=1, **kw):
    return tiled_gemm_program(GemmWorkload(m, k, n), Tiling(tm, tk, tn), **kw)


class TestModel:
    def test_deterministic(self, model):
        p = prog()
        assert model.measure_latency(p) == model.measure_latency(p)

    def test_gemm_scaling(self, model):
        # Compute-bound workload: 4x the reduction depth ~ 4x the cycles.
        small = prog(2, 2, 2, 1, 2, 1)
        big = prog(2, 8, 2, 1, 2, 1)
        ratio = model.measure_latency(big) / model.measure_latency(small)
        assert 2.5 < ratio < 4.5

    def test_bigger_tiles_fewer_instructions_faster(self, model):
        fine = prog(4, 4, 4, 1, 1, 1)
        coarse = prog(4, 4, 4, 2, 4, 2)
        assert len(coarse) < len(fine)
        assert model.measure_latency(coarse) < model.measure_latency(fine)

    def test_deadlocking_program_detected(self, model):
        bad = Program(
            (
                Instruction(
                    Opcode.GEMM, uop_count=1, lp0=1, lp1=1, pop_prev=True
                ),
            )
        )
        with pytest.raises(SimError):
            model.run(bad)

    def test_run_result_breakdown(self, model):
        p = prog()
        result = model.run(p)
        assert result.cycles == max(result.insn_end)
        assert result.dram_accesses > 0
        assert result.module_busy["compute"] > 0

    def test_copy_ends_validation(self, model):
        result = model.run(prog())
        with pytest.raises(ValueError):
            result.copy_ends(7)  # does not divide

    def test_throughput_at_least_inverse_latency(self, model):
        p = prog(2, 2, 2)
        tput = model.measure_throughput(p)
        lat = model.measure_latency(p)
        assert tput >= 0.95 / lat  # streaming overlaps, never much worse

    def test_throughput_repeat_validation(self, model):
        with pytest.raises(ValueError):
            model.measure_throughput(prog(), repeat=0)


class TestPetriInterface:
    @pytest.fixture(scope="class")
    def iface(self):
        return petri_interface()

    def test_latency_accuracy(self, model, iface):
        # Paper Table 1: avg (max) error 1.49% (9.3%).  Same order here.
        progs = random_programs(31, 12, max_dim=6)
        actual = [model.measure_latency(p) for p in progs]
        pred = [iface.latency(p) for p in progs]
        rep = ErrorReport.of(pred, actual)
        assert rep.avg < 0.04
        assert rep.max < 0.10

    def test_throughput_accuracy(self, model, iface):
        progs = random_programs(32, 6, max_dim=5)
        actual = [model.measure_throughput(p) for p in progs]
        pred = [iface.throughput(p) for p in progs]
        rep = ErrorReport.of(pred, actual)
        assert rep.avg < 0.05
        assert rep.max < 0.10

    def test_net_structure(self, iface):
        places = set(iface.net.places)
        assert {"dram_port", "port_req", "l2c", "c2l", "c2s", "s2c"} <= places

    def test_reusable(self, iface):
        p = prog()
        first = iface.latency(p)
        iface.latency(prog(3, 1, 1))
        assert iface.latency(p) == first


class TestRoofline:
    def test_underestimates_but_tracks(self, model):
        # No dependency stalls modeled, so the roofline is a lower-ish
        # estimate that still orders schedules correctly most of the time.
        progs = random_programs(33, 8, max_dim=5)
        actual = [model.measure_latency(p) for p in progs]
        pred = [latency_vta_roofline(p) for p in progs]
        rep = ErrorReport.of(pred, actual)
        assert rep.avg < 0.6

    def test_english_statements_validate(self, model):
        pairs_lat = []
        for k in (1, 2, 4, 8):
            p = prog(2, k, 2, 1, 1, 1)
            pairs_lat.append((float(p.total_macs), model.measure_latency(p)))
        assert ENGLISH.statements[0].check(pairs_lat)
