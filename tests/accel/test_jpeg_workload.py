"""Tests for the JPEG workload generator."""

import numpy as np
import pytest

from repro.accel.jpeg import JpegImage, random_image, random_images
from repro.accel.jpeg.workload import HEADER_BYTES


def make_image(width=16, height=16, bytes_per_block=8, nnz=10):
    n = (width // 8) * (height // 8)
    return JpegImage(
        width=width,
        height=height,
        coded_bytes=np.full(n, bytes_per_block, dtype=np.int64),
        nnz=np.full(n, nnz, dtype=np.int64),
    )


def test_block_count():
    img = make_image(32, 16)
    assert img.n_blocks == 8
    assert img.orig_size == 512


def test_coded_size_includes_header():
    img = make_image(16, 16, bytes_per_block=10)
    assert img.coded_size == 4 * 10 + HEADER_BYTES


def test_compress_rate_is_output_over_input():
    img = make_image(16, 16, bytes_per_block=10)
    assert img.compress_rate == pytest.approx(256 / (40 + HEADER_BYTES))


def test_dimensions_must_be_multiple_of_8():
    with pytest.raises(ValueError, match="multiples of 8"):
        make_image(width=12)


def test_per_block_arrays_validated():
    with pytest.raises(ValueError, match="n_blocks"):
        JpegImage(16, 16, np.ones(3, dtype=np.int64), np.ones(3, dtype=np.int64))


def test_nnz_range_validated():
    n = 4
    with pytest.raises(ValueError, match="nnz"):
        JpegImage(
            16, 16, np.ones(n, dtype=np.int64), np.full(n, 65, dtype=np.int64)
        )


def test_coded_bytes_positive():
    n = 4
    with pytest.raises(ValueError, match="coded_bytes"):
        JpegImage(16, 16, np.zeros(n, dtype=np.int64), np.ones(n, dtype=np.int64))


def test_random_images_reproducible():
    a = random_images(123, 5)
    b = random_images(123, 5)
    assert [i.width for i in a] == [i.width for i in b]
    assert all((x.coded_bytes == y.coded_bytes).all() for x, y in zip(a, b))


def test_random_images_differ_across_seeds():
    a = random_images(1, 5)
    b = random_images(2, 5)
    assert [i.coded_size for i in a] != [i.coded_size for i in b]


def test_random_image_respects_bounds():
    rng = np.random.default_rng(0)
    for _ in range(50):
        img = random_image(rng, min_dim=16, max_dim=64)
        assert 16 <= img.width <= 64
        assert 16 <= img.height <= 64
        assert img.width % 8 == 0
        assert (img.nnz >= 1).all() and (img.nnz <= 64).all()
        assert (img.coded_bytes >= 1).all()


def test_compression_rate_spans_both_regimes():
    imgs = random_images(99, 300)
    rates = [i.compress_rate for i in imgs]
    assert min(rates) < 2.0  # some input-bound images
    assert max(rates) > 8.0  # some output-bound images
