"""Tests for the Protoacc interfaces (paper Fig. 3 + Fig. 1)."""

import pytest

from repro.accel.protoacc import (
    AVG_MEM_LATENCY,
    ENGLISH,
    PROGRAM,
    Field,
    FieldKind,
    Message,
    ProtoaccSerializerModel,
    bottleneck,
    instances,
    latency_bounds,
    max_latency_protoacc_ser,
    min_latency_protoacc_ser,
    read_cost,
    tput_protoacc_ser,
    write_cost,
)
from repro.hw.stats import ErrorReport
from tests.accel.test_protoacc_model import flat, nested


class TestReadCost:
    def test_recursive_structure(self):
        # read_cost(outer) = own cost + read_cost(inner), Fig. 3 lines 1-5.
        inner = flat(4)
        outer = Message((Field(1, FieldKind.MESSAGE, inner),))
        own = 6 + AVG_MEM_LATENCY * 2 + (4 + AVG_MEM_LATENCY)  # 1 field group
        assert read_cost(outer) == pytest.approx(own + read_cost(inner))

    def test_descriptor_term_steps_at_32(self):
        assert read_cost(flat(33)) - read_cost(flat(32)) == pytest.approx(
            4 + AVG_MEM_LATENCY
        )
        assert read_cost(flat(31)) == pytest.approx(read_cost(flat(32)))

    def test_blob_streaming_term(self):
        small = Message((Field(1, FieldKind.BYTES, b"x" * 16),))
        large = Message((Field(1, FieldKind.BYTES, b"x" * 1600),))
        assert read_cost(large) - read_cost(small) == pytest.approx(99, abs=2)


class TestThroughputInterface:
    def test_min_of_read_and_write(self):
        msg = flat(4)
        assert tput_protoacc_ser(msg) == pytest.approx(
            min(1 / read_cost(msg), 1 / write_cost(msg))
        )

    def test_bottleneck_labels(self):
        assert bottleneck(nested(6)) == "read"
        assert bottleneck(Message((Field(1, FieldKind.BYTES, b"z" * 8192),))) == "write"

    def test_accuracy_against_model_on_32_formats(self):
        # Paper §3: avg (max) error 5.9% (13.3%) over the 32 formats.
        # Same order here: avg < 8%, max < 15%.
        model = ProtoaccSerializerModel()
        msgs = instances(seed=3)
        actual = [model.measure_throughput(m, repeat=8) for m in msgs.values()]
        pred = [tput_protoacc_ser(m) for m in msgs.values()]
        rep = ErrorReport.of(pred, actual)
        assert rep.avg < 0.08
        assert rep.max < 0.15


class TestLatencyBounds:
    @pytest.mark.parametrize("seed", [3, 11, 42])
    def test_bounds_always_contain_measured_latency(self, seed):
        # Paper §3: "the latency was always within the predicted bounds".
        model = ProtoaccSerializerModel()
        for name, msg in instances(seed=seed).items():
            lat = model.measure_latency(msg)
            b = latency_bounds(msg)
            assert b.lower <= lat <= b.upper, (
                f"{name}: {lat} outside [{b.lower}, {b.upper}]"
            )

    def test_bounds_ordered(self):
        for msg in instances(seed=0).values():
            assert min_latency_protoacc_ser(msg) < max_latency_protoacc_ser(msg)

    def test_program_interface_exposes_bounds(self):
        msg = flat(8)
        assert PROGRAM.has_bounds
        b = PROGRAM.latency_bounds(msg)
        assert b.lower == min_latency_protoacc_ser(msg)
        assert b.upper == max_latency_protoacc_ser(msg)
        assert PROGRAM.latency(msg) == b.midpoint


class TestEnglish:
    def test_renders_fig1_sentence(self):
        assert ENGLISH.render() == (
            "Throughput decreases as the degree of nesting in a message increases"
        )

    def test_statement_validates_against_model(self):
        model = ProtoaccSerializerModel()
        pairs = [
            (float(d), model.measure_throughput(nested(d), repeat=6))
            for d in (0, 1, 2, 4, 6, 8)
        ]
        assert ENGLISH.statements[0].check(pairs)

    def test_statement_accessor_reads_depth(self):
        stmt = ENGLISH.statements[0]
        assert stmt.accessor(nested(3)) == 3.0


class TestDeserializerInterface:
    def test_accuracy_on_32_formats(self):
        from repro.accel.protoacc import ProtoaccDeserializerModel
        from repro.accel.protoacc.interfaces import (
            DESER_PROGRAM,
            latency_protoacc_deser,
        )
        from repro.core import validate_interface

        model = ProtoaccDeserializerModel()
        msgs = list(instances(seed=3).values())
        report = validate_interface(
            DESER_PROGRAM, model, msgs, check_throughput=False
        )
        assert report.latency.avg < 0.05
        assert report.latency.max < 0.10
        # Wrapper and raw function agree.
        assert DESER_PROGRAM.latency(msgs[0]) == latency_protoacc_deser(msgs[0])

    def test_deser_recursion_counts_allocations(self):
        from repro.accel.protoacc.interfaces import (
            DESER_ALLOC_COST,
            latency_protoacc_deser,
        )

        flat_m = flat(4)
        wrapped = nested(3)
        # Each nesting level adds at least one allocation chase.
        assert latency_protoacc_deser(wrapped) > latency_protoacc_deser(
            flat_m
        ) + 2 * DESER_ALLOC_COST
