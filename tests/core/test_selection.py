"""Tests for the design-stage selection tooling."""

import pytest

from repro.core import (
    Candidate,
    DesignPoint,
    PerformanceInterface,
    mean_workload_latency,
    offload_speedup,
    pareto_frontier,
    pick_under_area_budget,
    rank_by_latency,
    rank_by_speedup_per_dollar,
)


class Scaled(PerformanceInterface[int]):
    representation = "program"

    def __init__(self, name, factor):
        self.accelerator = name
        self.factor = factor

    def latency(self, item: int) -> float:
        return self.factor * item


FAST = Candidate("fast", Scaled("fast", 1.0), price_dollars=4.0)
SLOW = Candidate("slow", Scaled("slow", 3.0), price_dollars=1.0)
TAXED = Candidate(
    "taxed", Scaled("taxed", 1.0), invocation_overhead=lambda item: 100.0
)
WORKLOAD = [10, 20, 30]


def baseline(item):
    return 6.0 * item


class TestRanking:
    def test_rank_by_latency(self):
        ranking = rank_by_latency([FAST, SLOW], WORKLOAD)
        assert ranking.best == "fast"
        assert ranking.entries[0][1] == pytest.approx(20.0)

    def test_invocation_overhead_counts(self):
        # 100-cycle overhead makes "taxed" worse than "slow" for small items.
        ranking = rank_by_latency([SLOW, TAXED], [5, 5])
        assert ranking.best == "slow"

    def test_rank_per_dollar_prefers_cheap(self):
        # fast: speedup 6, $4 -> 1.5/dollar; slow: speedup 2, $1 -> 2/dollar.
        ranking = rank_by_speedup_per_dollar([FAST, SLOW], WORKLOAD, baseline)
        assert ranking.best == "slow"

    def test_offload_speedup_below_one_flags_harm(self):
        harmful = Candidate(
            "harmful", Scaled("harmful", 5.0), invocation_overhead=lambda i: 50.0
        )
        assert offload_speedup(harmful, [2, 3], baseline) < 1.0
        assert offload_speedup(FAST, WORKLOAD, baseline) == pytest.approx(6.0)

    def test_empty_workload_rejected(self):
        with pytest.raises(ValueError):
            mean_workload_latency(FAST, [])

    def test_table_renders(self):
        ranking = rank_by_latency([FAST, SLOW], WORKLOAD)
        assert "fast" in ranking.table()


class TestFrontier:
    POINTS = [
        DesignPoint("a", area=100, latency=10, throughput=0.1),
        DesignPoint("b", area=50, latency=20, throughput=0.05),
        DesignPoint("c", area=80, latency=30, throughput=0.03),  # dominated by a? no: a bigger
        DesignPoint("d", area=120, latency=9, throughput=0.11),
        DesignPoint("e", area=60, latency=25, throughput=0.04),  # dominated by b? area 60>50, lat 25>20 -> dominated
    ]

    def test_pareto_removes_dominated(self):
        frontier = pareto_frontier(self.POINTS)
        names = [p.config for p in frontier]
        assert "e" not in names
        assert "b" in names and "a" in names and "d" in names

    def test_frontier_sorted_by_area(self):
        frontier = pareto_frontier(self.POINTS)
        areas = [p.area for p in frontier]
        assert areas == sorted(areas)

    def test_pick_under_budget(self):
        assert pick_under_area_budget(self.POINTS, 100).config == "a"
        assert pick_under_area_budget(self.POINTS, 55).config == "b"

    def test_budget_too_small(self):
        with pytest.raises(ValueError, match="no configuration fits"):
            pick_under_area_budget(self.POINTS, 10)
