"""Tests for the interface abstraction and NL representation."""

import pytest

from repro.core import (
    BoundsOnlyInterface,
    EnglishInterface,
    LatencyBounds,
    PerformanceInterface,
    PerformanceStatement,
    ProgramInterface,
    Relation,
)


class ConstInterface(PerformanceInterface[int]):
    accelerator = "toy"
    representation = "program"

    def latency(self, item: int) -> float:
        return float(item)


class TestLatencyBounds:
    def test_ordering_enforced(self):
        with pytest.raises(ValueError):
            LatencyBounds(10, 5)

    def test_contains_with_slack(self):
        b = LatencyBounds(100, 200)
        assert b.contains(100)
        assert b.contains(200)
        assert not b.contains(210)
        assert b.contains(210, slack=0.1)

    def test_width_and_midpoint(self):
        b = LatencyBounds(10, 30)
        assert b.width == 20
        assert b.midpoint == 20


class TestPerformanceInterface:
    def test_default_throughput_is_inverse_latency(self):
        assert ConstInterface().throughput(4) == 0.25

    def test_nonpositive_latency_rejected_for_throughput(self):
        with pytest.raises(ValueError):
            ConstInterface().throughput(0)

    def test_default_bounds_are_point(self):
        b = ConstInterface().latency_bounds(7)
        assert b.lower == b.upper == 7

    def test_describe(self):
        assert "toy" in ConstInterface().describe()


class TestBoundsOnly:
    class Ranged(BoundsOnlyInterface[int]):
        accelerator = "ranged"

        def bounds(self, item):
            return LatencyBounds(item, item * 3)

    def test_latency_is_midpoint(self):
        iface = self.Ranged()
        assert iface.latency(10) == 20
        assert iface.latency_bounds(10).upper == 30


class TestProgramInterfaceWrapper:
    def test_requires_some_latency_info(self):
        with pytest.raises(ValueError):
            ProgramInterface("x")

    def test_bounds_only_construction(self):
        iface = ProgramInterface(
            "x", min_latency_fn=lambda i: i, max_latency_fn=lambda i: 2 * i
        )
        assert iface.latency(10) == 15
        assert iface.has_bounds


class TestRelationChecks:
    def test_proportional(self):
        stmt = PerformanceStatement("Latency", Relation.PROPORTIONAL, "size")
        assert stmt.check([(1, 10), (2, 20), (4, 40)])
        assert not stmt.check([(1, 10), (2, 15), (4, 80)], tolerance=0.1)

    def test_inversely_proportional(self):
        stmt = PerformanceStatement("Latency", Relation.INVERSELY_PROPORTIONAL, "rate")
        assert stmt.check([(1, 100), (2, 50), (4, 25)])
        assert not stmt.check([(1, 100), (2, 100), (4, 100)])

    def test_monotone_relations(self):
        inc = PerformanceStatement("Latency", Relation.INCREASES_WITH, "n")
        dec = PerformanceStatement("Throughput", Relation.DECREASES_WITH, "n")
        up = [(1, 5), (2, 6), (3, 9), (4, 11)]
        down = [(x, 20 - y) for x, y in up]
        assert inc.check(up)
        assert not inc.check(down)
        assert dec.check(down)

    def test_monotone_tolerates_local_noise(self):
        stmt = PerformanceStatement("Latency", Relation.INCREASES_WITH, "n")
        pairs = [(i, i + (0.3 if i == 5 else 0)) for i in range(20)]
        pairs[5] = (5, 4.9)  # one local inversion
        assert stmt.check(pairs)

    def test_equals_param(self):
        stmt = PerformanceStatement("Latency", Relation.EQUALS_PARAM, "Loop")
        assert stmt.check([(8, 8.0), (16, 16.0)])
        assert not stmt.check([(8, 9.0), (16, 16.0)])

    def test_constant(self):
        stmt = PerformanceStatement("Latency", Relation.CONSTANT, "payload")
        assert stmt.check([(1, 100), (9, 101)])
        assert not stmt.check([(1, 100), (9, 300)])

    def test_needs_two_samples(self):
        stmt = PerformanceStatement("Latency", Relation.CONSTANT, "x")
        with pytest.raises(ValueError):
            stmt.check([(1, 1)])


class TestRendering:
    def test_each_relation_renders(self):
        for rel in Relation:
            stmt = PerformanceStatement("Latency", rel, "the input size")
            text = stmt.render()
            assert text.startswith("Latency")
            assert "{" not in text  # templates fully substituted

    def test_interface_joins_statements(self):
        iface = EnglishInterface(
            accelerator="toy",
            statements=(
                PerformanceStatement("Latency", Relation.PROPORTIONAL, "size"),
                PerformanceStatement("Area", Relation.CONSTANT, "size"),
            ),
        )
        assert len(iface.render().splitlines()) == 2
        assert str(iface) == iface.render()
