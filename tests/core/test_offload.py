"""Tests for the §5 record/replay offload estimator."""

import pytest

from repro.core import (
    OffloadEstimator,
    PerformanceInterface,
    RecordingDevice,
    ReplayDevice,
    ReplayDivergence,
)


class TenXInterface(PerformanceInterface[int]):
    accelerator = "toy"
    representation = "program"

    def latency(self, item: int) -> float:
        return float(item)  # accelerator: 1 cycle per unit


def software_fn(request: int) -> int:
    return request * 2  # functional behaviour


def software_latency(request: int) -> float:
    return 10.0 * request  # software: 10 cycles per unit


def app(device):
    total = 0
    for request in (1, 2, 3):
        response = device.call(request)
        device.host_work(5)
        total += response
    return total


class TestRecording:
    def test_records_pairs_and_clock(self):
        dev = RecordingDevice(software_fn, software_latency)
        app(dev)
        assert dev.tape == [(1, 2), (2, 4), (3, 6)]
        assert dev.clock == 10 * 6 + 15  # software + host work
        assert dev.calls == 3


class TestReplay:
    def test_replays_responses_with_interface_latency(self):
        recorder = RecordingDevice(software_fn, software_latency)
        result_sw = app(recorder)
        replayer = ReplayDevice(recorder.tape, TenXInterface())
        result_replay = app(replayer)
        assert result_replay == result_sw  # correct responses
        assert replayer.clock == 6 + 15  # interface latency + host work

    def test_divergent_request_detected(self):
        replayer = ReplayDevice([(1, 2)], TenXInterface())

        def bad_app(device):
            device.call(99)

        with pytest.raises(ReplayDivergence, match="diverged"):
            bad_app(replayer)

    def test_extra_call_detected(self):
        replayer = ReplayDevice([(1, 2)], TenXInterface())

        def chatty(device):
            device.call(1)
            device.call(1)

        with pytest.raises(ReplayDivergence, match="tape has"):
            chatty(replayer)

    def test_divergence_indices_are_one_based_in_both_branches(self):
        # Mismatch on the very first call reports call #1, and a call
        # past a 2-entry tape reports call #3 — the same 1-based
        # numbering in both divergence branches.
        mismatch = ReplayDevice([(1, 2), (2, 4)], TenXInterface())
        with pytest.raises(ReplayDivergence, match="call #1 "):
            mismatch.call(99)

        overrun = ReplayDevice([(1, 2), (2, 4)], TenXInterface())
        overrun.call(1)
        overrun.call(2)
        with pytest.raises(ReplayDivergence, match="call #3 "):
            overrun.call(1)

    def test_divergence_carries_structured_context(self):
        replayer = ReplayDevice([(1, 2)], TenXInterface())
        with pytest.raises(ReplayDivergence) as exc:
            replayer.call(99)
        assert exc.value.call == 1
        assert exc.value.expected == 1
        assert exc.value.actual == 99

        exhausted = ReplayDevice([], TenXInterface())
        with pytest.raises(ReplayDivergence) as exc:
            exhausted.call(5)
        assert exc.value.call == 1
        assert exc.value.expected is None
        assert exc.value.actual == 5

    def test_divergence_is_an_offload_error(self):
        from repro.core import OffloadError

        assert issubclass(ReplayDivergence, OffloadError)

    def test_invocation_overhead_charged(self):
        recorder = RecordingDevice(software_fn, software_latency)
        app(recorder)
        replayer = ReplayDevice(
            recorder.tape, TenXInterface(), invocation_overhead=lambda r: 100.0
        )
        app(replayer)
        assert replayer.clock == 6 + 15 + 300

    def test_host_work_validation(self):
        dev = RecordingDevice(software_fn)
        with pytest.raises(ValueError):
            dev.host_work(-1)


class TestEstimator:
    def test_end_to_end_speedup(self):
        est = OffloadEstimator(
            software_fn, software_latency, TenXInterface()
        ).estimate(app)
        assert est.calls == 3
        assert est.software_cycles == 75
        assert est.offloaded_cycles == 21
        assert est.speedup == pytest.approx(75 / 21)
