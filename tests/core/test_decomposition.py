"""Tests for PetriNetInterface.predict_decomposition.

Acceptance property (per ISSUE): on every shipped bundle the predicted
stage decomposition folds left-to-right to *bit-identically* the scalar
``latency()`` prediction — float ``==``, no tolerance — and the result
round-trips through the EvalCache unchanged.
"""

import pytest

from repro.core.petrinet import (
    PredictedDecomposition,
    default_stage_map,
)
from repro.perf import EvalCache


def _fold(values):
    acc = 0.0
    for v in values:
        acc += v
    return acc


def _protoacc():
    from repro.accel.protoacc import formats, interfaces

    return interfaces.petri_interface(), list(formats.instances(seed=3).values())


def _optimusprime():
    from repro.accel.optimusprime import interfaces
    from repro.accel.protoacc import formats

    return interfaces.petri_interface(), list(formats.instances(seed=5).values())


def _jpeg():
    from repro.accel.jpeg import interfaces
    from repro.accel.jpeg.workload import random_images

    return interfaces.petri_interface(), random_images(seed=7, count=6, min_dim=16, max_dim=48)


def _bitcoin():
    from repro.accel.bitcoin import interfaces
    from repro.accel.bitcoin.workload import random_jobs

    return interfaces.petri_interface(64), random_jobs(seed=9, count=4)


def _vta():
    from repro.accel.vta import random_programs
    from repro.accel.vta.interfaces import petri_interface

    return petri_interface(), random_programs(seed=11, count=4)


BUNDLES = {
    "protoacc": _protoacc,
    "optimusprime": _optimusprime,
    "jpeg": _jpeg,
    "bitcoin": _bitcoin,
    "vta": _vta,
}


class TestBitExactFold:
    @pytest.mark.parametrize("name", sorted(BUNDLES))
    def test_stages_fold_to_latency_on_every_bundle(self, name):
        iface, items = BUNDLES[name]()
        assert items
        for item in items:
            decomp = iface.predict_decomposition(item)
            assert decomp.total == iface.latency(item), name
            assert _fold(decomp.stages.values()) == decomp.total, (
                name,
                decomp.stages,
            )

    @pytest.mark.parametrize("name", sorted(BUNDLES))
    def test_transition_cycles_are_nonnegative(self, name):
        iface, items = BUNDLES[name]()
        decomp = iface.predict_decomposition(items[0])
        for transition, cycles in decomp.transitions.items():
            assert cycles >= 0.0, (name, transition, cycles)
        for stage, cycles in decomp.stages.items():
            if stage != "overlap":  # the residual absorbs float dust
                assert cycles >= 0.0, (name, stage, cycles)


class TestStageMapping:
    def test_default_stage_map_hints(self):
        assert default_stage_map("dram_read") == "memory"
        assert default_stage_map("dma_in") == "memory"
        assert default_stage_map("fetch_block") == "memory"
        assert default_stage_map("huffman_decode") == "compute"
        assert default_stage_map("serialize") == "compute"

    def test_custom_stage_map_dict(self):
        iface, items = _protoacc()
        all_compute = iface.predict_decomposition(
            items[0], stage_map={}
        )  # empty dict: everything defaults to compute
        assert all_compute.stages["memory"] == 0.0
        assert _fold(all_compute.stages.values()) == all_compute.total

    def test_protoacc_models_memory_cycles(self):
        iface, items = _protoacc()
        decomp = iface.predict_decomposition(items[0])
        assert isinstance(decomp, PredictedDecomposition)
        assert decomp.stages["memory"] > 0.0, decomp.transitions


class TestCaching:
    def test_cache_round_trip_is_identical(self):
        from repro.accel.protoacc import formats, interfaces

        cache = EvalCache()
        iface = interfaces.petri_interface(cache=cache)
        items = list(formats.instances(seed=3).values())
        cold = [iface.predict_decomposition(i) for i in items]
        warm = [iface.predict_decomposition(i) for i in items]
        for a, b in zip(cold, warm):
            assert a.total == b.total
            assert a.stages == b.stages
            assert a.transitions == b.transitions
        # The warm pass answered from the cache, not the engine.
        assert cache.stats.hits >= len(items)

    def test_persistent_tier_round_trip(self, tmp_path):
        from repro.accel.protoacc import formats, interfaces

        spill = str(tmp_path / "evals.jsonl")
        item = next(iter(formats.instances(seed=3).values()))
        first = interfaces.petri_interface(cache=EvalCache(spill))
        cold = first.predict_decomposition(item)
        second = interfaces.petri_interface(cache=EvalCache(spill))
        warm = second.predict_decomposition(item)
        assert warm.total == cold.total
        assert warm.stages == cold.stages
        assert warm.transitions == cold.transitions
        assert second.cache.stats.hits == 1

    def test_decomposition_does_not_perturb_a_live_trace(self):
        from repro.accel.protoacc import formats, interfaces
        from repro.obs import Tracer

        tracer = Tracer()
        iface = interfaces.petri_interface(tracer=tracer)
        item = next(iter(formats.instances(seed=3).values()))
        iface.latency(item)
        before = len(tracer)
        iface.predict_decomposition(item)
        assert len(tracer) == before
