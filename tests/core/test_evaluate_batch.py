"""``evaluate_batch`` through the interface stack.

Numeric parity of the batch engines themselves is proven in
``tests/petri/test_batched.py``; these tests pin down the *interface*
contract: identical latencies to the per-item path, cache interplay
(including the persistent warm-start acceptance criterion), fallbacks,
and the consumers that ride the batched path (validation, sweeps,
profilers, pool pricing).
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.accel.jpeg import interfaces as jpeg
from repro.accel.jpeg.workload import random_images
from repro.core.interface import PerformanceInterface
from repro.perf import EvalCache

IMAGES = random_images(seed=41, count=8, min_dim=16, max_dim=48)


def test_default_evaluate_batch_is_the_latency_loop():
    class Fixed(PerformanceInterface[int]):
        accelerator = "fixed"

        def latency(self, item: int) -> float:
            return 2.0 * item

    iface = Fixed()
    assert iface.evaluate_batch([1, 2, 3]) == [2.0, 4.0, 6.0]


def test_petri_interface_batch_matches_per_item_latency():
    batched = jpeg.petri_interface().evaluate_batch(IMAGES)
    per_item = [jpeg.petri_interface().latency(img) for img in IMAGES]
    assert batched == per_item  # bit-identical, not approx


def test_batch_takes_the_batch_engine_exactly_once(monkeypatch):
    from repro.petri.batched import BATCH_ENGINE_ENV_VAR

    monkeypatch.delenv(BATCH_ENGINE_ENV_VAR, raising=False)
    iface = jpeg.petri_interface()
    assert iface.batch_evaluator is None  # lazy: nothing built yet
    iface.evaluate_batch(IMAGES)
    ev = iface.batch_evaluator
    assert ev is not None and ev.engine == "codegen"
    assert ev.items_codegen == len(IMAGES)


def test_pinned_engine_falls_back_to_per_item(monkeypatch):
    from repro.petri.compiled import ENGINE_ENV_VAR

    monkeypatch.setenv(ENGINE_ENV_VAR, "reference")
    iface = jpeg.petri_interface()
    pinned = iface.evaluate_batch(IMAGES[:3])
    assert iface.batch_evaluator is None  # never built an engine
    monkeypatch.delenv(ENGINE_ENV_VAR)
    assert pinned == jpeg.petri_interface().evaluate_batch(IMAGES[:3])


def test_tracer_falls_back_to_per_item():
    from repro.obs import Tracer

    iface = jpeg.petri_interface()
    iface.tracer = Tracer()
    traced = iface.evaluate_batch(IMAGES[:3])
    assert iface.batch_evaluator is None
    assert len(iface.tracer.spans()) > 0  # the trace shows the work
    assert traced == jpeg.petri_interface().evaluate_batch(IMAGES[:3])


def test_cache_hits_skip_the_engine_entirely():
    iface = jpeg.petri_interface()
    iface.cache = EvalCache()
    first = iface.evaluate_batch(IMAGES)
    ev = iface.batch_evaluator
    engine_items = ev.items_codegen + ev.items_columnar
    second = iface.evaluate_batch(IMAGES)
    assert first == second
    assert iface.cache.stats.hits == len(IMAGES)
    assert ev.items_codegen + ev.items_columnar == engine_items  # no new work


def test_validate_interface_rides_the_batched_path():
    from repro.accel.jpeg.model import JpegDecoderModel
    from repro.core.validation import validate_interface

    report = validate_interface(
        jpeg.petri_interface(), JpegDecoderModel(), IMAGES[:4], check_throughput=False
    )
    # Same numbers the per-item path would report (the model IS the net's
    # ground truth here, so the errors are small but non-trivial).
    assert report.latency is not None and report.latency.count == 4


_SWEEP = """
import json
import sys
sys.path.insert(0, {src!r})
from repro.accel.jpeg import interfaces as jpeg
from repro.accel.jpeg.workload import random_images
from repro.perf import EvalCache

iface = jpeg.petri_interface()
iface.cache = EvalCache({path!r})
images = random_images(seed=41, count=8, min_dim=16, max_dim=48)
out = iface.evaluate_batch(images)
ev = iface.batch_evaluator
print(json.dumps({{
    "latencies": out,
    "hits": iface.cache.stats.hits,
    "misses": iface.cache.stats.misses,
    "spills": iface.cache.stats.spills,
    "engine_items": 0 if ev is None else ev.items_codegen + ev.items_columnar,
}}))
"""


def test_cross_process_warm_start_runs_zero_engine_items(tmp_path: Path):
    """Acceptance criterion: a second process sharing the persistent
    EvalCache answers the same sweep entirely from disk — zero engine
    invocations, identical latencies."""
    path = str(tmp_path / "evals.jsonl")
    src = str(Path("src").resolve())

    def run():
        proc = subprocess.run(
            [sys.executable, "-c", _SWEEP.format(src=src, path=path)],
            capture_output=True,
            text=True,
            check=True,
        )
        return json.loads(proc.stdout)

    cold = run()
    warm = run()
    assert cold["misses"] == 8 and cold["spills"] == 8 and cold["engine_items"] == 8
    assert warm["hits"] == 8 and warm["misses"] == 0
    assert warm["engine_items"] == 0  # never touched an engine
    assert warm["latencies"] == cold["latencies"]


# ----------------------------------------------------------------------
# Downstream consumers
# ----------------------------------------------------------------------


def test_petri_profiler_batch_equals_sequential():
    from repro.accel.vta.workload import random_programs
    from repro.autotune.profilers import PetriProfiler

    programs = random_programs(seed=13, count=5, max_dim=8)
    a = PetriProfiler()
    batch = a.profile_batch(programs)
    b = PetriProfiler()
    seq = [b.profile(p) for p in programs]
    assert batch == seq
    assert a.queries == len(programs) and a.wall_seconds > 0


def test_memoized_profiler_batches_only_the_misses():
    from repro.accel.vta.workload import random_programs
    from repro.autotune.profilers import MemoizedProfiler, PetriProfiler

    programs = random_programs(seed=13, count=5, max_dim=8)
    prof = MemoizedProfiler(PetriProfiler())
    first = prof.profile_batch(programs)
    again = prof.profile_batch(programs + programs[:2])
    assert again == first + first[:2]
    assert prof.cache.stats.misses == 5
    assert prof.cache.stats.hits == 7


def test_pool_price_matrix_matches_per_request_pricing():
    from repro.accel.protoacc import formats
    from repro.runtime.pool import rpc_pool

    pool = rpc_pool()
    requests = list(formats.instances(seed=3).values())[:5]
    matrix = pool.price_matrix(requests, now=0.0)
    devices = pool.available_devices(0.0)
    assert set(matrix) == {d.name for d in devices}
    for device in devices:
        assert matrix[device.name] == [device.price(req, 0.0) for req in requests]
