"""Tests for the validation harness and the complexity metric."""

import pytest

from repro.accel.base import AcceleratorModel
from repro.core import (
    LatencyBounds,
    PerformanceInterface,
    accuracy_gain,
    compare_representations,
    interface_complexity,
    loc_of_module,
    loc_of_text,
    validate_interface,
)


class ToyModel(AcceleratorModel[int]):
    name = "toy"

    def measure_latency(self, item: int) -> float:
        return float(item * 10)


class GoodInterface(PerformanceInterface[int]):
    accelerator = "toy"
    representation = "petri-net"

    def latency(self, item: int) -> float:
        return item * 10.0


class RoughInterface(PerformanceInterface[int]):
    accelerator = "toy"
    representation = "program"

    def latency(self, item: int) -> float:
        return item * 11.0  # 10% high

    def latency_bounds(self, item):
        return LatencyBounds(item * 9.0, item * 12.0)


WORKLOAD = [1, 2, 5, 10]


class TestValidation:
    def test_perfect_interface_scores_zero(self):
        report = validate_interface(GoodInterface(), ToyModel(), WORKLOAD)
        assert report.latency.avg == 0.0
        assert report.throughput.avg == 0.0
        assert report.items == 4

    def test_rough_interface_scores_ten_percent(self):
        report = validate_interface(
            RoughInterface(), ToyModel(), WORKLOAD, check_throughput=False
        )
        assert report.latency.avg == pytest.approx(0.10)
        assert report.throughput is None

    def test_bounds_checking(self):
        report = validate_interface(
            RoughInterface(),
            ToyModel(),
            WORKLOAD,
            check_latency=False,
            check_throughput=False,
            check_bounds=True,
        )
        assert report.bounds.all_within

    def test_bounds_violation_detected(self):
        class BadBounds(RoughInterface):
            def latency_bounds(self, item):
                return LatencyBounds(item * 11.0, item * 12.0)  # excludes truth

        report = validate_interface(
            BadBounds(), ToyModel(), WORKLOAD, check_bounds=True,
            check_latency=False, check_throughput=False,
        )
        assert report.bounds.violations == 4
        assert not report.bounds.all_within

    def test_empty_workload_rejected(self):
        with pytest.raises(ValueError):
            validate_interface(GoodInterface(), ToyModel(), [])

    def test_compare_and_gain(self):
        reports = compare_representations(
            {"petri-net": GoodInterface(), "program": RoughInterface()},
            ToyModel(),
            WORKLOAD,
            check_throughput=False,
        )
        gain = accuracy_gain(reports["petri-net"], reports["program"])
        assert gain == float("inf")  # perfect vs 10%

    def test_summary_text(self):
        report = validate_interface(GoodInterface(), ToyModel(), WORKLOAD)
        assert "toy/petri-net" in report.summary()
        assert "latency" in report.summary()


class TestComplexity:
    def test_loc_of_text_skips_blanks_and_comments(self):
        text = "# header\n\nplace a\nplace b  # trailing\n\n"
        assert loc_of_text(text) == 2

    def test_loc_of_module_excludes_docstrings(self):
        import repro.core.complexity as mod

        from pathlib import Path

        loc = loc_of_module(mod)
        raw = loc_of_text(Path(mod.__file__).read_text())
        assert 0 < loc < raw  # docstrings removed something

    def test_ratio(self):
        import repro.accel.jpeg.model as impl
        from repro.accel.jpeg import JPEG_PNET

        report = interface_complexity(JPEG_PNET, impl)
        assert 0 < report.ratio < 0.5
        assert report.as_percent().endswith("%")

    def test_module_list_sums(self):
        import repro.accel.jpeg.model as a
        import repro.accel.jpeg.workload as b
        from repro.accel.jpeg import JPEG_PNET

        single = interface_complexity(JPEG_PNET, a)
        double = interface_complexity(JPEG_PNET, [a, b])
        assert double.implementation_loc > single.implementation_loc
        assert double.ratio < single.ratio
