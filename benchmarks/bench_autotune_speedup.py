"""E6 — §3 in-text: Petri-net profiling speedup in a TVM-style tuner.

Paper: "we added support for [the Petri-net IR] in TVM's auto-tuning
engine and used it to profile VTA for the 1500 code sequences.  We
observed that the Petri-net interfaces lead to a maximum (minimum)
speedup of 1312x (2.1x) over state-of-the-art cycle-accurate
simulation."

We compare profiling the same candidate schedules with (a) the
cycle-ticking simulator (our Verilator stand-in; cost grows with
simulated cycles) and (b) the Petri-net interface (cost grows with
instruction count).  The speedup therefore grows with a schedule's
compute density, spanning roughly 2x for trivial schedules to two-plus
orders of magnitude for GEMM-dense ones — the paper's shape.  We also
verify the search outcome: tuning driven by the interface picks (near-)
the same schedule the simulator-driven search picks.
"""

from __future__ import annotations

import numpy as np
from conftest import scale

from repro.accel.vta import GemmWorkload, Tiling, random_programs, tiled_gemm_program
from repro.autotune import (
    CycleAccurateProfiler,
    EventModelProfiler,
    MemoizedProfiler,
    PetriProfiler,
    exhaustive_tune,
    profiling_speedups,
)

N_SEQUENCES = 150  # per sequence the tick simulator runs 10^3..10^6 cycles

#: Hand-picked dense schedules added on top of the random draw, so the
#: sweep includes the compute-dense region where the speedup peaks.
DENSE = [
    (GemmWorkload(16, 16, 16), Tiling(4, 16, 8)),
    (GemmWorkload(32, 16, 32), Tiling(8, 8, 8)),
    (GemmWorkload(16, 8, 16), Tiling(8, 8, 8)),
]


def test_autotune_profiling_speedup(benchmark, report):
    programs = random_programs(21, scale(N_SEQUENCES), max_dim=8)
    programs += [tiled_gemm_program(w, t) for w, t in DENSE]

    tick = CycleAccurateProfiler()
    petri = PetriProfiler()
    samples = profiling_speedups(tick, petri, programs)
    speedups = np.array([s.speedup for s in samples])

    # Benchmark the proposed profiler on a mid-size schedule.
    prog = programs[0]
    benchmark(lambda: petri.profile(prog))

    best = max(samples, key=lambda s: s.speedup)
    worst = min(samples, key=lambda s: s.speedup)
    lines = [
        "§3 TVM case study — profiling speedup: Petri net vs cycle-accurate sim",
        f"sequences: {len(samples)}",
        f"speedup: max {speedups.max():.0f}x, min {speedups.min():.1f}x, "
        f"geomean {np.exp(np.log(speedups).mean()):.1f}x   (paper: max 1312x, min 2.1x)",
        f"  fastest win : {best.program} ({best.cycles:.0f} cycles) "
        f"{best.baseline_seconds * 1e3:.0f} ms -> {best.candidate_seconds * 1e3:.2f} ms",
        f"  smallest win: {worst.program} ({worst.cycles:.0f} cycles) "
        f"{worst.baseline_seconds * 1e3:.2f} ms -> {worst.candidate_seconds * 1e3:.2f} ms",
    ]

    # Memoized tier: a tuner that re-visits candidates (restarts, epsilon-
    # greedy) pays the simulation once — the cache serves every repeat.
    memo = MemoizedProfiler(PetriProfiler())
    for program in programs:
        memo.profile(program)
    first_pass = memo.wall_seconds
    for program in programs:
        memo.profile(program)
    lines.append(
        f"memoized petri profiler: {memo.cache_summary()}; "
        f"re-sweep cost {memo.wall_seconds - first_pass:.3f}s vs "
        f"{first_pass:.3f}s cold"
    )

    # Search-outcome parity on one tuning task.
    work = GemmWorkload(8, 8, 8)
    by_sim = exhaustive_tune(work, EventModelProfiler())
    by_petri = exhaustive_tune(work, PetriProfiler())
    check = EventModelProfiler().profile(by_petri.best.lower(work))
    lines.append(
        f"search parity on {work}: sim-driven best {by_sim.best_cycles:.0f} cycles, "
        f"interface-driven pick re-measures to {check:.0f} cycles "
        f"({(check / by_sim.best_cycles - 1) * 100:+.1f}%)"
    )
    report("E6_autotune_speedup", "\n".join(lines))

    # The min is wall-clock-sensitive (instruction-dense, compute-light
    # schedules sit near parity); allow scheduling noise, require the
    # bulk of the distribution and the headline to be clear wins.
    assert speedups.min() > 0.7
    assert np.median(speedups) > 2.0
    assert speedups.max() > 30.0
    assert check <= by_sim.best_cycles * 1.05
    # The re-sweep must be served entirely from the cache.
    assert memo.cache.stats.hits >= len(programs)
