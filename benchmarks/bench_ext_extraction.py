"""E11 (§5 future work) — automatic interface extraction.

"Building tools that can automatically extract interfaces as Petri nets
or Python programs from accelerator implementations is a promising
direction for future work."  We implement the measurement-driven
variant: profile a training workload, fit an interpretable non-negative
cost formula, and compare the extracted interface against the
hand-written one on held-out workloads — for all three accelerators
with data-dependent behaviour.
"""

from __future__ import annotations

from repro.accel.jpeg import JpegDecoderModel, PROGRAM as JPEG_HAND, random_images
from repro.accel.protoacc import ProtoaccSerializerModel, instances
from repro.accel.vta import PROGRAM as VTA_HAND, VtaModel, random_programs
from repro.core import validate_interface
from repro.extract import (
    extract_program_interface,
    jpeg_features,
    protoacc_features,
    vta_features,
)


def test_extraction_vs_handwritten(benchmark, report):
    lines = ["§5 future work — auto-extracted vs hand-written program interfaces", ""]

    # --- JPEG -----------------------------------------------------------
    model = JpegDecoderModel()
    train, test = random_images(1, 120), random_images(2, 80)
    extracted, fit = extract_program_interface(model, train, jpeg_features)
    auto = validate_interface(extracted, model, test, check_throughput=False)
    hand = validate_interface(JPEG_HAND, model, test, check_throughput=False)
    lines += [
        "JPEG decoder (80 held-out images):",
        f"  extracted : {auto.latency.as_percent()}   [{fit}]",
        f"  handwritten: {hand.latency.as_percent()}",
        f"  learned: {extracted.formula()}",
        "",
    ]
    jpeg_auto = auto

    # --- Protoacc ---------------------------------------------------------
    pa = ProtoaccSerializerModel()
    msgs = list(instances(seed=3).values())
    extracted_pa, fit_pa = extract_program_interface(pa, msgs[:20], protoacc_features)
    auto_pa = validate_interface(extracted_pa, pa, msgs[20:], check_throughput=False)
    lines += [
        "Protoacc (12 held-out formats):",
        f"  extracted : {auto_pa.latency.as_percent()}   [{fit_pa}]",
        f"  learned: {extracted_pa.formula()}",
        "",
    ]

    # --- VTA --------------------------------------------------------------
    vta = VtaModel()
    train_p = random_programs(4, 60, max_dim=5)
    test_p = random_programs(5, 25, max_dim=5)
    extracted_v, fit_v = extract_program_interface(vta, train_p, vta_features)
    auto_v = validate_interface(extracted_v, vta, test_p, check_throughput=False)
    hand_v = validate_interface(VTA_HAND, vta, test_p, check_throughput=False)
    lines += [
        "VTA (25 held-out schedules):",
        f"  extracted : {auto_v.latency.as_percent()}   [{fit_v}]",
        f"  roofline (hand-written): {hand_v.latency.as_percent()}",
        f"  learned: {extracted_v.formula()}",
    ]

    benchmark(lambda: [extracted.latency(img) for img in test])
    report("E11_auto_extraction", "\n".join(lines))

    assert jpeg_auto.latency.avg < 0.05
    assert auto_pa.latency.avg < 0.06
    assert auto_v.latency.avg < 0.12
    # The extracted VTA formula beats the hand-written roofline: the
    # fitter sees dependency-stall costs the closed form ignores.
    assert auto_v.latency.avg < hand_v.latency.avg
