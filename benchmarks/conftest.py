"""Shared infrastructure for the experiment benchmarks.

Every benchmark regenerates one of the paper's tables/figures
(DESIGN.md §4 maps experiment ids to files).  Each writes its table to
``benchmarks/results/<exp>.txt`` and prints it, so a full
``pytest benchmarks/ --benchmark-only`` run leaves a complete record
that EXPERIMENTS.md summarizes.

Workload sizes default to the paper's (1500 images, 32 formats, ...);
set ``REPRO_BENCH_SCALE`` to a float < 1 to shrink them for quick runs.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def scale(n: int, minimum: int = 5) -> int:
    """Apply REPRO_BENCH_SCALE to a workload size."""
    factor = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    return max(minimum, int(n * factor))


def bench_seed(default: int) -> int:
    """The benchmark's base seed, overridable with ``--seed N`` (or
    ``REPRO_BENCH_SEED``) to check a claim is not a seed artifact."""
    return int(os.environ.get("REPRO_BENCH_SEED", default))


def pytest_addoption(parser):
    parser.addoption(
        "--seed",
        type=int,
        default=None,
        help="override every benchmark's base seed (robustness sweeps)",
    )


def pytest_configure(config):
    seed = config.getoption("--seed", default=None)
    if seed is not None:
        # Via the environment so module-level SEED constants (resolved
        # at import, before fixtures exist) see the override too.
        os.environ["REPRO_BENCH_SEED"] = str(seed)


@pytest.fixture(scope="session")
def report():
    """Writer fixture: report(exp_id, text) persists and echoes a table."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def write(exp_id: str, text: str) -> None:
        path = RESULTS_DIR / f"{exp_id}.txt"
        path.write_text(text + "\n")
        print(f"\n===== {exp_id} =====\n{text}\n")

    return write
