"""E14 — graceful degradation under fault injection.

The paper's serving story assumes a healthy accelerator; this experiment
measures what the fault-tolerant runtime buys when it is not.  An RPC
server offloads serialization of the enterprise mix to the Protoacc
model while a seeded fault plan injects latency spikes, DRAM refresh
storms (resolved through the real DRAM timing model), hangs, drops, and
corrupted responses.  Three scenarios:

* **clean** — no faults, the §5 baseline;
* **faults + breaker** — watchdog, retry, drift detection and a circuit
  breaker that degrades to the Xeon software path;
* **faults, no breaker** — same faults, same watchdog and retries, but
  every call pays its own timeouts (no admission control).

The claim under test: with the breaker the tail stays bounded by the
watchdog budget and CPU-fallback cost, while without it p99 is dominated
by repeated timeout-and-retry towers.  Fault injection is seeded, so the
whole experiment is byte-identical across runs (asserted below via the
plan digest and a full re-run).
"""

from __future__ import annotations

from repro.accel.cpu import offload_overhead
from repro.accel.protoacc import PROGRAM, ProtoaccSerializerModel
from repro.runtime import (
    BreakerConfig,
    CircuitBreaker,
    DriftDetector,
    FaultPlan,
    FaultSpec,
    ResilientDevice,
    RetryPolicy,
    Watchdog,
    dram_storm_latency,
    rpc_cpu_fallback,
)
from repro.workloads import ENTERPRISE_MIX

from conftest import scale

N_REQUESTS = scale(400, minimum=100)
FAULT_SEED = 7
WATCHDOG_BUDGET = 2_000.0

FAULTS = FaultSpec(
    spike_rate=0.08,
    spike_scale=6.0,
    storm_rate=0.05,
    storm_cycles=6_000.0,
    hang_rate=0.15,
    drop_rate=0.05,
    corrupt_rate=0.02,
)


def build_device(*, faults: bool, breaker: bool) -> ResilientDevice:
    model = ProtoaccSerializerModel()
    return ResilientDevice(
        model=model,
        interface=PROGRAM,
        fallback=rpc_cpu_fallback(),
        fault_plan=FaultPlan(FAULT_SEED, FAULTS) if faults else None,
        watchdog=Watchdog(WATCHDOG_BUDGET),
        retry=RetryPolicy(max_attempts=3, base_delay=200.0, seed=FAULT_SEED),
        breaker=(
            CircuitBreaker(
                BreakerConfig(
                    failure_threshold=3,
                    recovery_cycles=150_000.0,
                    probe_successes=2,
                )
            )
            if breaker
            else None
        ),
        drift=DriftDetector(window=16, threshold=0.5, min_samples=8) if breaker else None,
        invocation_overhead=offload_overhead,
        storm_latency=dram_storm_latency(model),
    )


def serve(device: ResilientDevice, messages) -> ResilientDevice:
    for msg in messages:
        device.call(msg)
    return device


def test_fault_degradation(benchmark, report):
    messages = ENTERPRISE_MIX.sample(seed=3, count=N_REQUESTS)

    clean = serve(build_device(faults=False, breaker=True), messages)
    with_breaker = benchmark(
        lambda: serve(build_device(faults=True, breaker=True), messages)
    )
    without_breaker = serve(build_device(faults=True, breaker=False), messages)

    # Determinism: the fault schedule and the entire served run are pure
    # functions of their seeds.
    plan = FaultPlan(FAULT_SEED, FAULTS)
    assert plan.digest(N_REQUESTS) == FaultPlan(FAULT_SEED, FAULTS).digest(N_REQUESTS)
    rerun = serve(build_device(faults=True, breaker=True), messages)
    assert rerun.latencies() == with_breaker.latencies()
    assert rerun.clock == with_breaker.clock

    s_clean = clean.summary()
    s_on = with_breaker.summary()
    s_off = without_breaker.summary()

    breaker = with_breaker.breaker
    timeline = "\n".join(
        f"    t={t.time:>10.0f}  -> {t.state.value:9s}  ({t.reason})"
        for t in breaker.transitions
    )
    lines = [
        "E14 — fault injection + graceful degradation "
        "(Protoacc serialization, enterprise RPC mix)",
        f"requests: {N_REQUESTS}   fault plan: seed={FAULT_SEED} "
        f"total rate={FAULTS.total_rate:.0%}   watchdog: {WATCHDOG_BUDGET:.0f} cycles",
        f"fault-plan digest: {plan.digest(N_REQUESTS)[:16]}... (byte-identical re-run)",
        "",
        "per-call latency (virtual cycles):",
        f"  clean (no faults):       p50={s_clean.p50:7.0f}  p99={s_clean.p99:7.0f}  "
        f"max={s_clean.maximum:7.0f}",
        f"  faults + breaker:        p50={s_on.p50:7.0f}  p99={s_on.p99:7.0f}  "
        f"max={s_on.maximum:7.0f}  fallback={with_breaker.fallback_fraction():.0%}",
        f"  faults, no breaker:      p50={s_off.p50:7.0f}  p99={s_off.p99:7.0f}  "
        f"max={s_off.maximum:7.0f}  fallback={without_breaker.fallback_fraction():.0%}",
        "",
        f"faults encountered: {with_breaker.fault_count()} (breaker on) / "
        f"{without_breaker.fault_count()} (breaker off)",
        f"p99 tail ratio (no breaker / breaker): {s_off.p99 / s_on.p99:.1f}x",
        "",
        "breaker timeline:",
        timeline or "    (never tripped)",
    ]
    report("E14_fault_degradation", "\n".join(lines))

    # The breaker bounds the tail: p99 stays within the worst single
    # failed attempt (watchdog budget) plus the CPU fallback, while the
    # unprotected device's p99 is dominated by timeout-and-retry towers.
    assert s_on.p99 <= 2 * WATCHDOG_BUDGET
    assert s_off.p99 >= 2 * s_on.p99
    # Degradation is graceful, not silent: the breaker actually tripped
    # and most calls were served (by either path) at bounded cost.
    assert breaker.transitions, "breaker never tripped under a 35% fault rate"
    assert with_breaker.fallback_fraction() > without_breaker.fallback_fraction()
