"""E7 — §2 example #2 and §4: the RPC-accelerator crossover study.

Paper claims reproduced here:

* "Optimus Prime is best suited for small data objects (<= 300B), while
  Protoacc is best suited for larger data objects (>= 4KB)."
* "For workloads comprising small data objects, Protoacc can perform
  worse than a regular Xeon due to the cost of transferring the data."
* "Optimus Prime can sustain a maximum throughput of 33 Gbps, but this
  drops to 14 Gbps for realistic workloads." (§4)

The size sweep prints the winner per object size (the figure a designer
would draw from the interfaces), and the mix comparison shows the
per-workload decision flipping between mixes.
"""

from __future__ import annotations

import numpy as np

from repro.accel.cpu import CpuSerializerModel, offloaded_latency
from repro.accel.optimusprime import CLOCK_GHZ, OptimusPrimeModel
from repro.accel.protoacc import ProtoaccSerializerModel
from repro.workloads import ALL_MIXES, ENTERPRISE_MIX, sized_message

SIZES = (32, 64, 128, 300, 512, 1024, 2048, 4096, 8192, 16384)


def sweep():
    pa, op, cpu = ProtoaccSerializerModel(), OptimusPrimeModel(), CpuSerializerModel()
    rng = np.random.default_rng(5)
    rows = []
    for size in SIZES:
        m = sized_message(size, rng)
        lat = {
            "protoacc": offloaded_latency(pa, m),
            "optimus-prime": offloaded_latency(op, m),
            "cpu": cpu.measure_latency(m),
        }
        rows.append((size, lat, min(lat, key=lat.get)))
    return rows


def realistic_gbps():
    op = OptimusPrimeModel()
    msgs = ENTERPRISE_MIX.sample(seed=9, count=200)
    total_bytes = sum(m.encoded_size() for m in msgs)
    total_cycles = sum(op.measure_latency(m) for m in msgs)
    return total_bytes / total_cycles * CLOCK_GHZ * 8


def test_rpc_crossover(benchmark, report):
    rows = benchmark(sweep)
    pa, op = ProtoaccSerializerModel(), OptimusPrimeModel()
    cpu = CpuSerializerModel()

    lines = [
        "§2 example #2 — RPC serialization: who wins at each object size",
        f"{'size':>7} {'protoacc':>10} {'optimus':>10} {'cpu':>10}  winner",
    ]
    for size, lat, winner in rows:
        lines.append(
            f"{size:7d} {lat['protoacc']:10.0f} {lat['optimus-prime']:10.0f} "
            f"{lat['cpu']:10.0f}  {winner}"
        )
    gbps = realistic_gbps()
    lines += [
        "",
        f"Optimus Prime peak rate: {OptimusPrimeModel.peak_gbps():.0f} Gbps "
        "(paper headline: 33 Gbps)",
        f"Optimus Prime on enterprise mix: {gbps:.1f} Gbps (paper: drops to 14 Gbps)",
        "",
        "per-mix offload decision (total cycles, lower wins):",
    ]
    for mix in ALL_MIXES:
        msgs = mix.sample(seed=3, count=60)
        t_pa = sum(offloaded_latency(pa, m) for m in msgs)
        t_op = sum(offloaded_latency(op, m) for m in msgs)
        t_cpu = sum(cpu.measure_latency(m) for m in msgs)
        winner = min(
            [("protoacc", t_pa), ("optimus-prime", t_op), ("cpu", t_cpu)],
            key=lambda e: e[1],
        )[0]
        lines.append(
            f"  {mix.name:<11} pa={t_pa:11.0f} op={t_op:11.0f} cpu={t_cpu:11.0f} -> {winner}"
        )
    report("E7_rpc_crossover", "\n".join(lines))

    winners = {size: winner for size, _, winner in rows}
    assert winners[32] == "cpu"                 # Protoacc loses on tiny objects
    assert winners[300] == "optimus-prime"      # OP best <= ~300 B
    assert winners[4096] == "protoacc"          # Protoacc best >= 4 KB
    assert winners[16384] == "protoacc"
    assert gbps < 0.72 * OptimusPrimeModel.peak_gbps()
