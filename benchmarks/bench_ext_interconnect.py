"""E13 (§5 extension) — composing with a SmartNIC interconnect.

"A Petri net for a SmartNIC will likely need to include a model of the
interconnect, since it can have a significant impact on performance."

Ground truth: Protoacc's DMA arbitrates on a shared bus against
background traffic from the other SmartNIC engines
(``ProtoaccSerializerModel(bus_config=...)``).  We sweep the background
utilization and compare the plain Fig. 3 interface against the same
interface composed with the interconnect's component interface (an
M/D/1 expected-delay formula).
"""

from __future__ import annotations

from repro.accel.protoacc import (
    ProtoaccSerializerModel,
    instances,
    tput_protoacc_ser,
)
from repro.accel.protoacc.interfaces import tput_protoacc_ser_bus
from repro.hw.noc import BusConfig
from repro.hw.stats import ErrorReport

UTILIZATIONS = (0.0, 0.3, 0.6, 0.8)


def test_interconnect_composition(benchmark, report):
    msgs = list(instances(seed=3).values())
    rows = []
    for util in UTILIZATIONS:
        cfg = BusConfig(background_utilization=util)
        model = ProtoaccSerializerModel(bus_config=cfg)
        actual = [model.measure_throughput(m, repeat=8) for m in msgs]
        naive = ErrorReport.of([tput_protoacc_ser(m) for m in msgs], actual)
        composed = ErrorReport.of(
            [tput_protoacc_ser_bus(m, cfg) for m in msgs], actual
        )
        rows.append((util, naive, composed))

    cfg = BusConfig(background_utilization=0.6)
    benchmark(lambda: [tput_protoacc_ser_bus(m, cfg) for m in msgs])

    lines = [
        "§5 extension — Protoacc behind a shared SmartNIC bus (32 formats)",
        f"{'bus util':>9} {'naive iface':>24} {'composed iface':>24}",
    ]
    for util, naive, composed in rows:
        lines.append(
            f"{util:9.1f} {naive.as_percent():>24} {composed.as_percent():>24}"
        )
    lines += [
        "",
        "The composed interface stays accurate until the bus saturates;",
        "at 0.8 utilization the M/D/1 mean underestimates queueing tails",
        "— the known limit of mean-value component interfaces.",
    ]
    report("E13_interconnect_composition", "\n".join(lines))

    for util, naive, composed in rows:
        if util > 0:
            assert naive.avg > composed.avg  # composition always helps
        if util <= 0.6:
            assert composed.avg < 0.05
