"""Engine microbenchmarks — how fast does the performance IR execute?

Not a paper artifact, but load-bearing for the paper's story: the IR is
only useful to tools (auto-tuners, design-space explorers) if it runs
orders of magnitude faster than cycle-level simulation.  These
benchmarks track the engine's firing throughput on the three structural
idioms the accelerator nets use, so a regression here shows up before
it silently erodes the E6 speedups.
"""

from __future__ import annotations

from repro.petri import PetriNet, Simulator, chain


def run_chain(n_stages: int, n_items: int) -> float:
    net = PetriNet("chain")
    chain(net, [(f"s{k}", 3 + k) for k in range(n_stages)], capacity=4)
    sim = Simulator(net, sinks=["out"])
    sim.inject_stream("in", range(n_items))
    return sim.run().makespan()


def run_fanout(n_items: int) -> int:
    net = PetriNet("fan")
    net.add_place("in")
    net.add_place("mid")
    net.add_place("out")
    net.add_transition("split", ["in"], [("mid", 4)], delay=1, servers=None)
    net.add_transition("merge", [("mid", 4)], ["out"], delay=2, servers=2)
    sim = Simulator(net, sinks=["out"])
    sim.inject_stream("in", range(n_items))
    return len(sim.run().sink())


def run_guarded(n_items: int) -> int:
    net = PetriNet("guarded")
    net.add_place("in")
    net.add_place("small")
    net.add_place("big")
    net.add_transition(
        "lo", ["in"], ["small"], delay=1, guard=lambda c: c["in"][0].payload % 2 == 0
    )
    net.add_transition(
        "hi", ["in"], ["big"], delay=2, guard=lambda c: c["in"][0].payload % 2 == 1
    )
    sim = Simulator(net, sinks=["small", "big"])
    sim.inject_stream("in", range(n_items))
    result = sim.run()
    return len(result.completions["small"]) + len(result.completions["big"])


def test_engine_chain_throughput(benchmark, report):
    makespan = benchmark(lambda: run_chain(n_stages=4, n_items=200))
    report(
        "ENG_chain",
        f"4-stage chain, 200 items: makespan {makespan:.0f} cycles "
        f"({4 * 200} firings/run)",
    )
    assert makespan > 0


def test_engine_fanout(benchmark):
    completed = benchmark(lambda: run_fanout(n_items=100))
    assert completed == 100  # 4-way split re-merged


def test_engine_guard_dispatch(benchmark):
    completed = benchmark(lambda: run_guarded(n_items=200))
    assert completed == 200
