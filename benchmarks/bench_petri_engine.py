"""Engine microbenchmarks — how fast does the performance IR execute?

Not a paper artifact, but load-bearing for the paper's story: the IR is
only useful to tools (auto-tuners, design-space explorers) if it runs
orders of magnitude faster than cycle-level simulation.  These
benchmarks track the engine's firing throughput on the three structural
idioms the accelerator nets use, so a regression here shows up before
it silently erodes the E6 speedups.

Two engines are measured: the reference interpreter and the compiled
fast path (``repro.petri.compiled``).  The comparison table in
``benchmarks/results/ENG_engine_compare.txt`` interleaves the two and
takes best-of-N on CPU time, because wall-clock ratios on shared
machines swing far more than the engines themselves do.
"""

from __future__ import annotations

import time

from repro.obs import Tracer
from repro.petri import CompiledNet, PetriNet, chain, make_simulator


def build_chain(n_stages: int = 4, n_items: int = 200):
    net = PetriNet("chain")
    chain(net, [(f"s{k}", 3 + k) for k in range(n_stages)], capacity=4)
    return net, ["out"], lambda sim: sim.inject_stream("in", range(n_items))


def build_fanout(n_items: int = 100):
    net = PetriNet("fan")
    net.add_place("in")
    net.add_place("mid")
    net.add_place("out")
    net.add_transition("split", ["in"], [("mid", 4)], delay=1, servers=None)
    net.add_transition("merge", [("mid", 4)], ["out"], delay=2, servers=2)
    return net, ["out"], lambda sim: sim.inject_stream("in", range(n_items))


def build_guarded(n_items: int = 200):
    net = PetriNet("guarded")
    net.add_place("in")
    net.add_place("small")
    net.add_place("big")
    net.add_transition(
        "lo", ["in"], ["small"], delay=1, guard=lambda c: c["in"][0].payload % 2 == 0
    )
    net.add_transition(
        "hi", ["in"], ["big"], delay=2, guard=lambda c: c["in"][0].payload % 2 == 1
    )
    return net, ["small", "big"], lambda sim: sim.inject_stream("in", range(n_items))


IDIOMS = [("chain", build_chain), ("fanout", build_fanout), ("guard", build_guarded)]


def run_once(build, engine: str):
    """One simulation run; returns (SimResult, firings)."""
    net, sinks, load = build()
    sim = make_simulator(net, sinks=sinks, engine=engine)
    load(sim)
    result = sim.run()
    return result, sum(result.fired.values())


def _time_run(build, engine: str, compiled: CompiledNet | None = None) -> tuple[int, int]:
    """CPU nanoseconds for one ``run()`` (setup and injection excluded)."""
    net, sinks, load = build()
    if engine == "compiled":
        sim = make_simulator(
            net, sinks=sinks, engine=engine, compiled=CompiledNet(net)
        )
    else:
        sim = make_simulator(net, sinks=sinks, engine=engine)
    load(sim)
    t0 = time.process_time_ns()
    result = sim.run()
    elapsed = time.process_time_ns() - t0
    return elapsed, sum(result.fired.values())


def test_engine_chain_throughput(benchmark, report):
    def run():
        result, _ = run_once(build_chain, "reference")
        return result.makespan()

    makespan = benchmark(run)
    report(
        "ENG_chain",
        f"4-stage chain, 200 items: makespan {makespan:.0f} cycles "
        f"({4 * 200} firings/run)",
    )
    assert makespan > 0


def test_engine_fanout(benchmark):
    completed = benchmark(lambda: len(run_once(build_fanout, "reference")[0].sink()))
    assert completed == 100  # 4-way split re-merged


def test_engine_guard_dispatch(benchmark):
    def run():
        result, _ = run_once(build_guarded, "reference")
        return len(result.completions["small"]) + len(result.completions["big"])

    assert benchmark(run) == 200


def test_engine_compare(report):
    """Reference vs compiled on every idiom: identical results, >=5x faster.

    Interleaved best-of-N on process time; each row also reports firing
    throughput (firings/sec), the engine-level figure of merit.
    """
    rows = [
        f"{'idiom':8s} {'reference':>12s} {'compiled':>12s} {'speedup':>8s} "
        f"{'ref fir/s':>12s} {'cmp fir/s':>12s}"
    ]
    speedups = {}
    for name, build in IDIOMS:
        ref_res = run_once(build, "reference")[0]
        cmp_res = run_once(build, "compiled")[0]
        assert ref_res.end_time == cmp_res.end_time, name
        assert ref_res.fired == cmp_res.fired, name
        assert [
            (c.time, c.token.payload) for v in ref_res.completions.values() for c in v
        ] == [
            (c.time, c.token.payload) for v in cmp_res.completions.values() for c in v
        ], name

        ref_ns = cmp_ns = float("inf")
        firings = 0
        for _ in range(40):  # interleave so CPU-state drift hits both engines
            ns, firings = _time_run(build, "reference")
            ref_ns = min(ref_ns, ns)
            ns, _ = _time_run(build, "compiled")
            cmp_ns = min(cmp_ns, ns)
        speedups[name] = ref_ns / cmp_ns
        rows.append(
            f"{name:8s} {ref_ns / 1e6:10.3f}ms {cmp_ns / 1e6:10.3f}ms "
            f"{speedups[name]:7.2f}x {firings * 1e9 / ref_ns:12.0f} "
            f"{firings * 1e9 / cmp_ns:12.0f}"
        )
    rows.append(
        "(best-of-40 CPU time per run; injections and net lowering excluded)"
    )
    report("ENG_engine_compare", "\n".join(rows))
    for name, speedup in speedups.items():
        assert speedup >= 5.0, f"{name}: compiled only {speedup:.2f}x faster"


def _time_traced(build, tracer) -> int:
    """Best-effort CPU ns for one compiled run with the given tracer."""
    net, sinks, load = build()
    sim = make_simulator(
        net, sinks=sinks, engine="compiled", compiled=CompiledNet(net), tracer=tracer
    )
    load(sim)
    if tracer is not None and tracer.enabled:
        tracer.clear()
    t0 = time.process_time_ns()
    sim.run()
    return time.process_time_ns() - t0


def test_tracing_overhead(report):
    """Observability must be pay-for-what-you-use on the hot engine.

    A *disabled* tracer is normalized away at simulator construction,
    so the run loop is byte-identical to the untraced one — the
    benchmark pins that claim to < 3% on the chain idiom (the
    firing-densest of the three).  The *enabled* cost is reported for
    context but not asserted: it buys a full per-firing timeline.
    """
    disabled = Tracer(enabled=False)
    base_ns = off_ns = on_ns = float("inf")
    for _ in range(60):  # interleave to cancel CPU-state drift
        base_ns = min(base_ns, _time_traced(build_chain, None))
        off_ns = min(off_ns, _time_traced(build_chain, disabled))
        on_ns = min(on_ns, _time_traced(build_chain, Tracer()))
    overhead = off_ns / base_ns - 1.0
    report(
        "ENG_tracing_overhead",
        "compiled engine, 4-stage chain x 200 items (best-of-60 CPU time):\n"
        f"untraced {base_ns / 1e6:8.3f}ms   disabled tracer {off_ns / 1e6:8.3f}ms "
        f"({overhead * 100:+.1f}%)   enabled tracer {on_ns / 1e6:8.3f}ms "
        f"({(on_ns / base_ns - 1.0) * 100:+.1f}%)",
    )
    assert overhead < 0.03, f"disabled tracer costs {overhead * 100:.1f}%"
