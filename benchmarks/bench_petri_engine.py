"""Engine microbenchmarks — how fast does the performance IR execute?

Not a paper artifact, but load-bearing for the paper's story: the IR is
only useful to tools (auto-tuners, design-space explorers) if it runs
orders of magnitude faster than cycle-level simulation.  These
benchmarks track the engine's firing throughput on the three structural
idioms the accelerator nets use, so a regression here shows up before
it silently erodes the E6 speedups.

Two engines are measured: the reference interpreter and the compiled
fast path (``repro.petri.compiled``).  The comparison table in
``benchmarks/results/ENG_engine_compare.txt`` interleaves the two and
takes best-of-N on CPU time, because wall-clock ratios on shared
machines swing far more than the engines themselves do.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.obs import Tracer
from repro.petri import (
    BatchEvaluator,
    CompiledNet,
    CompiledSimulator,
    PetriNet,
    chain,
    make_simulator,
)


def build_chain(n_stages: int = 4, n_items: int = 200):
    net = PetriNet("chain")
    chain(net, [(f"s{k}", 3 + k) for k in range(n_stages)], capacity=4)
    return net, ["out"], lambda sim: sim.inject_stream("in", range(n_items))


def build_fanout(n_items: int = 100):
    net = PetriNet("fan")
    net.add_place("in")
    net.add_place("mid")
    net.add_place("out")
    net.add_transition("split", ["in"], [("mid", 4)], delay=1, servers=None)
    net.add_transition("merge", [("mid", 4)], ["out"], delay=2, servers=2)
    return net, ["out"], lambda sim: sim.inject_stream("in", range(n_items))


def build_guarded(n_items: int = 200):
    net = PetriNet("guarded")
    net.add_place("in")
    net.add_place("small")
    net.add_place("big")
    net.add_transition(
        "lo", ["in"], ["small"], delay=1, guard=lambda c: c["in"][0].payload % 2 == 0
    )
    net.add_transition(
        "hi", ["in"], ["big"], delay=2, guard=lambda c: c["in"][0].payload % 2 == 1
    )
    return net, ["small", "big"], lambda sim: sim.inject_stream("in", range(n_items))


IDIOMS = [("chain", build_chain), ("fanout", build_fanout), ("guard", build_guarded)]


def run_once(build, engine: str):
    """One simulation run; returns (SimResult, firings)."""
    net, sinks, load = build()
    sim = make_simulator(net, sinks=sinks, engine=engine)
    load(sim)
    result = sim.run()
    return result, sum(result.fired.values())


def _time_run(build, engine: str, compiled: CompiledNet | None = None) -> tuple[int, int]:
    """CPU nanoseconds for one ``run()`` (setup and injection excluded)."""
    net, sinks, load = build()
    if engine == "compiled":
        sim = make_simulator(
            net, sinks=sinks, engine=engine, compiled=CompiledNet(net)
        )
    else:
        sim = make_simulator(net, sinks=sinks, engine=engine)
    load(sim)
    t0 = time.process_time_ns()
    result = sim.run()
    elapsed = time.process_time_ns() - t0
    return elapsed, sum(result.fired.values())


def test_engine_chain_throughput(benchmark, report):
    def run():
        result, _ = run_once(build_chain, "reference")
        return result.makespan()

    makespan = benchmark(run)
    report(
        "ENG_chain",
        f"4-stage chain, 200 items: makespan {makespan:.0f} cycles "
        f"({4 * 200} firings/run)",
    )
    assert makespan > 0


def test_engine_fanout(benchmark):
    completed = benchmark(lambda: len(run_once(build_fanout, "reference")[0].sink()))
    assert completed == 100  # 4-way split re-merged


def test_engine_guard_dispatch(benchmark):
    def run():
        result, _ = run_once(build_guarded, "reference")
        return len(result.completions["small"]) + len(result.completions["big"])

    assert benchmark(run) == 200


def test_engine_compare(report):
    """Reference vs compiled on every idiom: identical results, >=5x faster.

    Interleaved best-of-N on process time; each row also reports firing
    throughput (firings/sec), the engine-level figure of merit.
    """
    rows = [
        f"{'idiom':8s} {'reference':>12s} {'compiled':>12s} {'speedup':>8s} "
        f"{'ref fir/s':>12s} {'cmp fir/s':>12s}"
    ]
    speedups = {}
    for name, build in IDIOMS:
        ref_res = run_once(build, "reference")[0]
        cmp_res = run_once(build, "compiled")[0]
        assert ref_res.end_time == cmp_res.end_time, name
        assert ref_res.fired == cmp_res.fired, name
        assert [
            (c.time, c.token.payload) for v in ref_res.completions.values() for c in v
        ] == [
            (c.time, c.token.payload) for v in cmp_res.completions.values() for c in v
        ], name

        ref_ns = cmp_ns = float("inf")
        firings = 0
        for _ in range(40):  # interleave so CPU-state drift hits both engines
            ns, firings = _time_run(build, "reference")
            ref_ns = min(ref_ns, ns)
            ns, _ = _time_run(build, "compiled")
            cmp_ns = min(cmp_ns, ns)
        speedups[name] = ref_ns / cmp_ns
        rows.append(
            f"{name:8s} {ref_ns / 1e6:10.3f}ms {cmp_ns / 1e6:10.3f}ms "
            f"{speedups[name]:7.2f}x {firings * 1e9 / ref_ns:12.0f} "
            f"{firings * 1e9 / cmp_ns:12.0f}"
        )
    rows.append(
        "(best-of-40 CPU time per run; injections and net lowering excluded)"
    )
    report("ENG_engine_compare", "\n".join(rows))
    for name, speedup in speedups.items():
        assert speedup >= 5.0, f"{name}: compiled only {speedup:.2f}x faster"


# ----------------------------------------------------------------------
# Mega-batch sweep: the batch engines vs per-item evaluation at scale
# ----------------------------------------------------------------------


def _jpeg_sweep():
    from repro.accel.jpeg import interfaces as jpeg
    from repro.accel.jpeg.workload import random_images

    return jpeg.petri_interface, random_images(
        seed=7, count=1000, min_dim=16, max_dim=48
    )


def _optimus_sweep():
    from repro.accel.optimusprime import interfaces as optimus
    from repro.accel.protoacc import formats

    messages = [m for s in range(32) for m in formats.instances(seed=s).values()]
    return optimus.petri_interface, messages[:1000]


SWEEPS = [("jpeg", _jpeg_sweep), ("optimusprime", _optimus_sweep)]


def _tokenize_matrix(make_iface, workload):
    iface = make_iface()
    return [
        [(inj.place, inj.payload, inj.at) for inj in iface.tokenize(w)]
        for w in workload
    ]


def _time_per_item_compiled(make_iface, items) -> tuple[int, list[float]]:
    """CPU ns + makespans for the per-item compiled path: one simulator
    built, loaded, and run per item — exactly what ``latency()`` does
    after tokenization."""
    iface = make_iface()
    out = []
    t0 = time.process_time_ns()
    for item in items:
        sim = CompiledSimulator(iface.net, sinks=[iface.sink])
        for place, payload, at in item:
            sim.inject(place, payload, at=at)
        out.append(sim.run().makespan())
    return time.process_time_ns() - t0, out


def _time_reference_per_item(make_iface, items) -> int:
    """CPU ns for the reference interpreter over ``items`` (fresh net per
    item — the reference engine consumes the marking)."""
    t0 = time.process_time_ns()
    for item in items:
        iface = make_iface()
        sim = make_simulator(iface.net, sinks=[iface.sink], engine="reference")
        for place, payload, at in item:
            sim.inject(place, payload, at=at)
        sim.run()
    return time.process_time_ns() - t0


def test_batched_mega_sweep(report, tmp_path):
    """The tentpole acceptance gate: on a 1000-point sweep over two real
    accelerator nets the batch engine is >= 10x faster than per-item
    compiled evaluation, bit-identical; and a warm persistent EvalCache
    answers the same sweep with zero engine invocations.

    Items/sec is measured on pre-tokenized matrices so all three engines
    do the same work (reference is extrapolated from a 50-item
    subsample — running it over the full sweep would dominate CI time).
    """
    results = {}
    rows = [
        f"{'net':14s} {'points':>6s} {'ref it/s':>10s} {'cmp it/s':>10s} "
        f"{'bat it/s':>12s} {'speedup':>8s} {'engine':>8s}"
    ]
    for name, build in SWEEPS:
        make_iface, workload = build()
        items = _tokenize_matrix(make_iface, workload)
        n = len(items)
        assert n >= 1000, f"{name}: sweep shrank below the acceptance floor"

        ref_sub = min(50, n)
        ref_ns = _time_reference_per_item(make_iface, items[:ref_sub])

        cmp_ns = float("inf")
        want: list[float] = []
        bat_ns = float("inf")
        got: list[float] = []
        iface = make_iface()
        evaluator = BatchEvaluator(iface.net, [iface.sink])
        for _ in range(5):  # interleaved best-of-5, like the idiom benches
            ns, want = _time_per_item_compiled(make_iface, items)
            cmp_ns = min(cmp_ns, ns)
            t0 = time.process_time_ns()
            got = evaluator.evaluate_makespans(items)
            bat_ns = min(bat_ns, time.process_time_ns() - t0)

        assert got == want, f"{name}: batched diverged from compiled"  # bit-identical
        speedup = cmp_ns / bat_ns
        results[name] = {
            "points": n,
            "tokens_per_item": sum(len(i) for i in items) / n,
            "engine": evaluator.engine,
            "items_per_sec": {
                "reference": ref_sub * 1e9 / ref_ns,
                "compiled": n * 1e9 / cmp_ns,
                "batched": n * 1e9 / bat_ns,
            },
            "speedup_batched_vs_compiled": speedup,
            "reference_subsample": ref_sub,
        }
        rows.append(
            f"{name:14s} {n:6d} {ref_sub * 1e9 / ref_ns:10.0f} "
            f"{n * 1e9 / cmp_ns:10.0f} {n * 1e9 / bat_ns:12.0f} "
            f"{speedup:7.1f}x {evaluator.engine:>8s}"
        )

    # Cold vs warm persistent cache: a second "process" (fresh interface,
    # fresh cache object on the same spill file) must answer the whole
    # sweep from disk without ever constructing a batch engine.
    from repro.perf import EvalCache

    make_iface, workload = SWEEPS[0][1]()
    spill = str(Path(tmp_path) / "evals.jsonl")
    cold_iface = make_iface()
    cold_iface.cache = EvalCache(spill)
    t0 = time.process_time_ns()
    cold = cold_iface.evaluate_batch(workload)
    cold_ns = time.process_time_ns() - t0

    warm_iface = make_iface()
    warm_iface.cache = EvalCache(spill)
    t0 = time.process_time_ns()
    warm = warm_iface.evaluate_batch(workload)
    warm_ns = time.process_time_ns() - t0
    assert warm == cold
    assert warm_iface.batch_evaluator is None  # zero engine invocations
    assert warm_iface.cache.stats.hits == len(workload)
    results["persistent_cache"] = {
        "net": SWEEPS[0][0],
        "points": len(workload),
        "cold_items_per_sec": len(workload) * 1e9 / cold_ns,
        "warm_items_per_sec": len(workload) * 1e9 / warm_ns,
        "warm_engine_invocations": 0,
    }
    rows.append(
        f"persistent cache ({SWEEPS[0][0]}): cold {len(workload) * 1e9 / cold_ns:.0f} "
        f"it/s -> warm {len(workload) * 1e9 / warm_ns:.0f} it/s "
        f"(zero engine invocations)"
    )
    rows.append("(pre-tokenized matrices; best-of-5 CPU time; reference on a subsample)")

    report("BENCH_batched_engine", "\n".join(rows))
    out = Path(__file__).parent / "results" / "BENCH_batched_engine.json"
    out.write_text(json.dumps(results, indent=2) + "\n")

    for name, _ in SWEEPS:
        speedup = results[name]["speedup_batched_vs_compiled"]
        assert speedup >= 10.0, f"{name}: batched only {speedup:.1f}x vs compiled"


def _time_traced(build, tracer) -> int:
    """Best-effort CPU ns for one compiled run with the given tracer."""
    net, sinks, load = build()
    sim = make_simulator(
        net, sinks=sinks, engine="compiled", compiled=CompiledNet(net), tracer=tracer
    )
    load(sim)
    if tracer is not None and tracer.enabled:
        tracer.clear()
    t0 = time.process_time_ns()
    sim.run()
    return time.process_time_ns() - t0


def test_tracing_overhead(report):
    """Observability must be pay-for-what-you-use on the hot engine.

    A *disabled* tracer is normalized away at simulator construction,
    so the run loop is byte-identical to the untraced one — the
    benchmark pins that claim to < 3% on the chain idiom (the
    firing-densest of the three).  The *enabled* cost is reported for
    context but not asserted: it buys a full per-firing timeline.
    """
    disabled = Tracer(enabled=False)
    base_ns = off_ns = on_ns = float("inf")
    for _ in range(60):  # interleave to cancel CPU-state drift
        base_ns = min(base_ns, _time_traced(build_chain, None))
        off_ns = min(off_ns, _time_traced(build_chain, disabled))
        on_ns = min(on_ns, _time_traced(build_chain, Tracer()))
    overhead = off_ns / base_ns - 1.0
    report(
        "ENG_tracing_overhead",
        "compiled engine, 4-stage chain x 200 items (best-of-60 CPU time):\n"
        f"untraced {base_ns / 1e6:8.3f}ms   disabled tracer {off_ns / 1e6:8.3f}ms "
        f"({overhead * 100:+.1f}%)   enabled tracer {on_ns / 1e6:8.3f}ms "
        f"({(on_ns / base_ns - 1.0) * 100:+.1f}%)",
    )
    assert overhead < 0.03, f"disabled tracer costs {overhead * 100:.1f}%"


def test_attribution_overhead(report):
    """Attribution must also be pay-for-what-you-use, on the *serving*
    path this time.

    Causal attribution is entirely post-hoc — it reads spans the tracer
    already buffered — so a serving run with a disabled tracer does the
    same work as an unobserved one (the hot-path guards normalize a
    disabled tracer to ``None`` and the disabled tracer allocates zero
    events), pinned to the same < 3% band as the engine gate.  The
    enabled-plus-attribute cost is reported for context, and the
    enabled run must not perturb the virtual-clock outcome.
    """
    from repro.obs import Obs, Tracer, attribute
    from repro.runtime import OpenLoopServer
    from repro.runtime.pool import rpc_pool
    from repro.workloads import ENTERPRISE_MIX

    msgs, arrivals = ENTERPRISE_MIX.sample_open(seed=7, count=60, mean_gap=900.0)

    def run(obs):
        pool = rpc_pool("interface_predicted", faults="none", seed=7, obs=obs)
        server = OpenLoopServer(pool, deadline=60_000.0, obs=obs)
        return server.run(msgs, arrivals)

    def timed(make_obs):
        obs = make_obs()
        t0 = time.process_time_ns()
        result = run(obs)
        return time.process_time_ns() - t0, result, obs

    disabled = Tracer(enabled=False)
    base_ns = off_ns = on_ns = float("inf")
    base_res = on_res = on_obs = None
    for _ in range(12):  # interleave to cancel CPU-state drift
        ns, base_res, _ = timed(lambda: None)
        base_ns = min(base_ns, ns)
        ns, _, _ = timed(lambda: Obs(tracer=disabled))
        off_ns = min(off_ns, ns)
        ns, on_res, on_obs = timed(Obs.enabled)
        on_ns = min(on_ns, ns)
    assert len(disabled) == 0 and disabled.dropped == 0  # allocation-free

    t0 = time.process_time_ns()
    attrs = attribute(on_res, on_obs.tracer)
    attr_ns = time.process_time_ns() - t0
    assert len(attrs) == len(on_res.served)
    for a in attrs:
        assert a.total == a.end_to_end
    assert [r.completed for r in on_res.served] == [
        r.completed for r in base_res.served
    ], "observation perturbed the serving run"

    overhead = off_ns / base_ns - 1.0
    report(
        "ENG_attribution_overhead",
        "serving path, 60 enterprise RPCs (best-of-12 CPU time):\n"
        f"unobserved {base_ns / 1e6:8.3f}ms   disabled tracer "
        f"{off_ns / 1e6:8.3f}ms ({overhead * 100:+.1f}%)   "
        f"traced {on_ns / 1e6:8.3f}ms "
        f"({(on_ns / base_ns - 1.0) * 100:+.1f}%) "
        f"+ attribute() {attr_ns / 1e6:.3f}ms for {len(attrs)} requests",
    )
    assert overhead < 0.03, f"disabled-tracer serving costs {overhead * 100:.1f}%"
