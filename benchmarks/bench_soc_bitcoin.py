"""E8 — Figure 1 (miner) + §2 example #1: the SoC designer's workflow.

The miner's English interface states a design-space law: latency equals
the synthesis parameter ``Loop`` while area grows inversely with it.
This benchmark regenerates the area/latency frontier from the interface
alone, verifies each point against the model, and walks the example #1
workflow: pick the fastest configuration under an area budget.
"""

from __future__ import annotations

import numpy as np

from repro.accel.bitcoin import (
    BitcoinMinerModel,
    VALID_LOOPS,
    area_latency_frontier,
    mining_cycles,
    random_job,
)
from repro.core import DesignPoint, pareto_frontier, pick_under_area_budget


def frontier_points():
    return [
        DesignPoint(
            config=f"Loop={int(row['loop'])}",
            area=row["area"],
            latency=row["latency"],
            throughput=row["hashrate"],
        )
        for row in area_latency_frontier()
    ]


def test_soc_designer_frontier(benchmark, report):
    points = benchmark(frontier_points)
    frontier = pareto_frontier(points)

    lines = [
        "§2 example #1 — Bitcoin miner IP block: area/latency frontier",
        f"{'config':>9} {'area':>9} {'latency':>8} {'hashes/cyc':>11}",
    ]
    for p in points:
        lines.append(
            f"{p.config:>9} {p.area:9.0f} {p.latency:8.0f} {p.throughput:11.4f}"
        )

    budget = 40_000.0
    pick = pick_under_area_budget(points, budget)
    lines += [
        "",
        f"every configuration is Pareto-optimal: {len(frontier)}/{len(points)}",
        f"under an area budget of {budget:.0f} gate-eq, pick {pick.config} "
        f"(area {pick.area:.0f}, pass latency {pick.latency:.0f} cycles)",
    ]

    # Validate the interface-derived frontier against real mining runs.
    job = random_job(np.random.default_rng(1), zero_bits=6)
    model = BitcoinMinerModel(int(pick.latency))
    result = model.mine(job, max_attempts=50_000)
    lines.append(
        f"validated by mining: found nonce {result.nonce} after "
        f"{result.attempts} attempts in {result.cycles:.0f} cycles "
        f"(interface predicts {mining_cycles(model.loop, result.attempts):.0f})"
    )
    report("E8_soc_bitcoin", "\n".join(lines))

    assert len(frontier) == len(points)  # the whole sweep is a real tradeoff
    assert result.found
    assert mining_cycles(model.loop, result.attempts) == result.cycles


def test_loop_equals_latency_all_configs(benchmark, report):
    def sweep_loops():
        return [
            (loop, BitcoinMinerModel(loop).pass_latency(), BitcoinMinerModel(loop).area())
            for loop in VALID_LOOPS
        ]

    rows = benchmark(sweep_loops)
    text = "\n".join(
        f"Loop={loop:2d}: pass latency {lat:2d} cycles, area {area:7.0f}"
        for loop, lat, area in rows
    )
    report("E8_miner_loop_law", "Fig. 1 (miner) — latency == Loop:\n" + text)
    assert all(lat == loop for loop, lat, _ in rows)
