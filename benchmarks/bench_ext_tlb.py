"""E10 (§5 extension) — composing interfaces with environment components.

The paper's first open question: accelerators interact with shared
hardware (TLB, interconnect), so an accurate interface must account for
that environment, ideally by modeling shared components "once and
reusing them across multiple accelerators".

We deploy Protoacc behind an IOMMU TLB (ground truth:
``ProtoaccSerializerModel(tlb_config=...)``) and compare three
predictors on the 32-format suite:

1. the plain Fig. 3 interface (TLB-oblivious);
2. the same interface composed with the TLB *component interface*
   (a per-translation expected cost, parameterized by miss ratio);
3. the component parameters taken from the measured miss ratio.
"""

from __future__ import annotations

from repro.accel.protoacc import (
    ProtoaccSerializerModel,
    instances,
    tput_protoacc_ser,
)
from repro.accel.protoacc.interfaces import tput_protoacc_ser_tlb
from repro.hw.stats import ErrorReport
from repro.hw.tlb import TlbConfig

MISS_RATIO_ESTIMATE = 0.85  # the platform vendor's quote for a 2 MiB arena


def test_tlb_composition(benchmark, report):
    model = ProtoaccSerializerModel(tlb_config=TlbConfig())
    msgs = list(instances(seed=3).values())
    actual = [model.measure_throughput(m, repeat=8) for m in msgs]

    naive = ErrorReport.of([tput_protoacc_ser(m) for m in msgs], actual)
    composed = ErrorReport.of(
        [tput_protoacc_ser_tlb(m, MISS_RATIO_ESTIMATE) for m in msgs], actual
    )
    benchmark(lambda: [tput_protoacc_ser_tlb(m, MISS_RATIO_ESTIMATE) for m in msgs])

    lines = [
        "§5 extension — Protoacc behind an IOMMU TLB (32 formats)",
        f"TLB-oblivious Fig. 3 interface : {naive.as_percent()}",
        f"composed with TLB component    : {composed.as_percent()} "
        f"(miss ratio {MISS_RATIO_ESTIMATE})",
        "",
        "Conclusion: ignoring the environment makes a good interface",
        "useless; a reusable component interface restores it — the",
        "composition the paper proposes in §5.",
    ]
    report("E10_tlb_composition", "\n".join(lines))

    assert naive.avg > 0.5
    assert composed.avg < 0.10
