"""E17 — SLO-guarded autoscaling with brownout degradation.

E15 fixed the fleet and E16 healed its interfaces; this experiment lets
the fleet *change shape*.  A diurnal storage-RPC trace (arrival rate
swinging 3.5× trough-to-peak) with a rolling fault storm on the base
Protoacc is served three ways:

* **autoscaled** — the pool starts at the two-device floor (Protoacc +
  CPU) under a :class:`~repro.scale.ScaleController`: a rolling
  :class:`~repro.scale.SloMonitor` checks the SLO live, the
  :class:`~repro.scale.DegradationLadder` climbs brownout rungs when it
  is violated, and the :class:`~repro.scale.Autoscaler` grows/shrinks
  the fleet — every scale-out candidate priced through its performance
  interface before it joins, every scale-in gated on interface-predicted
  remaining capacity;
* **fixed, equal average** — the same trace against a static fleet
  sized to the autoscaler's *time-averaged* device count;
* **planned** — an offline :class:`~repro.scale.CapacityPlanner` buys
  the cheapest fleet whose contract-bounded latency provably meets the
  SLO at the forecast peak rate, and that fleet serves the (storm-free)
  trace.

The claims under test:

1. the autoscaled pool meets the SLO end-to-end (offline verdict over
   the whole run), scaling out under the peak/storm and back in after —
   at least one scale-out, one scale-in, one brownout climb, and a full
   descent back to rung NORMAL;
2. a fixed fleet with the *same average hardware* violates the SLO on
   the same trace (adaptivity, not capacity, is what the controller
   buys) — asserted at full workload scale;
3. brownout degrades by policy, not by accident: every shed carries a
   named reason, sheds are confined to rungs >= SHED_LOW_PRIORITY, and
   the controller's intentional losses are excluded from its own
   control signal;
4. the capacity planner's contract-bounded latency is a sound and
   usefully tight upper envelope: at full workload scale the planned
   fleet's observed quantile never exceeds the bound and the bound is
   within 35% of observation (short traces are transient-dominated, so
   the steady-state comparison is gated on scale).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs import Obs
from repro.perf import EvalCache
from repro.runtime import OpenLoopServer
from repro.runtime.pool import DevicePool
from repro.runtime.serving import REASON_ADMISSION_REJECTED, REASON_PRIORITY_SHED
from repro.scale import (
    CapacityPlanner,
    Rung,
    SloMonitor,
    diurnal_arrivals,
    priority_assigner,
    run_scale_scenario,
    standard_templates,
)
from repro.workloads import STORAGE_MIX

from conftest import bench_seed, scale

N_REQUESTS = scale(1_000, minimum=400)
FULL_SCALE = N_REQUESTS >= 1_000
SEED = bench_seed(17)
BASE_GAP = 2_600.0
PEAK_FACTOR = 3.5


def test_slo_autoscaler(benchmark, report):
    auto = run_scale_scenario(count=N_REQUESTS, seed=SEED)
    slo = auto["slo"]
    verdict = auto["verdict"]
    controller = auto["controller"]
    scaler = controller.scaler
    ladder = controller.ladder

    # Claim 1: SLO met with a full scale-out/scale-in + brownout arc.
    assert verdict.ok, (
        f"autoscaled run violated the SLO: p95={verdict.latency:.0f}, "
        f"loss={verdict.loss_rate:.3f} vs {slo.describe()}"
    )
    outs = [e for e in scaler.events if e.action == "out"]
    ins = [e for e in scaler.events if e.action == "in"]
    assert outs, "autoscaler never scaled out under the peak/storm"
    assert ins, "autoscaler never scaled back in"
    assert ladder.climbed() >= 1, "ladder never climbed a brownout rung"
    assert ladder.descended() >= 1, "ladder never descended"
    assert ladder.rung is Rung.NORMAL, f"ladder stuck at {ladder.rung.label}"
    # Every scale-out was interface-priced before joining.
    assert all(e.predicted_service is not None for e in outs)
    assert all(e.candidate_scores for e in outs)
    # The pool never routed past a refusing breaker, storm included.
    assert auto["pool"].invariant_violations == 0

    # Claim 2: the equal-average fixed fleet fails the same trace.
    # avg_devices lands near 4 -> floor (protoacc + cpu) + 2 protoaccs.
    equal_extra = max(0, round(auto["avg_devices"]) - 2)
    fixed = run_scale_scenario(
        count=N_REQUESTS,
        seed=SEED,
        autoscale=False,
        brownout=False,
        fixed_extra_kinds=("protoacc",) * equal_extra,
    )
    if FULL_SCALE:
        assert not fixed["verdict"].ok, (
            "fixed fleet of equal average size met the SLO — the "
            "scenario no longer separates adaptive from static"
        )

    # Claim 3: every loss is named, sheds only happen on shed rungs,
    # and brownout's own output is not in its control signal.
    result = auto["result"]
    refusals = result.dropped + result.shed
    assert all(r.reason for r in refusals)
    intentional = [
        r
        for r in refusals
        if r.reason in (REASON_ADMISSION_REJECTED, REASON_PRIORITY_SHED)
    ]
    assert controller.intentional_losses == len(intentional)
    shed_spans = _rung_spans(ladder, Rung.SHED_LOW)
    for r in intentional:
        assert any(lo <= r.time <= hi for lo, hi in shed_spans), (
            f"intentional loss at t={r.time:.0f} outside any brownout span"
        )

    # Claim 4: plan for the forecast peak, serve the (storm-free) trace
    # on the planned fleet, and check the contract-bounded envelope.
    cache = EvalCache()
    obs = Obs.enabled(drift=False)
    templates = standard_templates(seed=SEED + 100, cache=cache, obs=obs)
    planner = CapacityPlanner(templates, reps=64, seed=SEED)
    peak_gap = BASE_GAP / PEAK_FACTOR
    plan, evaluated = planner.plan(STORAGE_MIX, peak_gap, slo, max_per_kind=4)
    assert plan is not None, "no feasible plan at the forecast peak"
    requests, arrivals = diurnal_arrivals(
        STORAGE_MIX,
        seed=SEED,
        count=N_REQUESTS,
        base_gap=BASE_GAP,
        peak_factor=PEAK_FACTOR,
        sharpness=1.0,
    )
    planned_pool = DevicePool(
        planner.build_fleet(plan), policy="interface_predicted", cache=cache, obs=obs
    )
    planned_server = OpenLoopServer(
        planned_pool,
        queue_limit=48,
        deadline=80_000.0,
        priority_fn=priority_assigner(requests, SEED),
        obs=obs,
    )
    planned_verdict = SloMonitor(slo).evaluate(planned_server.run(requests, arrivals))
    assert planned_verdict.ok, "planned fleet violated the SLO it was bought for"
    if FULL_SCALE:
        # The envelope combines per-request contract bounds with the
        # *steady-state* P-K wait; short traces are transient-dominated,
        # so both directions of the comparison need the full trace.
        assert planned_verdict.latency <= plan.bound_latency, (
            f"observed p95 {planned_verdict.latency:.0f} exceeds the contract "
            f"bound {plan.bound_latency:.0f} — the planner's envelope is unsound"
        )
        assert plan.bound_latency <= 1.35 * planned_verdict.latency, (
            f"bound {plan.bound_latency:.0f} vs observed "
            f"{planned_verdict.latency:.0f}: envelope too loose to plan with"
        )

    benchmark(lambda: run_scale_scenario(count=min(N_REQUESTS, 250), seed=SEED))

    fv = fixed["verdict"]
    snapshot = auto["snapshot"]
    lines = [
        "E17 — SLO-guarded autoscaling: diurnal trace + rolling fault storm",
        f"requests: {N_REQUESTS}   mean gap: {BASE_GAP:.0f} cycles "
        f"(peak {PEAK_FACTOR:.1f}x)   slo: {slo.describe()}",
        "",
        f"{'arm':24}  {'devices':>8}  {'p95':>8}  {'loss%':>6}  {'slo':>4}",
        f"{'autoscaled (floor=2)':24}  {auto['avg_devices']:8.2f}  "
        f"{verdict.latency:8.0f}  {verdict.loss_rate * 100:6.1f}  "
        f"{'MET' if verdict.ok else 'MISS':>4}",
        f"{'fixed, equal average':24}  {2 + equal_extra:8.2f}  "
        f"{fv.latency:8.0f}  {fv.loss_rate * 100:6.1f}  "
        f"{'MET' if fv.ok else 'MISS':>4}",
        f"{'planned (no storm)':24}  {float(plan.devices):8.2f}  "
        f"{planned_verdict.latency:8.0f}  {planned_verdict.loss_rate * 100:6.1f}  "
        f"{'MET' if planned_verdict.ok else 'MISS':>4}",
        "",
        f"scaling: {len(outs)} scale-out, {len(ins)} scale-in "
        f"(cooldown {scaler.policy.cooldown:.0f} cycles, "
        f"max {scaler.policy.max_devices} devices)",
        f"brownout: {ladder.climbed()} climbs / {ladder.descended()} descents, "
        f"final rung {ladder.rung.label}",
        f"losses: {result.losses} total, {controller.intentional_losses} "
        "intentional (brownout sheds, excluded from the control signal)",
        "scale-out pricing (interface-predicted service, cycles):",
    ]
    for e in outs[:4]:
        scores = ", ".join(
            f"{kind}={svc:.0f}" for kind, svc in sorted(e.candidate_scores.items())
        )
        lines.append(f"  t={e.at:>9.0f}  +{e.kind:13}  candidates: {scores}")
    if len(outs) > 4:
        lines.append(f"  ... and {len(outs) - 4} more")
    lines += [
        "",
        f"capacity plan @ peak gap {peak_gap:.0f}: {plan.describe()} "
        f"(cost {plan.cost:g}, util {plan.utilization:.2f}, "
        f"{len(evaluated)} compositions searched)",
        f"  contract-bounded p95 {plan.bound_latency:,.0f} vs observed "
        f"{planned_verdict.latency:,.0f} "
        f"(bound/observed {plan.bound_latency / planned_verdict.latency:.2f}x"
        f"{'' if FULL_SCALE else '; envelope asserted at full scale only'})",
        "",
        f"final pool snapshot: rung={snapshot['brownout']['rung_label']}, "
        f"devices={len(auto['pool'].devices)}, "
        f"hedging={'on' if auto['pool'].hedging_enabled else 'off'}",
    ]
    report("E17_slo_autoscaler", "\n".join(lines))

    # Regression-sentinel metrics (``benchtrack check``): virtual-cycle
    # and event-count quantities only — deterministic at a pinned
    # REPRO_BENCH_SCALE, unlike anything wall-clock.
    bench_json = {
        "bench": "autoscaler",
        "metrics": {
            "auto_p95_cycles": verdict.latency,
            "auto_loss_rate": verdict.loss_rate,
            "avg_devices": auto["avg_devices"],
            "scale_outs": float(len(outs)),
            "scale_ins": float(len(ins)),
            "brownout_climbs": float(ladder.climbed()),
            "brownout_descents": float(ladder.descended()),
            "planned_bound_latency": plan.bound_latency,
        },
    }
    out_path = Path(__file__).parent / "results" / "BENCH_autoscaler.json"
    out_path.write_text(json.dumps(bench_json, indent=2, sort_keys=True) + "\n")


def _rung_spans(ladder, min_rung) -> list[tuple[float, float]]:
    """Time spans during which the ladder sat at ``min_rung`` or above,
    from its transition log (open span closed at +inf)."""
    spans = []
    start = None
    for t in ladder.transitions:
        if t.to_rung >= min_rung and start is None:
            start = t.at
        elif t.to_rung < min_rung and start is not None:
            spans.append((start, t.at))
            start = None
    if start is not None:
        spans.append((start, float("inf")))
    return spans
