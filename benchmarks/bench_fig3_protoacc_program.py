"""E3 — Figure 3 + §3 text: Protoacc's Python-program interface.

Paper: "when evaluating Protoacc's throughput and latency interfaces
using 32 message formats from its test suite, we observed an average
(maximum) error of 5.9% (13.3%) for throughput, while the latency was
always within the predicted bounds."
"""

from __future__ import annotations

from repro.accel.protoacc import (
    PROGRAM,
    ProtoaccSerializerModel,
    bottleneck,
    instances,
    tput_protoacc_ser,
)
from repro.core import validate_interface

SEED = 7


def test_fig3_protoacc_program_interface(benchmark, report):
    model = ProtoaccSerializerModel()
    msgs = instances(seed=SEED)
    workload = list(msgs.values())

    result = validate_interface(
        PROGRAM,
        model,
        workload,
        check_latency=False,   # the interface ships bounds, not a point
        check_throughput=True,
        check_bounds=True,
        throughput_repeat=8,
    )
    benchmark(lambda: [tput_protoacc_ser(m) for m in workload])

    read_bound = sum(1 for m in workload if bottleneck(m) == "read")
    lines = [
        "Figure 3 / §3 — Protoacc Python-program interface vs ground truth",
        f"formats: {result.items} (the reconstructed 32-format suite, seed {SEED})",
        f"throughput error: {result.throughput.as_percent()}   (paper: avg 5.9%, max 13.3%)",
        "latency bounds:   "
        + (
            "all measurements within [min, max]   (paper: always within)"
            if result.bounds.all_within
            else f"{result.bounds.violations} VIOLATIONS"
        ),
        f"bottleneck split: {read_bound} read-bound / {result.items - read_bound} write-bound formats",
    ]
    report("E3_fig3_protoacc_program", "\n".join(lines))

    assert result.bounds.all_within
    assert result.throughput.avg < 0.08
    assert result.throughput.max < 0.15
