"""E9 — §5 strawman: record/replay end-to-end offload estimation.

The paper sketches how executable interfaces answer "what happens to my
*application* if I offload?": record the accelerator API's request/
response pairs under a software implementation, then replay with the
interface charging predicted latency.  We run the strawman for an RPC
server that serializes a stream of messages, and check its prediction
against actually running the application on the ground-truth model.
"""

from __future__ import annotations


from repro.accel.cpu import CpuSerializerModel, offload_overhead
from repro.accel.protoacc import PROGRAM, ProtoaccSerializerModel
from repro.core import OffloadEstimator
from repro.workloads import ENTERPRISE_MIX

N_REQUESTS = 200


def build_app(messages):
    """An 'RPC server' handling a request stream: per request some host
    work (checksum/dispatch) plus one serialization call."""

    def app(device):
        digests = []
        for msg in messages:
            payload = device.call(msg)
            device.host_work(120 + 0.05 * len(payload))
            digests.append(len(payload))
        return digests

    return app


def test_offload_strawman(benchmark, report):
    messages = ENTERPRISE_MIX.sample(seed=13, count=N_REQUESTS)
    cpu = CpuSerializerModel()
    app = build_app(messages)

    estimator = OffloadEstimator(
        software_fn=lambda m: m.encode(),
        software_latency=cpu.measure_latency,
        interface=PROGRAM,  # Protoacc's shipped program interface
        invocation_overhead=offload_overhead,
    )
    estimate = benchmark(lambda: estimator.estimate(app))

    # Ground truth: run the same app charging the *model's* latency.
    model = ProtoaccSerializerModel()
    truth = OffloadEstimator(
        software_fn=lambda m: m.encode(),
        software_latency=cpu.measure_latency,
        interface=_ModelAsInterface(model),
        invocation_overhead=offload_overhead,
    ).estimate(app)

    err = abs(estimate.offloaded_cycles - truth.offloaded_cycles) / truth.offloaded_cycles
    lines = [
        "§5 strawman — end-to-end offload estimation (RPC server, enterprise mix)",
        f"requests: {estimate.calls}",
        f"software run:            {estimate.software_cycles:12.0f} cycles",
        f"interface-predicted run: {estimate.offloaded_cycles:12.0f} cycles "
        f"(speedup {estimate.speedup:.2f}x)",
        f"model ground-truth run:  {truth.offloaded_cycles:12.0f} cycles "
        f"(speedup {truth.speedup:.2f}x)",
        f"end-to-end prediction error: {err * 100:.2f}%",
    ]
    report("E9_offload_strawman", "\n".join(lines))

    assert estimate.calls == N_REQUESTS
    assert err < 0.10
    # Offloading an enterprise (small-object) mix is NOT a clear win —
    # exactly the insight the estimator is for.
    assert estimate.speedup < 2.0


class _ModelAsInterface:
    """Adapter: treat the ground-truth model as a (perfect) interface."""

    accelerator = "protoacc-ser"
    representation = "model"

    def __init__(self, model):
        self._model = model

    def latency(self, item):
        return self._model.measure_latency(item)
