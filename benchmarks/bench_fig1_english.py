"""E1 — Figure 1: natural-language interfaces, rendered and validated.

Regenerates the paper's three English interfaces verbatim-in-structure
and machine-checks each statement against the ground-truth model (the
part the paper does by construction: the sentences must be *true*).
"""

from __future__ import annotations

import numpy as np

from repro.accel import bitcoin, jpeg, protoacc
from repro.accel.bitcoin import VALID_LOOPS, BitcoinMinerModel, area_miner
from repro.accel.jpeg import JpegDecoderModel, JpegImage
from repro.accel.protoacc import (
    Field,
    FieldKind,
    Message,
    ProtoaccSerializerModel,
)


def make_image(width, height, bytes_per_block):
    n = (width // 8) * (height // 8)
    return JpegImage(
        width=width,
        height=height,
        coded_bytes=np.full(n, bytes_per_block, dtype=np.int64),
        nnz=np.full(n, 10, dtype=np.int64),
    )


def nested(depth):
    rng = np.random.default_rng(0)
    msg = Message(
        tuple(
            Field(i + 1, FieldKind.VARINT, int(v))
            for i, v in enumerate(rng.integers(0, 1 << 40, size=4))
        )
    )
    for _ in range(depth):
        msg = Message((Field(1, FieldKind.MESSAGE, msg),))
    return msg


def checked_statements() -> list[tuple[str, str, bool]]:
    rows: list[tuple[str, str, bool]] = []

    # JPEG: latency inversely proportional to compression rate.
    model = JpegDecoderModel()
    pairs = [
        (img.compress_rate, model.measure_latency(img))
        for bpb in (60, 80, 100, 120)
        for img in [make_image(64, 64, bytes_per_block=bpb)]
    ]
    stmt = jpeg.ENGLISH.statements[0]
    rows.append(("jpeg-decoder", stmt.render(), stmt.check(pairs, tolerance=0.2)))

    # Miner: latency == Loop; area inversely proportional to Loop.
    lat_pairs = [
        (loop, float(BitcoinMinerModel(loop).pass_latency())) for loop in VALID_LOOPS
    ]
    area_pairs = [(loop, area_miner(loop)) for loop in VALID_LOOPS]
    s0, s1 = bitcoin.ENGLISH.statements
    rows.append(("bitcoin-miner", s0.render(), s0.check(lat_pairs)))
    rows.append(("bitcoin-miner", s1.render(), s1.check(area_pairs, tolerance=0.15)))

    # Protoacc: throughput decreases with nesting depth.
    pa = ProtoaccSerializerModel()
    tp_pairs = [
        (float(d), pa.measure_throughput(nested(d), repeat=6)) for d in (0, 1, 2, 4, 6, 8)
    ]
    stmt = protoacc.ENGLISH.statements[0]
    rows.append(("protoacc-ser", stmt.render(), stmt.check(tp_pairs)))
    return rows


def test_fig1_english_interfaces(benchmark, report):
    rows = benchmark(checked_statements)
    lines = ["Figure 1 — English interfaces (statement | validated against model)"]
    for accel, text, ok in rows:
        lines.append(f"[{'OK' if ok else 'FAIL'}] {accel}: {text}")
    report("E1_fig1_english", "\n".join(lines))
    assert all(ok for _, _, ok in rows)
