"""E12 (ablation) — which details must a Petri-net interface include?

The paper says its VTA errors "arise due to us deliberately cutting
corners".  This benchmark maps the corner-cutting landscape: starting
from the shipped nets, remove one modeling ingredient at a time and
measure the accuracy cost.  This is the evidence behind DESIGN.md §6's
error-source inventory, and the guidance an interface author needs when
deciding what to abstract.
"""

from __future__ import annotations


from repro.accel.jpeg import (
    JpegDecoderModel,
    JpegImage,
    random_images,
)
from repro.accel.jpeg.interfaces import EOI_FLUSH, HEADER_PARSE, JPEG_PNET
from repro.accel.vta import (
    VtaConfig,
    VtaModel,
    VtaPetriInterface,
    build_vta_net,
    random_programs,
    tokenize_program,
)
from repro.core import Injection, PetriNetInterface
from repro.hw import DramConfig
from repro.hw.stats import ErrorReport

# ----------------------------------------------------------------------
# JPEG ablations: variant .pnet documents
# ----------------------------------------------------------------------
JPEG_NO_RESTART = JPEG_PNET.replace(
    ' + (12 if (tok["i"] + 1) % 64 == 0 else 0)', ""
)
JPEG_NO_ALIGN = JPEG_PNET.replace(" + 0.875", "")
#: Aggregate variant: per-block delays use the image's *mean* coded
#: size instead of each block's actual size (what an interface without
#: colored tokens would do).
JPEG_AGGREGATE = JPEG_PNET.replace('tok["bytes"]', 'tok["mean_bytes"]').replace(
    'tok["nnz"]', 'tok["mean_nnz"]'
)


def tokenize_aggregate(img: JpegImage):
    n = img.n_blocks
    mean_bytes = float(img.coded_bytes.mean())
    mean_nnz = int(img.nnz.mean())
    return [
        Injection(
            "in",
            payload={
                "i": i,
                "mean_bytes": mean_bytes,
                "mean_nnz": mean_nnz,
                "wr": (i + 1) % 4 == 0 or i == n - 1,
            },
            at=HEADER_PARSE,
        )
        for i in range(n)
    ]


def jpeg_variant(pnet_text, tokenize=None):
    from repro.accel.jpeg.interfaces import tokenize_image
    from repro.petri import parse

    return PetriNetInterface(
        "jpeg-decoder",
        net_factory=lambda: parse(pnet_text),
        tokenize=tokenize or tokenize_image,
        epilogue=EOI_FLUSH,
    )


def test_ablation_jpeg(benchmark, report):
    model = JpegDecoderModel()
    images = random_images(41, 40)
    actual = [model.measure_latency(img) for img in images]

    variants = {
        "full interface": jpeg_variant(JPEG_PNET),
        "- restart markers": jpeg_variant(JPEG_NO_RESTART),
        "- alignment expectation": jpeg_variant(JPEG_NO_ALIGN),
        "- per-block payloads (means only)": jpeg_variant(
            JPEG_AGGREGATE, tokenize_aggregate
        ),
    }
    rows = {}
    for name, iface in variants.items():
        rows[name] = ErrorReport.of([iface.latency(i) for i in images], actual)
    benchmark(lambda: variants["full interface"].latency(images[0]))

    lines = ["Ablation — JPEG Petri net: remove one ingredient at a time", ""]
    for name, rep in rows.items():
        lines.append(f"{name:<36} latency error {rep.as_percent()}")
    report("E12_ablation_jpeg", "\n".join(lines))

    full = rows["full interface"].avg
    assert rows["- restart markers"].avg >= full
    assert rows["- per-block payloads (means only)"].avg >= full


def test_ablation_vta(benchmark, report):
    model = VtaModel()
    progs = random_programs(42, 25, max_dim=6)
    actual = [model.measure_latency(p) for p in progs]

    def variant(net_factory):
        return PetriNetInterface(
            "vta",
            net_factory=net_factory,
            tokenize=tokenize_program,
            expected_completions=len,
        )

    no_refresh_cfg = VtaConfig(dram=DramConfig(refresh_duration=0))
    variants = {
        "full interface": VtaPetriInterface(),
        "- shared-port mutex": variant(lambda: build_vta_net(model_port=False)),
        "- refresh duty factor": variant(lambda: build_vta_net(no_refresh_cfg)),
    }
    rows = {
        name: ErrorReport.of([iface.latency(p) for p in progs], actual)
        for name, iface in variants.items()
    }
    benchmark(lambda: variants["full interface"].latency(progs[0]))

    lines = ["Ablation — VTA Petri net: remove one ingredient at a time", ""]
    for name, rep in rows.items():
        lines.append(f"{name:<26} latency error {rep.as_percent()}")
    lines += [
        "",
        "Findings: the structural port mutex is the load-bearing detail",
        "(~8x error without it).  The refresh duty factor turns out to be",
        "an over-correction — refresh stalls mostly hide behind port",
        "queueing the mutex already captures — so removing it *improves*",
        "average error; the shipped interface keeps it as a conservative",
        "corner, exactly the kind the paper says extra effort removes.",
    ]
    report("E12_ablation_vta", "\n".join(lines))

    full = rows["full interface"].avg
    assert rows["- shared-port mutex"].avg > 3 * full  # the big one
    # The duty factor is a (mild, conservative) over-correction: see note.
    assert rows["- refresh duty factor"].avg < rows["- shared-port mutex"].avg
