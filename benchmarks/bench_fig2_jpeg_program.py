"""E2 — Figure 2 + §3 text: the JPEG decoder's Python-program interface.

Paper: "We evaluated JPEG's latency and throughput interfaces using
1500 random images and observed an average (maximum) prediction error
of 2.1% (10.3%) and 2.2% (11.2%) respectively."

This benchmark reruns that evaluation against our ground-truth model
and reports the same four numbers, plus the split by regime (input- vs
output-bound) that explains where the error lives.
"""

from __future__ import annotations

from conftest import scale

from repro.accel.jpeg import (
    JpegDecoderModel,
    PROGRAM,
    latency_jpeg_decode,
    random_images,
)
from repro.core import validate_interface

N_IMAGES = 1500
SEED = 2023


def evaluate():
    model = JpegDecoderModel()
    images = random_images(SEED, scale(N_IMAGES))
    return validate_interface(
        PROGRAM, model, images, check_latency=True, check_throughput=True,
        throughput_repeat=4,
    ), images


def test_fig2_jpeg_program_interface(benchmark, report):
    (result, images) = evaluate()
    # The benchmarked kernel: evaluating the interface itself (the thing
    # a system designer runs thousands of times).
    benchmark(lambda: [latency_jpeg_decode(img) for img in images])

    lines = [
        "Figure 2 / §3 — JPEG Python-program interface vs ground truth",
        f"images: {result.items} random (seed {SEED})",
        f"latency    error: {result.latency.as_percent()}   (paper: avg 2.1%, max 10.3%)",
        f"throughput error: {result.throughput.as_percent()}   (paper: avg 2.2%, max 11.2%)",
    ]
    input_bound = [i for i in images if i.compress_rate < 3.9]
    lines.append(
        f"regime split: {len(input_bound)} input-bound / "
        f"{result.items - len(input_bound)} output-bound images"
    )
    report("E2_fig2_jpeg_program", "\n".join(lines))

    assert result.latency.avg < 0.05
    assert result.latency.max < 0.20
    assert result.throughput.avg < 0.05
