"""E15 — open-loop serving on a heterogeneous pool under fault storms.

E14 showed one resilient device degrading to its own CPU.  This
experiment serves the enterprise RPC mix *open-loop* (Poisson arrivals)
through a :class:`~repro.runtime.pool.DevicePool` of three unequal
devices — Protoacc, Optimus Prime, and a Xeon software server — and
sweeps arrival rate × fault regime × routing policy:

* **round_robin** — spreads blindly; a tripped or slow device hurts it.
* **least_outstanding** — join-the-shortest-queue; sees load, not
  heterogeneity.
* **interface_predicted** — prices every admitting device with its
  performance interface (the Petri-net IR on the compiled engine, one
  shared EvalCache) and picks the cheapest predicted completion.

The claims under test:

1. with no faults, interface-predicted routing beats round-robin on
   p99 purely by knowing which hardware serves which message fastest
   (the paper's thesis applied to placement);
2. a fault storm severe enough to trip Protoacc's breaker does not
   take the pool down — requests hedge to healthy devices, the
   admission queue sheds what cannot make its deadline, and the
   drop-rate/latency tradeoff degrades smoothly as load rises;
3. the routing invariant holds everywhere: zero dispatches to a device
   whose breaker refused admission (CI asserts this via the smoke run);
4. the storm's incident tape, persisted to gzipped JSONL, replays to
   the identical divergence-free estimate in a *fresh process*.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

from repro.obs import Obs, attribute, score_mispredictions
from repro.perf import EvalCache
from repro.runtime import (
    BreakerState,
    OpenLoopServer,
    protoacc_message_codec,
    replay_saved_tape,
    save_tape,
)
from repro.runtime.pool import ROUTING_POLICIES, rpc_pool
from repro.workloads import ENTERPRISE_MIX

from conftest import bench_seed, scale

N_REQUESTS = scale(400, minimum=120)
#: Mean inter-arrival gaps (cycles): light load → past the knee.
GAPS = (2_000.0, 600.0, 250.0)
QUEUE_LIMIT = 48
DEADLINE = 60_000.0
SEED = bench_seed(17)


def run_serving(policy, faults, msgs, arrivals, cache=None, obs=None):
    pool = rpc_pool(policy, faults=faults, seed=SEED, cache=cache, obs=obs)
    server = OpenLoopServer(pool, queue_limit=QUEUE_LIMIT, deadline=DEADLINE)
    return pool, server.run(msgs, arrivals)


def tripped(pool) -> bool:
    breaker = pool.device("protoacc").device.breaker
    return any(t.state is BreakerState.OPEN for t in breaker.transitions)


def test_open_loop_pool(benchmark, report, tmp_path):
    traces = {
        gap: ENTERPRISE_MIX.sample_open(seed=SEED, count=N_REQUESTS, mean_gap=gap)
        for gap in GAPS
    }
    cache = EvalCache()  # shared by every pool in the sweep
    runs = {}
    for gap in GAPS:
        msgs, arrivals = traces[gap]
        for faults in ("none", "storm"):
            for policy in ROUTING_POLICIES:
                pool, res = run_serving(policy, faults, msgs, arrivals, cache=cache)
                # Claim 3: the router never reached past a breaker.
                assert pool.invariant_violations == 0, (gap, faults, policy)
                runs[(gap, faults, policy)] = (pool, res)

    benchmark(
        lambda: run_serving("interface_predicted", "storm", *traces[GAPS[-1]])
    )

    # Claim 1: interface-predicted routing wins the no-fault tail at
    # every arrival rate, on heterogeneity knowledge alone.
    for gap in GAPS:
        ip = runs[(gap, "none", "interface_predicted")][1].latency_summary()
        rr = runs[(gap, "none", "round_robin")][1].latency_summary()
        assert ip.p99 < rr.p99, f"gap={gap}: {ip.p99} !< {rr.p99}"

    # Claim 2: the storm trips Protoacc wherever traffic actually
    # reaches it (round-robin feeds it 1/3 of the mix by construction;
    # interface_predicted may simply price it out), yet the pool keeps
    # answering, and pushing load up does not *reduce* the drop rate.
    for gap in GAPS:
        assert tripped(runs[(gap, "storm", "round_robin")][0]), gap
    for policy in ROUTING_POLICIES:
        for gap in GAPS:
            pool, res = runs[(gap, "storm", policy)]
            assert res.answered, f"pool stopped serving ({policy}, {gap})"
        light = runs[(GAPS[0], "storm", policy)][1]
        heavy = runs[(GAPS[-1], "storm", policy)][1]
        # Light load survives comfortably; overload may shed hard but
        # never *less* than light load does.
        assert len(light.answered) > 0.5 * light.offered, policy
        assert heavy.drop_rate >= light.drop_rate, policy

    # Claim 4: persist the worst storm's Protoacc incident tape and
    # replay it both here and in a fresh interpreter.
    incident_pool = runs[(GAPS[-1], "storm", "round_robin")][0]
    records = incident_pool.device("protoacc").device.records
    assert records and any(r.faults for r in records)
    tape_path = tmp_path / "protoacc_incident.jsonl.gz"
    save_tape(records, tape_path, codec=protoacc_message_codec())
    here = replay_saved_tape(tape_path)
    fresh = subprocess.run(
        [sys.executable, "-m", "repro.runtime.tape", "replay", str(tape_path)],
        capture_output=True,
        text=True,
        check=True,
        env={"PYTHONPATH": str(Path(__file__).resolve().parents[1] / "src")},
    )
    assert json.loads(fresh.stdout) == here

    # Claim 5 (observability): the same storm, fully observed — one Obs
    # bundle yields a valid Chrome trace with spans from all three
    # layers (petri, hw, runtime), a drift-observatory verdict, and an
    # exact latency breakdown, without perturbing the run.
    obs = Obs.enabled()
    obs_pool, obs_res = run_serving("round_robin", "storm", *traces[GAPS[-1]], obs=obs)
    plain_res = runs[(GAPS[-1], "storm", "round_robin")][1]
    assert [r.completed for r in obs_res.served] == [
        r.completed for r in plain_res.served
    ], "tracing perturbed the serving run"
    trace_path = tmp_path / "e15_storm.trace.json"
    obs.tracer.export_chrome_trace(trace_path)
    events = json.loads(trace_path.read_text())["traceEvents"]
    cats = {e.get("cat", "") for e in events}
    for layer in ("petri.", "hw.", "runtime."):
        assert any(c.startswith(layer) for c in cats), (layer, sorted(cats))
    for b in obs_res.breakdowns:
        assert abs(b.total - b.end_to_end) < 1e-6

    # Claim 6 (causal attribution): every served request of the storm
    # run reconstructs into per-stage segments that fold left-to-right
    # to *bit-exactly* its end-to-end cycles — the attribution
    # invariant, float ==, no tolerance.
    attrs = attribute(obs_res, obs.tracer, obs_pool)
    assert len(attrs) == len(obs_res.served)
    for a in attrs:
        assert a.total == a.end_to_end, (a.seq, a.total, a.end_to_end)
    comparisons = score_mispredictions(attrs, obs_pool, obs.observatory)
    assert comparisons, "no accel-path request could be scored"

    lines = [
        "E15 — open-loop serving: heterogeneous pool under fault storms",
        f"requests/run: {N_REQUESTS}   queue limit: {QUEUE_LIMIT}   "
        f"deadline: {DEADLINE:.0f} cycles   devices: protoacc, optimus-prime, cpu",
        "",
        f"{'mean gap':>8}  {'faults':6}  {'policy':20}  {'drop%':>6}  "
        f"{'p50':>7}  {'p99':>8}  {'hedges':>6}  {'protoacc tripped':>16}",
    ]
    for gap in GAPS:
        for faults in ("none", "storm"):
            for policy in ROUTING_POLICIES:
                pool, res = runs[(gap, faults, policy)]
                s = res.latency_summary()
                lines.append(
                    f"{gap:8.0f}  {faults:6}  {policy:20}  "
                    f"{res.drop_rate * 100:6.1f}  {s.p50:7.0f}  {s.p99:8.0f}  "
                    f"{res.hedge_count():6d}  {str(tripped(pool)):>16}"
                )
        lines.append("")
    rr = runs[(GAPS[0], "none", "round_robin")][1].latency_summary()
    ip = runs[(GAPS[0], "none", "interface_predicted")][1].latency_summary()
    lines += [
        f"no-fault p99, light load: round_robin={rr.p99:.0f} "
        f"interface_predicted={ip.p99:.0f} "
        f"({rr.p99 / ip.p99:.2f}x — routing by performance interface alone)",
        f"incident tape: {len(records)} protoacc records, "
        f"faulted_cycles={here['faulted_cycles']:.0f}, "
        f"availability_overhead={here['availability_overhead']:.2f}x "
        "(identical in-process and fresh-process replay)",
        f"shared eval cache across the sweep: {cache.stats.hits} hits / "
        f"{cache.stats.misses} misses "
        f"({cache.stats.hit_rate * 100:.1f}% hit rate, "
        f"{cache.stats.uncacheable} uncacheable)",
        "",
        "obs — the worst storm under full observation (round_robin, "
        f"gap={GAPS[-1]:.0f}):",
        f"  chrome trace: {len(events)} events across "
        f"{len([c for c in cats if c])} categories "
        f"(petri + hw + runtime layers all present)",
    ]
    waits = [b.queue_wait for b in obs_res.breakdowns]
    services = [b.service for b in obs_res.breakdowns]
    retries = [b.retry for b in obs_res.breakdowns]
    n = max(1, len(obs_res.breakdowns))
    lines.append(
        f"  latency breakdown (means): queue_wait={sum(waits) / n:.0f}  "
        f"device_queue={sum(b.device_queue for b in obs_res.breakdowns) / n:.0f}  "
        f"service={sum(services) / n:.0f}  retry={sum(retries) / n:.0f} cycles "
        "(components sum exactly to end-to-end)"
    )
    lines += ["  " + line for line in obs.observatory.report().splitlines()]
    n_attr = max(1, len(attrs))
    stage_means = {
        stage: sum(a.stages().get(stage, 0.0) for a in attrs) / n_attr
        for stage in ("queue", "retry", "memory", "overhead", "compute")
    }
    lines += [
        "",
        f"  causal attribution: {len(attrs)} requests, segments sum "
        "bit-exactly to end-to-end on every one",
        "  stage means: "
        + "  ".join(f"{k}={v:.0f}" for k, v in stage_means.items())
        + " cycles"
        + f" ({len(comparisons)} accel requests scored against "
        "predict_decomposition)",
    ]
    report("E15_open_loop_pool", "\n".join(lines))

    # Machine-readable metrics for the regression sentinel
    # (``benchtrack check``).  Virtual-cycle quantities only: they are
    # bit-deterministic at a pinned REPRO_BENCH_SCALE, so a tolerance
    # band around them is a sound CI gate (wall-clock never is).
    light_ip = runs[(GAPS[0], "none", "interface_predicted")][1]
    light_rr = runs[(GAPS[0], "none", "round_robin")][1]
    heavy_ip = runs[(GAPS[-1], "storm", "interface_predicted")][1]
    bench_json = {
        "bench": "serving",
        "metrics": {
            "nofault_ip_p50_light": light_ip.latency_summary().p50,
            "nofault_ip_p99_light": light_ip.latency_summary().p99,
            "nofault_rr_p99_light": light_rr.latency_summary().p99,
            "storm_ip_p99_heavy": heavy_ip.latency_summary().p99,
            "storm_ip_drop_rate_heavy": heavy_ip.drop_rate,
            "storm_attributed_requests": len(attrs),
            "storm_attribution_memory_mean": stage_means["memory"],
        },
    }
    out = Path(__file__).parent / "results" / "BENCH_serving.json"
    out.write_text(json.dumps(bench_json, indent=2, sort_keys=True) + "\n")
