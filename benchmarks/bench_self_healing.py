"""E16 — self-healing interfaces: drift-triggered refit, shadow
validation, and hot-swap under a mid-serve hardware regime shift.

E15 established the serving fleet and PR 5 gave it a drift observatory;
this experiment closes the loop.  The storage RPC mix is served
open-loop through the heterogeneous pool under ``interface_predicted``
routing (essentially all large messages price onto Protoacc).  Thirty
percent of the way through the trace, Protoacc's DRAM gets 5× slower —
the ground-truth model changes, the vendor-shipped Petri-net interface
does not, and every prediction for the device goes stale at once.  The
:class:`~repro.heal.HealingManager` attached to the pool must then,
with no operator and no restart:

1. hear the per-(device, size-class) drift verdicts from the
   observatory as the error spikes past the detector threshold;
2. refit a candidate interface from the sliding window of live
   ``CallRecord`` tape (:func:`repro.extract.fit_from_records`),
   gated on held-out error;
3. shadow-validate the candidate against live traffic (both
   interfaces price every request; no routing impact);
4. hot-swap it into ``interface_predicted`` pricing and survive
   probation.

The claims under test:

1. before the shift the shipped interface is faithful (sub-percent
   mean error) and the observatory is quiet;
2. the full detect → refit → shadow → hot-swap → recover cycle
   completes within the same serve — the final mean prediction error
   for the affected key is back under the drift threshold and the
   detector no longer reports drift;
3. the hot-swap is invisible to serving state: the breaker and device
   objects keep their identity, the swap itself causes no breaker
   transitions, and the device tape is one continuous record across
   the shift (no restart, nothing reset);
4. the healed pricing is live in the router: the promoted candidate —
   not the stale base interface — prices the target class.
"""

from __future__ import annotations

from repro.heal import HealPhase, run_heal_scenario

from conftest import bench_seed, scale

#: 320 requests is the floor for a complete cycle (detect + refit +
#: 10-sample shadow + 12-sample probation all need post-shift traffic).
N_REQUESTS = scale(420, minimum=320)
SLOWDOWN = 5.0
SHIFT_FRACTION = 0.3
SEED = bench_seed(7)


def test_self_healing(benchmark, report):
    result = run_heal_scenario(
        requests=N_REQUESTS,
        slowdown=SLOWDOWN,
        shift_fraction=SHIFT_FRACTION,
        seed=SEED,
    )
    device, rpc_class = result.target_key
    healer = result.healer
    state = healer.state(device, rpc_class)
    detector = result.obs.observatory.detector(device, rpc_class)
    threshold = detector.threshold

    # Claim 1: faithful before the shift, and quiet.
    pre_error = result.mean_error(device, rpc_class, until=result.shift_at)
    assert pre_error < 0.1, f"shipped interface already off: {pre_error:.1%}"
    pre_events = [e for e in healer.events if e.at < result.shift_at]
    assert not pre_events, pre_events

    # Claim 2: the full cycle ran and recovered the error.
    swap = result.swap_at(device, rpc_class)
    assert swap is not None, "no hot-swap happened"
    assert state.refits >= 1 and state.promotions == 1
    assert state.rollbacks == 0
    spike = result.mean_error(device, rpc_class, since=result.shift_at, until=swap)
    post = result.mean_error(device, rpc_class, since=swap)
    assert spike > post, (spike, post)
    assert post < threshold, f"post-swap error {post:.1%} >= {threshold:.1%}"
    assert (device, rpc_class) not in result.obs.observatory.drifting_keys()
    phases = [e.phase_to for e in healer.events]
    assert phases[:2] == [HealPhase.SHADOWING, HealPhase.PROBATION]

    # Claim 3: no restart, nothing reset.  The breaker kept its
    # identity and the swap caused no transitions; the tape is one
    # continuous monotonically-indexed record across the shift.
    pooled = result.pool.device(device)
    breaker = pooled.device.breaker
    assert breaker.transitions == [], breaker.transitions
    records = pooled.device.records
    indices = [r.index for r in records]
    assert indices == sorted(indices) and len(set(indices)) == len(indices)
    # ...and it saw traffic on both sides of the shift (one tape, not two).
    assert result.errors(device, rpc_class, until=result.shift_at)
    assert result.errors(device, rpc_class, since=result.shift_at)

    # Claim 4: the router now prices the class through the candidate.
    routed = healer.routed_interface(device)
    assert pooled.price_interface is routed
    assert pooled.device.interface is routed
    assert rpc_class in routed.overrides
    assert routed.interface_for(rpc_class) is not routed.base

    benchmark(lambda: run_heal_scenario(requests=min(N_REQUESTS, 320)))

    # ------------------------------------------------------------------
    served_before = result.served["before"]
    served_after = result.served["after"]
    snap = result.pool.snapshot()["healing"]
    lines = [
        "E16 — self-healing interfaces: refit, shadow, hot-swap (no restart)",
        f"requests: {N_REQUESTS} ({served_before.offered} before shift, "
        f"{served_after.offered} after)   mix: storage   "
        f"routing: interface_predicted",
        f"injection: protoacc DRAM {SLOWDOWN:.0f}x slower at "
        f"t={result.shift_at:.0f} (ground truth only; interface left stale)",
        "",
        f"target key: {device}/{rpc_class}   drift threshold: {threshold:.0%}",
        "",
        "prediction error arc (mean symmetric error):",
        f"  before shift        {pre_error:8.1%}",
        f"  shift -> hot-swap   {spike:8.1%}   (detect + refit + shadow)",
        f"  after hot-swap      {post:8.1%}   (recovered, under threshold)",
        "",
        "lifecycle events:",
    ]
    lines += [f"  {e}" for e in healer.events]
    lines += [
        "",
        f"hot-swap safety: breaker transitions={len(breaker.transitions)}, "
        f"tape records={len(records)} (continuous), "
        f"server restarts=0",
        f"healing snapshot: promotions={snap['promotions']}, "
        f"rollbacks={snap['rollbacks']}, "
        f"managed={', '.join(snap['managed_devices'])}",
        "",
        "final lifecycle table:",
    ]
    lines += ["  " + line for line in healer.report().splitlines()]
    report("E16_self_healing", "\n".join(lines))
