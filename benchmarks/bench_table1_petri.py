"""E4 + E5 — Table 1: Petri-net interface accuracy and complexity.

Paper Table 1:

    Accelerator | latency err avg (max) | tput err avg (max) | complexity
    JPEG        | 0.09% (0.50%)         | 0.09% (0.51%)      | 2.5%
    VTA         | 1.49% (9.3%)          | 1.44% (8.55%)      | 2.6%

measured on 50 random images (JPEG) and 1500 random code sequences
(VTA).  We reproduce both rows against our ground-truth models, plus
the in-text claim that the JPEG net is ~20x more accurate than the
Fig. 2 Python program.

Complexity here compares our shipped interface artifacts against our
Python ground-truth models; Python implementations are far terser than
the paper's Verilog, so the ratio is larger but the conclusion (the
interface is an order of magnitude smaller than the implementation)
is preserved — see EXPERIMENTS.md.
"""

from __future__ import annotations

import inspect

from conftest import scale

import repro.hw.kernel
import repro.hw.memory
import repro.hw.proc
from repro.accel import jpeg as jpeg_pkg
from repro.accel import vta as vta_pkg
from repro.accel.jpeg import JPEG_PNET, JpegDecoderModel, random_images
from repro.accel.vta import VtaModel, random_programs
from repro.core import interface_complexity, validate_interface
from repro.core.validation import accuracy_gain
from repro.perf import EvalCache

JPEG_N = 50
VTA_N_LATENCY = 1500
VTA_N_TPUT = 300


def jpeg_row():
    model = JpegDecoderModel()
    iface = jpeg_pkg.petri_interface()
    images = random_images(11, scale(JPEG_N))
    petri = validate_interface(
        iface, model, images, throughput_repeat=4, cache=EvalCache()
    )
    program = validate_interface(jpeg_pkg.PROGRAM, model, images, throughput_repeat=4)
    complexity = interface_complexity(
        JPEG_PNET, [jpeg_pkg.model, repro.hw.memory]
    )
    return petri, program, complexity


def vta_row():
    model = VtaModel()
    iface = vta_pkg.petri_interface()
    cache = EvalCache()
    lat_progs = random_programs(12, scale(VTA_N_LATENCY), max_dim=6)
    lat = validate_interface(
        iface, model, lat_progs, check_throughput=False, cache=cache
    )
    tput_progs = random_programs(13, scale(VTA_N_TPUT), max_dim=5)
    tput = validate_interface(
        iface, model, tput_progs, check_latency=False, throughput_repeat=6, cache=cache
    )
    # The shipped artifact: the net builder plus its delay formulas.
    artifact = "\n".join(
        inspect.getsource(fn)
        for fn in (
            vta_pkg.build_vta_net,
            vta_pkg.tokenize_program,
            vta_pkg.service_cycles,
            vta_pkg.stream_estimate,
        )
    )
    complexity = interface_complexity(
        artifact,
        [vta_pkg.model, repro.hw.memory, repro.hw.proc, repro.hw.kernel],
    )
    return lat, tput, complexity


def test_table1_jpeg_row(benchmark, report):
    petri, program, complexity = jpeg_row()
    images = random_images(11, 5)
    iface = jpeg_pkg.petri_interface()
    benchmark(lambda: [iface.latency(img) for img in images])

    gain = accuracy_gain(petri, program, "latency")
    lines = [
        "Table 1, row JPEG — Petri-net interface",
        f"images: {petri.items} random",
        f"latency    error: {petri.latency.as_percent()}   (paper: 0.09% / 0.50%)",
        f"throughput error: {petri.throughput.as_percent()}   (paper: 0.09% / 0.51%)",
        f"complexity: {complexity.as_percent()} of implementation "
        f"({complexity.interface_loc}/{complexity.implementation_loc} LoC; paper: 2.5% of RTL)",
        f"accuracy vs Python program: {gain:.1f}x lower avg latency error (paper: ~20x)",
        f"evaluation {petri.cache_stats} (repro.perf memoization; errors unaffected)",
    ]
    report("E4_table1_jpeg", "\n".join(lines))

    assert petri.latency.avg < 0.005
    assert petri.latency.max < 0.02
    assert petri.throughput.avg < 0.005
    assert gain > 5


def test_table1_vta_row(benchmark, report):
    lat, tput, complexity = vta_row()
    progs = random_programs(12, 3, max_dim=4)
    iface = vta_pkg.petri_interface()
    benchmark(lambda: [iface.latency(p) for p in progs])

    lines = [
        "Table 1, row VTA — Petri-net interface",
        f"sequences: {lat.items} (latency), {tput.items} (throughput)",
        f"latency    error: {lat.latency.as_percent()}   (paper: 1.49% / 9.3%)",
        f"throughput error: {tput.throughput.as_percent()}   (paper: 1.44% / 8.55%)",
        f"complexity: {complexity.as_percent()} of implementation "
        f"({complexity.interface_loc}/{complexity.implementation_loc} LoC; paper: 2.6% of RTL)",
        f"evaluation (latency pass)    {lat.cache_stats}",
        f"evaluation (throughput pass) {tput.cache_stats} "
        "(repro.perf memoization; errors unaffected)",
    ]
    report("E5_table1_vta", "\n".join(lines))

    assert lat.latency.avg < 0.03
    assert lat.latency.max < 0.13  # paper's own max was 9.3%
    assert tput.throughput.avg < 0.05
