"""Automatic interface extraction (the paper's §5 future work).

Profile an accelerator model over a training workload, fit an
interpretable non-negative cost formula over named features, and get
back a :class:`repro.core.PerformanceInterface` — plus the formula as
text, so a human can eyeball what the tool learned.
"""

from .features import jpeg_features, protoacc_features, vta_features
from .fit import (
    ExtractedInterface,
    FitReport,
    extract_program_interface,
    fit_from_records,
)

__all__ = [
    "ExtractedInterface",
    "FitReport",
    "extract_program_interface",
    "fit_from_records",
    "jpeg_features",
    "protoacc_features",
    "vta_features",
]
