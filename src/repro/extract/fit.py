"""Automatic extraction of program interfaces from measurements.

The paper's §5 names "building tools that can automatically extract
interfaces as Petri nets or Python programs from accelerator
implementations" as future work.  This module implements the
measurement-driven half of that vision (in the spirit of Freud and
PIX, which the paper builds on): profile the accelerator over a
training workload, fit an interpretable cost formula over named
workload features, and emit an object that *is* a program interface —
including a human-readable rendering of the learned formula.

The fit is non-negative least squares (costs cannot be negative), so
the extracted formula reads like the hand-written ones: a sum of
per-feature rates plus a constant.

Two entry points share the fitter:

* :func:`extract_program_interface` — the offline path: profile a
  ground-truth ``AcceleratorModel`` over a workload.
* :func:`fit_from_records` — the production path: fit directly on
  (features, observed ``service_cycles``) pairs from a
  :class:`~repro.runtime.device.CallRecord` tape, no model in the loop.
  This is what the self-healing runtime (:mod:`repro.heal`) calls when
  the drift observatory flags a stale interface.

Both hold out a slice of their pairs internally and report
:attr:`FitReport.holdout_error`, so promotion decisions never have to
trust training error alone.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass
from typing import Generic, TypeVar

import numpy as np
from scipy.optimize import nnls

from repro.accel.base import AcceleratorModel
from repro.core.interface import PerformanceInterface

ItemT = TypeVar("ItemT")

#: A feature extractor: item -> {feature name: value}.
FeatureFn = Callable[[ItemT], Mapping[str, float]]


@dataclass(frozen=True)
class FitReport:
    """Quality of an extraction run.

    ``holdout_error`` is the mean relative error on an internal
    held-out slice the fitter never saw; ``holdout_infinite`` counts
    held-out pairs whose error is unbounded (a nonzero prediction
    against a zero observation — counted, not averaged, mirroring
    :class:`repro.hw.stats.ErrorReport`).  ``None``/0 when the sample
    was too small to split.
    """

    train_items: int
    train_error: float   # mean relative error on the training set
    feature_names: tuple[str, ...]
    holdout_items: int = 0
    holdout_error: float | None = None
    holdout_infinite: int = 0

    def __str__(self) -> str:
        text = (
            f"fit on {self.train_items} items, "
            f"train error {self.train_error * 100:.2f}%"
        )
        if self.holdout_error is not None:
            text += (
                f", holdout error {self.holdout_error * 100:.2f}% "
                f"on {self.holdout_items} held-out items"
            )
            if self.holdout_infinite:
                text += f" [{self.holdout_infinite} unbounded]"
        return text

    def trustworthy(self, max_error: float) -> bool:
        """Would a promotion gate accept this fit?  Requires a holdout
        slice, no unbounded held-out errors, and a held-out mean below
        ``max_error`` — train error is deliberately not consulted."""
        return (
            self.holdout_error is not None
            and self.holdout_infinite == 0
            and self.holdout_error <= max_error
        )


class ExtractedInterface(PerformanceInterface[ItemT], Generic[ItemT]):
    """A program interface learned from measurements."""

    representation = "program (auto-extracted)"

    def __init__(
        self,
        accelerator: str,
        feature_fn: FeatureFn,
        names: Sequence[str],
        weights: np.ndarray,
        intercept: float,
    ):
        self.accelerator = accelerator
        self._feature_fn = feature_fn
        self._names = tuple(names)
        self._weights = weights
        self._intercept = intercept

    def latency(self, item: ItemT) -> float:
        feats = self._feature_fn(item)
        total = self._intercept
        for name, w in zip(self._names, self._weights, strict=True):
            total += w * float(feats[name])
        return total

    def formula(self) -> str:
        """The learned cost model, printed like a hand-written interface."""
        terms = [
            f"{w:.4g}*{name}"
            for name, w in zip(self._names, self._weights, strict=True)
            if w > 1e-9
        ]
        terms.append(f"{self._intercept:.4g}")
        return "latency = " + " + ".join(terms)


def _feature_rows(
    items: Sequence[ItemT], feature_fn: FeatureFn
) -> tuple[list[str], list[Mapping[str, float]]]:
    rows = [feature_fn(item) for item in items]
    names = sorted(rows[0])
    for row in rows:
        if sorted(row) != names:
            raise ValueError("feature_fn must return the same keys for every item")
    return names, rows


def _split(
    n: int, holdout_fraction: float, seed: int
) -> tuple[np.ndarray, np.ndarray]:
    """Deterministic shuffled train/holdout index split.

    The training side keeps at least 3 items (the fitter's floor); when
    that leaves no room for a holdout slice, the holdout is empty and
    the report carries ``holdout_error=None``.
    """
    if not 0.0 <= holdout_fraction < 1.0:
        raise ValueError("holdout_fraction must be in [0, 1)")
    order = np.random.default_rng(seed).permutation(n)
    n_holdout = min(int(round(n * holdout_fraction)), n - 3)
    if n_holdout < 1:
        return order, order[:0]
    return order[n_holdout:], order[:n_holdout]


def _fit(
    names: Sequence[str],
    rows: Sequence[Mapping[str, float]],
    y: np.ndarray,
    accelerator: str,
    feature_fn: FeatureFn,
    holdout_fraction: float,
    seed: int,
) -> tuple[ExtractedInterface, FitReport]:
    """NNLS core shared by the offline and the from-records paths."""
    x = np.array([[float(r[n]) for n in names] + [1.0] for r in rows])
    train_idx, holdout_idx = _split(len(rows), holdout_fraction, seed)

    # Column scaling keeps NNLS well-conditioned across feature ranges.
    x_train, y_train = x[train_idx], y[train_idx]
    scales = np.maximum(np.abs(x_train).max(axis=0), 1e-12)
    solution, _ = nnls(x_train / scales, y_train)
    solution = solution / scales
    weights, intercept = solution[:-1], float(solution[-1])

    iface = ExtractedInterface(accelerator, feature_fn, names, weights, intercept)
    predictions = x @ solution
    train_pred, train_y = predictions[train_idx], y_train
    train_error = float(
        np.mean(np.abs(train_pred - train_y) / np.maximum(train_y, 1e-12))
    )

    holdout_items = int(holdout_idx.size)
    holdout_error: float | None = None
    holdout_infinite = 0
    if holdout_items:
        from repro.hw.stats import relative_errors

        errs = relative_errors(predictions[holdout_idx], y[holdout_idx])
        finite = errs[np.isfinite(errs)]
        holdout_infinite = int(errs.size - finite.size)
        holdout_error = float(finite.mean()) if finite.size else 0.0

    return iface, FitReport(
        train_items=len(train_idx),
        train_error=train_error,
        feature_names=tuple(names),
        holdout_items=holdout_items,
        holdout_error=holdout_error,
        holdout_infinite=holdout_infinite,
    )


def extract_program_interface(
    model: AcceleratorModel[ItemT],
    workload: Sequence[ItemT],
    feature_fn: FeatureFn,
    *,
    accelerator: str | None = None,
    holdout_fraction: float = 0.2,
    seed: int = 0,
) -> tuple[ExtractedInterface[ItemT], FitReport]:
    """Profile ``model`` on ``workload`` and fit a latency formula.

    Returns the extracted interface plus a fit report.  A
    ``holdout_fraction`` slice of the workload is held out internally
    and scored in :attr:`FitReport.holdout_error`; callers with an
    independent workload should still score the interface with
    :func:`repro.core.validate_interface` — the extractor never peeks
    at either.
    """
    if len(workload) < 3:
        raise ValueError("need at least 3 training items")
    names, rows = _feature_rows(workload, feature_fn)
    y = np.array([model.measure_latency(item) for item in workload], dtype=float)
    return _fit(
        names,
        rows,
        y,
        accelerator or model.name,
        feature_fn,
        holdout_fraction,
        seed,
    )


def fit_from_records(
    records: Sequence,
    feature_fn: FeatureFn,
    *,
    accelerator: str,
    overhead_fn: Callable[[ItemT], float] | None = None,
    holdout_fraction: float = 0.25,
    seed: int = 0,
) -> tuple[ExtractedInterface[ItemT], FitReport]:
    """Fit a latency formula directly from a serving tape.

    Unlike :func:`extract_program_interface`, nothing is re-measured:
    each successful accelerator :class:`~repro.runtime.device.CallRecord`
    contributes one (features, observed ``service_cycles``) pair, so a
    live system can refit from the traffic it already served.  CPU
    fallbacks and failed calls are skipped — their ``service_cycles``
    describe the software path or nothing at all, not the accelerator
    an interface would predict.

    ``overhead_fn`` subtracts the host-side invocation overhead
    (descriptor setup + DMA, e.g.
    :func:`repro.accel.cpu.offload_overhead`) from each record's
    ``service_cycles``, recovering the device-side latency that
    interface predictions and drift scoring are defined over.  Leave it
    ``None`` for devices whose records carry no overhead.
    """
    usable = [r for r in records if r.path == "accel"]
    if len(usable) < 3:
        raise ValueError(
            f"need at least 3 accelerator-path records, got {len(usable)}"
        )
    names, rows = _feature_rows([r.request for r in usable], feature_fn)
    y = np.array(
        [
            r.service_cycles
            - (overhead_fn(r.request) if overhead_fn is not None else 0.0)
            for r in usable
        ],
        dtype=float,
    )
    return _fit(names, rows, y, accelerator, feature_fn, holdout_fraction, seed)
