"""Automatic extraction of program interfaces from measurements.

The paper's §5 names "building tools that can automatically extract
interfaces as Petri nets or Python programs from accelerator
implementations" as future work.  This module implements the
measurement-driven half of that vision (in the spirit of Freud and
PIX, which the paper builds on): profile the accelerator over a
training workload, fit an interpretable cost formula over named
workload features, and emit an object that *is* a program interface —
including a human-readable rendering of the learned formula.

The fit is non-negative least squares (costs cannot be negative), so
the extracted formula reads like the hand-written ones: a sum of
per-feature rates plus a constant.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass
from typing import Generic, TypeVar

import numpy as np
from scipy.optimize import nnls

from repro.accel.base import AcceleratorModel
from repro.core.interface import PerformanceInterface

ItemT = TypeVar("ItemT")

#: A feature extractor: item -> {feature name: value}.
FeatureFn = Callable[[ItemT], Mapping[str, float]]


@dataclass(frozen=True)
class FitReport:
    """Quality of an extraction run."""

    train_items: int
    train_error: float   # mean relative error on the training set
    feature_names: tuple[str, ...]

    def __str__(self) -> str:
        return (
            f"fit on {self.train_items} items, "
            f"train error {self.train_error * 100:.2f}%"
        )


class ExtractedInterface(PerformanceInterface[ItemT], Generic[ItemT]):
    """A program interface learned from measurements."""

    representation = "program (auto-extracted)"

    def __init__(
        self,
        accelerator: str,
        feature_fn: FeatureFn,
        names: Sequence[str],
        weights: np.ndarray,
        intercept: float,
    ):
        self.accelerator = accelerator
        self._feature_fn = feature_fn
        self._names = tuple(names)
        self._weights = weights
        self._intercept = intercept

    def latency(self, item: ItemT) -> float:
        feats = self._feature_fn(item)
        total = self._intercept
        for name, w in zip(self._names, self._weights, strict=True):
            total += w * float(feats[name])
        return total

    def formula(self) -> str:
        """The learned cost model, printed like a hand-written interface."""
        terms = [
            f"{w:.4g}*{name}"
            for name, w in zip(self._names, self._weights, strict=True)
            if w > 1e-9
        ]
        terms.append(f"{self._intercept:.4g}")
        return "latency = " + " + ".join(terms)


def extract_program_interface(
    model: AcceleratorModel[ItemT],
    workload: Sequence[ItemT],
    feature_fn: FeatureFn,
    *,
    accelerator: str | None = None,
) -> tuple[ExtractedInterface[ItemT], FitReport]:
    """Profile ``model`` on ``workload`` and fit a latency formula.

    Returns the extracted interface plus a fit report.  The caller
    should score the interface on a *held-out* workload with
    :func:`repro.core.validate_interface` — the extractor does not peek.
    """
    if len(workload) < 3:
        raise ValueError("need at least 3 training items")
    rows = [feature_fn(item) for item in workload]
    names = sorted(rows[0])
    for row in rows:
        if sorted(row) != names:
            raise ValueError("feature_fn must return the same keys for every item")
    x = np.array([[float(r[n]) for n in names] + [1.0] for r in rows])
    y = np.array([model.measure_latency(item) for item in workload], dtype=float)

    # Column scaling keeps NNLS well-conditioned across feature ranges.
    scales = np.maximum(np.abs(x).max(axis=0), 1e-12)
    solution, _ = nnls(x / scales, y)
    solution = solution / scales
    weights, intercept = solution[:-1], float(solution[-1])

    iface = ExtractedInterface(
        accelerator or model.name, feature_fn, names, weights, intercept
    )
    predictions = np.array([iface.latency(item) for item in workload])
    train_error = float(np.mean(np.abs(predictions - y) / np.maximum(y, 1e-12)))
    return iface, FitReport(
        train_items=len(workload),
        train_error=train_error,
        feature_names=tuple(names),
    )
