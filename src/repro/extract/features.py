"""Per-accelerator feature extractors for interface extraction.

Features are the observable workload properties a vendor's datasheet
would name — exactly the quantities the hand-written interfaces use —
so an extracted formula is directly comparable to a hand-written one.
"""

from __future__ import annotations

from math import ceil

from repro.accel.jpeg.workload import JpegImage
from repro.accel.protoacc.message import FieldKind, Message
from repro.accel.vta.isa import Opcode, Program


def jpeg_features(img: JpegImage) -> dict[str, float]:
    blocks = img.n_blocks
    coded = float(img.coded_bytes.sum())
    return {
        "blocks": float(blocks),
        "coded_bytes": coded,
        # The max() regime split of the hand-written interface, offered
        # to the fitter as explicit features.
        "output_bound_cycles": float(max(0.0, 136.5 * blocks - 8.0 * coded)),
    }


def protoacc_features(msg: Message) -> dict[str, float]:
    def descriptor_groups(m: Message) -> int:
        total = ceil(m.num_fields / 32)
        return total + sum(descriptor_groups(s) for s in m.submessages())

    def blob_count(m: Message) -> int:
        own = sum(1 for f in m.fields if f.kind is FieldKind.BYTES)
        return own + sum(blob_count(s) for s in m.submessages())

    def blob_beats(m: Message) -> int:
        own = sum(
            ceil(len(f.value) / 16)  # type: ignore[arg-type]
            for f in m.fields
            if f.kind is FieldKind.BYTES
        )
        return own + sum(blob_beats(s) for s in m.submessages())

    return {
        "messages": float(msg.total_messages),
        "descriptor_groups": float(descriptor_groups(msg)),
        "blob_streams": float(blob_count(msg)),
        "blob_beats": float(blob_beats(msg)),
        "write_beats": float(msg.num_writes),
    }


def vta_features(program: Program) -> dict[str, float]:
    gemm_macs = alu_work = load_bytes = store_bytes = n_dma = 0
    for insn in program.instructions:
        if insn.op is Opcode.GEMM:
            gemm_macs += insn.gemm_macs
        elif insn.op is Opcode.ALU:
            alu_work += insn.iterations * ceil(insn.vector_len / 16)
        elif insn.op is Opcode.LOAD:
            load_bytes += insn.size
            n_dma += 1
        elif insn.op is Opcode.STORE:
            store_bytes += insn.size
            n_dma += 1
    return {
        "gemm_macs": float(gemm_macs),
        "alu_work": float(alu_work),
        "dma_bytes": float(load_bytes + store_bytes),
        "dma_count": float(n_dma),
        "instructions": float(len(program)),
    }
