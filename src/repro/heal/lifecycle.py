"""Lifecycle state for self-healing performance interfaces.

Each (device, rpc-size-class) key moves through a four-phase state
machine, driven one live observation at a time by the
:class:`~repro.heal.manager.HealingManager`:

.. code-block:: text

                   drift verdict × trigger_after,
                   refit trustworthy on holdout
    ┌─────────┐ ───────────────────────────────────► ┌───────────┐
    │ HEALTHY │                                      │ SHADOWING │
    └─────────┘ ◄─────────────────────────────────── └───────────┘
      ▲   ▲        shadow fail (cooldown)                  │
      │   │                                                │ shadow pass
      │   │ probation survived                             ▼ (hot-swap)
      │   │                                          ┌───────────┐
      │   └───────────────────────────────────────── │ PROBATION │
      │                                              └───────────┘
      │            quarantine cooldown expired             │
    ┌─────────────┐ ◄──────────────────────────────────────┘
    │ QUARANTINED │        regression (rollback)
    └─────────────┘

Every transition is hysteretic: drift must persist for
``trigger_after`` consecutive verdicts before a refit, a rejected
candidate imposes ``refit_cooldown`` observations of silence, and a
rolled-back key sits out ``quarantine_cooldown`` observations before
the loop may try again — so a flapping device cannot thrash the
pricing layer.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Any


class HealPhase(Enum):
    """Where one (device, rpc-size-class) key is in its heal cycle."""

    HEALTHY = "healthy"        # no candidate in play
    SHADOWING = "shadowing"    # candidate pricing live traffic, no impact
    PROBATION = "probation"    # candidate promoted, watched for regression
    QUARANTINED = "quarantined"  # rolled back; refits suppressed for a while


@dataclass(frozen=True)
class HealPolicy:
    """Thresholds and hysteresis for the healing loop.

    The defaults are deliberately conservative: roughly one full drift
    window of evidence before a refit, a shadow period long enough for
    the error quantiles to mean something, and a probation longer than
    the shadow so a candidate that only looked good briefly is caught.
    """

    #: Sliding per-key window of recent ``CallRecord``s refits train on.
    window: int = 48
    #: Records required in the window before a refit is attempted.
    min_records: int = 12
    #: Consecutive drifting verdicts required to trigger a refit.
    trigger_after: int = 4
    #: ``FitReport.trustworthy`` ceiling: candidates whose *holdout*
    #: error exceeds this never reach shadowing.
    refit_holdout_error: float = 0.2
    #: Run the static verifier (:func:`repro.lint.verify_candidate`)
    #: on every refit candidate *before* holdout judgment or shadow
    #: traffic.  A statically rejected candidate — negative weight,
    #: slope over the device contract's certified bound — quarantines
    #: the key outright: the defect is in the fit, not the traffic,
    #: so re-shadowing it would only re-learn the same mistake.
    verify_candidates: bool = True
    #: Live observations a candidate must shadow-price before judgment.
    shadow_samples: int = 16
    #: Candidate mean error must be <= this fraction of the active
    #: interface's mean error over the shadow window...
    promote_ratio: float = 0.5
    #: ...and below this absolute mean symmetric error.
    promote_threshold: float = 0.25
    #: Post-swap observations watched before the promotion is final.
    probation_samples: int = 24
    #: Mean post-swap error that forces a rollback (``None``: use the
    #: key's own drift-detector threshold).
    rollback_threshold: float | None = None
    #: Observations to sit out after a failed fit or failed shadow.
    refit_cooldown: int = 16
    #: Observations to sit out after a rollback (quarantine).
    quarantine_cooldown: int = 64
    #: Holdout fraction handed to :func:`repro.extract.fit_from_records`.
    holdout_fraction: float = 0.25
    #: Base seed for refit holdout splits (bumped per refit).
    seed: int = 0

    def __post_init__(self) -> None:
        if self.window < self.min_records:
            raise ValueError("window must hold at least min_records records")
        if self.min_records < 4:
            raise ValueError("min_records must be >= 4 (fit floor + holdout)")
        if self.trigger_after < 1 or self.shadow_samples < 1:
            raise ValueError("trigger_after and shadow_samples must be >= 1")
        if not 0.0 < self.promote_ratio <= 1.0:
            raise ValueError("promote_ratio must be in (0, 1]")


@dataclass(frozen=True)
class LifecycleEvent:
    """One audited transition of one key's state machine."""

    at: float  # virtual-clock instant of the triggering observation
    device: str
    rpc_class: str
    phase_from: HealPhase
    phase_to: HealPhase
    reason: str

    def __str__(self) -> str:
        return (
            f"[{self.at:12.0f}] {self.device}/{self.rpc_class}: "
            f"{self.phase_from.value} -> {self.phase_to.value} ({self.reason})"
        )


#: Sentinel for "this class had no override before the swap" — distinct
#: from an override of ``None``, so rollback restores *exactly* the
#: prior pricing, including its absence.
NO_OVERRIDE = object()


@dataclass
class KeyState:
    """Mutable per-(device, rpc-size-class) healing state."""

    device: str
    rpc_class: str
    phase: HealPhase = HealPhase.HEALTHY
    observations: int = 0       # live observations seen for this key
    drift_streak: int = 0       # consecutive drifting verdicts
    cooldown: int = 0           # observations to ignore triggers for
    records: deque = field(default_factory=deque)  # recent CallRecords
    # Candidate bookkeeping (meaningful in SHADOWING/PROBATION).
    candidate: Any = None
    fit_report: Any = None
    shadow_active: list[float] = field(default_factory=list)
    shadow_candidate: list[float] = field(default_factory=list)
    prior_override: Any = NO_OVERRIDE
    shadow_since: float | None = None
    promoted_at: float | None = None
    rolled_back_at: float | None = None
    probation_seen: int = 0
    post_errors: list[float] = field(default_factory=list)
    #: Why the key last entered QUARANTINED (static rejection vs
    #: post-swap regression) — surfaced in ``pool.snapshot()``.
    quarantine_reason: str | None = None
    #: The observatory's worst-mispredicted stage for this key at the
    #: last refit attempt (``None`` before stage attribution has
    #: samples) — tells the operator *which part* of the path the
    #: replaced interface was wrong about.
    stage_hint: str | None = None
    # Lifetime counters.
    refits: int = 0             # candidates that reached shadowing
    refits_rejected: int = 0    # fits the holdout gate refused
    verify_rejections: int = 0  # candidates the static verifier refused
    shadow_failures: int = 0
    promotions: int = 0
    rollbacks: int = 0

    def clear_candidate(self) -> None:
        self.candidate = None
        self.fit_report = None
        self.shadow_active = []
        self.shadow_candidate = []
        self.shadow_since = None
        self.probation_seen = 0
        self.post_errors = []
