"""Self-healing performance interfaces.

The paper argues a performance interface is only useful while it is
*faithful* to the hardware it describes.  :mod:`repro.obs` (PR 5) can
already tell when that stops being true; this package closes the loop:
a drifted (device, rpc-size-class) is refit from the tape of traffic
it just served (:func:`repro.extract.fit_from_records`), the candidate
shadow-prices live requests with zero routing impact, and only a
candidate that beats the stale interface on live error quantiles is
hot-swapped into ``interface_predicted`` pricing — with hysteresis on
the way in and quarantine + exact rollback on the way out.

Entry points:

* :class:`HealingManager` — attach to a :class:`~repro.runtime.pool.DevicePool`
  built with ``obs=Obs.enabled()``; the loop then runs itself.
* :func:`run_heal_scenario` — the E16 end-to-end demonstration
  (mid-serve DRAM regime shift, healed without a restart).
"""

from .lifecycle import (
    NO_OVERRIDE,
    HealPhase,
    HealPolicy,
    KeyState,
    LifecycleEvent,
)
from .manager import ClassRoutedInterface, HealingManager
from .scenario import (
    E16_HEAL_POLICY,
    ErrorSample,
    HealScenarioResult,
    run_heal_scenario,
    slowed_dram,
)

__all__ = [
    "E16_HEAL_POLICY",
    "NO_OVERRIDE",
    "ClassRoutedInterface",
    "ErrorSample",
    "HealPhase",
    "HealPolicy",
    "HealScenarioResult",
    "HealingManager",
    "KeyState",
    "LifecycleEvent",
    "run_heal_scenario",
    "slowed_dram",
]
