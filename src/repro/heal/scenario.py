"""The E16 scenario: a mid-serve hardware regime shift, healed live.

One continuous open-loop serve over the standard heterogeneous fleet
(:func:`repro.runtime.pool.rpc_pool`), with a DRAM slowdown injected
into the Protoacc ground-truth model partway through — the memory the
accelerator reads messages from gets slower, the vendor's shipped
interface does not know, and every prediction for the device goes
stale at once.  No process restarts, no pool rebuilds: the same
devices, breakers, and clocks carry through the shift, which is
exactly the situation the self-healing loop exists for.

:func:`run_heal_scenario` drives it end to end and records a
per-observation error timeline, so callers (the E16 benchmark, the
``perfscope heal`` CLI, the integration test) can show the full arc:
error spike → drift verdict → refit → shadow → hot-swap → recovery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.hw.memory import DramConfig
from repro.obs import Obs
from repro.runtime.degrade import DriftDetector

from .lifecycle import HealPolicy
from .manager import HealingManager


def slowed_dram(config: DramConfig, factor: float) -> DramConfig:
    """A DRAM regime shift: every latency parameter scaled by
    ``factor`` (geometry untouched) — the downstream effect of e.g. a
    thermally throttled memory controller or a neighbour saturating
    the channel."""
    if factor <= 0:
        raise ValueError("slowdown factor must be positive")
    return DramConfig(
        cas_latency=max(1, round(config.cas_latency * factor)),
        row_miss_penalty=max(1, round(config.row_miss_penalty * factor)),
        banks=config.banks,
        row_size=config.row_size,
        bytes_per_beat=config.bytes_per_beat,
        refresh_interval=config.refresh_interval,
        refresh_duration=max(1, round(config.refresh_duration * factor)),
    )


#: E16 defaults: sized so the loop completes a full heal cycle within
#: a few hundred requests (the production defaults in ``HealPolicy``
#: are slower on purpose).
E16_HEAL_POLICY = HealPolicy(
    window=32,
    min_records=10,
    trigger_after=3,
    shadow_samples=10,
    probation_samples=12,
    refit_cooldown=6,
    quarantine_cooldown=24,
)


@dataclass
class ErrorSample:
    """One live (device, rpc-class) prediction scored at ``at``."""

    at: float
    device: str
    rpc_class: str
    error: float  # symmetric relative error, the drift detector's unit


@dataclass
class HealScenarioResult:
    """Everything a caller needs to tell (and verify) the E16 story."""

    obs: Obs
    pool: Any
    healer: HealingManager
    served: dict[str, Any]          # phase name -> ServeResult
    shift_at: float                 # virtual instant the regime shifted
    timeline: list[ErrorSample] = field(default_factory=list)
    #: The (device, rpc-class) key the injected shift lands on.
    target_device: str = "protoacc"
    target_class: str = "large"

    @property
    def target_key(self) -> tuple[str, str]:
        return (self.target_device, self.target_class)

    def errors(
        self,
        device: str,
        rpc_class: str,
        *,
        since: float = 0.0,
        until: float = float("inf"),
    ) -> list[float]:
        return [
            s.error
            for s in self.timeline
            if s.device == device
            and s.rpc_class == rpc_class
            and since <= s.at < until
        ]

    def mean_error(self, device: str, rpc_class: str, **window) -> float:
        errs = self.errors(device, rpc_class, **window)
        return sum(errs) / len(errs) if errs else 0.0

    def swap_at(self, device: str, rpc_class: str) -> float | None:
        """When the (first) hot-swap for this key happened, if any."""
        for e in self.healer.events:
            if (
                e.device == device
                and e.rpc_class == rpc_class
                and e.phase_to.value == "probation"
            ):
                return e.at
        return None


def run_heal_scenario(
    *,
    requests: int = 420,
    gap: float = 900.0,
    seed: int = 7,
    slowdown: float = 5.0,
    shift_fraction: float = 0.3,
    mix: str = "storage",
    policy: str = "interface_predicted",
    deadline: float = 60_000.0,
    heal_policy: HealPolicy | None = None,
    obs: Obs | None = None,
) -> HealScenarioResult:
    """Serve an RPC mix open-loop; shift Protoacc's DRAM regime after
    ``shift_fraction`` of the trace; let the healing loop repair the
    interface in-band.  Returns the full result bundle.

    The default mix is ``storage`` (large pointer-heavy messages) and
    the default slowdown 5×, calibrated together: ``interface_predicted``
    routing sends essentially all large messages to Protoacc, the shift
    lifts its true latency ~1.7× (symmetric error ~0.67, past the stock
    0.5 drift threshold), and Protoacc *stays* the cheapest device for
    most large messages even when honestly priced post-heal — so the
    probation window keeps seeing traffic and the cycle can complete.

    The server is *not* restarted at the shift: the same pool object,
    device clocks, breakers, and tapes continue — the arrival stream is
    simply fed in two slices around the mutation of the ground-truth
    model's ``dram_config``.
    """
    from repro.extract import protoacc_features
    from repro.runtime.pool import rpc_pool
    from repro.runtime.serving import OpenLoopServer
    from repro.workloads.rpc import ALL_MIXES

    if not 0.0 < shift_fraction < 1.0:
        raise ValueError("shift_fraction must be in (0, 1)")
    obs = obs if obs is not None else Obs.enabled()
    if obs.observatory is None:
        raise ValueError("the heal scenario needs an Obs bundle with drift enabled")

    pool = rpc_pool(policy, faults="none", seed=seed, obs=obs)
    healer = HealingManager(
        protoacc_features, policy=heal_policy or E16_HEAL_POLICY
    )
    healer.attach(pool)

    timeline: list[ErrorSample] = []

    def probe(device, rpc_class, request, predicted, observed, *, drifting, at):
        timeline.append(
            ErrorSample(
                at=at,
                device=device,
                rpc_class=rpc_class,
                error=DriftDetector.symmetric_error(predicted, observed),
            )
        )

    obs.observatory.subscribe(probe)

    try:
        rpc_mix = next(m for m in ALL_MIXES if m.name == mix)
    except StopIteration:
        known = ", ".join(m.name for m in ALL_MIXES)
        raise ValueError(f"unknown mix {mix!r} (known: {known})") from None
    msgs, arrivals = rpc_mix.sample_open(seed, requests, gap)
    split = max(1, int(requests * shift_fraction))
    server = OpenLoopServer(pool, deadline=deadline)

    served: dict[str, Any] = {}
    served["before"] = server.run(msgs[:split], arrivals[:split])

    # The regime shift: the device's memory gets slower, mid-serve.
    # Only the ground truth changes — the shipped interface is now
    # wrong, and nothing but the healing loop will fix it.
    protoacc = pool.device("protoacc").device
    protoacc.model.dram_config = slowed_dram(protoacc.model.dram_config, slowdown)
    shift_at = max(protoacc.clock, arrivals[split - 1])
    if obs.tracer is not None and getattr(obs.tracer, "enabled", True):
        obs.tracer.instant(
            "dram_regime_shift",
            shift_at,
            cat="runtime.heal",
            tid="protoacc",
            args={"slowdown": slowdown},
        )

    served["after"] = server.run(msgs[split:], arrivals[split:])

    return HealScenarioResult(
        obs=obs,
        pool=pool,
        healer=healer,
        served=served,
        shift_at=shift_at,
        timeline=timeline,
    )
