"""The closed healing loop: drift verdict → refit → shadow → hot-swap.

:class:`HealingManager` connects the two halves that already existed —
the :class:`~repro.obs.DriftObservatory` (PR 5) detects when an
interface stops describing its hardware, and :mod:`repro.extract` fits
interfaces from measurements — into the loop the paper's faithfulness
argument demands: a drifted (device, rpc-size-class) is *refit from
the traffic it just served*, the candidate prices live requests in
shadow (no routing impact), and only a candidate that beats the stale
interface on live error quantiles is hot-swapped into
``interface_predicted`` pricing.  A promoted candidate that regresses
during probation is rolled back to the exact prior pricing and the
key quarantined.

Hot-swap safety is structural: the swap mutates one override slot in a
:class:`ClassRoutedInterface` that both the device's drift scoring and
the pool's pricing read through.  Nothing else is touched — the
circuit breaker (state, transitions, half-open probe accounting), the
retry policy, the device clock, and the recorded tape all keep their
identity, so in-flight requests and replay parity are unaffected
(asserted in ``tests/heal/test_hotswap.py``).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable
from typing import Any

from repro.core.interface import PerformanceInterface
from repro.hw.stats import Summary
from repro.obs.drift import DEFAULT_SIZE_CLASSES, SizeClasses
from repro.runtime.degrade import DriftDetector

from .lifecycle import (
    NO_OVERRIDE,
    HealPhase,
    HealPolicy,
    KeyState,
    LifecycleEvent,
)


class ClassRoutedInterface(PerformanceInterface):
    """A hot-swappable interface: per-size-class overrides over a base.

    ``latency`` dispatches on the request's size class; classes without
    an override fall through to the base (vendor-shipped) interface.
    Installing or removing an override is a single dict-slot mutation,
    which is the whole hot-swap: every consumer holding this object —
    the device's drift scoring, the pool's ``interface_predicted``
    pricing — sees the new pricing on its next call, and no consumer
    state is reset.
    """

    representation = "class-routed"

    def __init__(self, base: PerformanceInterface, classes: SizeClasses):
        self.accelerator = base.accelerator
        self.base = base
        self.classes = classes
        self.overrides: dict[str, PerformanceInterface] = {}

    def interface_for(self, rpc_class: str) -> PerformanceInterface:
        return self.overrides.get(rpc_class, self.base)

    def latency(self, item) -> float:
        override = self.overrides.get(self.classes.classify(item))
        return (override if override is not None else self.base).latency(item)

    def describe(self) -> str:
        swapped = sorted(self.overrides)
        suffix = f" (overrides: {', '.join(swapped)})" if swapped else ""
        return f"class-routed interface for {self.accelerator}{suffix}"


class HealingManager:
    """Closed-loop interface lifecycle manager for a device pool.

    Args:
        feature_fn: workload features for refits (e.g.
            :func:`repro.extract.protoacc_features`) — must accept every
            request type the attached devices serve.
        policy: thresholds/hysteresis (:class:`HealPolicy` defaults).
        classes: size-class spec; ``None`` adopts the observatory's own
            spec at attach time, so refit keys and drift keys can never
            disagree on labels.
        devices: names of pool devices to manage (``None``: all of
            them).  A device whose interface *is* its ground truth
            (the CPU software server) heals trivially and harmlessly.

    Call :meth:`attach` once; after that the loop is fully autonomous —
    it runs inside the observatory's observation callback, which the
    serving path already drives.
    """

    def __init__(
        self,
        feature_fn: Callable[[Any], dict],
        *,
        policy: HealPolicy | None = None,
        classes: SizeClasses | None = None,
        devices: list[str] | None = None,
    ):
        self.feature_fn = feature_fn
        self.policy = policy or HealPolicy()
        self.classes = classes
        self._device_filter = set(devices) if devices is not None else None
        self.events: list[LifecycleEvent] = []
        self._keys: dict[tuple[str, str], KeyState] = {}
        self._routed: dict[str, ClassRoutedInterface] = {}
        self._pooled: dict[str, Any] = {}
        self._cursors: dict[str, int] = {}
        self._observatory = None
        self._tracer = None
        self._metrics = None
        self._tsdb = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, pool) -> None:
        """Take over interface lifecycle for ``pool``'s devices.

        Each managed device's serving interface is wrapped in a
        :class:`ClassRoutedInterface` installed as *both* the device's
        drift-scoring interface and the pool's pricing interface (they
        must move together, or routing would price with a model drift
        scoring has already replaced).  The manager then subscribes to
        the pool's drift observatory and appears in
        ``pool.snapshot()['healing']``.
        """
        obs = getattr(pool, "obs", None)
        observatory = getattr(obs, "observatory", None)
        if observatory is None:
            raise ValueError(
                "healing needs a pool observed by a DriftObservatory "
                "(pass obs=Obs.enabled() when building the pool)"
            )
        if self._observatory is not None:
            raise ValueError("this manager is already attached")
        if self.classes is None:
            self.classes = observatory.size_classes or DEFAULT_SIZE_CLASSES
        self._observatory = observatory
        tracer = getattr(obs, "tracer", None)
        self._tracer = (
            tracer if tracer is not None and getattr(tracer, "enabled", True) else None
        )
        self._metrics = getattr(obs, "metrics", None)
        self._tsdb = getattr(obs, "tsdb", None)
        for pooled in pool.devices:
            if (
                self._device_filter is not None
                and pooled.name not in self._device_filter
            ):
                continue
            routed = ClassRoutedInterface(pooled.device.interface, self.classes)
            pooled.device.interface = routed
            pooled.price_interface = routed
            self._routed[pooled.name] = routed
            self._pooled[pooled.name] = pooled
            self._cursors[pooled.name] = len(pooled.device.records)
        observatory.subscribe(self._on_observation)
        pool.healer = self

    def _state(self, device: str, rpc_class: str) -> KeyState:
        key = (device, rpc_class)
        state = self._keys.get(key)
        if state is None:
            state = self._keys[key] = KeyState(device, rpc_class)
            state.records = deque(maxlen=self.policy.window)
        return state

    # ------------------------------------------------------------------
    # The loop (runs inside DriftObservatory.observe)
    # ------------------------------------------------------------------
    def _on_observation(
        self,
        device: str,
        rpc_class: str,
        request,
        predicted: float,
        observed: float,
        *,
        drifting: bool,
        at: float,
    ) -> None:
        if device not in self._routed:
            return
        self._ingest_records(device)
        state = self._state(device, rpc_class)
        state.observations += 1
        if state.cooldown > 0:
            state.cooldown -= 1

        if state.phase is HealPhase.HEALTHY:
            self._tick_healthy(state, drifting, at)
        elif state.phase is HealPhase.SHADOWING:
            self._tick_shadowing(state, request, predicted, observed, at)
        elif state.phase is HealPhase.PROBATION:
            self._tick_probation(state, predicted, observed, drifting, at)
        elif state.phase is HealPhase.QUARANTINED and state.cooldown == 0:
            self._transition(state, HealPhase.HEALTHY, at, "quarantine expired")

    def _ingest_records(self, device: str) -> None:
        """Pull this device's new tape records into the per-key windows
        (only successful accelerator calls can train a refit)."""
        records = self._pooled[device].device.records
        cursor = self._cursors[device]
        for record in records[cursor:]:
            if record.path != "accel":
                continue
            label = self.classes.classify(record.request)
            self._state(device, label).records.append(record)
        self._cursors[device] = len(records)

    def _tick_healthy(self, state: KeyState, drifting: bool, at: float) -> None:
        if not drifting:
            state.drift_streak = 0
            return
        state.drift_streak += 1
        if state.cooldown > 0 or state.drift_streak < self.policy.trigger_after:
            return
        state.drift_streak = 0
        self._refit(state, at)

    def _refit(self, state: KeyState, at: float) -> None:
        from repro.extract import fit_from_records
        from repro.lint import verify_candidate

        # Stage-level refit hint: which part of the causal path the
        # outgoing interface mispredicts worst, per the attribution
        # pipeline (None until score_mispredictions has fed the
        # observatory).  Carried on the key and into the refit instant.
        top_stage = getattr(self._observatory, "top_mispredicted_stage", None)
        if top_stage is not None:
            hinted = top_stage(state.device, state.rpc_class)
            if hinted is not None:
                state.stage_hint = hinted[0]

        window = list(state.records)
        if len(window) < self.policy.min_records:
            state.cooldown = self.policy.refit_cooldown
            self._instant("heal:refit_starved", state, at, records=len(window))
            self._count("heal_refits_total", state, outcome="starved")
            return
        pooled = self._pooled[state.device]
        try:
            candidate, fit = fit_from_records(
                window,
                self.feature_fn,
                accelerator=f"{state.device} ({state.rpc_class}, refit)",
                overhead_fn=pooled.device.invocation_overhead,
                holdout_fraction=self.policy.holdout_fraction,
                seed=self.policy.seed + state.refits + state.refits_rejected,
            )
        except ValueError:
            state.cooldown = self.policy.refit_cooldown
            self._count("heal_refits_total", state, outcome="failed")
            return
        if self.policy.verify_candidates:
            problems = verify_candidate(
                candidate, getattr(pooled, "contract", None)
            )
            if problems:
                # Statically refuted: the fitted coefficients are wrong
                # regardless of traffic, so no amount of shadowing can
                # redeem this candidate.  Quarantine the key.
                state.verify_rejections += 1
                state.quarantine_reason = (
                    "static verification failed: " + "; ".join(problems)
                )
                state.cooldown = self.policy.quarantine_cooldown
                self._instant(
                    "heal:verify_rejected", state, at, problems=problems
                )
                self._count("heal_refits_total", state, outcome="verify_rejected")
                self._count("heal_verify_rejections_total", state)
                self._transition(
                    state,
                    HealPhase.QUARANTINED,
                    at,
                    state.quarantine_reason,
                )
                return
        if not fit.trustworthy(self.policy.refit_holdout_error):
            state.refits_rejected += 1
            state.cooldown = self.policy.refit_cooldown
            self._instant(
                "heal:refit_rejected",
                state,
                at,
                holdout_error=fit.holdout_error,
                holdout_infinite=fit.holdout_infinite,
            )
            self._count("heal_refits_total", state, outcome="rejected")
            return
        state.refits += 1
        state.candidate = candidate
        state.fit_report = fit
        state.shadow_active = []
        state.shadow_candidate = []
        state.shadow_since = at
        self._count("heal_refits_total", state, outcome="shadowing")
        hint = f", hint: {state.stage_hint} stage" if state.stage_hint else ""
        self._transition(
            state,
            HealPhase.SHADOWING,
            at,
            f"refit from {len(window)} records, "
            f"holdout error {fit.holdout_error:.1%}{hint}",
        )

    def _tick_shadowing(
        self, state: KeyState, request, predicted: float, observed: float, at: float
    ) -> None:
        err = DriftDetector.symmetric_error
        state.shadow_active.append(err(predicted, observed))
        state.shadow_candidate.append(
            err(state.candidate.latency(request), observed)
        )
        if self._metrics is not None:
            labels = {"device": state.device, "rpc_class": state.rpc_class}
            self._metrics.gauge("heal_shadow_active_error", **labels).set(
                _mean(state.shadow_active)
            )
            self._metrics.gauge("heal_shadow_candidate_error", **labels).set(
                _mean(state.shadow_candidate)
            )
        if len(state.shadow_candidate) < self.policy.shadow_samples:
            return
        cand, act = _mean(state.shadow_candidate), _mean(state.shadow_active)
        cand_p95 = Summary.of(state.shadow_candidate).p95
        act_p95 = Summary.of(state.shadow_active).p95
        if (
            cand <= self.policy.promote_threshold
            and cand <= self.policy.promote_ratio * act
            and cand_p95 <= act_p95
        ):
            self._promote(state, at, cand, act)
        else:
            state.shadow_failures += 1
            state.clear_candidate()
            state.cooldown = self.policy.refit_cooldown
            self._count("heal_shadow_verdicts_total", state, outcome="failed")
            self._transition(
                state,
                HealPhase.HEALTHY,
                at,
                f"shadow failed: candidate {cand:.1%} vs active {act:.1%}",
            )

    def _promote(self, state: KeyState, at: float, cand: float, act: float) -> None:
        routed = self._routed[state.device]
        state.prior_override = routed.overrides.get(state.rpc_class, NO_OVERRIDE)
        routed.overrides[state.rpc_class] = state.candidate
        state.promotions += 1
        state.promoted_at = at
        state.probation_seen = 0
        state.post_errors = []
        # The detector's window scored the replaced interface; keep it
        # and every post-swap verdict would be stale.  Resetting it is
        # observatory bookkeeping, not device state — the breaker,
        # retry, and tape are untouched by design.
        self._observatory.reset_detector(state.device, state.rpc_class)
        self._count("heal_promotions_total", state)
        self._count("heal_shadow_verdicts_total", state, outcome="promoted")
        self._transition(
            state,
            HealPhase.PROBATION,
            at,
            f"hot-swapped: candidate {cand:.1%} vs active {act:.1%} "
            f"over {len(state.shadow_candidate)} shadowed calls",
        )

    def _tick_probation(
        self, state: KeyState, predicted: float, observed: float,
        drifting: bool, at: float,
    ) -> None:
        # ``predicted`` now comes from the promoted candidate (the
        # routed interface dispatched to it).
        state.probation_seen += 1
        state.post_errors.append(DriftDetector.symmetric_error(predicted, observed))
        if self._metrics is not None:
            self._metrics.gauge(
                "heal_post_swap_error",
                device=state.device,
                rpc_class=state.rpc_class,
            ).set(_mean(state.post_errors))
        threshold = self.policy.rollback_threshold
        if threshold is None:
            detector = self._observatory.detector(state.device, state.rpc_class)
            threshold = detector.threshold if detector is not None else 0.5
        regressed = drifting or (
            state.probation_seen >= min(8, self.policy.probation_samples)
            and _mean(state.post_errors) > threshold
        )
        if regressed:
            self._rollback(state, at, threshold)
        elif state.probation_seen >= self.policy.probation_samples:
            final = _mean(state.post_errors)
            state.clear_candidate()
            state.prior_override = NO_OVERRIDE
            self._transition(
                state,
                HealPhase.HEALTHY,
                at,
                f"probation passed: post-swap error {final:.1%}",
            )

    def _rollback(self, state: KeyState, at: float, threshold: float) -> None:
        routed = self._routed[state.device]
        if state.prior_override is NO_OVERRIDE:
            routed.overrides.pop(state.rpc_class, None)
        else:
            routed.overrides[state.rpc_class] = state.prior_override
        state.rollbacks += 1
        state.rolled_back_at = at
        post = _mean(state.post_errors) if state.post_errors else float("nan")
        state.clear_candidate()
        state.prior_override = NO_OVERRIDE
        state.cooldown = self.policy.quarantine_cooldown
        state.quarantine_reason = (
            f"post-swap regression: error {post:.1%} over threshold "
            f"{threshold:.1%}"
        )
        self._observatory.reset_detector(state.device, state.rpc_class)
        self._count("heal_rollbacks_total", state)
        self._transition(
            state,
            HealPhase.QUARANTINED,
            at,
            f"post-swap error {post:.1%} over threshold {threshold:.1%}: "
            "prior pricing restored, candidate quarantined",
        )

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def _transition(
        self, state: KeyState, to: HealPhase, at: float, reason: str
    ) -> None:
        event = LifecycleEvent(
            at=at,
            device=state.device,
            rpc_class=state.rpc_class,
            phase_from=state.phase,
            phase_to=to,
            reason=reason,
        )
        state.phase = to
        self.events.append(event)
        self._instant(f"heal:{to.value}", state, at, reason=reason)

    def _instant(self, name: str, state: KeyState, at: float, **args) -> None:
        if self._tracer is not None:
            self._tracer.instant(
                name,
                at,
                cat="runtime.heal",
                tid=state.device,
                args={"rpc_class": state.rpc_class, **args},
            )
        if self._tsdb is not None:
            self._tsdb.event(
                name, at, device=state.device, rpc_class=state.rpc_class, **args
            )

    def _count(self, name: str, state: KeyState, **labels) -> None:
        if self._metrics is not None:
            self._metrics.counter(
                name, device=state.device, rpc_class=state.rpc_class, **labels
            ).inc()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def state(self, device: str, rpc_class: str) -> KeyState | None:
        return self._keys.get((device, rpc_class))

    def busy_devices(self) -> set[str]:
        """Devices with any size-class mid-heal (shadowing, probation,
        or quarantined).  The autoscaler must not scale these in: a
        refit in flight needs the device's live traffic to validate
        against, and a quarantine means its pricing is already suspect —
        removing it would erase the evidence the heal needs."""
        busy = {
            HealPhase.SHADOWING,
            HealPhase.PROBATION,
            HealPhase.QUARANTINED,
        }
        return {
            device for (device, _), s in self._keys.items() if s.phase in busy
        }

    def routed_interface(self, device: str) -> ClassRoutedInterface:
        return self._routed[device]

    def snapshot(self) -> dict[str, Any]:
        """Programmatic lifecycle view (what ``pool.snapshot()`` embeds
        under ``"healing"``)."""
        keys: dict[str, Any] = {}
        for (device, rpc_class), s in sorted(self._keys.items()):
            entry: dict[str, Any] = {
                "phase": s.phase.value,
                "observations": s.observations,
                "window_records": len(s.records),
                "refits": s.refits,
                "refits_rejected": s.refits_rejected,
                "verify_rejections": s.verify_rejections,
                "shadow_failures": s.shadow_failures,
                "promotions": s.promotions,
                "rollbacks": s.rollbacks,
                "promoted_at": s.promoted_at,
                "rolled_back_at": s.rolled_back_at,
                "swapped": rpc_class in self._routed[device].overrides,
            }
            if s.quarantine_reason is not None:
                entry["quarantine_reason"] = s.quarantine_reason
            if s.stage_hint is not None:
                entry["stage_hint"] = s.stage_hint
            if s.shadow_candidate:
                entry["shadow"] = {
                    "samples": len(s.shadow_candidate),
                    "candidate_error": _mean(s.shadow_candidate),
                    "active_error": _mean(s.shadow_active),
                    "candidate_p95": Summary.of(s.shadow_candidate).p95,
                    "active_p95": Summary.of(s.shadow_active).p95,
                }
            if s.post_errors:
                entry["post_swap_error"] = _mean(s.post_errors)
            keys[f"{device}/{rpc_class}"] = entry
        return {
            "managed_devices": sorted(self._routed),
            "events": len(self.events),
            "promotions": sum(s.promotions for s in self._keys.values()),
            "rollbacks": sum(s.rollbacks for s in self._keys.values()),
            "verify_rejections": sum(
                s.verify_rejections for s in self._keys.values()
            ),
            "keys": keys,
        }

    def report(self) -> str:
        """Operator-facing lifecycle table plus the event log."""
        if not self._keys:
            return "healing: no observations yet"
        lines = [
            f"{'device':14}  {'class':8}  {'phase':11}  {'refits':>6}  "
            f"{'vetoed':>6}  {'promo':>5}  {'rollbk':>6}  {'window':>6}  swapped"
        ]
        for (device, rpc_class), s in sorted(self._keys.items()):
            swapped = rpc_class in self._routed[device].overrides
            lines.append(
                f"{device:14}  {rpc_class:8}  {s.phase.value:11}  {s.refits:6d}  "
                f"{s.verify_rejections:6d}  "
                f"{s.promotions:5d}  {s.rollbacks:6d}  {len(s.records):6d}  "
                f"{'yes' if swapped else 'no'}"
            )
        if self.events:
            lines.append("")
            lines.extend(str(e) for e in self.events)
        return "\n".join(lines)


def _mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else 0.0
