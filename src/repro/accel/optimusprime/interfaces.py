"""Performance interfaces for Optimus Prime, the in-place transformer.

The paper's example #2 pits Protoacc against Optimus Prime and argues a
designer choosing between them needs *interfaces*, not papers: Optimus
Prime wins on small objects (descriptor cache, no pointer chasing) and
loses on large ones (modest parser-array streaming rate).  These are
the interfaces that make that comparison mechanical — an English
summary and an executable program, both derived from the constants of
:mod:`repro.accel.optimusprime.model`.

No Petri net ships for this accelerator (as in the paper, which only
built nets for JPEG/VTA-class pipelines); the lint bundle therefore
audits the two representations that do exist.
"""

from __future__ import annotations

from repro.accel.protoacc.message import Message
from repro.core.nl import EnglishInterface, PerformanceStatement, Relation
from repro.core.program import ProgramInterface

from .model import (
    BYTES_PER_CYCLE,
    DESCRIPTOR_MISS_CYCLES,
    PER_FIELD_CYCLES,
    PER_MESSAGE_CYCLES,
)

# ----------------------------------------------------------------------
# Representation 1: English
# ----------------------------------------------------------------------
ENGLISH = EnglishInterface(
    accelerator="optimus-prime",
    statements=(
        PerformanceStatement(
            metric="Latency",
            relation=Relation.INCREASES_WITH,
            quantity="the message's encoded size",
            accessor=lambda msg: float(msg.encoded_size()),
        ),
        PerformanceStatement(
            metric="Throughput",
            relation=Relation.DECREASES_WITH,
            quantity="the message's encoded size",
            accessor=lambda msg: float(msg.encoded_size()),
        ),
    ),
)


# ----------------------------------------------------------------------
# Representation 2: executable Python program
# ----------------------------------------------------------------------
def latency_optimusprime(msg: Message, descriptor_cache_hit: bool = True) -> float:
    """Transform latency in cycles: pipeline restart, one parser-array
    step per field, streaming at the array's fixed rate, plus a schema
    fetch per (sub)message when the descriptor cache misses."""
    cycles = PER_MESSAGE_CYCLES
    cycles += PER_FIELD_CYCLES * msg.total_fields
    cycles += msg.encoded_size() / BYTES_PER_CYCLE
    if not descriptor_cache_hit:
        cycles += DESCRIPTOR_MISS_CYCLES * msg.total_messages
    return cycles


def tput_optimusprime(msg: Message) -> float:
    """Messages/cycle: the parser array is a single non-overlapping
    pipeline, so throughput is the reciprocal of latency."""
    return 1.0 / latency_optimusprime(msg)


PROGRAM = ProgramInterface(
    "optimus-prime",
    latency_fn=latency_optimusprime,
    throughput_fn=tput_optimusprime,
)


def all_interfaces() -> dict[str, object]:
    return {"english": ENGLISH, "program": PROGRAM}


def perflint_bundle():
    """Everything the perf-lint toolchain audits for this accelerator
    (``python -m repro.tools.perflint optimusprime``)."""
    from repro.lint import InterfaceBundle

    from repro.accel.protoacc.formats import instances

    return InterfaceBundle(
        accelerator="optimus-prime",
        english=ENGLISH,
        program=PROGRAM,
        program_fns={
            "latency": latency_optimusprime,
            "throughput": tput_optimusprime,
        },
        workload_type=Message,
        samples=list(instances(seed=5).values()),
    )
