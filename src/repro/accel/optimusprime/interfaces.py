"""Performance interfaces for Optimus Prime, the in-place transformer.

The paper's example #2 pits Protoacc against Optimus Prime and argues a
designer choosing between them needs *interfaces*, not papers: Optimus
Prime wins on small objects (descriptor cache, no pointer chasing) and
loses on large ones (modest parser-array streaming rate).  These are
the interfaces that make that comparison mechanical — an English
summary and an executable program, both derived from the constants of
:mod:`repro.accel.optimusprime.model`.

A Petri-net representation (one single-server transition) ships too,
so the pool runtime's ``interface_predicted`` router can price this
device through the compiled engine and a shared :class:`EvalCache`
like every other pooled accelerator.  The lint bundle audits all
three representations, and ``pnet verify`` proves the net's latency
contract (symbolic bounds + monotonicity certificates).
"""

from __future__ import annotations

from repro.accel.protoacc.message import Message
from repro.core.nl import EnglishInterface, PerformanceStatement, Relation
from repro.core.program import ProgramInterface

from .model import (
    BYTES_PER_CYCLE,
    DESCRIPTOR_MISS_CYCLES,
    PER_FIELD_CYCLES,
    PER_MESSAGE_CYCLES,
)

# ----------------------------------------------------------------------
# Representation 1: English
# ----------------------------------------------------------------------
ENGLISH = EnglishInterface(
    accelerator="optimus-prime",
    statements=(
        PerformanceStatement(
            metric="Latency",
            relation=Relation.INCREASES_WITH,
            quantity="the message's encoded size",
            accessor=lambda msg: float(msg.encoded_size()),
        ),
        PerformanceStatement(
            metric="Throughput",
            relation=Relation.DECREASES_WITH,
            quantity="the message's encoded size",
            accessor=lambda msg: float(msg.encoded_size()),
        ),
    ),
)


# ----------------------------------------------------------------------
# Representation 2: executable Python program
# ----------------------------------------------------------------------
def latency_optimusprime(msg: Message, descriptor_cache_hit: bool = True) -> float:
    """Transform latency in cycles: pipeline restart, one parser-array
    step per field, streaming at the array's fixed rate, plus a schema
    fetch per (sub)message when the descriptor cache misses."""
    cycles = PER_MESSAGE_CYCLES
    cycles += PER_FIELD_CYCLES * msg.total_fields
    cycles += msg.encoded_size() / BYTES_PER_CYCLE
    if not descriptor_cache_hit:
        cycles += DESCRIPTOR_MISS_CYCLES * msg.total_messages
    return cycles


def tput_optimusprime(msg: Message) -> float:
    """Messages/cycle: the parser array is a single non-overlapping
    pipeline, so throughput is the reciprocal of latency."""
    return 1.0 / latency_optimusprime(msg)


PROGRAM = ProgramInterface(
    "optimus-prime",
    latency_fn=latency_optimusprime,
    throughput_fn=tput_optimusprime,
)


# ----------------------------------------------------------------------
# Representation 3: Petri-net IR (serving-layer addition)
# ----------------------------------------------------------------------
#: Optimus Prime is a single non-overlapping parser-array pipeline, so
#: its net is one single-server transition: restart + per-field dispatch
#: + bandwidth-limited streaming, the same structure the model implements.
#: Shipped so the pool runtime's ``interface_predicted`` router can
#: price this device through the same compiled-engine + EvalCache path
#: as every other pooled accelerator.
OPTIMUS_PNET = """
net optimus_prime

place in
place out

inject in fields fields size

transition transform
  consume in
  produce out
  delay expr: 20 + 0.5 * tok["fields"] + tok["size"] / 2.0
"""


def tokenize_message(msg: Message):
    """One token per message: the parser array does not overlap them."""
    from repro.core.petrinet import Injection

    return [
        Injection(
            place="in",
            payload={"fields": msg.total_fields, "size": msg.encoded_size()},
        )
    ]


def petri_interface(*, engine=None, cache=None, tracer=None):
    """Build the Petri-net interface (fresh net, reusable across items)."""
    from repro.core.petrinet import PetriNetInterface
    from repro.petri import parse

    return PetriNetInterface(
        "optimus-prime",
        net_factory=lambda: parse(OPTIMUS_PNET),
        tokenize=tokenize_message,
        sink="out",
        pnet_text=OPTIMUS_PNET,
        engine=engine,
        cache=cache,
        tracer=tracer,
    )


def all_interfaces() -> dict[str, object]:
    return {"english": ENGLISH, "program": PROGRAM, "petri-net": petri_interface()}


#: Token-field value ranges the transform contract is stated over:
#: up to 256 fields and 4 KiB of encoded message.
PNET_FEATURE_DOMAINS = {
    "fields": (0.0, 256.0),
    "size": (0.0, 4096.0),
}


def perflint_bundle():
    """Everything the perf-lint toolchain audits for this accelerator
    (``python -m repro.tools.perflint optimusprime``) — the
    single-transition Petri net included, so ``pnet verify`` can prove
    the transform's latency contract."""
    from repro.lint import InterfaceBundle

    from repro.accel.protoacc.formats import instances

    return InterfaceBundle(
        accelerator="optimus-prime",
        english=ENGLISH,
        program=PROGRAM,
        program_fns={
            "latency": latency_optimusprime,
            "throughput": tput_optimusprime,
        },
        workload_type=Message,
        pnet_text=OPTIMUS_PNET,
        pnet_file="src/repro/accel/optimusprime/interfaces.py#OPTIMUS_PNET",
        samples=list(instances(seed=5).values()),
        feature_domains=PNET_FEATURE_DOMAINS,
        declared_monotone={
            "fields": +1,
            "size": +1,
            "total_fields": +1,
            "encoded_size": +1,
        },
    )


def perf_contract():
    """The transform's verified performance contract (derived fresh;
    callers that price many requests should cache it — the pool
    runtime does)."""
    from repro.lint import analyze_bundle

    return analyze_bundle(perflint_bundle()).contract
