"""Optimus Prime: the small-object RPC-transformation baseline."""

from .model import CLOCK_GHZ, OptimusPrimeModel

__all__ = ["CLOCK_GHZ", "OptimusPrimeModel"]
