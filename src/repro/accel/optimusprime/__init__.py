"""Optimus Prime: the small-object RPC-transformation baseline."""

from .interfaces import ENGLISH, PROGRAM, all_interfaces, petri_interface
from .model import CLOCK_GHZ, OptimusPrimeModel

__all__ = [
    "CLOCK_GHZ",
    "ENGLISH",
    "PROGRAM",
    "OptimusPrimeModel",
    "all_interfaces",
    "petri_interface",
]
