"""Analytic model of Optimus Prime, the small-object data transformer.

Optimus Prime (ASPLOS'20) is Protoacc's main competitor in the paper's
example #2.  Architecturally it keeps schema descriptors in an on-chip
cache and transforms the object *in place* through a parser array, so a
message pays almost no per-message memory round trips — but the parser
array's streaming rate is modest.  Net effect (paper §2): best suited
for small objects (<= ~300 B), overtaken by Protoacc on large ones.

We model it at the same granularity the paper discusses it: a fixed
per-message pipeline overhead, a per-field dispatch cost, and a
bandwidth-limited streaming term, plus a descriptor-cache miss penalty
for schemas beyond the cache.  Constants are chosen so the published
headline numbers come out: ~33 Gbps peak streaming at 2 GHz, dropping
to ~14 Gbps on a realistic small-object RPC mix.
"""

from __future__ import annotations

from repro.accel.base import AcceleratorModel
from repro.accel.protoacc.message import Message

#: Core clock used to convert cycles to wire rates.
CLOCK_GHZ = 2.0

PER_MESSAGE_CYCLES = 20.0      # pipeline restart + dispatch
PER_FIELD_CYCLES = 0.5         # parser-array step per field
BYTES_PER_CYCLE = 2.0          # streaming transform rate
DESCRIPTOR_CACHE_SCHEMAS = 64  # schemas resident on chip
DESCRIPTOR_MISS_CYCLES = 180.0  # fetch schema from host memory


class OptimusPrimeModel(AcceleratorModel[Message]):
    """Cycle model of Optimus Prime serialization."""

    name = "optimus-prime"

    def __init__(self, descriptor_cache_hit: bool = True):
        #: Whether the workload's schemas fit the descriptor cache
        #: (true for every suite in this repo; expose for what-ifs).
        self.descriptor_cache_hit = descriptor_cache_hit

    def measure_latency(self, item: Message) -> float:
        cycles = PER_MESSAGE_CYCLES
        cycles += PER_FIELD_CYCLES * item.total_fields
        cycles += item.encoded_size() / BYTES_PER_CYCLE
        if not self.descriptor_cache_hit:
            cycles += DESCRIPTOR_MISS_CYCLES * item.total_messages
        return cycles

    def measure_throughput(self, item: Message, repeat: int = 8) -> float:
        # The parser array is a single pipeline: messages do not overlap.
        return 1.0 / self.measure_latency(item)

    def gbps(self, item: Message) -> float:
        """Sustained wire rate for a stream of items like this one."""
        bytes_per_cycle = item.encoded_size() * self.measure_throughput(item)
        return bytes_per_cycle * CLOCK_GHZ * 8

    @staticmethod
    def peak_gbps() -> float:
        """Vendor headline: streaming rate with overheads amortized."""
        return BYTES_PER_CYCLE * CLOCK_GHZ * 8
