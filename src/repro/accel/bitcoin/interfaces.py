"""Performance interfaces for the Bitcoin miner.

The miner is the paper's example of a *configuration-sensitive*
interface: performance depends on a synthesis parameter (``Loop``)
rather than on the input, and the interface exposes the area/latency
tradeoff an SoC designer needs (paper example #1).
"""

from __future__ import annotations

from repro.core.nl import EnglishInterface, PerformanceStatement, Relation
from repro.core.petrinet import Injection, PetriNetInterface
from repro.core.program import ProgramInterface
from repro.petri import parse

from .model import CONTROL_AREA, ROUND_LOGIC_AREA, SCHEDULE_AREA, BitcoinMinerModel
from .workload import MiningJob

# ----------------------------------------------------------------------
# Representation 1: English (paper Fig. 1, second entry)
# ----------------------------------------------------------------------
ENGLISH = EnglishInterface(
    accelerator="bitcoin-miner",
    statements=(
        PerformanceStatement(
            metric="Latency (cycles)",
            relation=Relation.EQUALS_PARAM,
            quantity="Loop",
            # The property lives in the *configuration*, not the
            # workload item: the accessor reads the Loop parameter.
            accessor=lambda loop: float(loop),
        ),
        PerformanceStatement(
            metric="However, the area occupied by the accelerator",
            relation=Relation.INVERSELY_PROPORTIONAL,
            quantity="Loop",
            accessor=lambda loop: float(loop),
        ),
    ),
)

# ----------------------------------------------------------------------
# Representation 2: executable Python program
# ----------------------------------------------------------------------


def latency_miner(loop: int) -> float:
    """Cycles for one SHA-256 compression pass: exactly ``Loop``."""
    return float(loop)


def latency_attempt(loop: int) -> float:
    """Cycles for a full double-SHA nonce attempt."""
    return 2.0 * loop


def tput_miner(loop: int) -> float:
    """Nonce attempts per cycle: the folded core's initiation interval
    equals ``Loop`` (the two chained hash cores overlap)."""
    return 1.0 / loop


def area_miner(loop: int) -> float:
    """Datapath area in gate-equivalents: grows inversely with Loop."""
    return 64 / loop * (ROUND_LOGIC_AREA + SCHEDULE_AREA) * 2 + CONTROL_AREA


def mining_cycles(loop: int, expected_attempts: float) -> float:
    """Expected cycles to find a nonce needing ``expected_attempts``."""
    return latency_attempt(loop) + (expected_attempts - 1) * loop


def program_interface(loop: int) -> ProgramInterface[MiningJob]:
    """Interface bundle for one configuration (item = a nonce attempt)."""
    return ProgramInterface(
        "bitcoin-miner",
        latency_fn=lambda _job: latency_attempt(loop),
        throughput_fn=lambda _job: tput_miner(loop),
    )


# ----------------------------------------------------------------------
# Representation 3: Petri-net IR
# ----------------------------------------------------------------------
MINER_PNET_TEMPLATE = """
net bitcoin_miner

place in
place mid capacity 1
place out

inject in

transition hash1
  consume in
  produce mid
  delay {loop}

transition hash2
  consume mid
  produce out
  delay {loop}
"""


def petri_interface(loop: int) -> PetriNetInterface[MiningJob]:
    """Two folded cores in series; each is busy ``Loop`` cycles/pass."""
    text = MINER_PNET_TEMPLATE.format(loop=loop)
    return PetriNetInterface(
        "bitcoin-miner",
        net_factory=lambda: parse(text),
        tokenize=lambda _job: [Injection("in", payload=None)],
        sink="out",
        pnet_text=text,
    )


def all_interfaces(loop: int = 8) -> dict[str, object]:
    return {
        "english": ENGLISH,
        "program": program_interface(loop),
        "petri-net": petri_interface(loop),
    }


def perflint_bundle(loop: int = 8):
    """Everything the perf-lint toolchain audits for this accelerator
    (``python -m repro.tools.perflint bitcoin``).  The miner is
    configuration-sensitive, so the audited net is one representative
    synthesis point; the program functions cover every Loop."""
    from repro.lint import InterfaceBundle

    return InterfaceBundle(
        accelerator="bitcoin-miner",
        english=ENGLISH,
        program=program_interface(loop),
        program_fns={
            "latency": latency_miner,
            "attempt-latency": latency_attempt,
            "throughput": tput_miner,
            "area": area_miner,
            "mining-cycles": mining_cycles,
        },
        pnet_text=MINER_PNET_TEMPLATE.format(loop=loop),
        pnet_file="src/repro/accel/bitcoin/interfaces.py#MINER_PNET_TEMPLATE",
    )


def area_latency_frontier() -> list[dict[str, float]]:
    """The design-space table an SoC designer reads off the interface:
    every legal Loop with its pass latency, hashrate, and area."""
    from .model import VALID_LOOPS

    rows = []
    for loop in VALID_LOOPS:
        model = BitcoinMinerModel(loop)
        rows.append(
            {
                "loop": float(loop),
                "latency": float(model.pass_latency()),
                "hashrate": model.hashrate(),
                "area": model.area(),
            }
        )
    return rows
