"""Ground-truth model of an unroll-parameterized SHA-256 Bitcoin miner.

Modeled on the open-source FPGA miner the paper cites: a double-SHA-256
datapath whose degree of loop unrolling is a synthesis parameter.  With
``Loop = L`` (L must divide 64), each clock cycle executes ``64 / L``
compression rounds in combinational series, so

* one compression pass takes exactly ``L`` cycles (the paper's Fig. 1:
  "Latency (cycles) is equal to the configuration parameter Loop"), and
* the round logic is instantiated ``64 / L`` times, so datapath area
  grows inversely with ``L`` ("the area occupied by the accelerator
  grows inversely with Loop").

The miner chains two folded cores (hash #1 feeds hash #2), pipelined at
the attempt level: a new nonce enters every ``L`` cycles.  Mining is
*functional*: the model computes real double-SHA-256 digests (using
:mod:`repro.accel.bitcoin.sha256`) and finds real nonces, while the
cycle accounting follows the round schedule exactly.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.accel.base import AcceleratorModel, HasAreaModel

from . import sha256 as sha
from .workload import MiningJob

#: Legal unroll configurations: Loop must divide the 64 rounds.
VALID_LOOPS = (1, 2, 4, 8, 16, 32, 64)

# Area model, in gate-equivalents (relative units).
ROUND_LOGIC_AREA = 1180   # one combinational round instance
SCHEDULE_AREA = 240       # message-schedule expansion per instance
CONTROL_AREA = 96         # counters / nonce increment / compare


@dataclass(frozen=True)
class MiningResult:
    """Outcome of a mining run."""

    nonce: int | None
    attempts: int
    cycles: float
    digest: bytes | None

    @property
    def found(self) -> bool:
        return self.nonce is not None


class BitcoinMinerModel(AcceleratorModel[MiningJob], HasAreaModel):
    """Cycle-level miner with a configurable unroll factor."""

    name = "bitcoin-miner"

    def __init__(self, loop: int = 8):
        if loop not in VALID_LOOPS:
            raise ValueError(f"loop must be one of {VALID_LOOPS}, got {loop}")
        self.loop = loop

    # ------------------------------------------------------------------
    # Timing primitives
    # ------------------------------------------------------------------
    def pass_latency(self) -> int:
        """Cycles for one compression pass, derived from the schedule.

        Walks the actual round schedule (groups of ``64/loop`` rounds
        per cycle) rather than returning ``loop``, so the Fig. 1 claim
        is *measured*, not assumed.
        """
        rounds_per_cycle = 64 // self.loop
        cycles = 0
        executed = 0
        while executed < 64:
            executed += rounds_per_cycle
            cycles += 1
        return cycles

    def attempt_latency(self) -> int:
        """Cycles for one full double-SHA nonce attempt (two passes)."""
        return 2 * self.pass_latency()

    def attempt_interval(self) -> int:
        """Steady-state cycles between attempts: the folded core accepts
        a new nonce every ``loop`` cycles (the two chained cores overlap).
        """
        return self.pass_latency()

    def area(self) -> float:
        instances = 64 // self.loop
        return instances * (ROUND_LOGIC_AREA + SCHEDULE_AREA) * 2 + CONTROL_AREA

    def hashrate(self) -> float:
        """Attempts per cycle at saturation."""
        return 1.0 / self.attempt_interval()

    # ------------------------------------------------------------------
    # Functional mining
    # ------------------------------------------------------------------
    def mine(self, job: MiningJob, max_attempts: int = 1 << 20) -> MiningResult:
        """Search nonces until the target is met (real hashes).

        Cycle accounting: pipeline fill of one ``attempt_latency`` plus
        one ``attempt_interval`` per attempt issued.
        """
        mid = sha.midstate(job.header(0))
        tail_pad = sha.padding(80)
        attempts = 0
        nonce = job.start_nonce
        while attempts < max_attempts:
            header = job.header(nonce)
            # Hardware reuses the midstate; only the 16-byte header tail
            # (time/bits/nonce) plus padding goes through the core.
            state = sha.compress(mid, header[64:] + tail_pad)
            digest = sha.sha256(struct.pack(">8I", *state))
            attempts += 1
            if sha.hash_meets_target(digest, job.target):
                cycles = self.attempt_latency() + (attempts - 1) * self.attempt_interval()
                return MiningResult(nonce, attempts, float(cycles), digest)
            nonce = (nonce + 1) & 0xFFFFFFFF
        cycles = self.attempt_latency() + (attempts - 1) * self.attempt_interval()
        return MiningResult(None, attempts, float(cycles), None)

    # ------------------------------------------------------------------
    # AcceleratorModel contract (item = one nonce attempt of a job)
    # ------------------------------------------------------------------
    def measure_latency(self, item: MiningJob) -> float:
        return float(self.attempt_latency())

    def measure_throughput(self, item: MiningJob, repeat: int = 8) -> float:
        return self.hashrate()
