"""Mining jobs: the Bitcoin miner's workload items.

A job is a candidate block header (80 bytes) plus a difficulty target.
Targets here are deliberately easy (tens of leading zero bits, not the
network's ~70+) so that functional mining runs finish in test time.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class MiningJob:
    """One unit of mining work.

    Attributes:
        version: Block version word.
        prev_hash: 32-byte previous block hash.
        merkle_root: 32-byte merkle root.
        timestamp: Block time.
        bits: Compact difficulty encoding (carried, not interpreted).
        target: Success threshold — a digest, read little-endian, must
            be <= target.
        start_nonce: First nonce to try.
    """

    version: int
    prev_hash: bytes
    merkle_root: bytes
    timestamp: int
    bits: int
    target: int
    start_nonce: int = 0

    def __post_init__(self) -> None:
        if len(self.prev_hash) != 32 or len(self.merkle_root) != 32:
            raise ValueError("prev_hash and merkle_root must be 32 bytes")
        if not 0 < self.target < 2**256:
            raise ValueError("target must be in (0, 2^256)")

    def header(self, nonce: int) -> bytes:
        """Serialize the 80-byte header for a nonce attempt."""
        return (
            struct.pack("<I", self.version)
            + self.prev_hash
            + self.merkle_root
            + struct.pack("<III", self.timestamp, self.bits, nonce & 0xFFFFFFFF)
        )

    @property
    def difficulty_bits(self) -> int:
        """Approximate leading-zero-bit requirement of the target."""
        return 256 - self.target.bit_length()


def target_for_zero_bits(zero_bits: int) -> int:
    """Target requiring roughly ``zero_bits`` leading zero bits."""
    if not 0 <= zero_bits < 256:
        raise ValueError("zero_bits must be in [0, 256)")
    return (1 << (256 - zero_bits)) - 1


def random_job(
    rng: np.random.Generator, *, zero_bits: int = 10, start_nonce: int = 0
) -> MiningJob:
    """Draw a random job at the given (easy) difficulty."""
    return MiningJob(
        version=0x20000000,
        prev_hash=rng.bytes(32),
        merkle_root=rng.bytes(32),
        timestamp=int(rng.integers(1_600_000_000, 1_700_000_000)),
        bits=0x207FFFFF,
        target=target_for_zero_bits(zero_bits),
        start_nonce=start_nonce,
    )


def random_jobs(seed: int, count: int, **kwargs) -> list[MiningJob]:
    rng = np.random.default_rng(seed)
    return [random_job(rng, **kwargs) for _ in range(count)]
