"""SHA-256 Bitcoin miner: functional hashing plus an unroll-parameterized
timing/area model (stand-in for the paper's open-source FPGA miner)."""

from .interfaces import (
    ENGLISH,
    all_interfaces,
    area_latency_frontier,
    area_miner,
    latency_attempt,
    latency_miner,
    mining_cycles,
    petri_interface,
    program_interface,
    tput_miner,
)
from .model import VALID_LOOPS, BitcoinMinerModel, MiningResult
from .sha256 import sha256, sha256d
from .workload import MiningJob, random_job, random_jobs, target_for_zero_bits

__all__ = [
    "ENGLISH",
    "VALID_LOOPS",
    "BitcoinMinerModel",
    "MiningJob",
    "MiningResult",
    "all_interfaces",
    "area_latency_frontier",
    "area_miner",
    "latency_attempt",
    "latency_miner",
    "mining_cycles",
    "petri_interface",
    "program_interface",
    "random_job",
    "random_jobs",
    "sha256",
    "sha256d",
    "target_for_zero_bits",
    "tput_miner",
]
