"""Functional SHA-256, implemented from scratch (FIPS 180-4).

The miner model needs real hash semantics so that mining runs find real
nonces; implementing the compression function round-by-round also lets
the timing model count *exactly* the rounds the hardware schedule
executes per cycle for a given unroll factor.
"""

from __future__ import annotations

import struct
from collections.abc import Iterable

_K = [
    0x428A2F98, 0x71374491, 0xB5C0FBCF, 0xE9B5DBA5, 0x3956C25B, 0x59F111F1,
    0x923F82A4, 0xAB1C5ED5, 0xD807AA98, 0x12835B01, 0x243185BE, 0x550C7DC3,
    0x72BE5D74, 0x80DEB1FE, 0x9BDC06A7, 0xC19BF174, 0xE49B69C1, 0xEFBE4786,
    0x0FC19DC6, 0x240CA1CC, 0x2DE92C6F, 0x4A7484AA, 0x5CB0A9DC, 0x76F988DA,
    0x983E5152, 0xA831C66D, 0xB00327C8, 0xBF597FC7, 0xC6E00BF3, 0xD5A79147,
    0x06CA6351, 0x14292967, 0x27B70A85, 0x2E1B2138, 0x4D2C6DFC, 0x53380D13,
    0x650A7354, 0x766A0ABB, 0x81C2C92E, 0x92722C85, 0xA2BFE8A1, 0xA81A664B,
    0xC24B8B70, 0xC76C51A3, 0xD192E819, 0xD6990624, 0xF40E3585, 0x106AA070,
    0x19A4C116, 0x1E376C08, 0x2748774C, 0x34B0BCB5, 0x391C0CB3, 0x4ED8AA4A,
    0x5B9CCA4F, 0x682E6FF3, 0x748F82EE, 0x78A5636F, 0x84C87814, 0x8CC70208,
    0x90BEFFFA, 0xA4506CEB, 0xBEF9A3F7, 0xC67178F2,
]

_H0 = (
    0x6A09E667, 0xBB67AE85, 0x3C6EF372, 0xA54FF53A,
    0x510E527F, 0x9B05688C, 0x1F83D9AB, 0x5BE0CD19,
)

_MASK = 0xFFFFFFFF


def _rotr(x: int, n: int) -> int:
    return ((x >> n) | (x << (32 - n))) & _MASK


def _schedule(block: bytes) -> list[int]:
    """Expand a 64-byte block into the 64-entry message schedule."""
    w = list(struct.unpack(">16I", block))
    for t in range(16, 64):
        s0 = _rotr(w[t - 15], 7) ^ _rotr(w[t - 15], 18) ^ (w[t - 15] >> 3)
        s1 = _rotr(w[t - 2], 17) ^ _rotr(w[t - 2], 19) ^ (w[t - 2] >> 10)
        w.append((w[t - 16] + s0 + w[t - 7] + s1) & _MASK)
    return w


def compress(state: tuple[int, ...], block: bytes) -> tuple[int, ...]:
    """One compression-function application (64 rounds)."""
    if len(block) != 64:
        raise ValueError("block must be exactly 64 bytes")
    w = _schedule(block)
    a, b, c, d, e, f, g, h = state
    for t in range(64):
        s1 = _rotr(e, 6) ^ _rotr(e, 11) ^ _rotr(e, 25)
        ch = (e & f) ^ (~e & g)
        t1 = (h + s1 + ch + _K[t] + w[t]) & _MASK
        s0 = _rotr(a, 2) ^ _rotr(a, 13) ^ _rotr(a, 22)
        maj = (a & b) ^ (a & c) ^ (b & c)
        t2 = (s0 + maj) & _MASK
        a, b, c, d, e, f, g, h = (t1 + t2) & _MASK, a, b, c, (d + t1) & _MASK, e, f, g
    return tuple((x + y) & _MASK for x, y in zip(state, (a, b, c, d, e, f, g, h), strict=True))


def padding(length: int) -> bytes:
    """SHA-256 padding for a message of ``length`` bytes."""
    pad_len = (55 - length) % 64
    return b"\x80" + b"\x00" * pad_len + struct.pack(">Q", length * 8)


def sha256(data: bytes) -> bytes:
    """Digest of ``data`` (reference implementation, big-endian out)."""
    padded = data + padding(len(data))
    state = _H0
    for off in range(0, len(padded), 64):
        state = compress(state, padded[off : off + 64])
    return struct.pack(">8I", *state)


def sha256d(data: bytes) -> bytes:
    """Bitcoin's double SHA-256."""
    return sha256(sha256(data))


def midstate(data: bytes) -> tuple[int, ...]:
    """State after compressing the first 64-byte block of ``data``.

    Mining hardware precomputes this once per work unit: the 80-byte
    block header spans two blocks, and only the second (which holds the
    nonce) changes per attempt.
    """
    if len(data) < 64:
        raise ValueError("need at least one full block for a midstate")
    return compress(_H0, data[:64])


def hash_meets_target(digest: bytes, target: int) -> bool:
    """Bitcoin success test: interpret the digest as a little-endian
    256-bit integer and compare against the target."""
    return int.from_bytes(digest, "little") <= target


def count_leading_zero_bits(digest: bytes) -> int:
    """Leading zero bits of the little-endian digest (difficulty proxy)."""
    value = int.from_bytes(digest, "little")
    return 256 - value.bit_length()


def rounds(blocks: Iterable[bytes]) -> int:
    """Total compression rounds to hash the given blocks (64 each)."""
    return sum(64 for _ in blocks)
