"""Ground-truth model of the VTA deep-learning accelerator.

Four engines run concurrently as communicating processes
(:mod:`repro.hw.proc`):

* **fetch** dispatches one instruction per cycle into per-module
  command queues (depth 512);
* **load** DMAs input/weight tiles from DRAM;
* **compute** executes GEMM and ALU instructions (one micro-op per
  cycle in the GEMM core) and also performs UOP/ACC loads;
* **store** DMAs results back to DRAM.

They synchronize only through the four dependency-token queues, exactly
as in the VTA microarchitecture, which reproduces the paper's listed
complexities: "internal queuing, parallelism, and deep pipelines".

All DMA goes through one shared :class:`repro.hw.Dram` streaming port,
so load/store/microcode traffic *contends* — the micro-effect the
Petri-net interface summarizes with a fitted average factor, and the
main source of its ~1-2% error (DESIGN.md §6).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.accel.base import AcceleratorModel
from repro.hw import Dram, DramConfig, EventSim
from repro.hw.kernel import SimError
from repro.hw.proc import Delay, Get, ProcQueue, Put, spawn

from .isa import Buffer, Instruction, Module, Opcode, Program, token_balance


@dataclass(frozen=True)
class VtaConfig:
    """Microarchitectural parameters (defaults follow the de10-nano-ish
    VTA configuration, scaled to byte units)."""

    dispatch_cycles: float = 1.0
    cmd_queue_depth: int = 512
    gemm_setup: int = 16        # pipeline fill of the GEMM core
    alu_setup: int = 8
    vector_lanes: int = 16
    load_setup: int = 12        # DMA descriptor + SRAM handshake
    store_setup: int = 12
    finish_cycles: int = 1
    inp_buffer: int = 32 << 10
    wgt_buffer: int = 256 << 10
    acc_buffer: int = 128 << 10
    uop_buffer: int = 8 << 10
    dram: DramConfig = field(default_factory=DramConfig)

    def buffer_capacity(self, buffer: Buffer) -> int:
        return {
            Buffer.INP: self.inp_buffer,
            Buffer.WGT: self.wgt_buffer,
            Buffer.ACC: self.acc_buffer,
            Buffer.UOP: self.uop_buffer,
        }[buffer]


@dataclass
class VtaRunResult:
    """Timing of one simulated run."""

    cycles: float
    insn_end: list[float]          # completion time per instruction (program order)
    module_busy: dict[str, float]  # busy time per module
    dram_accesses: int

    def copy_ends(self, copies: int) -> list[float]:
        """For a run of N concatenated copies, the end time of each."""
        if copies < 1 or len(self.insn_end) % copies:
            raise ValueError("instruction count must divide into copies")
        per = len(self.insn_end) // copies
        return [max(self.insn_end[k * per : (k + 1) * per]) for k in range(copies)]


class VtaModel(AcceleratorModel[Program]):
    """Cycle-level VTA: the reproduction's ground truth for Table 1/E5-E6."""

    name = "vta"

    def __init__(self, config: VtaConfig | None = None):
        self.config = config or VtaConfig()

    # ------------------------------------------------------------------
    # Instruction service times (excluding DMA, which is live DRAM)
    # ------------------------------------------------------------------
    def gemm_cycles(self, insn: Instruction) -> float:
        return self.config.gemm_setup + insn.gemm_macs

    def alu_cycles(self, insn: Instruction) -> float:
        lanes = self.config.vector_lanes
        per_iter = -(-insn.vector_len // lanes) * (1 if insn.use_imm else 2)
        return self.config.alu_setup + insn.iterations * per_iter

    # ------------------------------------------------------------------
    def run(self, program: Program) -> VtaRunResult:
        """Simulate one program from a cold start; validates first."""
        balance = token_balance(program)
        negative = {q: b for q, b in balance.items() if b < 0}
        if negative:
            raise SimError(
                f"program {program.name!r} pops tokens never pushed: {negative}"
            )
        cfg = self.config
        sim = EventSim()
        dram = Dram(cfg.dram)

        cmd: dict[Module, ProcQueue] = {
            m: ProcQueue(sim, cfg.cmd_queue_depth, f"cmd_{m.value}") for m in Module
        }
        dep = {name: ProcQueue(sim, None, name) for name in ("l2c", "c2l", "c2s", "s2c")}
        insn_end = [0.0] * len(program)
        busy = {m.value: 0.0 for m in Module}

        def fetch() -> ProcGen:  # noqa: F821 - doc type only
            for idx, insn in enumerate(program.instructions):
                yield Delay(cfg.dispatch_cycles)
                yield Put(cmd[insn.module], (idx, insn))

        def module_proc(module: Module):
            pops, pushes = _dep_wiring(module, dep)
            count = len(program.by_module(module))
            for _ in range(count):
                idx, insn = yield Get(cmd[module])
                for flag, queue in pops:
                    if getattr(insn, flag):
                        yield Get(queue)
                start = sim.now
                if insn.op in (Opcode.LOAD, Opcode.STORE):
                    setup = (
                        cfg.store_setup if insn.op is Opcode.STORE else cfg.load_setup
                    )
                    yield Delay(setup)
                    end = dram.stream(insn.addr, sim.now, insn.size)
                    yield Delay(end - sim.now)
                elif insn.op is Opcode.GEMM:
                    yield Delay(self.gemm_cycles(insn))
                elif insn.op is Opcode.ALU:
                    yield Delay(self.alu_cycles(insn))
                else:  # FINISH
                    yield Delay(cfg.finish_cycles)
                busy[module.value] += sim.now - start
                insn_end[idx] = sim.now
                for flag, queue in pushes:
                    if getattr(insn, flag):
                        yield Put(queue, 1)

        statuses = [spawn(sim, fetch(), name="fetch")]
        for m in Module:
            statuses.append(spawn(sim, module_proc(m), name=m.value))
        sim.run()
        stuck = [s["name"] for s in statuses if not s["done"]]
        if stuck:
            raise SimError(
                f"program {program.name!r} deadlocked; stuck modules: {stuck}"
            )
        return VtaRunResult(
            cycles=max(insn_end),
            insn_end=insn_end,
            module_busy=busy,
            dram_accesses=dram.accesses,
        )

    # ------------------------------------------------------------------
    # AcceleratorModel contract
    # ------------------------------------------------------------------
    def measure_latency(self, item: Program) -> float:
        return self.run(item).cycles

    #: Copies excluded from the throughput measurement while the
    #: pipeline warms up (buffers fill, DRAM rows open).
    THROUGHPUT_WARMUP = 2

    def measure_throughput(self, item: Program, repeat: int = 6) -> float:
        """Programs stream back-to-back; modules overlap across copies.
        The steady-state period is measured after a warm-up prefix."""
        if repeat < 1:
            raise ValueError("repeat must be >= 1")
        if repeat <= self.THROUGHPUT_WARMUP + 1:
            return 1.0 / self.measure_latency(item)
        combined = item.streamed(repeat)
        result = self.run(combined)
        ends = result.copy_ends(repeat)
        skip = self.THROUGHPUT_WARMUP
        return (repeat - 1 - skip) / (ends[-1] - ends[skip])


def _dep_wiring(module: Module, dep: dict[str, ProcQueue]):
    """(pop_flag, queue) and (push_flag, queue) pairs for a module,
    following VTA's prev/next convention (compute sits in the middle)."""
    if module is Module.LOAD:
        pops = [("pop_next", dep["c2l"])]
        pushes = [("push_next", dep["l2c"])]
    elif module is Module.COMPUTE:
        pops = [("pop_prev", dep["l2c"]), ("pop_next", dep["s2c"])]
        pushes = [("push_prev", dep["c2l"]), ("push_next", dep["c2s"])]
    else:
        pops = [("pop_prev", dep["c2s"])]
        pushes = [("push_prev", dep["s2c"])]
    return pops, pushes
