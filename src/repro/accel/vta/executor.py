"""Functional execution of tiled GEMM schedules.

Auto-tuning explores many lowerings of the *same* matmul; a schedule
that is fast but wrong is worthless.  This executor runs a (workload,
tiling) pair's semantics — the exact tile loop nest
:func:`~repro.accel.vta.workload.tiled_gemm_program` lowers — over real
int8 matrices, and can simultaneously walk the lowered instruction
stream to verify it matches the loop nest (sizes, order, and final
FINISH).  The autotune tests use it to assert every candidate the tuner
considers computes the same result.
"""

from __future__ import annotations

import numpy as np

from .isa import Buffer, Opcode, Program
from .workload import BLOCK, GemmWorkload, Tiling


class SemanticsError(Exception):
    """The instruction stream does not implement the expected loop nest."""


def random_operands(
    work: GemmWorkload, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Random int8 operands with the workload's dimensions."""
    a = rng.integers(-128, 128, size=(work.m * BLOCK, work.k * BLOCK), dtype=np.int64)
    b = rng.integers(-128, 128, size=(work.k * BLOCK, work.n * BLOCK), dtype=np.int64)
    return a, b


def reference_gemm(a: np.ndarray, b: np.ndarray, *, relu: bool = False) -> np.ndarray:
    """The semantics every schedule must reproduce."""
    c = a @ b
    if relu:
        c = np.maximum(c, 0)
    return c


class _ProgramWalker:
    """Checks the lowered instruction stream against the loop nest."""

    def __init__(self, program: Program):
        self._insns = list(program.instructions)
        self._pos = 0
        # Microcode loads run on the compute module interleaved with the
        # nest; skip them wherever they appear.

    def _next(self) -> object:
        while self._pos < len(self._insns):
            insn = self._insns[self._pos]
            self._pos += 1
            if insn.op is Opcode.LOAD and insn.buffer is Buffer.UOP:
                continue
            return insn
        raise SemanticsError("instruction stream ended early")

    def expect_load(self, buffer: Buffer, size: int) -> None:
        insn = self._next()
        if insn.op is not Opcode.LOAD or insn.buffer is not buffer:
            raise SemanticsError(f"expected LOAD {buffer.value}, got {insn.describe()}")
        if insn.size != size:
            raise SemanticsError(
                f"LOAD {buffer.value}: expected {size} B, got {insn.size} B"
            )

    def expect_gemm(self, macs: int) -> None:
        insn = self._next()
        if insn.op is not Opcode.GEMM:
            raise SemanticsError(f"expected GEMM, got {insn.describe()}")
        if insn.gemm_macs != macs:
            raise SemanticsError(f"GEMM: expected {macs} macs, got {insn.gemm_macs}")

    def expect_alu(self) -> None:
        insn = self._next()
        if insn.op is not Opcode.ALU:
            raise SemanticsError(f"expected ALU, got {insn.describe()}")

    def expect_store(self, size: int) -> None:
        insn = self._next()
        if insn.op is not Opcode.STORE or insn.size != size:
            raise SemanticsError(f"expected STORE {size} B, got {insn.describe()}")

    def expect_finish(self) -> None:
        insn = self._next()
        if insn.op is not Opcode.FINISH:
            raise SemanticsError(f"expected FINISH, got {insn.describe()}")
        if self._pos != len(self._insns):
            raise SemanticsError("instructions remain after FINISH")


def execute_gemm(
    work: GemmWorkload,
    tiling: Tiling,
    a: np.ndarray,
    b: np.ndarray,
    *,
    relu: bool = False,
    program: Program | None = None,
) -> np.ndarray:
    """Run the tiled loop nest; optionally verify ``program`` matches.

    Mirrors the lowering exactly: output tiles in (i, j) order, each
    accumulating over k-chunks, optional ReLU, then a store.
    """
    if a.shape != (work.m * BLOCK, work.k * BLOCK):
        raise ValueError(f"a must be {(work.m * BLOCK, work.k * BLOCK)}, got {a.shape}")
    if b.shape != (work.k * BLOCK, work.n * BLOCK):
        raise ValueError(f"b must be {(work.k * BLOCK, work.n * BLOCK)}, got {b.shape}")
    if work.m % tiling.tm or work.k % tiling.tk or work.n % tiling.tn:
        raise ValueError("tiling must divide the workload dimensions")

    walker = _ProgramWalker(program) if program is not None else None
    tm_px, tk_px, tn_px = (
        tiling.tm * BLOCK,
        tiling.tk * BLOCK,
        tiling.tn * BLOCK,
    )
    out = np.zeros((work.m * BLOCK, work.n * BLOCK), dtype=np.int64)

    for i in range(0, work.m * BLOCK, tm_px):
        for j in range(0, work.n * BLOCK, tn_px):
            acc = np.zeros((tm_px, tn_px), dtype=np.int64)
            for kk in range(0, work.k * BLOCK, tk_px):
                a_tile = a[i : i + tm_px, kk : kk + tk_px]
                b_tile = b[kk : kk + tk_px, j : j + tn_px]
                if walker is not None:
                    walker.expect_load(Buffer.INP, tiling.tm * tiling.tk * BLOCK * BLOCK)
                    walker.expect_load(Buffer.WGT, tiling.tk * tiling.tn * BLOCK * BLOCK)
                    walker.expect_gemm(tiling.tm * tiling.tn * tiling.tk * BLOCK)
                acc += a_tile @ b_tile
            if relu:
                acc = np.maximum(acc, 0)
                if walker is not None:
                    walker.expect_alu()
            if walker is not None:
                walker.expect_store(tiling.tm * tiling.tn * BLOCK * BLOCK)
            out[i : i + tm_px, j : j + tn_px] = acc
    if walker is not None:
        walker.expect_finish()
    return out
