"""Performance interfaces for VTA.

The paper's Table 1 row "VTA" is a Petri-net interface: a net whose
places mirror VTA's command and dependency-token queues and whose
transitions execute instructions with data-dependent delays.  GEMM and
ALU delays are exact functions of the instruction; DMA delays use a
*fitted average* DRAM service estimate instead of the model's live DRAM
(bank state, refresh, and port contention are the deliberately-cut
corners, per paper §3), which is where its ~1-2% error comes from.

A simple roofline-style program interface is also provided (not in the
paper, which only built Petri nets for VTA); the auto-tuner benchmarks
use it as a cheap third profiler tier.
"""

from __future__ import annotations

import itertools

from repro.core.nl import EnglishInterface, PerformanceStatement, Relation
from repro.core.petrinet import Injection, PetriNetInterface
from repro.core.program import ProgramInterface
from repro.petri import PetriNet

from .isa import Instruction, Module, Opcode, Program
from .model import VtaConfig

# ----------------------------------------------------------------------
# Fitted DMA estimate (the "avg_mem_latency" of this accelerator)
# ----------------------------------------------------------------------
def stream_estimate(size: int, config: VtaConfig | None = None) -> float:
    """Expected cycles for one DMA stream of ``size`` bytes.

    Uses the DRAM's average service profile (CAS + activate + beats +
    row re-activates, scaled by the refresh duty cycle); the *when* of
    refresh windows and the realized bank/row pattern are the cut
    corners.  Port contention is not folded in here — the net models it
    structurally with the ``dram_port`` mutex place.
    """
    cfg = (config or VtaConfig()).dram
    beats = cfg.burst_beats(size)
    rows = max(0, (size - 1) // cfg.row_size)
    base = cfg.cas_latency + cfg.row_miss_penalty + beats + rows * 4
    refresh_duty = 1.0 + cfg.refresh_duration / cfg.refresh_interval
    return base * refresh_duty


def service_cycles(insn: Instruction, config: VtaConfig) -> float:
    """Interface-side service time for one instruction."""
    if insn.op is Opcode.LOAD:
        return config.load_setup + stream_estimate(insn.size, config)
    if insn.op is Opcode.STORE:
        return config.store_setup + stream_estimate(insn.size, config)
    if insn.op is Opcode.GEMM:
        return config.gemm_setup + insn.gemm_macs
    if insn.op is Opcode.ALU:
        lanes = config.vector_lanes
        per_iter = -(-insn.vector_len // lanes) * (1 if insn.use_imm else 2)
        return config.alu_setup + insn.iterations * per_iter
    return config.finish_cycles


# ----------------------------------------------------------------------
# Representation 3: the Petri-net IR (paper Table 1, row "VTA")
# ----------------------------------------------------------------------
_MODULE_FLAGS = {
    Module.LOAD: ("pop_next", "push_next"),
    Module.COMPUTE: ("pop_prev", "pop_next", "push_prev", "push_next"),
    Module.STORE: ("pop_prev", "push_prev"),
}
_POP_QUEUE = {
    (Module.LOAD, "pop_next"): "c2l",
    (Module.COMPUTE, "pop_prev"): "l2c",
    (Module.COMPUTE, "pop_next"): "s2c",
    (Module.STORE, "pop_prev"): "c2s",
}
_PUSH_QUEUE = {
    (Module.LOAD, "push_next"): "l2c",
    (Module.COMPUTE, "push_prev"): "c2l",
    (Module.COMPUTE, "push_next"): "c2s",
    (Module.STORE, "push_prev"): "s2c",
}


def build_vta_net(
    config: VtaConfig | None = None, *, model_port: bool = True
) -> PetriNet:
    """Construct the VTA performance-IR net.

    ``model_port=False`` drops the shared-memory-port mutex (every DMA
    stream then proceeds as if it had the port to itself) — an ablation
    knob used to quantify how much accuracy that structural detail buys
    (see ``benchmarks/bench_ablation_petri.py``).

    Structure: one command-queue place and one serialization ("free")
    place per module, the four dependency-token queues, a ``dram_port``
    mutex shared by every DMA transition (load, store, and compute-side
    UOP/ACC loads all contend for one memory port, as in the hardware),
    and one transition per (module, dependency-flag combination, DMA or
    not), guarded on the instruction at the head of the command queue.
    """
    config = config or VtaConfig()
    net = PetriNet("vta")
    for m in Module:
        net.add_place(f"cmd_{m.value}")
        # The single resident token makes the place a mutex; capacity is
        # left unbounded because a transition that both consumes and
        # reproduces the token could never reserve a slot in a full
        # capacity-1 place (reserve-at-start semantics).
        net.add_place(f"free_{m.value}")
    net.add_place("dram_port")
    for q in ("l2c", "c2l", "c2s", "s2c"):
        net.add_place(q)
    net.add_place("out")

    def is_dma(insn: Instruction) -> bool:
        return insn.op in (Opcode.LOAD, Opcode.STORE)

    def full_delay(consumed):
        return service_cycles(_head_insn(consumed), config)

    def setup_delay(consumed):
        insn = _head_insn(consumed)
        return config.store_setup if insn.op is Opcode.STORE else config.load_setup

    def stream_delay(consumed):
        return stream_estimate(_head_insn(consumed).size, config)

    # All DMA setup stages feed one shared request place, so the port
    # is granted in request order (FCFS) across modules, matching the
    # memory controller's arbitration.
    net.add_place("port_req")

    for module in Module:
        pop_flags = [f for f in _MODULE_FLAGS[module] if f.startswith("pop")]
        push_flags = [f for f in _MODULE_FLAGS[module] if f.startswith("push")]

        cmd_place = f"cmd_{module.value}"

        # --- DMA, stage 1: descriptor setup (module held, port free).
        # Guards compare precomputed dispatch keys in the token payload
        # (see tokenize_program) rather than re-deriving flags: this is
        # the hot path of the whole IR.
        for combo in itertools.product((False, True), repeat=len(pop_flags)):
            setting = dict(zip(pop_flags, combo, strict=True))
            inputs = [cmd_place, f"free_{module.value}"]
            inputs += [_POP_QUEUE[(module, f)] for f, on in setting.items() if on]
            want = _full_pops(setting)

            def setup_guard(consumed, cmd_place=cmd_place, want=want):
                payload = consumed[cmd_place][0].payload
                return payload["dma"] and payload["pops"] == want

            tag = "".join("1" if on else "0" for on in combo)
            net.add_transition(
                f"{module.value}_dma_setup_{tag}",
                inputs,
                ["port_req"],
                delay=setup_delay,
                guard=setup_guard,
                servers=1,
            )

        # --- DMA, stage 2: the stream itself (module and port held).
        for combo in itertools.product((False, True), repeat=len(push_flags)):
            setting = dict(zip(push_flags, combo, strict=True))
            outputs = [f"free_{module.value}", "out"]
            if model_port:
                outputs.insert(1, "dram_port")
            outputs += [_PUSH_QUEUE[(module, f)] for f, on in setting.items() if on]
            want = _full_pushes(setting)

            def stream_guard(consumed, module_value=module.value, want=want):
                payload = consumed["port_req"][0].payload
                return payload["mod"] == module_value and payload["pushes"] == want

            tag = "".join("1" if on else "0" for on in combo)
            net.add_transition(
                f"{module.value}_dma_stream_{tag}",
                ["port_req", "dram_port"] if model_port else ["port_req"],
                outputs,
                delay=stream_delay,
                guard=stream_guard,
                servers=1,
            )

        # --- Non-DMA instructions (compute only: GEMM/ALU/FINISH).
        if module is Module.COMPUTE:
            flags = _MODULE_FLAGS[module]
            for combo in itertools.product((False, True), repeat=len(flags)):
                setting = dict(zip(flags, combo, strict=True))
                inputs = [cmd_place, f"free_{module.value}"]
                outputs = [f"free_{module.value}", "out"]
                for flag, on in setting.items():
                    if not on:
                        continue
                    if flag.startswith("pop"):
                        inputs.append(_POP_QUEUE[(module, flag)])
                    else:
                        outputs.append(_PUSH_QUEUE[(module, flag)])
                want_pops = _full_pops(setting)
                want_pushes = _full_pushes(setting)

                def guard(consumed, want_pops=want_pops, want_pushes=want_pushes):
                    payload = consumed["cmd_compute"][0].payload
                    return (
                        not payload["dma"]
                        and payload["pops"] == want_pops
                        and payload["pushes"] == want_pushes
                    )

                tag = "".join("1" if on else "0" for on in combo)
                net.add_transition(
                    f"compute_{tag}",
                    inputs,
                    outputs,
                    delay=full_delay,
                    guard=guard,
                    servers=1,
                )
    return net


def _full_pops(setting: dict) -> tuple[bool, bool]:
    return (setting.get("pop_prev", False), setting.get("pop_next", False))


def _full_pushes(setting: dict) -> tuple[bool, bool]:
    return (setting.get("push_prev", False), setting.get("push_next", False))


def dispatch_payload(insn: Instruction, idx: int, copy: int = 0) -> dict:
    """Precomputed dispatch keys read by the net's guards."""
    return {
        "insn": insn,
        "idx": idx,
        "copy": copy,
        "mod": insn.module.value,
        "dma": insn.op in (Opcode.LOAD, Opcode.STORE),
        "pops": (insn.pop_prev, insn.pop_next),
        "pushes": (insn.push_prev, insn.push_next),
    }


def _head_insn(consumed) -> Instruction:
    for place, tokens in consumed.items():
        if (place.startswith("cmd_") or place == "port_req") and tokens:
            return tokens[0].payload["insn"]
    raise ValueError("no command token consumed")


def tokenize_program(
    program: Program, *, dispatch: float = 1.0, copy: int = 0, offset: float = 0.0
) -> list[Injection]:
    """One token per instruction into its module's command queue, at the
    fetch module's one-per-cycle dispatch times, plus the three 'module
    free' tokens that serialize each engine (only for copy 0)."""
    injections = []
    if copy == 0:
        for m in Module:
            injections.append(Injection(f"free_{m.value}", payload={"insn": None}, at=0.0))
        injections.append(Injection("dram_port", payload={"insn": None}, at=0.0))
    base = offset
    for idx, insn in enumerate(program.instructions):
        injections.append(
            Injection(
                f"cmd_{insn.module.value}",
                payload=dispatch_payload(insn, idx, copy),
                at=base + (idx + 1) * dispatch,
            )
        )
    return injections


class VtaPetriInterface(PetriNetInterface[Program]):
    """Petri-net interface with VTA-specific streaming throughput."""

    def __init__(self, config: VtaConfig | None = None):
        self._config = config or VtaConfig()
        super().__init__(
            "vta",
            net_factory=lambda: build_vta_net(self._config),
            tokenize=tokenize_program,
            sink="out",
            expected_completions=len,  # one completion per instruction
        )

    #: Matches VtaModel.THROUGHPUT_WARMUP: same measurement protocol.
    THROUGHPUT_WARMUP = 2

    def throughput(self, item: Program, repeat: int = 6) -> float:
        """Back-to-back program streaming, mirroring the model's
        measure_throughput: dispatch the program ``repeat`` times and
        read the steady-state period off per-copy completion times,
        after the same warm-up prefix the model excludes."""
        if repeat < 1:
            raise ValueError("repeat must be >= 1")
        if repeat <= self.THROUGHPUT_WARMUP + 1:
            return 1.0 / self.latency(item)
        n = len(item.instructions)
        combined = item.streamed(repeat)
        injections = tokenize_program(combined)
        for inj in injections:
            if inj.payload.get("insn") is not None:
                inj.payload["copy"] = inj.payload["idx"] // n
        result = self._run(injections, expected=n * repeat)
        ends = [0.0] * repeat
        for completion in result.sink("out"):
            payload = completion.token.payload
            if payload and payload.get("insn") is not None:
                c = payload["copy"]
                ends[c] = max(ends[c], completion.time)
        skip = self.THROUGHPUT_WARMUP
        return (repeat - 1 - skip) / (ends[-1] - ends[skip])


def petri_interface(config: VtaConfig | None = None) -> VtaPetriInterface:
    return VtaPetriInterface(config)


# ----------------------------------------------------------------------
# Bonus: roofline-style program interface (third profiler tier)
# ----------------------------------------------------------------------


def latency_vta_roofline(program: Program, config: VtaConfig | None = None) -> float:
    """Latency as the slowest of three saturated resources: the compute
    core, the DMA port, and instruction dispatch.  Much cruder than the
    net — no dependency stalls — but essentially free to evaluate."""
    config = config or VtaConfig()
    per_module = {m: 0.0 for m in Module}
    for insn in program.instructions:
        per_module[insn.module] += service_cycles(insn, config)
    dispatch = len(program) * config.dispatch_cycles
    return max(max(per_module.values()), dispatch) + config.gemm_setup


PROGRAM = ProgramInterface("vta", latency_fn=latency_vta_roofline)

ENGLISH = EnglishInterface(
    accelerator="vta",
    statements=(
        PerformanceStatement(
            metric="Latency",
            relation=Relation.INCREASES_WITH,
            quantity="the schedule's total micro-op count",
            accessor=lambda p: float(p.total_macs),
        ),
        PerformanceStatement(
            metric="Throughput",
            relation=Relation.DECREASES_WITH,
            quantity="DRAM bytes moved per output tile",
            accessor=lambda p: float(p.dram_bytes),
        ),
    ),
)


#: Injection points of the programmatic net (it carries no ``inject``
#: clauses): command queues take the workload, the free/port places
#: take the resident bookkeeping tokens.
VTA_INJECTED = {
    **{f"cmd_{m.value}": None for m in Module},
    **{f"free_{m.value}": None for m in Module},
    "dram_port": None,
}


def perflint_bundle():
    """Everything the perf-lint toolchain audits for this accelerator
    (``python -m repro.tools.perflint vta``)."""
    from repro.lint import InterfaceBundle

    from .workload import GemmWorkload, legal_tilings, tiled_gemm_program

    # A sweep where only the problem size varies, so the cross-checks
    # see the named property move without confounders.
    samples = []
    for dim in (2, 4, 6, 8, 12):
        work = GemmWorkload(m=dim, k=dim, n=dim)
        samples.append(tiled_gemm_program(work, legal_tilings(work)[0]))
    return InterfaceBundle(
        accelerator="vta",
        english=ENGLISH,
        program=PROGRAM,
        program_fns={"latency": latency_vta_roofline},
        workload_type=Program,
        net_factory=build_vta_net,
        pnet_file="src/repro/accel/vta/interfaces.py#build_vta_net",
        injected=VTA_INJECTED,
        samples=samples,
        petri_latency_fn=petri_interface().latency,
        # The verifier cannot bound this net symbolically: every delay
        # is a Python callable decoding the instruction stream, so the
        # contract is honestly *opaque* (VR001 says so) and consumers
        # price VTA by simulation.  Declaring the compute queue as the
        # entry keeps the traversal meaningful for the opacity report.
        entry=f"cmd_{Module.COMPUTE.value}",
        sink="out",
    )
