"""VTA deep-learning accelerator: ISA, concurrent-module model,
assembler, schedule lowering, and performance interfaces."""

from .assembler import AssemblyError, assert_valid, from_text, to_text, validate
from .executor import SemanticsError, execute_gemm, random_operands, reference_gemm
from .interfaces import (
    ENGLISH,
    PROGRAM,
    VtaPetriInterface,
    build_vta_net,
    latency_vta_roofline,
    petri_interface,
    service_cycles,
    stream_estimate,
    tokenize_program,
)
from .isa import (
    AluOp,
    Buffer,
    Instruction,
    Module,
    Opcode,
    Program,
    token_balance,
)
from .model import VtaConfig, VtaModel, VtaRunResult
from .ticksim import TickVtaSimulator
from .workload import (
    BLOCK,
    GemmWorkload,
    Tiling,
    legal_tilings,
    random_program,
    random_programs,
    tiled_gemm_program,
)

__all__ = [
    "BLOCK",
    "ENGLISH",
    "PROGRAM",
    "AluOp",
    "AssemblyError",
    "Buffer",
    "GemmWorkload",
    "Instruction",
    "Module",
    "Opcode",
    "Program",
    "SemanticsError",
    "TickVtaSimulator",
    "Tiling",
    "execute_gemm",
    "random_operands",
    "reference_gemm",
    "VtaConfig",
    "VtaModel",
    "VtaPetriInterface",
    "VtaRunResult",
    "assert_valid",
    "build_vta_net",
    "from_text",
    "latency_vta_roofline",
    "legal_tilings",
    "petri_interface",
    "random_program",
    "random_programs",
    "service_cycles",
    "stream_estimate",
    "tiled_gemm_program",
    "to_text",
    "token_balance",
    "tokenize_program",
    "validate",
]
