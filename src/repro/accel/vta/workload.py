"""VTA program generation: tiled GEMM schedules and random sequences.

The paper profiles VTA with "1500 random code sequences" produced by
TVM's auto-tuner.  Auto-tuner candidates are not instruction soup —
they are *valid tiled GEMM schedules* with varying tile shapes — so our
random workload draws random matmul problems and random legal tilings
and lowers them with :func:`tiled_gemm_program`, the same lowering the
auto-tuner in :mod:`repro.autotune` uses.

Lowering follows VTA's canonical double-buffered pipeline: input/weight
loads for tile *t+2* overlap the GEMM of tile *t* (credit tokens via
c2l), and accumulator tiles are reclaimed from the store module via
s2c before reuse.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .isa import AluOp, Buffer, Instruction, Opcode, Program

#: Native GEMM block: 16x16x16 int8 MACs per micro-op row.
BLOCK = 16
INP_TILE_BYTES = BLOCK * BLOCK      # 1 B elements
WGT_TILE_BYTES = BLOCK * BLOCK      # 1 B elements
OUT_TILE_BYTES = BLOCK * BLOCK      # 1 B results
ACC_TILE_BYTES = BLOCK * BLOCK * 4  # 32-bit accumulators

# Synthetic DRAM regions (keeps load/store streams in distinct rows).
INP_REGION = 0x0000_0000
WGT_REGION = 0x1000_0000
OUT_REGION = 0x2000_0000
UOP_REGION = 0x3000_0000


@dataclass(frozen=True)
class GemmWorkload:
    """A matmul problem in units of native 16-element blocks."""

    m: int  # output rows / BLOCK
    k: int  # reduction / BLOCK
    n: int  # output cols / BLOCK

    def __post_init__(self) -> None:
        if min(self.m, self.k, self.n) < 1:
            raise ValueError("workload dims must be >= 1 block")

    @property
    def macs(self) -> int:
        """Total native-block micro-ops (BLOCK rows per block matmul)."""
        return self.m * self.k * self.n * BLOCK


@dataclass(frozen=True)
class Tiling:
    """On-chip tile shape, in native blocks."""

    tm: int
    tk: int
    tn: int

    def __post_init__(self) -> None:
        if min(self.tm, self.tk, self.tn) < 1:
            raise ValueError("tile dims must be >= 1")

    def fits(self, *, inp_limit: int = 64, wgt_limit: int = 512, acc_limit: int = 64) -> bool:
        """Double-buffered SRAM feasibility (limits in native tiles)."""
        return (
            self.tm * self.tk <= inp_limit
            and self.tk * self.tn <= wgt_limit
            and self.tm * self.tn <= acc_limit
        )


def legal_tilings(work: GemmWorkload, **limits) -> list[Tiling]:
    """All SRAM-feasible tilings whose dims divide the workload dims."""

    def divisors(x: int) -> list[int]:
        return [d for d in range(1, x + 1) if x % d == 0]

    out = []
    for tm in divisors(work.m):
        for tk in divisors(work.k):
            for tn in divisors(work.n):
                t = Tiling(tm, tk, tn)
                if t.fits(**limits):
                    out.append(t)
    return out


def tiled_gemm_program(
    work: GemmWorkload,
    tiling: Tiling,
    *,
    alu_relu: bool = True,
    uop_reload_every: int = 0,
    name: str | None = None,
    warm_start: bool = False,
) -> Program:
    """Lower a (workload, tiling) pair to VTA instructions.

    Args:
        alu_relu: Append a vector ReLU (max) after each output tile's
            accumulation, as inference schedules do.
        uop_reload_every: Reload the microcode buffer every N output
            tiles (0 = load once up front); exercises compute-side DMA.
        warm_start: Generate the steady-state flag pattern — every
            double-buffering pop is armed because a previous iteration
            already primed the buffers.  Used as the ``warm_variant``
            tail when streaming copies back to back.
    """
    if work.m % tiling.tm or work.k % tiling.tk or work.n % tiling.tn:
        raise ValueError("tiling must divide the workload dimensions")
    mo, ko, no = work.m // tiling.tm, work.k // tiling.tk, work.n // tiling.tn
    tm, tk, tn = tiling.tm, tiling.tk, tiling.tn

    insns: list[Instruction] = [
        Instruction(
            Opcode.LOAD, buffer=Buffer.UOP, size=tm * tn * 8, addr=UOP_REGION
        )
    ]
    load_index = 0
    out_index = 0
    inp_addr = INP_REGION
    wgt_addr = WGT_REGION
    out_addr = OUT_REGION

    for i in range(mo):
        for j in range(no):
            if uop_reload_every and out_index and out_index % uop_reload_every == 0:
                insns.append(
                    Instruction(
                        Opcode.LOAD, buffer=Buffer.UOP, size=tm * tn * 8,
                        addr=UOP_REGION + out_index * 64,
                    )
                )
            for kk in range(ko):
                # Double buffering: from the third tile on, wait for the
                # GEMM two tiles back to free the input/weight buffers.
                insns.append(
                    Instruction(
                        Opcode.LOAD,
                        buffer=Buffer.INP,
                        size=tm * tk * INP_TILE_BYTES,
                        addr=inp_addr,
                        pop_next=warm_start or load_index >= 2,
                    )
                )
                inp_addr += tm * tk * INP_TILE_BYTES
                insns.append(
                    Instruction(
                        Opcode.LOAD,
                        buffer=Buffer.WGT,
                        size=tk * tn * WGT_TILE_BYTES,
                        addr=wgt_addr,
                        push_next=True,
                    )
                )
                wgt_addr += tk * tn * WGT_TILE_BYTES
                insns.append(
                    Instruction(
                        Opcode.GEMM,
                        uop_count=tm * tn,
                        lp0=tk,
                        lp1=BLOCK,
                        pop_prev=True,
                        push_prev=True,
                        # Reclaim the acc tile from the store module
                        # before starting a new output tile (2-deep).
                        pop_next=(kk == 0 and (warm_start or out_index >= 2)),
                        push_next=(kk == ko - 1 and not alu_relu),
                    )
                )
                load_index += 1
            if alu_relu:
                insns.append(
                    Instruction(
                        Opcode.ALU,
                        alu_op=AluOp.MAX,
                        vector_len=tm * tn * BLOCK,
                        iterations=BLOCK,
                        use_imm=True,
                        push_next=True,
                    )
                )
            insns.append(
                Instruction(
                    Opcode.STORE,
                    size=tm * tn * OUT_TILE_BYTES,
                    addr=out_addr,
                    pop_prev=True,
                    push_prev=True,
                )
            )
            out_addr += tm * tn * OUT_TILE_BYTES
            out_index += 1

    # FINISH is a plain end marker: it must not steal an s2c credit
    # (with a single output tile the acc-reclaim pop of the next
    # streamed iteration would starve).  Program completion is defined
    # as all instructions done, so nothing needs to wait on it.
    insns.append(Instruction(Opcode.FINISH))
    label = name or f"gemm_{work.m}x{work.k}x{work.n}_t{tm}.{tk}.{tn}"
    warm = None
    if not warm_start:
        warm = tiled_gemm_program(
            work,
            tiling,
            alu_relu=alu_relu,
            uop_reload_every=uop_reload_every,
            name=f"{label}_warm",
            warm_start=True,
        )
    return Program(tuple(insns), name=label, warm_variant=warm)


def random_program(
    rng: np.random.Generator,
    *,
    max_dim: int = 16,
    name: str | None = None,
) -> Program:
    """One random auto-tuner-style candidate: random problem, random
    legal tiling, random post-ops."""
    work = GemmWorkload(
        m=int(rng.integers(1, max_dim + 1)),
        k=int(rng.integers(1, max_dim + 1)),
        n=int(rng.integers(1, max_dim + 1)),
    )
    tilings = legal_tilings(work)
    tiling = tilings[int(rng.integers(0, len(tilings)))]
    return tiled_gemm_program(
        work,
        tiling,
        alu_relu=bool(rng.integers(0, 2)),
        uop_reload_every=int(rng.choice([0, 0, 2, 4])),
        name=name,
    )


def random_programs(seed: int, count: int, **kwargs) -> list[Program]:
    """The paper's "N random code sequences" workload, reproducibly."""
    rng = np.random.default_rng(seed)
    return [random_program(rng, name=f"seq{k}", **kwargs) for k in range(count)]
