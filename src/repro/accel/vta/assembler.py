"""Static validation and a textual assembly format for VTA programs.

The model refuses structurally-deadlocking programs at run time; the
assembler catches the same problems (and SRAM overflows) *before*
running, and gives programs a human-readable round-trippable text form
used by the examples.
"""

from __future__ import annotations

from .isa import AluOp, Buffer, Instruction, Opcode, Program, token_balance
from .model import VtaConfig


class AssemblyError(Exception):
    """A program failed static validation or text parsing."""


def validate(program: Program, config: VtaConfig | None = None) -> list[str]:
    """Return a list of problems (empty = valid).

    Checks: dependency-token balance, per-load SRAM fit, FINISH
    placement, and flag legality per module (e.g. a load-module
    instruction cannot reference the store queue).
    """
    config = config or VtaConfig()
    problems: list[str] = []

    balance = token_balance(program)
    for queue, net in balance.items():
        if net < 0:
            problems.append(f"queue {queue}: {-net} pops have no matching push")

    for k, insn in enumerate(program.instructions):
        if insn.op is Opcode.LOAD:
            cap = config.buffer_capacity(insn.buffer)
            if insn.size > cap:
                problems.append(
                    f"insn {k}: LOAD {insn.buffer.value} of {insn.size}B exceeds "
                    f"the {cap}B buffer"
                )
        mod = insn.module.value
        if mod == "load" and (insn.pop_prev or insn.push_prev):
            problems.append(f"insn {k}: load module has no 'prev' queue")
        if mod == "store" and (insn.pop_next or insn.push_next):
            problems.append(f"insn {k}: store module has no 'next' queue")

    finishes = [k for k, i in enumerate(program.instructions) if i.op is Opcode.FINISH]
    if len(finishes) > 1:
        problems.append(f"multiple FINISH instructions at {finishes}")
    if finishes and finishes[0] != len(program) - 1:
        problems.append("FINISH must be the last instruction")
    return problems


def assert_valid(program: Program, config: VtaConfig | None = None) -> None:
    problems = validate(program, config)
    if problems:
        raise AssemblyError(
            f"program {program.name!r} invalid:\n  " + "\n  ".join(problems)
        )


# ----------------------------------------------------------------------
# Text form
# ----------------------------------------------------------------------


def to_text(program: Program) -> str:
    """Serialize to assembly text (one instruction per line)."""
    lines = [f".program {program.name}"]
    for insn in program.instructions:
        flags = ",".join(
            name
            for name in ("pop_prev", "pop_next", "push_prev", "push_next")
            if getattr(insn, name)
        )
        flag_part = f" !{flags}" if flags else ""
        if insn.op is Opcode.LOAD:
            lines.append(
                f"load {insn.buffer.value} size={insn.size} addr={insn.addr}{flag_part}"
            )
        elif insn.op is Opcode.STORE:
            lines.append(f"store size={insn.size} addr={insn.addr}{flag_part}")
        elif insn.op is Opcode.GEMM:
            lines.append(
                f"gemm uops={insn.uop_count} lp0={insn.lp0} lp1={insn.lp1}{flag_part}"
            )
        elif insn.op is Opcode.ALU:
            imm = " imm" if insn.use_imm else ""
            lines.append(
                f"alu {insn.alu_op.value} len={insn.vector_len} "
                f"iters={insn.iterations}{imm}{flag_part}"
            )
        else:
            lines.append(f"finish{flag_part}")
    return "\n".join(lines) + "\n"


def from_text(text: str) -> Program:
    """Parse the :func:`to_text` format back into a program."""
    name = "program"
    insns: list[Instruction] = []
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith(".program"):
            parts = line.split()
            if len(parts) != 2:
                raise AssemblyError(f"line {line_no}: usage: .program NAME")
            name = parts[1]
            continue
        flags: dict[str, bool] = {}
        if "!" in line:
            line, _, flag_str = line.partition("!")
            line = line.strip()
            for f in flag_str.strip().split(","):
                if f not in ("pop_prev", "pop_next", "push_prev", "push_next"):
                    raise AssemblyError(f"line {line_no}: unknown flag {f!r}")
                flags[f] = True
        fields = line.split()
        kv = {}
        positional = []
        for part in fields[1:]:
            if "=" in part:
                key, _, val = part.partition("=")
                kv[key] = int(val)
            else:
                positional.append(part)
        try:
            insns.append(_parse_insn(fields[0], positional, kv, flags))
        except (KeyError, ValueError) as exc:
            raise AssemblyError(f"line {line_no}: {exc}") from exc
    if not insns:
        raise AssemblyError("program has no instructions")
    return Program(tuple(insns), name=name)


def _parse_insn(
    mnemonic: str, positional: list[str], kv: dict[str, int], flags: dict[str, bool]
) -> Instruction:
    if mnemonic == "load":
        return Instruction(
            Opcode.LOAD,
            buffer=Buffer(positional[0]),
            size=kv["size"],
            addr=kv.get("addr", 0),
            **flags,
        )
    if mnemonic == "store":
        return Instruction(Opcode.STORE, size=kv["size"], addr=kv.get("addr", 0), **flags)
    if mnemonic == "gemm":
        return Instruction(
            Opcode.GEMM, uop_count=kv["uops"], lp0=kv["lp0"], lp1=kv["lp1"], **flags
        )
    if mnemonic == "alu":
        return Instruction(
            Opcode.ALU,
            alu_op=AluOp(positional[0]),
            vector_len=kv["len"],
            iterations=kv["iters"],
            use_imm="imm" in positional,
            **flags,
        )
    if mnemonic == "finish":
        return Instruction(Opcode.FINISH, **flags)
    raise ValueError(f"unknown mnemonic {mnemonic!r}")
