"""The VTA instruction set (as much of it as performance depends on).

VTA (the Versatile Tensor Accelerator behind TVM) executes four
instruction classes on four concurrently-running modules:

* ``LOAD``  — DMA a tensor tile from DRAM into an on-chip buffer.
  Input/weight loads run on the *load* module; microcode (UOP) and
  accumulator loads run on the *compute* module, sharing its time.
* ``GEMM``  — the matrix-multiply core: a microcoded loop nest
  executing one micro-op per cycle.
* ``ALU``   — vector ALU over the accumulator (add/max/min/shift).
* ``STORE`` — DMA an output tile from the accumulator to DRAM, on the
  *store* module.

Modules synchronize through four single-bit dependency-token queues
(load→compute, compute→load, compute→store, store→compute).  Each
instruction carries four flags saying which tokens it pops before
executing and pushes after: exactly VTA's microarchitecture, and the
thing that makes its performance non-trivial to predict.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Opcode(enum.Enum):
    LOAD = "load"
    GEMM = "gemm"
    ALU = "alu"
    STORE = "store"
    FINISH = "finish"


class Buffer(enum.Enum):
    """On-chip SRAM targets of LOAD."""

    INP = "inp"
    WGT = "wgt"
    ACC = "acc"
    UOP = "uop"


class AluOp(enum.Enum):
    ADD = "add"
    MAX = "max"
    MIN = "min"
    SHR = "shr"


class Module(enum.Enum):
    LOAD = "load"
    COMPUTE = "compute"
    STORE = "store"


@dataclass(frozen=True)
class Instruction:
    """One VTA instruction.

    Only the fields that drive performance are modeled; addresses are
    synthetic tile coordinates resolved by the model's DMA engine.
    """

    op: Opcode
    # Dependency-token flags (see module docstring).
    pop_prev: bool = False
    pop_next: bool = False
    push_prev: bool = False
    push_next: bool = False
    # LOAD / STORE operands.
    buffer: Buffer | None = None
    size: int = 0          # bytes moved
    addr: int = 0          # DRAM byte address
    # GEMM operands: a microcoded loop nest uop_count x lp0 x lp1.
    uop_count: int = 0
    lp0: int = 1
    lp1: int = 1
    # ALU operands.
    alu_op: AluOp | None = None
    vector_len: int = 0
    iterations: int = 1
    use_imm: bool = False

    def __post_init__(self) -> None:
        if self.op is Opcode.LOAD:
            if self.buffer is None or self.size <= 0:
                raise ValueError("LOAD needs a buffer and a positive size")
        elif self.op is Opcode.STORE:
            if self.size <= 0:
                raise ValueError("STORE needs a positive size")
        elif self.op is Opcode.GEMM:
            if self.uop_count <= 0 or self.lp0 <= 0 or self.lp1 <= 0:
                raise ValueError("GEMM needs positive uop_count/lp0/lp1")
        elif self.op is Opcode.ALU and (
            self.alu_op is None or self.vector_len <= 0 or self.iterations <= 0
        ):
            raise ValueError("ALU needs an op, vector_len, and iterations")

    @property
    def module(self) -> Module:
        """Which engine executes this instruction (VTA's dispatch rule)."""
        if self.op is Opcode.LOAD and self.buffer in (Buffer.INP, Buffer.WGT):
            return Module.LOAD
        if self.op is Opcode.STORE:
            return Module.STORE
        return Module.COMPUTE

    @property
    def gemm_macs(self) -> int:
        """Micro-op iterations a GEMM performs (1/cycle in the core)."""
        if self.op is not Opcode.GEMM:
            return 0
        return self.uop_count * self.lp0 * self.lp1

    def describe(self) -> str:
        flags = "".join(
            ch if on else "-"
            for ch, on in zip(
                "PNpn", (self.pop_prev, self.pop_next, self.push_prev, self.push_next),
                strict=True,
            )
        )
        if self.op is Opcode.LOAD:
            body = f"LOAD {self.buffer.value} {self.size}B"
        elif self.op is Opcode.STORE:
            body = f"STORE {self.size}B"
        elif self.op is Opcode.GEMM:
            body = f"GEMM {self.uop_count}x{self.lp0}x{self.lp1}"
        elif self.op is Opcode.ALU:
            body = f"ALU {self.alu_op.value} len={self.vector_len} it={self.iterations}"
        else:
            body = "FINISH"
        return f"{body} [{flags}]"


@dataclass(frozen=True)
class Program:
    """An instruction sequence plus bookkeeping helpers.

    ``warm_variant`` optionally carries the steady-state form of the
    same schedule: identical work, but with the double-buffering pop
    flags that apply when the pipeline is already primed (used when
    streaming copies back to back — see ``VtaModel.measure_throughput``).
    """

    instructions: tuple[Instruction, ...]
    name: str = "program"
    warm_variant: Program | None = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if not self.instructions:
            raise ValueError("a program needs at least one instruction")

    def __len__(self) -> int:
        return len(self.instructions)

    def by_module(self, module: Module) -> list[Instruction]:
        return [i for i in self.instructions if i.module is module]

    @property
    def total_macs(self) -> int:
        return sum(i.gemm_macs for i in self.instructions)

    @property
    def dram_bytes(self) -> int:
        return sum(
            i.size for i in self.instructions if i.op in (Opcode.LOAD, Opcode.STORE)
        )

    def listing(self) -> str:
        return "\n".join(
            f"{k:4d}  {insn.describe()}" for k, insn in enumerate(self.instructions)
        )

    def streamed(self, copies: int) -> Program:
        """Concatenate ``copies`` back-to-back iterations: the first is
        this (cold-start) program, the rest use the warm variant when
        one is attached, so double-buffering credits carry across
        iterations exactly as a compiler's steady-state loop would."""
        if copies < 1:
            raise ValueError("copies must be >= 1")
        tail = self.warm_variant or self
        insns = self.instructions + tail.instructions * (copies - 1)
        return Program(insns, name=f"{self.name}x{copies}")


def token_balance(program: Program) -> dict[str, int]:
    """Net pushes minus pops per dependency queue.

    A program with a *negative* balance on any queue pops tokens that
    are never pushed and will deadlock; the assembler rejects those.
    Positive leftovers are legal (tokens simply remain).
    """
    balance = {"l2c": 0, "c2l": 0, "c2s": 0, "s2c": 0}
    for insn in program.instructions:
        m = insn.module
        if m is Module.LOAD:
            if insn.push_next:
                balance["l2c"] += 1
            if insn.pop_next:
                balance["c2l"] -= 1
        elif m is Module.COMPUTE:
            if insn.push_prev:
                balance["c2l"] += 1
            if insn.push_next:
                balance["c2s"] += 1
            if insn.pop_prev:
                balance["l2c"] -= 1
            if insn.pop_next:
                balance["s2c"] -= 1
        elif m is Module.STORE:
            if insn.push_prev:
                balance["s2c"] += 1
            if insn.pop_prev:
                balance["c2s"] -= 1
    return balance
