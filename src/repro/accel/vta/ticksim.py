"""A cycle-ticking VTA simulator: the stand-in for Verilator.

The paper's TVM case study (§3) compares profiling with the Petri-net
interface against *cycle-accurate simulation*, whose cost grows with
the number of simulated cycles.  Our event-driven :class:`VtaModel`
jumps between events, so its wall-clock cost grows with the instruction
count instead — great for ground truth, wrong cost model for this
comparison.  This module therefore implements the same
microarchitecture as a synchronous simulator that evaluates every
module every cycle, exactly like RTL simulation does.

Semantics match :class:`VtaModel` (the equivalence test in
``tests/accel/test_vta_ticksim.py`` holds them together); wall-clock
cost is O(cycles), which is the property the E6 benchmark needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.hw import Dram
from repro.hw.kernel import SimError

from .isa import Instruction, Module, Opcode, Program, token_balance
from .model import VtaConfig, VtaRunResult, _dep_wiring


class _Phase(Enum):
    IDLE = "idle"
    SETUP = "setup"   # DMA descriptor setup in progress
    STREAM = "stream"  # DMA transfer in progress
    EXEC = "exec"      # GEMM/ALU/FINISH in progress


@dataclass
class _ModuleState:
    module: Module
    phase: _Phase = _Phase.IDLE
    busy_until: int = 0
    current: tuple[int, Instruction] | None = None
    done_count: int = 0


class TickVtaSimulator:
    """Synchronous (per-cycle) VTA simulation."""

    def __init__(self, config: VtaConfig | None = None):
        self.config = config or VtaConfig()

    def run(self, program: Program, *, max_cycles: int = 200_000_000) -> VtaRunResult:
        negative = {q: b for q, b in token_balance(program).items() if b < 0}
        if negative:
            raise SimError(
                f"program {program.name!r} pops tokens never pushed: {negative}"
            )
        cfg = self.config
        dram = Dram(cfg.dram)
        event_model = None  # lazily built: shares service-time formulas

        from collections import deque

        # Command queues hold (index, instruction); dependency-token
        # queues are plain counters (tokens carry no data).
        cmd: dict[Module, deque] = {m: deque() for m in Module}
        deps = {name: 0 for name in ("l2c", "c2l", "c2s", "s2c")}
        dep_names = {
            m: (
                [(flag, q.name) for flag, q in _dep_wiring(m, _named(deps))[0]],
                [(flag, q.name) for flag, q in _dep_wiring(m, _named(deps))[1]],
            )
            for m in Module
        }

        states = {m: _ModuleState(m) for m in Module}
        expected = {m: len(program.by_module(m)) for m in Module}
        insn_end = [0] * len(program)
        busy = {m.value: 0.0 for m in Module}

        fetch_idx = 0
        fetch_ready = 1  # fetch spawns at 0, first dispatch after Delay(1)
        n = len(program)

        cycle = 0
        done = 0
        while done < n:
            if cycle > max_cycles:
                raise SimError(f"tick simulation exceeded {max_cycles} cycles")
            # Intra-cycle fixpoint: completions, pushes, pops, dispatch
            # all cascade within one cycle, matching the event model's
            # zero-delay handoffs.
            progress = True
            while progress:
                progress = False

                # Fetch dispatch: one instruction per cycle when the
                # target command queue has space.
                if (
                    fetch_idx < n
                    and cycle >= fetch_ready
                    and len(cmd[program.instructions[fetch_idx].module])
                    < cfg.cmd_queue_depth
                ):
                    insn = program.instructions[fetch_idx]
                    cmd[insn.module].append((fetch_idx, insn))
                    fetch_idx += 1
                    fetch_ready = cycle + 1
                    progress = True

                for m in Module:
                    st = states[m]
                    pops, pushes = dep_names[m]

                    # Phase transitions at the completion instant.
                    if st.phase is _Phase.SETUP and st.busy_until == cycle:
                        _, insn = st.current
                        end = dram.stream(insn.addr, cycle, insn.size)
                        st.phase = _Phase.STREAM
                        st.busy_until = int(end)
                        busy[m.value] += st.busy_until - cycle
                        progress = True
                    if (
                        st.phase in (_Phase.STREAM, _Phase.EXEC)
                        and st.busy_until == cycle
                    ):
                        idx, insn = st.current
                        insn_end[idx] = cycle
                        for flag, qname in pushes:
                            if getattr(insn, flag):
                                deps[qname] += 1
                        st.phase = _Phase.IDLE
                        st.current = None
                        st.done_count += 1
                        done += 1
                        progress = True

                    # Start the next instruction.
                    if st.phase is _Phase.IDLE and cmd[m]:
                        idx, insn = cmd[m][0]
                        needed = [
                            qname for flag, qname in pops if getattr(insn, flag)
                        ]
                        if all(deps[q] >= 1 for q in needed):
                            cmd[m].popleft()
                            for q in needed:
                                deps[q] -= 1
                            st.current = (idx, insn)
                            start = cycle
                            if insn.op in (Opcode.LOAD, Opcode.STORE):
                                setup = (
                                    cfg.store_setup
                                    if insn.op is Opcode.STORE
                                    else cfg.load_setup
                                )
                                st.phase = _Phase.SETUP
                                st.busy_until = cycle + setup
                            else:
                                if event_model is None:
                                    from .model import VtaModel

                                    event_model = VtaModel(cfg)
                                dur = (
                                    event_model.gemm_cycles(insn)
                                    if insn.op is Opcode.GEMM
                                    else event_model.alu_cycles(insn)
                                    if insn.op is Opcode.ALU
                                    else cfg.finish_cycles
                                )
                                st.phase = _Phase.EXEC
                                st.busy_until = cycle + int(dur)
                            busy[m.value] += st.busy_until - start
                            progress = True
            cycle += 1

        # busy accounting above misses the stream extension; fold it in.
        return VtaRunResult(
            cycles=float(max(insn_end)),
            insn_end=[float(x) for x in insn_end],
            module_busy=busy,
            dram_accesses=dram.accesses,
        )

    def measure_latency(self, program: Program) -> float:
        return self.run(program).cycles


class _named:
    """Adapter so _dep_wiring's queue objects expose .name over a dict."""

    def __init__(self, deps: dict[str, int]):
        self._deps = deps

    def __getitem__(self, key: str):
        return _NamedQueue(key)


@dataclass(frozen=True)
class _NamedQueue:
    name: str
