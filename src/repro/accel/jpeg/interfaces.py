"""The three performance interfaces of the JPEG decoder.

These are the artifacts a vendor would *ship* (paper §3): an English
summary (Fig. 1), an executable Python program (Fig. 2), and a Petri-net
IR (Table 1).  Constants are fitted against the ground-truth model in
:mod:`repro.accel.jpeg.model` the same way the paper's authors fitted
theirs against RTL — and, like the paper's, each representation
deliberately abstracts detail: see DESIGN.md §6 for what each omits.
"""

from __future__ import annotations

from repro.core.nl import EnglishInterface, PerformanceStatement, Relation
from repro.core.petrinet import Injection, PetriNetInterface
from repro.core.program import ProgramInterface
from repro.petri import parse

from .workload import HEADER_BYTES, JpegImage

# ----------------------------------------------------------------------
# Representation 1: English (paper Fig. 1, first entry)
# ----------------------------------------------------------------------
ENGLISH = EnglishInterface(
    accelerator="jpeg-decoder",
    statements=(
        PerformanceStatement(
            metric="Latency",
            relation=Relation.INVERSELY_PROPORTIONAL,
            quantity="the input image's compression rate",
            accessor=lambda img: img.compress_rate,
        ),
    ),
)

# ----------------------------------------------------------------------
# Representation 2: executable Python program (paper Fig. 2)
# ----------------------------------------------------------------------
#: Fitted constants (vendor-calibrated against the shipped hardware).
OUTPUT_BOUND_PER_BLOCK = 136.5  # cycles/block when compute-side dominates
HUFFMAN_PER_BLOCK = 6.0         # per-block entropy-decode overhead
HUFFMAN_PER_BYTE = 8.0          # bit-serial decode, 1 bit/cycle
PIPE_FILL = 330.0               # header parse + pipeline fill + flush


def latency_jpeg_decode(img: JpegImage) -> float:
    """Latency interface for the JPEG decoder (cycles).

    ``max(...)`` separates the two regimes: compute/output-bound for
    well-compressed images, input-(bitstream-)bound otherwise — the
    Fig. 2 structure.  ``orig_size / compress_rate`` is just the coded
    file size, which is how a user computes it from the image at hand.
    """
    size = img.orig_size / 64  # 8x8 blocks
    coded_bytes = img.orig_size / img.compress_rate - HEADER_BYTES
    return (
        max(
            size * OUTPUT_BOUND_PER_BLOCK,
            size * HUFFMAN_PER_BLOCK + coded_bytes * HUFFMAN_PER_BYTE,
        )
        + PIPE_FILL
    )


def tput_jpeg_decode(img: JpegImage) -> float:
    """Throughput interface: images are processed one-by-one."""
    return 1.0 / latency_jpeg_decode(img)


PROGRAM = ProgramInterface(
    "jpeg-decoder", latency_fn=latency_jpeg_decode, throughput_fn=tput_jpeg_decode
)

# ----------------------------------------------------------------------
# Representation 3: Petri-net IR (paper Table 1, row "JPEG")
# ----------------------------------------------------------------------
#: The shippable interface: a .pnet document.  Per-block token payloads
#: carry the same information the accelerator's front end sees (coded
#: size, coefficient count, block index), so delays are data-dependent.
#: Deliberately cut corners (paper §3): the bitstream alignment stall is
#: its 0.875-cycle expectation, and the writeback burst is the expected
#: DRAM service time (row-hit mix + refresh duty) instead of a live DRAM
#: model.
JPEG_PNET = """
net jpeg_decoder

place in
place q_idct capacity 4
place q_out capacity 4
place out

inject in fields i bytes nnz wr

transition huffman
  consume in
  produce q_idct
  delay expr: 6 + 8.0 * tok["bytes"] + 0.875 + (12 if (tok["i"] + 1) % 64 == 0 else 0)

transition idct
  consume q_idct
  produce q_out
  delay expr: 134 + tok["nnz"] // 16

transition output
  consume q_out
  produce out
  delay expr: 32 + (33.7 if tok["wr"] else 0)
"""

#: Header-parse offset before block 0 enters, and end-of-image flush.
HEADER_PARSE = 150.0
EOI_FLUSH = 8.0


def tokenize_image(img: JpegImage) -> list[Injection]:
    """One token per 8x8 block, available after the header parse."""
    n = img.n_blocks
    return [
        Injection(
            place="in",
            payload={
                "i": i,
                "bytes": int(img.coded_bytes[i]),
                "nnz": int(img.nnz[i]),
                "wr": (i + 1) % 4 == 0 or i == n - 1,
            },
            at=HEADER_PARSE,
        )
        for i in range(n)
    ]


def petri_interface() -> PetriNetInterface[JpegImage]:
    """Build the Petri-net interface (fresh net, reusable across items)."""
    return PetriNetInterface(
        "jpeg-decoder",
        net_factory=lambda: parse(JPEG_PNET),
        tokenize=tokenize_image,
        sink="out",
        epilogue=EOI_FLUSH,
        pnet_text=JPEG_PNET,
    )


def all_interfaces() -> dict[str, object]:
    """The vendor's full interface bundle, keyed by representation."""
    return {"english": ENGLISH, "program": PROGRAM, "petri-net": petri_interface()}


def perflint_bundle():
    """Everything the perf-lint toolchain audits for this accelerator
    (``python -m repro.tools.perflint jpeg``)."""
    from repro.lint import InterfaceBundle

    from .workload import random_images

    # Fixed-size images varying only in compression rate, so the
    # cross-checks sweep the named property without confounders.
    samples = random_images(seed=2024, count=10, min_dim=64, max_dim=64)
    return InterfaceBundle(
        accelerator="jpeg-decoder",
        english=ENGLISH,
        program=PROGRAM,
        program_fns={
            "latency": latency_jpeg_decode,
            "throughput": tput_jpeg_decode,
        },
        workload_type=JpegImage,
        pnet_text=JPEG_PNET,
        pnet_file="src/repro/accel/jpeg/interfaces.py#JPEG_PNET",
        samples=samples,
        petri_latency_fn=petri_interface().latency,
        # Per-block token fields: block index within an MCU row group,
        # coded bytes and nonzero coefficients of one 8x8 block, and
        # the writeback flag.  Only bytes/nnz are declared monotone —
        # `i` feeds a periodic alignment stall and `wr` a branch, both
        # deliberately outside what the verifier can certify.
        feature_domains={
            "i": (0.0, 63.0),
            "bytes": (0.0, 64.0),
            "nnz": (0.0, 64.0),
            "wr": (0.0, 1.0),
        },
        declared_monotone={"bytes": +1, "nnz": +1},
    )
