"""Ground-truth model of a pipelined JPEG decoder (à la core_jpeg).

Three stages coupled by small FIFOs, processing 8x8 blocks:

1. **huffman** — entropy decode.  Cost is dominated by the coded bytes
   of the block; micro-effects: a 1-cycle bitstream re-alignment stall
   whenever the block ends off a byte boundary, and a 12-cycle restart-
   marker resync every 64 blocks.
2. **idct** — dequantize + 2D IDCT.  Two passes over 64 coefficients at
   one coefficient/cycle plus setup; dequantization skips zero
   coefficients in groups of 16, adding ``nnz // 16`` cycles.
3. **output** — color/level conversion and writeback, 2 px/cycle, with
   a blocking 256 B DRAM burst every 4th block (the write combiner's
   granularity).  DRAM timing (row hits, refresh) comes from
   :class:`repro.hw.Dram`.

Timing follows the blocking-pipeline recurrence proved equivalent to
cycle-ticking in ``tests/hw/test_pipeline_equivalence.py``; the output
stage's DRAM interaction is resolved inline (its start times are
monotone in block order, so DRAM requests are issued in time order).

The Python-program and Petri-net interfaces for this decoder live in
:mod:`repro.accel.jpeg.interfaces`; the error each makes against this
model is organic (DESIGN.md §6).
"""

from __future__ import annotations

from repro.accel.base import AcceleratorModel
from repro.hw import Dram, DramConfig

from .workload import JpegImage

# --- Microarchitectural constants (the "RTL") -------------------------
HEADER_PARSE_CYCLES = 150  # table + frame/scan header parse before block 0
HUFF_BASE = 6              # per-block DC predict + control
HUFF_PER_BYTE = 8.0        # bit-serial entropy decode: 1 bit/cycle
RESTART_INTERVAL = 64      # blocks between restart markers
RESTART_RESYNC = 12        # cycles to resync at a marker
IDCT_BASE = 134            # 2 x 64 coefficient passes + 6 setup
IDCT_NNZ_STEP = 16         # dequant skip granularity
OUTPUT_PER_BLOCK = 32      # 64 px at 2 px/cycle
WRITE_COMBINE_BLOCKS = 4   # blocks per 256 B writeback burst
WRITE_BURST_BYTES = 256
FIFO_DEPTH = 4             # between huffman->idct and idct->output
EOI_CYCLES = 8             # end-of-image flush

#: DRAM used by the writeback port (one decoder, one channel).
DRAM_CONFIG = DramConfig()


class JpegDecoderModel(AcceleratorModel[JpegImage]):
    """Cycle-level decoder model; the reproduction's ground truth."""

    name = "jpeg-decoder"

    def __init__(self, dram_config: DramConfig | None = None):
        self.dram_config = dram_config or DRAM_CONFIG

    # ------------------------------------------------------------------
    def decode_timing(self, image: JpegImage, *, start: float = 0.0) -> float:
        """Return the cycle at which the last pixel of ``image`` is written.

        ``start`` is when the coded stream is available; a fresh DRAM
        (idle banks) is assumed, as per the isolated-latency contract.
        """
        dram = Dram(self.dram_config)
        return self._run(image, dram, start)

    def _run(self, image: JpegImage, dram: Dram, start: float) -> float:
        n = image.n_blocks
        coded = image.coded_bytes
        nnz = image.nnz

        # Per-block huffman cost, including alignment and restart stalls.
        # The coded stream's bit length per block is 8*bytes minus a
        # data-dependent remainder; decode stalls one cycle whenever the
        # running bit position leaves the block unaligned.
        huff = [0.0] * n
        bitpos = 0
        for i in range(n):
            bits = int(coded[i]) * 8 - int(nnz[i]) % 7
            bitpos += bits
            cost = HUFF_BASE + HUFF_PER_BYTE * float(coded[i])
            if bitpos % 8:
                cost += 1.0
            if (i + 1) % RESTART_INTERVAL == 0:
                cost += RESTART_RESYNC
                bitpos = 0  # markers are byte-aligned
            huff[i] = cost

        idct = [IDCT_BASE + int(nnz[i]) // IDCT_NNZ_STEP for i in range(n)]

        # Blocking-pipeline recurrence (see repro.hw.pipeline docstring),
        # with the output stage's DRAM bursts resolved inline.
        t0 = start + HEADER_PARSE_CYCLES
        cap = FIFO_DEPTH
        e0 = [0.0] * n  # exit times, stage 0
        e1 = [0.0] * n
        b1 = [0.0] * n
        b2 = [0.0] * n
        e2 = [0.0] * n
        out_addr = 0
        for i in range(n):
            # Stage 0: huffman (source always ready at t0).
            avail0 = t0
            free0 = e0[i - 1] if i else 0.0
            d0 = max(avail0, free0) + huff[i]
            space0 = b1[i - cap] if i >= cap else 0.0
            e0[i] = max(d0, space0)

            # Stage 1: idct.
            b1[i] = max(e0[i], e1[i - 1] if i else 0.0)
            d1 = b1[i] + idct[i]
            space1 = b2[i - cap] if i >= cap else 0.0
            e1[i] = max(d1, space1)

            # Stage 2: output (last stage, never blocked downstream).
            b2[i] = max(e1[i], e2[i - 1] if i else 0.0)
            cost2 = float(OUTPUT_PER_BLOCK)
            if (i + 1) % WRITE_COMBINE_BLOCKS == 0 or i == n - 1:
                issue = b2[i] + OUTPUT_PER_BLOCK
                done = dram.access(out_addr, issue, WRITE_BURST_BYTES)
                cost2 += done - issue
                out_addr += WRITE_BURST_BYTES
            e2[i] = b2[i] + cost2

        return e2[n - 1] + EOI_CYCLES

    # ------------------------------------------------------------------
    # AcceleratorModel contract
    # ------------------------------------------------------------------
    def measure_latency(self, item: JpegImage) -> float:
        return self.decode_timing(item)

    def measure_throughput(self, item: JpegImage, repeat: int = 8) -> float:
        """Images are processed one-by-one (no cross-image overlap), so
        sustained throughput is the inverse of the back-to-back period.
        """
        if repeat < 1:
            raise ValueError("repeat must be >= 1")
        dram = Dram(self.dram_config)
        t = 0.0
        first_done = None
        for k in range(repeat):
            t = self._run(item, dram, t)
            if first_done is None:
                first_done = t
        if repeat == 1:
            return 1.0 / t
        return (repeat - 1) / (t - first_done)
