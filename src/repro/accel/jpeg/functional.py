"""A functional baseline-JPEG codec path (grayscale).

The decoder *model* in this package is timing-only (the paper's
interfaces are about performance, not pixels).  This module supplies
the functional substrate underneath it: the forward path — 8x8 DCT,
quantization at a quality factor, zig-zag, and baseline Huffman entropy
coding with the standard Annex-K luminance tables — and the inverse
path back to pixels.

Why it matters here: with a real entropy coder, a workload image's
per-block coded sizes and coefficient counts (the quantities every
JPEG interface in this repo keys on) can be *derived from actual pixel
content* instead of drawn from a distribution —
:func:`image_from_pixels` bridges into the timing model's
:class:`~repro.accel.jpeg.workload.JpegImage`.  DESIGN.md §2's
statistical substitution thereby gets a semi-functional upgrade, and
the statistics generator can be cross-checked against real encodes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .workload import JpegImage

# ----------------------------------------------------------------------
# DCT basis (type-II, orthonormal)
# ----------------------------------------------------------------------


def _dct_matrix() -> np.ndarray:
    k = np.arange(8)
    basis = np.cos((2 * k[None, :] + 1) * k[:, None] * np.pi / 16)
    basis[0, :] *= 1 / np.sqrt(2)
    return basis * 0.5


_DCT = _dct_matrix()

#: Standard JPEG luminance quantization table (Annex K, Table K.1).
BASE_QUANT = np.array(
    [
        [16, 11, 10, 16, 24, 40, 51, 61],
        [12, 12, 14, 19, 26, 58, 60, 55],
        [14, 13, 16, 24, 40, 57, 69, 56],
        [14, 17, 22, 29, 51, 87, 80, 62],
        [18, 22, 37, 56, 68, 109, 103, 77],
        [24, 35, 55, 64, 81, 104, 113, 92],
        [49, 64, 78, 87, 103, 121, 120, 101],
        [72, 92, 95, 98, 112, 100, 103, 99],
    ],
    dtype=np.float64,
)

#: Zig-zag scan order mapping (row, col) pairs to scan position.
ZIGZAG = np.array(
    [
        0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5,
        12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6, 7, 14, 21, 28,
        35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
        58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
    ]
)


def quant_table(quality: int) -> np.ndarray:
    """IJG quality scaling of the base table (1 = worst, 100 = best)."""
    if not 1 <= quality <= 100:
        raise ValueError("quality must be in [1, 100]")
    scale = 5000 / quality if quality < 50 else 200 - 2 * quality
    table = np.floor((BASE_QUANT * scale + 50) / 100)
    return np.clip(table, 1, 255)


def fdct(block: np.ndarray) -> np.ndarray:
    """Forward 2D DCT of one 8x8 block (level-shifted pixels)."""
    return _DCT @ block @ _DCT.T


def idct(coeffs: np.ndarray) -> np.ndarray:
    """Inverse 2D DCT."""
    return _DCT.T @ coeffs @ _DCT


# ----------------------------------------------------------------------
# Baseline Huffman coding (Annex K luminance tables)
# ----------------------------------------------------------------------
# BITS/HUFFVAL pairs per ITU T.81 Annex K; canonical codes follow.
_DC_BITS = [0, 0, 1, 5, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0]
_DC_VALS = list(range(12))
_AC_BITS = [0, 0, 2, 1, 3, 3, 2, 4, 3, 5, 5, 4, 4, 0, 0, 1, 0x7D]
_AC_VALS = [
    0x01, 0x02, 0x03, 0x00, 0x04, 0x11, 0x05, 0x12, 0x21, 0x31, 0x41, 0x06,
    0x13, 0x51, 0x61, 0x07, 0x22, 0x71, 0x14, 0x32, 0x81, 0x91, 0xA1, 0x08,
    0x23, 0x42, 0xB1, 0xC1, 0x15, 0x52, 0xD1, 0xF0, 0x24, 0x33, 0x62, 0x72,
    0x82, 0x09, 0x0A, 0x16, 0x17, 0x18, 0x19, 0x1A, 0x25, 0x26, 0x27, 0x28,
    0x29, 0x2A, 0x34, 0x35, 0x36, 0x37, 0x38, 0x39, 0x3A, 0x43, 0x44, 0x45,
    0x46, 0x47, 0x48, 0x49, 0x4A, 0x53, 0x54, 0x55, 0x56, 0x57, 0x58, 0x59,
    0x5A, 0x63, 0x64, 0x65, 0x66, 0x67, 0x68, 0x69, 0x6A, 0x73, 0x74, 0x75,
    0x76, 0x77, 0x78, 0x79, 0x7A, 0x83, 0x84, 0x85, 0x86, 0x87, 0x88, 0x89,
    0x8A, 0x92, 0x93, 0x94, 0x95, 0x96, 0x97, 0x98, 0x99, 0x9A, 0xA2, 0xA3,
    0xA4, 0xA5, 0xA6, 0xA7, 0xA8, 0xA9, 0xAA, 0xB2, 0xB3, 0xB4, 0xB5, 0xB6,
    0xB7, 0xB8, 0xB9, 0xBA, 0xC2, 0xC3, 0xC4, 0xC5, 0xC6, 0xC7, 0xC8, 0xC9,
    0xCA, 0xD2, 0xD3, 0xD4, 0xD5, 0xD6, 0xD7, 0xD8, 0xD9, 0xDA, 0xE1, 0xE2,
    0xE3, 0xE4, 0xE5, 0xE6, 0xE7, 0xE8, 0xE9, 0xEA, 0xF1, 0xF2, 0xF3, 0xF4,
    0xF5, 0xF6, 0xF7, 0xF8, 0xF9, 0xFA,
]


def _canonical_codes(bits: list[int], vals: list[int]) -> dict[int, tuple[int, int]]:
    """Symbol -> (code, length) per the canonical Huffman construction."""
    codes: dict[int, tuple[int, int]] = {}
    code = 0
    k = 0
    for length in range(1, 17):
        for _ in range(bits[length]):
            codes[vals[k]] = (code, length)
            code += 1
            k += 1
        code <<= 1
    return codes


DC_CODES = _canonical_codes(_DC_BITS, _DC_VALS)
AC_CODES = _canonical_codes(_AC_BITS, _AC_VALS)
_DC_DECODE = {v: k for k, v in DC_CODES.items()}
_AC_DECODE = {v: k for k, v in AC_CODES.items()}


class BitWriter:
    """MSB-first bit accumulator."""

    def __init__(self) -> None:
        self._bits: list[int] = []

    def write(self, value: int, length: int) -> None:
        if length < 0 or (length and value >> length):
            raise ValueError(f"value {value} does not fit in {length} bits")
        for i in range(length - 1, -1, -1):
            self._bits.append((value >> i) & 1)

    def __len__(self) -> int:
        return len(self._bits)

    def to_bytes(self) -> bytes:
        out = bytearray()
        bits = self._bits + [1] * (-len(self._bits) % 8)  # 1-padding per JPEG
        for i in range(0, len(bits), 8):
            byte = 0
            for b in bits[i : i + 8]:
                byte = (byte << 1) | b
            out.append(byte)
        return bytes(out)


class BitReader:
    """MSB-first bit consumer."""

    def __init__(self, data: bytes):
        self._data = data
        self.pos = 0

    def read(self, length: int) -> int:
        value = 0
        for _ in range(length):
            byte = self._data[self.pos >> 3]
            value = (value << 1) | ((byte >> (7 - (self.pos & 7))) & 1)
            self.pos += 1
        return value


def _category(value: int) -> int:
    """JPEG magnitude category: bits needed for |value|."""
    return int(abs(value)).bit_length()


def _amplitude(value: int, size: int) -> int:
    """One's-complement amplitude encoding of a nonzero coefficient."""
    return value if value >= 0 else value + (1 << size) - 1


def _unamplitude(raw: int, size: int) -> int:
    if size == 0:
        return 0
    if raw >> (size - 1):
        return raw
    return raw - (1 << size) + 1


def encode_block(
    quantized: np.ndarray, prev_dc: int, writer: BitWriter
) -> tuple[int, int]:
    """Entropy-code one quantized block; returns (dc, nnz)."""
    flat = quantized.flatten()[ZIGZAG]
    dc = int(flat[0])
    diff = dc - prev_dc
    size = _category(diff)
    code, length = DC_CODES[size]
    writer.write(code, length)
    writer.write(_amplitude(diff, size), size)

    nnz = 1 if dc != 0 else 0
    run = 0
    last_nz = max((i for i in range(1, 64) if flat[i] != 0), default=0)
    for i in range(1, last_nz + 1):
        coef = int(flat[i])
        if coef == 0:
            run += 1
            if run == 16:
                code, length = AC_CODES[0xF0]  # ZRL
                writer.write(code, length)
                run = 0
            continue
        size = _category(coef)
        code, length = AC_CODES[(run << 4) | size]
        writer.write(code, length)
        writer.write(_amplitude(coef, size), size)
        nnz += 1
        run = 0
    if last_nz != 63:
        code, length = AC_CODES[0x00]  # EOB
        writer.write(code, length)
    return dc, nnz


def _decode_symbol(reader: BitReader, table: dict[tuple[int, int], int]) -> int:
    code = 0
    for length in range(1, 17):
        code = (code << 1) | reader.read(1)
        if (code, length) in table:
            return table[(code, length)]
    raise ValueError("invalid Huffman code in stream")


def decode_block(reader: BitReader, prev_dc: int) -> tuple[np.ndarray, int]:
    """Inverse of :func:`encode_block`; returns (quantized block, dc)."""
    flat = np.zeros(64, dtype=np.int64)
    size = _decode_symbol(reader, _DC_DECODE)
    diff = _unamplitude(reader.read(size), size)
    dc = prev_dc + diff
    flat[0] = dc
    i = 1
    while i < 64:
        symbol = _decode_symbol(reader, _AC_DECODE)
        if symbol == 0x00:  # EOB
            break
        if symbol == 0xF0:  # ZRL
            i += 16
            continue
        run, size = symbol >> 4, symbol & 0xF
        i += run
        if i >= 64:
            raise ValueError("AC run overflows block")
        flat[i] = _unamplitude(reader.read(size), size)
        i += 1
    block = np.zeros(64, dtype=np.int64)
    block[ZIGZAG] = flat
    return block.reshape(8, 8), dc


# ----------------------------------------------------------------------
# Whole-image paths
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CodedImage:
    """Output of the functional encoder."""

    width: int
    height: int
    quality: int
    bitstream: bytes
    block_bits: np.ndarray   # entropy-coded bits per block
    block_nnz: np.ndarray    # non-zero quantized coefficients per block

    @property
    def n_blocks(self) -> int:
        return (self.width // 8) * (self.height // 8)


def encode_pixels(pixels: np.ndarray, quality: int = 75) -> CodedImage:
    """Encode a grayscale image (uint8, dims multiples of 8)."""
    pixels = np.asarray(pixels)
    h, w = pixels.shape
    if h % 8 or w % 8:
        raise ValueError("image dimensions must be multiples of 8")
    table = quant_table(quality)
    writer = BitWriter()
    bits_before = 0
    block_bits = []
    block_nnz = []
    prev_dc = 0
    for by in range(0, h, 8):
        for bx in range(0, w, 8):
            block = pixels[by : by + 8, bx : bx + 8].astype(np.float64) - 128.0
            quantized = np.round(fdct(block) / table).astype(np.int64)
            prev_dc, nnz = encode_block(quantized, prev_dc, writer)
            block_bits.append(len(writer) - bits_before)
            bits_before = len(writer)
            block_nnz.append(nnz)
    return CodedImage(
        width=w,
        height=h,
        quality=quality,
        bitstream=writer.to_bytes(),
        block_bits=np.array(block_bits),
        block_nnz=np.array(block_nnz),
    )


def decode_pixels(coded: CodedImage) -> np.ndarray:
    """Reconstruct pixels (lossy) from a :class:`CodedImage`."""
    table = quant_table(coded.quality)
    reader = BitReader(coded.bitstream)
    out = np.zeros((coded.height, coded.width), dtype=np.float64)
    prev_dc = 0
    for by in range(0, coded.height, 8):
        for bx in range(0, coded.width, 8):
            quantized, prev_dc = decode_block(reader, prev_dc)
            out[by : by + 8, bx : bx + 8] = idct(quantized * table) + 128.0
    return np.clip(np.round(out), 0, 255).astype(np.uint8)


def image_from_pixels(pixels: np.ndarray, quality: int = 75) -> JpegImage:
    """Bridge: encode real pixels and expose the result as the timing
    model's workload type, with *measured* per-block statistics."""
    coded = encode_pixels(pixels, quality)
    coded_bytes = np.maximum(1, -(-coded.block_bits // 8)).astype(np.int64)
    nnz = np.clip(coded.block_nnz, 1, 64).astype(np.int64)
    return JpegImage(
        width=coded.width, height=coded.height, coded_bytes=coded_bytes, nnz=nnz
    )


def synthetic_photo(
    rng: np.random.Generator, width: int = 64, height: int = 64, detail: float = 0.5
) -> np.ndarray:
    """A photo-like test card: smooth gradients plus band-limited noise.

    ``detail`` in [0, 1] trades smooth (compressible) against textured
    (incompressible) content — the functional analogue of the
    statistical generator's compression-rate knob.
    """
    if not 0.0 <= detail <= 1.0:
        raise ValueError("detail must be in [0, 1]")
    y, x = np.mgrid[0:height, 0:width]
    base = 96 + 48 * np.sin(x / 17.0) + 32 * np.cos(y / 23.0)
    noise = rng.normal(0, 1, (height, width))
    # Band-limit by a separable moving average; less smoothing = more detail.
    k = max(1, int(round((1 - detail) * 6)) * 2 + 1)
    kernel = np.ones(k) / k
    for axis in (0, 1):
        noise = np.apply_along_axis(
            lambda m: np.convolve(m, kernel, mode="same"), axis, noise
        )
    texture = noise / max(noise.std(), 1e-9) * (10 + 70 * detail)
    return np.clip(base + texture, 0, 255).astype(np.uint8)
