"""Pipelined JPEG decoder: ground-truth model, workloads, interfaces.

Stand-in for the paper's core_jpeg accelerator (an open-source pipelined
JPEG decoder).  See DESIGN.md §2 for the RTL-to-Python substitution.
"""

from .functional import (
    CodedImage,
    decode_pixels,
    encode_pixels,
    image_from_pixels,
    synthetic_photo,
)
from .interfaces import (
    ENGLISH,
    JPEG_PNET,
    PROGRAM,
    all_interfaces,
    latency_jpeg_decode,
    petri_interface,
    tput_jpeg_decode,
)
from .model import JpegDecoderModel
from .workload import JpegImage, random_image, random_images

__all__ = [
    "ENGLISH",
    "JPEG_PNET",
    "PROGRAM",
    "CodedImage",
    "JpegDecoderModel",
    "JpegImage",
    "decode_pixels",
    "encode_pixels",
    "image_from_pixels",
    "synthetic_photo",
    "all_interfaces",
    "latency_jpeg_decode",
    "petri_interface",
    "random_image",
    "random_images",
    "tput_jpeg_decode",
]
