"""Synthetic JPEG workloads.

The paper validated the JPEG decoder's interfaces on 1500 random images.
We have no JPEG corpus, so this module generates *statistical* images:
the decoder's timing depends only on the number of 8x8 blocks and each
block's coded size / coefficient count, so an image here is exactly that
metadata (DESIGN.md §2 documents this substitution).

All generation is driven by an explicit :class:`numpy.random.Generator`
so workloads are reproducible bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Fixed JFIF-ish header size in bytes (tables, frame/scan headers).
HEADER_BYTES = 623


@dataclass(frozen=True)
class JpegImage:
    """Metadata of one coded image, as the decoder's DMA engine sees it.

    Attributes:
        width, height: Pixel dimensions (multiples of 8).
        coded_bytes: Per-block entropy-coded sizes, in bytes.
        nnz: Per-block count of non-zero quantized coefficients (1..64).
    """

    width: int
    height: int
    coded_bytes: np.ndarray = field(repr=False)
    nnz: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        if self.width % 8 or self.height % 8:
            raise ValueError("dimensions must be multiples of 8")
        if len(self.coded_bytes) != self.n_blocks or len(self.nnz) != self.n_blocks:
            raise ValueError("per-block arrays must have n_blocks entries")
        if np.any(self.nnz < 1) or np.any(self.nnz > 64):
            raise ValueError("nnz must lie in [1, 64]")
        if np.any(self.coded_bytes < 1):
            raise ValueError("coded_bytes must be >= 1")

    @property
    def n_blocks(self) -> int:
        return (self.width // 8) * (self.height // 8)

    @property
    def orig_size(self) -> int:
        """Decoded image size in bytes (8-bit grayscale)."""
        return self.width * self.height

    @property
    def coded_size(self) -> int:
        """On-disk size: entropy-coded data plus header."""
        return int(self.coded_bytes.sum()) + HEADER_BYTES

    @property
    def compress_rate(self) -> float:
        """The paper's compression rate: output size over input size."""
        return self.orig_size / self.coded_size

    def __str__(self) -> str:
        return (
            f"JpegImage({self.width}x{self.height}, "
            f"{self.coded_size}B coded, rate={self.compress_rate:.2f})"
        )


def random_image(
    rng: np.random.Generator,
    *,
    min_dim: int = 16,
    max_dim: int = 512,
    min_rate: float = 0.8,
    max_rate: float = 18.0,
) -> JpegImage:
    """Draw one random image.

    Dimensions are log-uniform over [min_dim, max_dim] (rounded to
    multiples of 8); the *target* compression rate is log-uniform over
    [min_rate, max_rate].  Per-block coded sizes follow a gamma
    distribution around the target (real entropy-coded block sizes are
    right-skewed), so the *achieved* ``compress_rate`` deviates from the
    target by sampling noise — exactly like real images.
    """

    def dim() -> int:
        lo, hi = np.log(min_dim), np.log(max_dim)
        return max(8, int(round(np.exp(rng.uniform(lo, hi)) / 8)) * 8)

    width, height = dim(), dim()
    n_blocks = (width // 8) * (height // 8)
    rate = float(np.exp(rng.uniform(np.log(min_rate), np.log(max_rate))))

    mean_bytes = 64.0 / rate
    shape = 4.0  # right-skewed but not wild
    coded = rng.gamma(shape, mean_bytes / shape, size=n_blocks)
    coded = np.clip(np.round(coded), 1, 255).astype(np.int64)

    # Non-zero coefficient count correlates with coded size: roughly
    # 5.5 coded bits per retained coefficient, plus noise.
    nnz = coded * 8.0 / 5.5 + rng.normal(0.0, 2.0, size=n_blocks)
    nnz = np.clip(np.round(nnz), 1, 64).astype(np.int64)

    return JpegImage(width=width, height=height, coded_bytes=coded, nnz=nnz)


def random_images(seed: int, count: int, **kwargs) -> list[JpegImage]:
    """The paper's "N random images" workload, reproducibly."""
    rng = np.random.default_rng(seed)
    return [random_image(rng, **kwargs) for _ in range(count)]
