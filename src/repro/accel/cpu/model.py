"""A Xeon-like software-serialization baseline, plus offload overheads.

Two roles in the reproduction:

* the "regular Xeon" that Protoacc can lose to on small objects
  (paper §2, example #2), and
* the host side of every offload: an accelerator invocation pays a
  descriptor setup plus a PCIe-ish transfer, which is what makes blind
  offloading of small objects a net loss.

The software cost model is the standard shape for protobuf C++
serialization: per-message call overhead, per-field dispatch (branchy,
~tens of instructions), and a per-byte copy/encode term.
"""

from __future__ import annotations

from repro.accel.base import AcceleratorModel
from repro.accel.protoacc.message import Message

#: Same reference clock as the accelerators, for comparable cycles.
CLOCK_GHZ = 2.0

SW_PER_MESSAGE = 250.0   # call chain, allocation, size pre-pass
SW_PER_FIELD = 12.0      # dispatch + tag encode per field
SW_PER_BYTE = 1.5        # copy/varint-encode per payload byte

#: Offload invocation costs (paid by any accelerator, not the CPU).
OFFLOAD_SETUP_CYCLES = 350.0   # doorbell, descriptor, completion IRQ
OFFLOAD_BYTES_PER_CYCLE = 16.0  # PCIe-ish DMA bandwidth


class CpuSerializerModel(AcceleratorModel[Message]):
    """Software protobuf serialization on one core."""

    name = "xeon-sw"

    def measure_latency(self, item: Message) -> float:
        cycles = SW_PER_MESSAGE * item.total_messages
        cycles += SW_PER_FIELD * item.total_fields
        cycles += SW_PER_BYTE * item.payload_bytes
        return cycles

    def measure_throughput(self, item: Message, repeat: int = 8) -> float:
        return 1.0 / self.measure_latency(item)


def offload_overhead(item: Message) -> float:
    """Cycles to hand one message to an accelerator and collect the
    result: fixed invocation cost plus the DMA transfer of the payload."""
    return OFFLOAD_SETUP_CYCLES + item.payload_bytes / OFFLOAD_BYTES_PER_CYCLE


def offloaded_latency(model: AcceleratorModel[Message], item: Message) -> float:
    """End-to-end latency of serializing ``item`` on ``model`` from the
    host's perspective (accelerator time + invocation overhead)."""
    return model.measure_latency(item) + offload_overhead(item)
