"""Software (Xeon) baseline and offload-overhead accounting."""

from .model import (
    CLOCK_GHZ,
    OFFLOAD_SETUP_CYCLES,
    CpuSerializerModel,
    offload_overhead,
    offloaded_latency,
)

__all__ = [
    "CLOCK_GHZ",
    "OFFLOAD_SETUP_CYCLES",
    "CpuSerializerModel",
    "offload_overhead",
    "offloaded_latency",
]
