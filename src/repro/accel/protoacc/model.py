"""Ground-truth model of the Protoacc serializer (and deserializer).

Microarchitecture (following the Protoacc paper's structure at the
granularity its performance depends on):

**Read path** — a serial descriptor/pointer engine:

1. Message header fetch: one dependent DRAM access.
2. Field-data base dereference: a second dependent access.
3. Descriptor-table fetches: one access per 32 fields, each followed by
   4 cycles of decode.  Scalar field *data* rides along with its
   descriptor group (Protoacc's packed layout), so each group becomes
   an output operation when its fetch completes.
4. BYTES fields stream their payload through the prefetch port.
5. Submessage fields are pointer chases: the engine recurses, fully
   serially (this is why "throughput decreases as the degree of nesting
   increases", paper Fig. 1).

**Write path** — a write combiner that drains the encoded stream at one
8-byte beat per cycle after a 5-cycle per-message setup, stalling when
the read path has not yet produced the next bytes.

The model computes real encoded sizes via :mod:`.message`'s wire-format
encoder, assigns each message deterministic pseudo-random memory
addresses (pointer chases land in random rows/banks, as heap objects
do), and resolves all DRAM timing through :class:`repro.hw.Dram`.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.accel.base import AcceleratorModel
from repro.hw import Dram, DramConfig
from repro.hw.noc import BusConfig, SharedBus
from repro.hw.tlb import Tlb, TlbConfig

from .message import FieldKind, Message

# Microarchitectural constants.
MSG_CONTROL_CYCLES = 6     # per-message bookkeeping in the read engine
DESCRIPTOR_DECODE = 4      # cycles to decode one 32-field descriptor group
FIELDS_PER_DESCRIPTOR = 32
WRITE_SETUP = 5            # write-combiner setup per message
READ_BYTES_PER_BEAT = 16   # prefetch/stream width (DRAM beat)
OUT_BYTES_PER_BEAT = 8     # write-combiner drain rate (encode is the
                           # narrow port: varint repacking halves width)
EPILOGUE = 2               # final flush handshake

DRAM_CONFIG = DramConfig()


@dataclass(frozen=True)
class _Op:
    """One unit of encoded output produced by the read path."""

    ready: float   # cycle the data is available to the write combiner
    beats: int     # 8-byte beats of encoded output


@dataclass(frozen=True)
class SerializeTiming:
    """Timing breakdown for one message."""

    read_end: float
    write_end: float
    ops: int

    @property
    def latency(self) -> float:
        return self.write_end + EPILOGUE


class ProtoaccSerializerModel(AcceleratorModel[Message]):
    """Cycle-level Protoacc serializer: the reproduction's ground truth."""

    name = "protoacc-ser"

    def __init__(
        self,
        dram_config: DramConfig | None = None,
        *,
        tlb_config: TlbConfig | None = None,
        heap_pages: int = 512,
        bus_config: BusConfig | None = None,
        tracer=None,
    ):
        """``tlb_config`` enables the paper's §5 extension: the
        co-processor reaches memory through an IOMMU TLB and every
        pointer chase, descriptor fetch, or payload stream first pays
        for translation.  ``heap_pages`` bounds the message arena so
        translations exhibit realistic locality (512 pages = 2 MiB).

        ``bus_config`` inserts a shared SmartNIC interconnect between
        the accelerator and memory: every transaction arbitrates on the
        bus (against its background traffic) before DRAM sees it —
        §5's other environment example.

        ``tracer`` (see :class:`repro.obs.Tracer`) is threaded into the
        DRAM the model instantiates per measurement, so memory activity
        shows up as ``hw.dram`` spans.  ``trace_origin`` is a settable
        attribute: models time each call on a local 0-based clock, and a
        caller serving requests on its own timeline (e.g.
        :class:`repro.runtime.device.ResilientDevice`) sets it before
        each measurement so the spans land under the offload window."""
        self.dram_config = dram_config or DRAM_CONFIG
        self.tlb_config = tlb_config
        self.heap_pages = heap_pages
        self.bus_config = bus_config
        self.tracer = (
            tracer if tracer is not None and getattr(tracer, "enabled", True) else None
        )
        self.trace_origin = 0.0

    def _dram(self) -> Dram:
        return Dram(
            self.dram_config,
            tracer=self.tracer,
            trace_origin=self.trace_origin,
            trace_tid=f"{self.name}.dram",
        )

    # ------------------------------------------------------------------
    def _addr_rng(self, msg: Message, salt: int = 0) -> np.random.Generator:
        """Deterministic per-message address layout: heap pointers are
        effectively random, but the same message must always measure
        identically.  ``salt`` distinguishes successive heap objects in
        a streaming run (copy k of a message is a different allocation).
        """
        digest = zlib.crc32(msg.encode()) ^ (msg.total_messages << 16)
        return np.random.default_rng((digest, salt))

    def _read_message(
        self,
        msg: Message,
        t: float,
        dram: Dram,
        rng: np.random.Generator,
        ops: list[_Op],
        tlb: Tlb | None = None,
        bus: SharedBus | None = None,
    ) -> float:
        """Walk one message; appends output ops; returns read-done time."""

        cross = (lambda at, size: at) if bus is None else bus.request

        if tlb is None:
            def rand_addr() -> int:
                return int(rng.integers(0, 1 << 28)) * 64

            translate = lambda addr, at: at  # noqa: E731 - no TLB configured
        else:
            # A bounded arena gives page locality, so the TLB matters.
            def rand_addr() -> int:
                page = int(rng.integers(0, self.heap_pages))
                return page * 4096 + int(rng.integers(0, 64)) * 64

            translate = tlb.translate

        # Two dependent accesses: header, then field-data base pointer.
        addr = rand_addr()
        t = dram.access(addr, cross(translate(addr, t), 64), 64)
        addr = rand_addr()
        t = dram.access(addr, cross(translate(addr, t), 64), 64)
        t += MSG_CONTROL_CYCLES

        # Descriptor groups: each fetch+decode releases its scalars'
        # encoded bytes to the write combiner.  Descriptor-table pages
        # live wherever the runtime allocated them, so each group fetch
        # is a full-latency (usually row-missing) access.
        n_groups = -(-msg.num_fields // FIELDS_PER_DESCRIPTOR) if msg.num_fields else 0
        scalar_beats = self._scalar_beats(msg)
        for g in range(n_groups):
            addr = rand_addr()
            t = dram.access(addr, cross(translate(addr, t), 64), 64)
            t += DESCRIPTOR_DECODE
            share = scalar_beats // n_groups + (1 if g < scalar_beats % n_groups else 0)
            if share:
                ops.append(_Op(ready=t, beats=share))

        # Field walk in wire order: blobs stream, submessages recurse.
        for f in msg.fields:
            if f.kind is FieldKind.BYTES:
                size = len(f.value)  # type: ignore[arg-type]
                addr = rand_addr()
                t = dram.stream(
                    addr, cross(translate(addr, t), max(1, size)), max(1, size)
                )
                ops.append(_Op(ready=t, beats=max(1, -(-size // OUT_BYTES_PER_BEAT))))
            elif f.kind is FieldKind.MESSAGE:
                t = self._read_message(f.value, t, dram, rng, ops, tlb, bus)  # type: ignore[arg-type]
        return t

    @staticmethod
    def _scalar_beats(msg: Message) -> int:
        """Encoded beats contributed by this message's own scalar fields
        and by the tag/length prefixes of its blob/submessage fields."""
        own = msg.encoded_size()
        for f in msg.fields:
            if f.kind is FieldKind.BYTES:
                own -= len(f.value)  # type: ignore[arg-type]
            elif f.kind is FieldKind.MESSAGE:
                own -= f.value.encoded_size()  # type: ignore[union-attr]
        return max(0, -(-own // OUT_BYTES_PER_BEAT))

    def _drain(self, ops: list[_Op], setup_done: float) -> float:
        """Write-combiner drain completion for a message's op list."""
        t = setup_done
        for op in ops:
            t = max(t, op.ready) + op.beats
        return t

    def serialize_timing(
        self, msg: Message, *, dram: Dram | None = None, start: float = 0.0
    ) -> SerializeTiming:
        dram = dram or self._dram()
        ops: list[_Op] = []
        rng = self._addr_rng(msg)
        tlb = Tlb(self.tlb_config) if self.tlb_config else None
        bus = SharedBus(self.bus_config) if self.bus_config else None
        read_end = self._read_message(msg, start, dram, rng, ops, tlb, bus)
        write_end = self._drain(ops, setup_done=start + WRITE_SETUP)
        return SerializeTiming(read_end=read_end, write_end=write_end, ops=len(ops))

    # ------------------------------------------------------------------
    # AcceleratorModel contract
    # ------------------------------------------------------------------
    def measure_latency(self, item: Message) -> float:
        return self.serialize_timing(item).latency

    def measure_throughput(self, item: Message, repeat: int = 8) -> float:
        """Stream ``repeat`` copies: the next message's read path starts
        as soon as the engine frees, overlapping the previous message's
        writes (read and write paths are distinct hardware)."""
        if repeat < 1:
            raise ValueError("repeat must be >= 1")
        dram = self._dram()
        tlb = Tlb(self.tlb_config) if self.tlb_config else None
        bus = SharedBus(self.bus_config) if self.bus_config else None
        read_t = 0.0
        write_free = 0.0
        ends: list[float] = []
        for copy in range(repeat):
            ops: list[_Op] = []
            rng = self._addr_rng(item, salt=copy)
            read_t = self._read_message(item, read_t, dram, rng, ops, tlb, bus)
            write_end = self._drain(ops, setup_done=write_free + WRITE_SETUP)
            write_free = write_end
            ends.append(write_end + EPILOGUE)
        if repeat == 1:
            return 1.0 / ends[0]
        return (repeat - 1) / (ends[-1] - ends[0])


class ProtoaccDeserializerModel(AcceleratorModel[Message]):
    """Deserializer counterpart: parses the wire stream and scatters
    fields to memory.  The parse front end consumes 2 encoded bytes per
    cycle; length-delimited payloads stream at full beat rate; each
    submessage allocation costs one dependent DRAM access (object
    placement), mirroring the serializer's pointer chases in reverse.
    """

    name = "protoacc-deser"
    PARSE_BYTES_PER_CYCLE = 2

    def __init__(self, dram_config: DramConfig | None = None):
        self.dram_config = dram_config or DRAM_CONFIG

    def _walk(
        self, msg: Message, t: float, dram: Dram, rng: np.random.Generator
    ) -> float:
        t = dram.access(int(rng.integers(0, 1 << 28)) * 64, t, 64)  # allocate
        scalars = ProtoaccSerializerModel._scalar_beats(msg) * OUT_BYTES_PER_BEAT
        t += scalars / self.PARSE_BYTES_PER_CYCLE
        for f in msg.fields:
            if f.kind is FieldKind.BYTES:
                size = max(1, len(f.value))  # type: ignore[arg-type]
                t = dram.stream(int(rng.integers(0, 1 << 28)) * 64, t, size)
            elif f.kind is FieldKind.MESSAGE:
                t = self._walk(f.value, t, dram, rng)  # type: ignore[arg-type]
        return t

    def measure_latency(self, item: Message) -> float:
        dram = Dram(self.dram_config)
        rng = np.random.default_rng(zlib.crc32(item.encode()))
        return self._walk(item, 0.0, dram, rng) + EPILOGUE
