"""Protoacc: a protobuf (de)serialization accelerator, with a from-
scratch protobuf wire-format substrate and 32 evaluation formats."""

from .formats import build, format_names, instances
from .interfaces import (
    AVG_MEM_LATENCY,
    ENGLISH,
    PROGRAM,
    all_interfaces,
    bottleneck,
    latency_bounds,
    max_latency_protoacc_ser,
    min_latency_protoacc_ser,
    petri_interface,
    read_cost,
    tput_protoacc_ser,
    write_cost,
)
from .message import (
    Field,
    FieldKind,
    Message,
    decode,
    decode_varint,
    decode_with_kinds,
    encode_varint,
)
from .model import (
    ProtoaccDeserializerModel,
    ProtoaccSerializerModel,
    SerializeTiming,
)

__all__ = [
    "AVG_MEM_LATENCY",
    "ENGLISH",
    "PROGRAM",
    "Field",
    "FieldKind",
    "Message",
    "ProtoaccDeserializerModel",
    "ProtoaccSerializerModel",
    "SerializeTiming",
    "all_interfaces",
    "bottleneck",
    "build",
    "decode",
    "decode_varint",
    "decode_with_kinds",
    "encode_varint",
    "format_names",
    "instances",
    "latency_bounds",
    "max_latency_protoacc_ser",
    "min_latency_protoacc_ser",
    "petri_interface",
    "read_cost",
    "tput_protoacc_ser",
    "write_cost",
]
