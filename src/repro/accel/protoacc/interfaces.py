"""Performance interfaces for the Protoacc serializer (paper Fig. 3).

The executable interface below keeps the figure's exact structure —
recursive ``read_cost``, throughput as the min of read and write rates,
and honest latency *bounds* instead of a point estimate (read and write
overlap in message-dependent ways, so a closed form is hard; bounds are
"still much better than no information at all").

One extension relative to the figure: our 32-format suite includes
large BYTES payloads, so ``read_cost`` carries a streaming term for
them (the paper's formats were scalar/nesting-focused).  Constants are
vendor-fitted to the ground-truth model, like all interface constants
in this reproduction.
"""

from __future__ import annotations

from math import ceil

from repro.core.interface import LatencyBounds
from repro.core.nl import EnglishInterface, PerformanceStatement, Relation
from repro.core.program import ProgramInterface

from .message import FieldKind, Message

# ----------------------------------------------------------------------
# Representation 1: English (paper Fig. 1, third entry)
# ----------------------------------------------------------------------
ENGLISH = EnglishInterface(
    accelerator="protoacc-ser",
    statements=(
        PerformanceStatement(
            metric="Throughput",
            relation=Relation.DECREASES_WITH,
            quantity="the degree of nesting in a message",
            accessor=lambda msg: float(msg.nesting_depth),
        ),
    ),
)

# ----------------------------------------------------------------------
# Representation 2: executable Python program (paper Fig. 3)
# ----------------------------------------------------------------------
#: Fitted average latency of one accelerator memory access (cycles).
#: Pointer chases and descriptor fetches land on effectively random
#: rows, so this sits near the row-miss service time plus refresh duty.
AVG_MEM_LATENCY = 42.9
#: Conservative per-access latency used in the guaranteed upper bound.
WORST_MEM_LATENCY = 48.0
#: Best-case (row hit, no refresh) access, used in the lower bound.
BEST_MEM_LATENCY = 18.0
#: Fixed cost of one payload stream (CAS + activate), plus 1 beat/16 B.
STREAM_SETUP = 38.0


def _blob_stream_cost(msg: Message) -> float:
    """Read-path cycles spent streaming this message's own BYTES data."""
    return sum(
        STREAM_SETUP + ceil(len(f.value) / 16)  # type: ignore[arg-type]
        for f in msg.fields
        if f.kind is FieldKind.BYTES
    )


def read_cost(msg: Message, avg_mem_latency: float = AVG_MEM_LATENCY) -> float:
    """Read-path cycles for ``msg``, recursively (paper Fig. 3 lines 1-5).

    6 control cycles + two dependent accesses (header, data base) + one
    descriptor fetch-and-decode per 32 fields + payload streaming + the
    full cost of every nested submessage (pointer chases serialize).
    """
    cost = 0.0
    for sub in msg.submessages():
        cost += read_cost(sub, avg_mem_latency)
    cost += _blob_stream_cost(msg)
    return (
        cost
        + 6
        + avg_mem_latency * 2
        + (4 + avg_mem_latency) * ceil(msg.num_fields / 32)
    )


def write_cost(msg: Message) -> float:
    """Write-combiner cycles: setup plus one cycle per 16 B beat."""
    return 5.0 + msg.num_writes


def tput_protoacc_ser(msg: Message) -> float:
    """Messages/cycle at saturation: the slower of the two paths wins
    (paper Fig. 3 lines 7-13)."""
    read_tput = 1.0 / read_cost(msg)
    write_tput = 1.0 / write_cost(msg)
    return min(read_tput, write_tput)


def min_latency_protoacc_ser(msg: Message) -> float:
    """Guaranteed lower bound: even with reads fully hidden, the write
    combiner must set up and drain every beat, and the first beat cannot
    exist before two best-case dependent accesses (Fig. 3 line 15-16)."""
    return write_cost(msg) + 2 * BEST_MEM_LATENCY


def max_latency_protoacc_ser(msg: Message) -> float:
    """Guaranteed upper bound: read path and write path fully serialized,
    with every access at its worst-case latency (Fig. 3 lines 18-22)."""
    return read_cost(msg, WORST_MEM_LATENCY) + write_cost(msg) + 16.0


PROGRAM = ProgramInterface(
    "protoacc-ser",
    throughput_fn=tput_protoacc_ser,
    min_latency_fn=min_latency_protoacc_ser,
    max_latency_fn=max_latency_protoacc_ser,
)


def latency_bounds(msg: Message) -> LatencyBounds:
    """Convenience accessor for the guaranteed interval."""
    return LatencyBounds(min_latency_protoacc_ser(msg), max_latency_protoacc_ser(msg))


def bottleneck(msg: Message) -> str:
    """Which stage limits throughput for ``msg`` — the question the
    paper says this interface lets developers answer per message."""
    return "read" if read_cost(msg) > write_cost(msg) else "write"


# ----------------------------------------------------------------------
# Representation 3: Petri-net IR (serving-layer addition)
# ----------------------------------------------------------------------
#: The paper shipped nets only for its JPEG/VTA-class pipelines; the
#: pool runtime's ``interface_predicted`` router wants one for every
#: device it prices, so this net models the serializer at routing
#: granularity: one token per (sub)message, a single-server read stage
#: (pointer chases serialize, paper Fig. 1) feeding a single-server
#: write combiner through a small staging queue, so the write of one
#: submessage overlaps the read of the next — the overlap the program
#: interface can only bound.  Constants are the Fig. 3 vendor fits.
PROTOACC_PNET = """
net protoacc_ser

place in
place staged capacity 4
place out

inject in fields groups blob beats

transition read
  consume in
  produce staged
  delay expr: 6 + 85.8 + 46.9 * tok["groups"] + tok["blob"]

transition write
  consume staged
  produce out
  delay expr: 5 + tok["beats"]
"""

#: Fixed epilogue: final write-combiner flush handshake.
PNET_EPILOGUE = 16.0


def _flatten(msg: Message) -> list[Message]:
    """Messages in pointer-chase order: parent before its submessages."""
    out = [msg]
    for sub in msg.submessages():
        out.extend(_flatten(sub))
    return out


def tokenize_message(msg: Message):
    """One token per (sub)message, in the order the read engine chases
    them.  ``beats`` is the submessage's own encoded contribution (its
    nested bodies are billed to their own tokens)."""
    from repro.core.petrinet import Injection

    injections = []
    for part in _flatten(msg):
        own_encoded = part.encoded_size() - sum(
            s.encoded_size() for s in part.submessages()
        )
        injections.append(
            Injection(
                place="in",
                payload={
                    "groups": ceil(part.num_fields / 32),
                    "blob": _blob_stream_cost_own(part),
                    "beats": max(1, -(-own_encoded // 8)),
                },
            )
        )
    return injections


def _blob_stream_cost_own(msg: Message) -> float:
    """Non-recursive form of :func:`_blob_stream_cost` (per-token)."""
    return sum(
        STREAM_SETUP + ceil(len(f.value) / 16)  # type: ignore[arg-type]
        for f in msg.fields
        if f.kind is FieldKind.BYTES
    )


def petri_interface(*, engine=None, cache=None, tracer=None):
    """Build the Petri-net interface (fresh net, reusable across items).

    ``engine``/``cache``/``tracer`` pass through to
    :class:`~repro.core.petrinet.PetriNetInterface` — the pool runtime
    runs this net on the compiled engine with a shared
    :class:`~repro.perf.EvalCache` so routing stays cheap; a tracer
    makes each simulation's firings visible as ``petri.*`` spans.
    """
    from repro.core.petrinet import PetriNetInterface
    from repro.petri import parse

    return PetriNetInterface(
        "protoacc-ser",
        net_factory=lambda: parse(PROTOACC_PNET),
        tokenize=tokenize_message,
        sink="out",
        epilogue=PNET_EPILOGUE,
        pnet_text=PROTOACC_PNET,
        engine=engine,
        cache=cache,
        tracer=tracer,
    )


def all_interfaces() -> dict[str, object]:
    return {"english": ENGLISH, "program": PROGRAM, "petri-net": petri_interface()}


#: Token-field value ranges the serializer contract is stated over:
#: up to 256 fields (8 descriptor groups), 4 KiB of streamed BYTES
#: cost, and 4 KiB of encoded output (512 write beats).
PNET_FEATURE_DOMAINS = {
    "groups": (0.0, 8.0),
    "blob": (0.0, 4096.0),
    "beats": (1.0, 512.0),
}


def perflint_bundle():
    """Everything the perf-lint toolchain audits for this accelerator
    (``python -m repro.tools.perflint protoacc``): all three
    representations — the routing-granularity Petri net included, so
    ``pnet verify`` can prove the serializer's latency contract —
    plus their cross-checks."""
    from repro.lint import InterfaceBundle

    from .formats import instances

    return InterfaceBundle(
        accelerator="protoacc-ser",
        english=ENGLISH,
        program=PROGRAM,
        program_fns={
            "read-cost": read_cost,
            "write-cost": write_cost,
            "throughput": tput_protoacc_ser,
            "min-latency": min_latency_protoacc_ser,
            "max-latency": max_latency_protoacc_ser,
            "deser-latency": latency_protoacc_deser,
        },
        workload_type=Message,
        pnet_text=PROTOACC_PNET,
        pnet_file="src/repro/accel/protoacc/interfaces.py#PROTOACC_PNET",
        samples=list(instances(seed=3).values()),
        feature_domains=PNET_FEATURE_DOMAINS,
        declared_monotone={"groups": +1, "blob": +1, "beats": +1},
    )


def perf_contract():
    """The serializer's verified performance contract (derived fresh;
    callers that price many requests should cache it — the pool
    runtime does)."""
    from repro.lint import analyze_bundle

    return analyze_bundle(perflint_bundle()).contract


# ----------------------------------------------------------------------
# §5 extension: composing with an environment (TLB) component interface
# ----------------------------------------------------------------------
#: Expected translation costs of the IOMMU TLB component, quoted by the
#: platform (not the accelerator) vendor — the paper's §5 proposal is to
#: model such shared components once and reuse them across accelerators.
TLB_HIT_CYCLES = 1.0
TLB_WALK_CYCLES = 110.0


def accesses_per_message(msg: Message) -> int:
    """Memory transactions the read path issues for ``msg``: header +
    data-base chase, one per descriptor group, one per BYTES stream,
    recursively."""
    count = 2 + ceil(msg.num_fields / 32)
    count += sum(1 for f in msg.fields if f.kind is FieldKind.BYTES)
    for sub in msg.submessages():
        count += accesses_per_message(sub)
    return count


def tlb_translation_cost(miss_ratio: float) -> float:
    """Expected cycles one translation adds, given a workload's TLB
    miss ratio (the component interface's single parameter)."""
    if not 0.0 <= miss_ratio <= 1.0:
        raise ValueError("miss_ratio must be in [0, 1]")
    return TLB_HIT_CYCLES + miss_ratio * TLB_WALK_CYCLES


def read_cost_with_tlb(
    msg: Message,
    miss_ratio: float,
    avg_mem_latency: float = AVG_MEM_LATENCY,
) -> float:
    """Fig. 3's read cost composed with the TLB component interface."""
    return read_cost(msg, avg_mem_latency) + accesses_per_message(
        msg
    ) * tlb_translation_cost(miss_ratio)


def tput_protoacc_ser_tlb(msg: Message, miss_ratio: float) -> float:
    """Throughput interface for a TLB-mediated deployment (§5)."""
    read_tput = 1.0 / read_cost_with_tlb(msg, miss_ratio)
    write_tput = 1.0 / write_cost(msg)
    return min(read_tput, write_tput)


# ----------------------------------------------------------------------
# Deserializer interface (the "de" in (de)serialization)
# ----------------------------------------------------------------------
#: Parse front-end rate and per-allocation chase cost, vendor-fitted to
#: the deserializer model.
DESER_PARSE_BYTES_PER_CYCLE = 2.0
DESER_ALLOC_COST = AVG_MEM_LATENCY


def latency_protoacc_deser(msg: Message) -> float:
    """Deserialization latency: one allocation chase per (sub)message,
    scalar parsing at the front-end rate, payload scatter as streams."""
    cost = DESER_ALLOC_COST
    scalars = msg.encoded_size()
    for f in msg.fields:
        if f.kind is FieldKind.BYTES:
            size = len(f.value)  # type: ignore[arg-type]
            scalars -= size
            cost += STREAM_SETUP + ceil(size / 16)
        elif f.kind is FieldKind.MESSAGE:
            sub = f.value
            scalars -= sub.encoded_size()  # type: ignore[union-attr]
            cost += latency_protoacc_deser(sub)  # type: ignore[arg-type]
    return cost + scalars / DESER_PARSE_BYTES_PER_CYCLE


def tput_protoacc_deser(msg: Message) -> float:
    """Messages/cycle: the parse engine is fully serial per message."""
    return 1.0 / latency_protoacc_deser(msg)


DESER_PROGRAM = ProgramInterface(
    "protoacc-deser",
    latency_fn=latency_protoacc_deser,
    throughput_fn=tput_protoacc_deser,
)


# ----------------------------------------------------------------------
# §5 extension: composing with a shared-interconnect component
# ----------------------------------------------------------------------


def read_cost_with_bus(
    msg: Message,
    bus_config,
    avg_mem_latency: float = AVG_MEM_LATENCY,
) -> float:
    """Fig. 3's read cost composed with the interconnect component
    interface (:func:`repro.hw.noc.expected_bus_delay`): every word
    transaction and every payload stream arbitrates on the bus first."""
    from repro.hw.noc import expected_bus_delay

    cost = read_cost(msg, avg_mem_latency)
    word_accesses = accesses_per_message(msg) - _blob_count(msg)
    cost += word_accesses * expected_bus_delay(64, bus_config)
    cost += sum(
        expected_bus_delay(len(f.value), bus_config)  # type: ignore[arg-type]
        for f in _all_blob_fields(msg)
    )
    return cost


def tput_protoacc_ser_bus(msg: Message, bus_config) -> float:
    """Throughput interface for a shared-interconnect deployment (§5)."""
    read_tput = 1.0 / read_cost_with_bus(msg, bus_config)
    write_tput = 1.0 / write_cost(msg)
    return min(read_tput, write_tput)


def _blob_count(msg: Message) -> int:
    own = sum(1 for f in msg.fields if f.kind is FieldKind.BYTES)
    return own + sum(_blob_count(s) for s in msg.submessages())


def _all_blob_fields(msg: Message):
    for f in msg.fields:
        if f.kind is FieldKind.BYTES:
            yield f
        elif f.kind is FieldKind.MESSAGE:
            yield from _all_blob_fields(f.value)  # type: ignore[arg-type]
