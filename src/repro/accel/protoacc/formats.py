"""The 32 message formats used to evaluate Protoacc's interfaces.

The paper evaluates Protoacc's Python interfaces "using 32 message
formats from its test suite".  We reconstruct an equivalent suite:
32 named schemas spanning the axes that drive the accelerator's
performance — direct field count (descriptor fetches come in groups of
32), nesting depth (pointer chasing), submessage fan-out, and payload
size (write-side beats).

Each format is a builder ``(rng) -> Message`` producing a concrete
random instance of that schema; :func:`instances` materializes the
whole suite reproducibly.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from .message import Field, FieldKind, Message

Builder = Callable[[np.random.Generator], Message]

_REGISTRY: dict[str, Builder] = {}


def format_names() -> list[str]:
    """All 32 format names, in registry order."""
    return list(_REGISTRY)


def build(name: str, rng: np.random.Generator) -> Message:
    """Materialize one random instance of the named format."""
    try:
        builder = _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown format {name!r}; see format_names()") from None
    return builder(rng)


def instances(seed: int = 0) -> dict[str, Message]:
    """One instance per format, reproducibly (the paper's workload)."""
    rng = np.random.default_rng(seed)
    return {name: build(name, rng) for name in format_names()}


def _register(name: str) -> Callable[[Builder], Builder]:
    def deco(fn: Builder) -> Builder:
        if name in _REGISTRY:
            raise ValueError(f"duplicate format {name!r}")
        _REGISTRY[name] = fn
        return fn

    return deco


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------


def _varints(rng: np.random.Generator, count: int, start: int = 1) -> list[Field]:
    values = rng.integers(0, 1 << 40, size=count)
    return [
        Field(start + i, FieldKind.VARINT, int(v)) for i, v in enumerate(values)
    ]


def _flat(rng: np.random.Generator, count: int, name: str) -> Message:
    return Message(tuple(_varints(rng, count)), schema_name=name)


def _blob(rng: np.random.Generator, number: int, size: int) -> Field:
    return Field(number, FieldKind.BYTES, rng.bytes(size))


# ----------------------------------------------------------------------
# Flat scalar formats: field-count sweep (descriptor-fetch behaviour)
# ----------------------------------------------------------------------
for _n in (1, 4, 8, 16, 32, 33, 48, 64, 128):

    @_register(f"flat_varint_{_n}")
    def _fmt(rng: np.random.Generator, n=_n) -> Message:
        return _flat(rng, n, f"flat_varint_{n}")


@_register("flat_fixed64_16")
def _fixed64(rng: np.random.Generator) -> Message:
    fields = [Field(i + 1, FieldKind.FIXED64, int(v)) for i, v in
              enumerate(rng.integers(0, 1 << 62, size=16))]
    return Message(tuple(fields), schema_name="flat_fixed64_16")


@_register("flat_fixed32_16")
def _fixed32(rng: np.random.Generator) -> Message:
    fields = [Field(i + 1, FieldKind.FIXED32, int(v)) for i, v in
              enumerate(rng.integers(0, 1 << 30, size=16))]
    return Message(tuple(fields), schema_name="flat_fixed32_16")


@_register("mixed_scalars_20")
def _mixed(rng: np.random.Generator) -> Message:
    fields: list[Field] = []
    for i in range(20):
        kind = (FieldKind.VARINT, FieldKind.FIXED32, FieldKind.FIXED64)[i % 3]
        hi = {"varint": 1 << 40, "fixed32": 1 << 30, "fixed64": 1 << 60}[kind.value]
        fields.append(Field(i + 1, kind, int(rng.integers(0, hi))))
    return Message(tuple(fields), schema_name="mixed_scalars_20")


# ----------------------------------------------------------------------
# String / bytes formats: payload-size sweep (write-side behaviour)
# ----------------------------------------------------------------------
for _size, _label in ((16, "16B"), (64, "64B"), (300, "300B"), (1024, "1K"),
                      (4096, "4K"), (16384, "16K")):

    @_register(f"bytes_{_label}")
    def _fmt_b(rng: np.random.Generator, size=_size, label=_label) -> Message:
        fields = _varints(rng, 2) + [_blob(rng, 3, size)]
        return Message(tuple(fields), schema_name=f"bytes_{label}")


@_register("many_small_strings")
def _strings(rng: np.random.Generator) -> Message:
    fields = [
        _blob(rng, i + 1, int(rng.integers(4, 24))) for i in range(12)
    ]
    return Message(tuple(fields), schema_name="many_small_strings")


# ----------------------------------------------------------------------
# Nested formats: depth sweep (pointer-chasing behaviour, paper Fig. 1)
# ----------------------------------------------------------------------


def _nested_chain(rng: np.random.Generator, depth: int, width: int = 4) -> Message:
    inner = _flat(rng, width, "leaf")
    for level in range(depth):
        fields = _varints(rng, width) + [Field(width + 1, FieldKind.MESSAGE, inner)]
        inner = Message(tuple(fields), schema_name=f"chain_level{level}")
    return inner


for _d in (1, 2, 3, 4, 6, 8):

    @_register(f"nested_depth_{_d}")
    def _fmt_n(rng: np.random.Generator, d=_d) -> Message:
        msg = _nested_chain(rng, d)
        return Message(msg.fields, schema_name=f"nested_depth_{d}")


@_register("tree_fanout_2x2")
def _tree22(rng: np.random.Generator) -> Message:
    leaf = lambda: _flat(rng, 4, "leaf")  # noqa: E731
    mid = lambda: Message(  # noqa: E731
        tuple(_varints(rng, 2) + [Field(3, FieldKind.MESSAGE, leaf()),
                                  Field(4, FieldKind.MESSAGE, leaf())]),
        schema_name="mid",
    )
    fields = _varints(rng, 2) + [Field(3, FieldKind.MESSAGE, mid()),
                                 Field(4, FieldKind.MESSAGE, mid())]
    return Message(tuple(fields), schema_name="tree_fanout_2x2")


@_register("repeated_submsg_8")
def _rep8(rng: np.random.Generator) -> Message:
    subs = [Field(1, FieldKind.MESSAGE, _flat(rng, 6, "elem")) for _ in range(8)]
    return Message(tuple(subs), schema_name="repeated_submsg_8")


@_register("repeated_submsg_32")
def _rep32(rng: np.random.Generator) -> Message:
    subs = [Field(1, FieldKind.MESSAGE, _flat(rng, 3, "elem")) for _ in range(32)]
    return Message(tuple(subs), schema_name="repeated_submsg_32")


# ----------------------------------------------------------------------
# Realistic composites
# ----------------------------------------------------------------------
@_register("rpc_request")
def _rpc_request(rng: np.random.Generator) -> Message:
    header = Message(
        tuple(_varints(rng, 4) + [_blob(rng, 5, 24)]), schema_name="header"
    )
    fields = [
        Field(1, FieldKind.MESSAGE, header),
        Field(2, FieldKind.VARINT, int(rng.integers(0, 1 << 32))),
        _blob(rng, 3, int(rng.integers(32, 256))),
    ]
    return Message(tuple(fields), schema_name="rpc_request")


@_register("rpc_response_large")
def _rpc_response(rng: np.random.Generator) -> Message:
    rows = [
        Field(1, FieldKind.MESSAGE,
              Message(tuple(_varints(rng, 3) + [_blob(rng, 4, 96)]), schema_name="row"))
        for _ in range(10)
    ]
    fields = rows + _varints(rng, 2, start=2)
    return Message(tuple(fields), schema_name="rpc_response_large")


@_register("kv_pairs")
def _kv(rng: np.random.Generator) -> Message:
    pairs = [
        Field(
            1,
            FieldKind.MESSAGE,
            Message(
                (
                    _blob(rng, 1, int(rng.integers(4, 16))),
                    _blob(rng, 2, int(rng.integers(8, 64))),
                ),
                schema_name="pair",
            ),
        )
        for _ in range(6)
    ]
    return Message(tuple(pairs), schema_name="kv_pairs")


@_register("telemetry_point")
def _telemetry(rng: np.random.Generator) -> Message:
    tags = Message(
        tuple(_blob(rng, i + 1, int(rng.integers(4, 12))) for i in range(4)),
        schema_name="tags",
    )
    fields = (
        Field(1, FieldKind.FIXED64, int(rng.integers(0, 1 << 62))),  # timestamp
        Field(2, FieldKind.FIXED64, int(rng.integers(0, 1 << 62))),  # value bits
        Field(3, FieldKind.MESSAGE, tags),
    )
    return Message(fields, schema_name="telemetry_point")


# Sanity: the suite must stay exactly the paper's 32 formats.
assert len(_REGISTRY) == 32, f"expected 32 formats, have {len(_REGISTRY)}"
