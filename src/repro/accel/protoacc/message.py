"""Protocol-buffer messages and their wire format, from scratch.

Protoacc accelerates protobuf (de)serialization, so the reproduction
needs a real protobuf substrate: schemas, concrete message instances,
and the actual wire encoding (varints, tags, length-delimited fields).
The hardware model consumes instances; the functional encoder/decoder
below also lets tests verify the model's notion of "output bytes"
against a real encoding.

Supported field kinds cover what Protoacc's evaluation exercises:
varint ints, fixed 32/64-bit scalars, bytes/strings, and nested
(sub)messages, including repeated fields.
"""

from __future__ import annotations

import enum
from collections.abc import Iterator
from dataclasses import dataclass
from typing import TypeAlias

_MASK64 = (1 << 64) - 1


class FieldKind(enum.Enum):
    VARINT = "varint"
    FIXED32 = "fixed32"
    FIXED64 = "fixed64"
    BYTES = "bytes"
    MESSAGE = "message"


#: Protobuf wire types, by field kind.
_WIRE_TYPE = {
    FieldKind.VARINT: 0,
    FieldKind.FIXED64: 1,
    FieldKind.BYTES: 2,
    FieldKind.MESSAGE: 2,
    FieldKind.FIXED32: 5,
}

FieldValue: TypeAlias = "int | bytes | Message"


def encode_varint(value: int) -> bytes:
    """LEB128 encoding of an unsigned 64-bit integer."""
    if value < 0:
        value &= _MASK64  # two's-complement, as protobuf does for int64
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode a varint at ``offset``; returns (value, next_offset)."""
    result = 0
    shift = 0
    pos = offset
    while True:
        if pos >= len(data):
            raise ValueError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise ValueError("varint longer than 64 bits")


@dataclass(frozen=True)
class Field:
    """One concrete field instance inside a message."""

    number: int
    kind: FieldKind
    value: FieldValue

    def __post_init__(self) -> None:
        if self.number < 1:
            raise ValueError("field numbers start at 1")
        if self.kind is FieldKind.MESSAGE and not isinstance(self.value, Message):
            raise TypeError("message fields need a Message value")
        if self.kind is FieldKind.BYTES and not isinstance(self.value, bytes):
            raise TypeError("bytes fields need a bytes value")
        if self.kind in (
            FieldKind.VARINT,
            FieldKind.FIXED32,
            FieldKind.FIXED64,
        ) and not isinstance(self.value, int):
            raise TypeError(f"{self.kind.value} fields need an int value")

    @property
    def tag(self) -> bytes:
        return encode_varint((self.number << 3) | _WIRE_TYPE[self.kind])


@dataclass(frozen=True)
class Message:
    """A concrete message instance (repeated fields appear repeatedly).

    Attributes:
        fields: In wire order.
        schema_name: Optional name of the format this instance follows.
    """

    fields: tuple[Field, ...] = ()
    schema_name: str = "anonymous"

    # ------------------------------------------------------------------
    # Structure metrics the interfaces read
    # ------------------------------------------------------------------
    @property
    def num_fields(self) -> int:
        """Fields directly in this message (not recursive)."""
        return len(self.fields)

    def submessages(self) -> Iterator[Message]:
        for f in self.fields:
            if f.kind is FieldKind.MESSAGE:
                yield f.value  # type: ignore[misc]

    @property
    def nesting_depth(self) -> int:
        """0 for a flat message; 1 + max over submessages otherwise."""
        subs = list(self.submessages())
        if not subs:
            return 0
        return 1 + max(s.nesting_depth for s in subs)

    @property
    def total_fields(self) -> int:
        """Recursive field count."""
        return self.num_fields + sum(s.total_fields for s in self.submessages())

    @property
    def total_messages(self) -> int:
        """This message plus all transitively nested submessages."""
        return 1 + sum(s.total_messages for s in self.submessages())

    @property
    def num_writes(self) -> int:
        """Output-beat count: 8-byte units the write combiner emits.

        This is the quantity the paper's Fig. 3 interface reads; it is
        derived from the real encoding size, so interface and encoder
        can never drift apart.
        """
        return max(1, -(-self.encoded_size() // 8))

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------
    def encode(self) -> bytes:
        out = bytearray()
        for f in self.fields:
            out += f.tag
            if f.kind is FieldKind.VARINT:
                out += encode_varint(f.value)  # type: ignore[arg-type]
            elif f.kind is FieldKind.FIXED32:
                out += int(f.value).to_bytes(4, "little", signed=False)
            elif f.kind is FieldKind.FIXED64:
                out += int(f.value).to_bytes(8, "little", signed=False)
            elif f.kind is FieldKind.BYTES:
                payload: bytes = f.value  # type: ignore[assignment]
                out += encode_varint(len(payload)) + payload
            elif f.kind is FieldKind.MESSAGE:
                body = f.value.encode()  # type: ignore[union-attr]
                out += encode_varint(len(body)) + body
        return bytes(out)

    def encoded_size(self) -> int:
        return len(self.encode())

    @property
    def blob_bytes(self) -> int:
        """Bytes held in this message's own BYTES fields (not recursive):
        the data the field readers must stream through memory."""
        return sum(
            len(f.value)  # type: ignore[arg-type]
            for f in self.fields
            if f.kind is FieldKind.BYTES
        )

    @property
    def payload_bytes(self) -> int:
        """Raw in-memory bytes of field data (pre-encoding)."""
        total = 0
        for f in self.fields:
            if f.kind is FieldKind.VARINT or f.kind is FieldKind.FIXED64:
                total += 8
            elif f.kind is FieldKind.FIXED32:
                total += 4
            elif f.kind is FieldKind.BYTES:
                total += len(f.value)  # type: ignore[arg-type]
            elif f.kind is FieldKind.MESSAGE:
                total += f.value.payload_bytes  # type: ignore[union-attr]
        return total

    def __str__(self) -> str:
        return (
            f"Message({self.schema_name}: {self.num_fields} fields, "
            f"depth={self.nesting_depth}, {self.encoded_size()}B)"
        )


# ----------------------------------------------------------------------
# JSON round-trip (for persisted serving tapes, repro.runtime.tape)
# ----------------------------------------------------------------------
def message_to_jsonable(msg: Message) -> dict:
    """A JSON-serializable dict that :func:`message_from_jsonable`
    rebuilds into an *equal* Message (bytes travel base64-encoded)."""
    import base64

    def enc_value(kind: FieldKind, value: FieldValue):
        if kind is FieldKind.MESSAGE:
            return message_to_jsonable(value)  # type: ignore[arg-type]
        if kind is FieldKind.BYTES:
            return base64.b64encode(value).decode("ascii")  # type: ignore[arg-type]
        return value

    return {
        "schema": msg.schema_name,
        "fields": [
            [f.number, f.kind.value, enc_value(f.kind, f.value)] for f in msg.fields
        ],
    }


def message_from_jsonable(obj: dict) -> Message:
    """Inverse of :func:`message_to_jsonable`."""
    import base64

    fields = []
    for number, kind_value, value in obj["fields"]:
        kind = FieldKind(kind_value)
        if kind is FieldKind.MESSAGE:
            value = message_from_jsonable(value)
        elif kind is FieldKind.BYTES:
            value = base64.b64decode(value)
        fields.append(Field(int(number), kind, value))
    return Message(tuple(fields), schema_name=obj["schema"])


def decode(data: bytes, schema_name: str = "decoded") -> Message:
    """Parse wire bytes back into a :class:`Message`.

    Length-delimited fields are decoded as BYTES (wire type 2 does not
    distinguish strings, bytes, and submessages without a schema); use
    :func:`decode_with_kinds` when submessage recovery matters.
    """
    fields, pos = _decode_fields(data, 0, len(data), recurse=False)
    return Message(fields=tuple(fields), schema_name=schema_name)


def decode_with_kinds(data: bytes, schema: Message) -> Message:
    """Schema-guided decode: recovers submessages recursively by looking
    up each field number's kind in a template instance."""
    kind_of = {f.number: f.kind for f in schema.fields}
    sub_schema = {
        f.number: f.value for f in schema.fields if f.kind is FieldKind.MESSAGE
    }
    out: list[Field] = []
    pos = 0
    while pos < len(data):
        key, pos = decode_varint(data, pos)
        number, wire = key >> 3, key & 7
        kind = kind_of.get(number)
        if wire == 0:
            value, pos = decode_varint(data, pos)
            out.append(Field(number, FieldKind.VARINT, value))
        elif wire == 1:
            value = int.from_bytes(data[pos : pos + 8], "little")
            pos += 8
            out.append(Field(number, FieldKind.FIXED64, value))
        elif wire == 5:
            value = int.from_bytes(data[pos : pos + 4], "little")
            pos += 4
            out.append(Field(number, FieldKind.FIXED32, value))
        elif wire == 2:
            length, pos = decode_varint(data, pos)
            body = data[pos : pos + length]
            if len(body) != length:
                raise ValueError("truncated length-delimited field")
            pos += length
            if kind is FieldKind.MESSAGE and number in sub_schema:
                sub = decode_with_kinds(body, sub_schema[number])
                out.append(Field(number, FieldKind.MESSAGE, sub))
            else:
                out.append(Field(number, FieldKind.BYTES, body))
        else:
            raise ValueError(f"unsupported wire type {wire}")
    return Message(fields=tuple(out), schema_name=schema.schema_name)


def _decode_fields(
    data: bytes, pos: int, end: int, recurse: bool
) -> tuple[list[Field], int]:
    out: list[Field] = []
    while pos < end:
        key, pos = decode_varint(data, pos)
        number, wire = key >> 3, key & 7
        if wire == 0:
            value, pos = decode_varint(data, pos)
            out.append(Field(number, FieldKind.VARINT, value))
        elif wire == 1:
            out.append(
                Field(number, FieldKind.FIXED64, int.from_bytes(data[pos : pos + 8], "little"))
            )
            pos += 8
        elif wire == 5:
            out.append(
                Field(number, FieldKind.FIXED32, int.from_bytes(data[pos : pos + 4], "little"))
            )
            pos += 4
        elif wire == 2:
            length, pos = decode_varint(data, pos)
            if pos + length > end:
                raise ValueError("truncated length-delimited field")
            out.append(Field(number, FieldKind.BYTES, data[pos : pos + length]))
            pos += length
        else:
            raise ValueError(f"unsupported wire type {wire}")
    return out, pos
