"""Ground-truth accelerator models (the paper's four running examples,
plus the §2 comparison baselines).

Each subpackage provides a workload generator, a cycle-level model
(:class:`~repro.accel.base.AcceleratorModel`), and the vendor-shipped
performance interfaces for that accelerator.
"""

from .base import AcceleratorModel, HasAreaModel, implementation_loc

__all__ = ["AcceleratorModel", "HasAreaModel", "implementation_loc"]
