"""Common ground-truth model protocol for all accelerators.

Every accelerator package provides a *model* — the stand-in for the
paper's RTL + Verilator ground truth (see DESIGN.md §2).  Models expose
two measurements with fixed semantics so that the validation harness in
:mod:`repro.core.validation` can compare any interface against any
model:

* :meth:`AcceleratorModel.measure_latency` — cycles to process one item
  in isolation, on an otherwise idle accelerator (cold queues, but warm
  configuration).
* :meth:`AcceleratorModel.measure_throughput` — sustained items/cycle
  when streaming ``repeat`` identical items back to back, measured over
  the steady-state portion of the run.
"""

from __future__ import annotations

import abc
from collections.abc import Sequence
from typing import Any, Generic, TypeVar

ItemT = TypeVar("ItemT")


class AcceleratorModel(abc.ABC, Generic[ItemT]):
    """Ground truth: a cycle-level model of one accelerator."""

    #: Human name, e.g. "jpeg-decoder".
    name: str = "accelerator"

    @abc.abstractmethod
    def measure_latency(self, item: ItemT) -> float:
        """Cycles to process ``item`` alone on an idle accelerator."""

    def measure_throughput(self, item: ItemT, repeat: int = 8) -> float:
        """Sustained items/cycle streaming ``repeat`` copies of ``item``.

        Default implementation assumes no cross-item overlap (the
        accelerator drains fully between items); pipelined accelerators
        override this.
        """
        if repeat < 1:
            raise ValueError("repeat must be >= 1")
        lat = self.measure_latency(item)
        if lat <= 0:
            raise ValueError("model reported non-positive latency")
        return 1.0 / lat

    def measure_batch(self, items: Sequence[ItemT]) -> list[float]:
        """Per-item isolated latencies for a workload (convenience)."""
        return [self.measure_latency(it) for it in items]


class HasAreaModel(abc.ABC):
    """Mixin for accelerators with a configurable area/latency tradeoff
    (the paper's Bitcoin miner, example #1)."""

    @abc.abstractmethod
    def area(self) -> float:
        """Occupied area in arbitrary gate-equivalent units."""


def implementation_loc(obj: Any) -> int:
    """Lines of code of the module defining ``obj``.

    Used by the Table 1 complexity metric: interface size is compared
    against the size of the implementation it summarizes.
    """
    import inspect

    module = inspect.getmodule(obj)
    if module is None:
        raise ValueError(f"cannot locate module for {obj!r}")
    source = inspect.getsource(module)
    return sum(
        1
        for line in source.splitlines()
        if line.strip() and not line.strip().startswith("#")
    )
