"""repro: performance interfaces for hardware accelerators.

A full reproduction of "The Case for Performance Interfaces for
Hardware Accelerators" (HotOS 2023): the three interface
representations (English, executable Python, Petri-net IR), a timed
Petri-net engine to run the third, cycle-level ground-truth models of
the paper's four accelerators (JPEG decoder, Bitcoin miner, Protoacc,
VTA) plus the §2 baselines, and the design-stage / auto-tuning tooling
the interfaces enable.

Quick start::

    from repro.accel import jpeg

    model = jpeg.JpegDecoderModel()
    iface = jpeg.petri_interface()
    img = jpeg.random_images(seed=1, count=1)[0]
    print(iface.latency(img), model.measure_latency(img))

See README.md for the architecture tour and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from . import core, hw, petri

__version__ = "1.0.0"

__all__ = ["core", "hw", "petri", "__version__"]
