"""Content-addressed result cache for interface evaluations.

An :class:`EvalCache` maps ``(net fingerprint, workload features)`` to a
previously computed result (a ``SimResult``, a latency, anything).  Keys
are content hashes — see :mod:`repro.perf.fingerprint` — so two processes
building the same net from the same source compute the *same* key, and
mutating a net (a delay formula, an arc weight, a capacity) changes its
fingerprint and silently invalidates every entry keyed under the old one.

The cache never guesses: features it cannot encode stably are counted as
``uncacheable`` and the computation runs uncached.

With ``path=`` the cache gains a persistent tier — an append-only JSONL
file (:class:`repro.perf.store.PersistentStore`) replayed on open, so a
fresh process warm-starts from every spillable result earlier processes
computed.  Only JSON-representable values spill (makespans, latencies,
plain data); richer objects such as ``SimResult`` stay in-memory and are
counted as ``unspillable``.  Appends are atomic, loads tolerate a
truncated tail, and :meth:`reload` picks up entries written concurrently
by other processes.
"""

from __future__ import annotations

import hashlib
import os
from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from repro.petri.net import PetriNet

from .fingerprint import UncacheableError, net_fingerprint, workload_key
from .store import PersistentStore


@dataclass
class CacheStats:
    """Hit/miss accounting, surfaced in validation and autotune reports."""

    hits: int = 0
    misses: int = 0
    uncacheable: int = 0
    spills: int = 0
    unspillable: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of cacheable lookups served from the cache."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def summary(self) -> str:
        text = f"cache: {self.hits}/{self.lookups} hits ({self.hit_rate:.0%})"
        if self.uncacheable:
            text += f", {self.uncacheable} uncacheable"
        if self.spills:
            text += f", {self.spills} spilled"
        if self.unspillable:
            text += f", {self.unspillable} unspillable"
        return text


class EvalCache:
    """In-memory content-addressed store with hit/miss counters.

    One cache may serve many nets — the net fingerprint namespaces the
    keys.  Pass a string as ``net`` to namespace non-net computations
    (e.g. ``"profiler:cycle-accurate"``).

    Args:
        path: Optional JSONL file enabling the persistent tier.  Existing
            entries are loaded immediately; every spillable store also
            appends to the file.
    """

    #: Sentinel returned by :meth:`get` on a miss (``None`` is a value).
    MISS: Any = object()

    def __init__(self, path: str | os.PathLike[str] | None = None) -> None:
        self._store: dict[str, Any] = {}
        self.stats = CacheStats()
        self._m_hits = self._m_misses = self._m_uncacheable = None
        self._m_spills = self._m_unspillable = None
        self.disk: PersistentStore | None = None
        if path is not None:
            self.disk = PersistentStore(path)
            self._store.update(self.disk.load())

    def bind_metrics(self, registry, **labels) -> None:
        """Mirror lookups into a :class:`repro.obs.MetricsRegistry` as
        ``eval_cache_{hits,misses,uncacheable,spills,unspillable}_total``
        counters (with ``labels``).  Only lookups *after* binding are
        counted; rebinding moves future counts to the new registry."""
        self._m_hits = registry.counter("eval_cache_hits_total", **labels)
        self._m_misses = registry.counter("eval_cache_misses_total", **labels)
        self._m_uncacheable = registry.counter(
            "eval_cache_uncacheable_total", **labels
        )
        self._m_spills = registry.counter("eval_cache_spills_total", **labels)
        self._m_unspillable = registry.counter(
            "eval_cache_unspillable_total", **labels
        )

    def key(self, net: PetriNet | str, features: Any) -> str:
        """Content-addressed key; raises :class:`UncacheableError` when the
        features cannot be encoded stably."""
        namespace = net if isinstance(net, str) else net_fingerprint(net)
        return hashlib.sha256(
            f"{namespace}\n{workload_key(features)}".encode()
        ).hexdigest()

    # ------------------------------------------------------------------
    # Low-level API (the batch evaluation path drives this directly)
    # ------------------------------------------------------------------
    def get(self, net: PetriNet | str, features: Any) -> Any:
        """The cached value, or :data:`EvalCache.MISS`.

        Uncacheable features count as such and report a miss (the caller
        must compute, and must not :meth:`put` the result).
        """
        try:
            key = self.key(net, features)
        except UncacheableError:
            self.stats.uncacheable += 1
            if self._m_uncacheable is not None:
                self._m_uncacheable.inc()
            return self.MISS
        if key in self._store:
            self.stats.hits += 1
            if self._m_hits is not None:
                self._m_hits.inc()
            return self._store[key]
        self.stats.misses += 1
        if self._m_misses is not None:
            self._m_misses.inc()
        return self.MISS

    def put(self, net: PetriNet | str, features: Any, value: Any) -> None:
        """Store a computed value, spilling it to the persistent tier
        when one is configured and the value is JSON-representable."""
        try:
            key = self.key(net, features)
        except UncacheableError:
            return
        self._store[key] = value
        if self.disk is not None:
            if self.disk.append(key, value):
                self.stats.spills += 1
                if self._m_spills is not None:
                    self._m_spills.inc()
            else:
                self.stats.unspillable += 1
                if self._m_unspillable is not None:
                    self._m_unspillable.inc()

    def reload(self) -> int:
        """Apply entries other processes appended since open/last reload.

        Returns how many entries were applied; a no-op (0) without a
        persistent tier.
        """
        if self.disk is None:
            return 0
        return self.disk.reload_into(self._store)

    # ------------------------------------------------------------------
    # High-level API
    # ------------------------------------------------------------------
    def get_or_compute(
        self,
        net: PetriNet | str,
        features: Any,
        compute: Callable[[], Any],
    ) -> Any:
        """Return the cached result for ``(net, features)``, computing and
        storing it on a miss.  Uncacheable features always compute."""
        try:
            key = self.key(net, features)
        except UncacheableError:
            self.stats.uncacheable += 1
            if self._m_uncacheable is not None:
                self._m_uncacheable.inc()
            return compute()
        if key in self._store:
            self.stats.hits += 1
            if self._m_hits is not None:
                self._m_hits.inc()
            return self._store[key]
        self.stats.misses += 1
        if self._m_misses is not None:
            self._m_misses.inc()
        value = compute()
        self._store[key] = value
        if self.disk is not None:
            if self.disk.append(key, value):
                self.stats.spills += 1
                if self._m_spills is not None:
                    self._m_spills.inc()
            else:
                self.stats.unspillable += 1
                if self._m_unspillable is not None:
                    self._m_unspillable.inc()
        return value

    def clear(self) -> None:
        """Drop all in-memory entries (counters are kept; use
        ``reset_stats`` too).  The persistent file is untouched — use
        :meth:`reload` (or a fresh cache) to re-apply it."""
        self._store.clear()

    def reset_stats(self) -> None:
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key: str) -> bool:
        return key in self._store
