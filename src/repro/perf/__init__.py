"""Evaluation layer: memoized, parallel simulation of performance interfaces.

The paper's pitch is that performance interfaces are *cheap to evaluate*;
this package makes sure we never pay even that cheap cost twice, and that
independent evaluation points use all available cores:

* :mod:`repro.perf.fingerprint` — stable, content-addressed identities for
  nets and workload features (the cache key material).
* :mod:`repro.perf.cache` — :class:`EvalCache`, an in-memory
  content-addressed result store with hit/miss accounting and an
  optional persistent tier.
* :mod:`repro.perf.store` — :class:`PersistentStore`, the append-only
  JSONL file behind ``EvalCache(path=...)``: atomic cross-process
  appends, corruption-tolerant replay.
* :mod:`repro.perf.sweep` — :class:`SweepRunner`, which fans independent
  simulation points across worker processes with deterministic result
  ordering, a serial fallback, and an in-process batched mode.

See ``docs/performance.md`` for key construction and invalidation rules.
"""

from .cache import CacheStats, EvalCache
from .fingerprint import UncacheableError, net_fingerprint, workload_key
from .store import PersistentStore, spillable
from .sweep import SweepRunner

__all__ = [
    "CacheStats",
    "EvalCache",
    "PersistentStore",
    "SweepRunner",
    "UncacheableError",
    "net_fingerprint",
    "spillable",
    "workload_key",
]
