"""Append-only JSONL disk tier for :class:`repro.perf.cache.EvalCache`.

The in-memory cache already uses content-addressed keys (SHA-256 of the
net's canonical text + canonical workload features — see
:mod:`repro.perf.fingerprint`), which are stable across processes and
sessions.  This module adds the missing half: a file two processes can
share so that serving restarts and repeated sweeps warm-start instead of
re-simulating.

Format: one JSON object per line, ``{"k": <key>, "v": <value>}``.  The
design leans on three properties:

* **Atomic appends.**  Every entry is written with a single
  ``os.write`` to a file opened with ``O_APPEND`` — POSIX guarantees
  the kernel serializes such writes, so concurrent writers interleave
  whole lines, never bytes.  No locks, no rename dance.
* **Corruption-tolerant loads.**  A reader that finds an undecodable
  line skips it with a warning instead of failing the load.  An
  incomplete final line (a writer crashed mid-write, or a reader raced
  an in-flight append on a filesystem without the POSIX guarantee) is
  treated as a *pending tail*: the read offset stays before it, so a
  later :meth:`reload` picks the entry up once the line is complete.
* **Exact float round-trips.**  ``json`` serializes floats with
  ``repr``, which Python guarantees round-trips every finite float
  bit-for-bit — so a makespan read back from disk equals the one the
  engine computed.  (Non-finite floats are refused: JSON has no
  portable encoding for them.)

Values must be JSON-representable plain data; anything else (e.g. a
``SimResult`` object) is *unspillable* — it stays in the in-memory tier
and is counted, never guessed at.

Duplicate keys are benign: two processes that simulate the same point
concurrently both append, and replay keeps the last value — which is
byte-identical anyway, because the key pins the computation.
"""

from __future__ import annotations

import json
import logging
import math
import os
from typing import Any

logger = logging.getLogger("repro.perf.store")


def spillable(value: Any) -> bool:
    """True when ``value`` survives a JSON round-trip unchanged."""
    if value is None or isinstance(value, (bool, int, str)):
        return True
    if isinstance(value, float):
        return math.isfinite(value)
    if isinstance(value, (list, tuple)):
        # Tuples come back as lists; only accept lists so the round
        # trip preserves equality *and* type.
        return isinstance(value, list) and all(spillable(v) for v in value)
    if isinstance(value, dict):
        return all(isinstance(k, str) and spillable(v) for k, v in value.items())
    return False


class PersistentStore:
    """One JSONL file of ``key -> value`` entries, shared across processes.

    Attributes:
        path: The backing file (created on first append).
        corrupt_lines: Undecodable complete lines skipped so far (a
            warning is logged for each batch of them).
    """

    def __init__(self, path: str | os.PathLike[str]):
        self.path = os.fspath(path)
        self.corrupt_lines = 0
        self._offset = 0  # bytes of the file already replayed
        self._tail = b""  # pending incomplete final line, if any

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def load(self) -> dict[str, Any]:
        """Replay the whole file from the start into a fresh dict."""
        self._offset = 0
        self._tail = b""
        self.corrupt_lines = 0
        entries: dict[str, Any] = {}
        self.reload_into(entries)
        return entries

    def reload_into(self, entries: dict[str, Any]) -> int:
        """Replay entries appended since the last load/reload.

        Returns the number of entries applied.  Safe to call while other
        processes are appending: complete lines are applied, an
        in-flight tail is deferred to the next call.
        """
        try:
            with open(self.path, "rb") as fh:
                fh.seek(self._offset)
                data = fh.read()
        except FileNotFoundError:
            return 0
        if not data:
            return 0
        self._offset += len(data)
        data = self._tail + data
        self._tail = b""
        lines = data.split(b"\n")
        if lines[-1]:
            # No trailing newline: an incomplete (in-flight or
            # truncated) final line.  Hold it back; if a writer
            # completes it, the next reload stitches it together — if
            # nothing ever completes it, it is simply never applied.
            self._tail = lines[-1]
        del lines[-1]
        applied = 0
        corrupt = 0
        for line in lines:
            if not line:
                continue
            try:
                entry = json.loads(line)
                key = entry["k"]
                value = entry["v"]
            except (ValueError, TypeError, KeyError):
                corrupt += 1
                continue
            if not isinstance(key, str):
                corrupt += 1
                continue
            entries[key] = value
            applied += 1
        if corrupt:
            self.corrupt_lines += corrupt
            logger.warning(
                "persistent cache %s: skipped %d corrupt line(s) "
                "(truncated or damaged tail); %d entries recovered",
                self.path,
                corrupt,
                applied,
            )
        if self._tail:
            logger.warning(
                "persistent cache %s: holding back an incomplete final "
                "line (%d bytes) until a writer completes it",
                self.path,
                len(self._tail),
            )
        return applied

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def append(self, key: str, value: Any) -> bool:
        """Durably append one entry; returns False when the value is not
        JSON-spillable (the caller keeps it in memory only)."""
        if not spillable(value):
            return False
        line = (
            json.dumps({"k": key, "v": value}, separators=(",", ":")).encode()
            + b"\n"
        )
        fd = os.open(self.path, os.O_APPEND | os.O_CREAT | os.O_WRONLY, 0o644)
        try:
            os.write(fd, line)  # one write: atomic under O_APPEND
        finally:
            os.close(fd)
        return True
