"""Parallel sweep runner for independent simulation points.

Validation (E4/E5) and autotuning (E6) evaluate many *independent*
(interface, item) points; :class:`SweepRunner` fans them across worker
processes.  Two properties matter more than raw speed:

* **Deterministic ordering** — results come back in input order regardless
  of which worker finished first, so downstream error tables are
  reproducible.
* **Graceful serial fallback** — nets and models routinely close over
  lambdas, which cannot cross a process boundary.  When the pool cannot be
  used (unpicklable work, restricted environments, ``workers=1``), the
  runner transparently evaluates serially and records why.
"""

from __future__ import annotations

import os
import pickle
from collections.abc import Callable, Iterable, Sequence
from typing import Any, TypeVar

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")


class SweepRunner:
    """Map a function over independent points, in parallel when possible.

    Args:
        workers: Worker process count; ``None`` picks ``os.cpu_count()``,
            ``1`` (or ``0``) forces serial evaluation.
        min_parallel_items: Sweeps smaller than this run serially — the
            pool's startup cost dwarfs the work.

    Attributes:
        last_mode: ``"parallel"``, ``"serial"``, ``"serial-fallback"``,
            or ``"batched"`` after each :meth:`map` call — visible in
            reports so a sweep that silently degraded is noticeable.

    ``obs`` (an :class:`repro.obs.Obs` bundle) times each :meth:`map`
    as a wall-clock span (sweeps are host work, not simulated work) and
    counts maps per execution mode, so a pipeline that keeps falling
    back to serial shows up in the metrics.
    """

    def __init__(
        self,
        workers: int | None = None,
        *,
        min_parallel_items: int = 8,
        obs=None,
    ):
        if workers is not None and workers < 0:
            raise ValueError("workers must be >= 0")
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        self.min_parallel_items = min_parallel_items
        self.last_mode: str | None = None
        tracer = getattr(obs, "tracer", None)
        self._tracer = (
            tracer if tracer is not None and getattr(tracer, "enabled", True) else None
        )
        self._metrics = getattr(obs, "metrics", None)

    def map(
        self,
        fn: Callable[[ItemT], ResultT],
        items: Iterable[ItemT],
        *,
        batch_fn: Callable[[Sequence[ItemT]], list[ResultT]] | None = None,
    ) -> list[ResultT]:
        """``[fn(x) for x in items]``, in input order.

        ``batch_fn`` is a whole-matrix equivalent of the per-item ``fn``
        (e.g. an interface's ``evaluate_batch``).  When given, it runs
        the entire sweep in-process (``last_mode == "batched"``) instead
        of fanning out — a batch engine evaluates thousands of points
        per second, so pool startup + per-item pickling would only slow
        it down.  Otherwise: parallel when the work is picklable and
        large enough, serial if not (``last_mode`` says which happened).
        """
        points: Sequence[ItemT] = list(items)
        if self._tracer is not None:
            with self._tracer.wall_span(
                "sweep.map", cat="perf.sweep", args={"points": len(points)}
            ):
                results = self._map(fn, points, batch_fn)
        else:
            results = self._map(fn, points, batch_fn)
        if self._metrics is not None:
            self._metrics.counter("sweep_maps_total", mode=self.last_mode).inc()
            self._metrics.counter("sweep_points_total", mode=self.last_mode).inc(
                len(points)
            )
        return results

    def _map(
        self,
        fn: Callable[[ItemT], ResultT],
        points: Sequence[ItemT],
        batch_fn: Callable[[Sequence[ItemT]], list[ResultT]] | None = None,
    ) -> list[ResultT]:
        if batch_fn is not None:
            self.last_mode = "batched"
            results = batch_fn(points)
            if len(results) != len(points):
                raise ValueError(
                    f"batch_fn returned {len(results)} results for "
                    f"{len(points)} points"
                )
            return results
        if self.workers <= 1 or len(points) < self.min_parallel_items:
            self.last_mode = "serial"
            return [fn(x) for x in points]
        if not self._picklable(fn, points):
            self.last_mode = "serial-fallback"
            return [fn(x) for x in points]
        try:
            from concurrent.futures import ProcessPoolExecutor

            with ProcessPoolExecutor(max_workers=self.workers) as pool:
                # executor.map preserves input order by construction.
                chunk = max(1, len(points) // (self.workers * 4))
                results = list(pool.map(fn, points, chunksize=chunk))
        except (OSError, RuntimeError, pickle.PicklingError):
            # No fork/spawn available (sandboxes), or late pickling issues:
            # recompute serially — correctness over speed.
            self.last_mode = "serial-fallback"
            return [fn(x) for x in points]
        self.last_mode = "parallel"
        return results

    @staticmethod
    def _picklable(fn: Callable[..., Any], points: Sequence[Any]) -> bool:
        """Probe whether the work can cross a process boundary at all.

        Checks the function and the first point; a sweep with mixed
        picklability will still fall back via the runtime except path.
        """
        try:
            pickle.dumps(fn)
            if points:
                pickle.dumps(points[0])
        except Exception:
            return False
        return True
