"""Stable content fingerprints for nets and workload features.

A cache entry must outlive the Python objects that produced it, so keys
cannot use ``id()``, ``hash()`` (salted per process for strings), or
``pickle`` (byte-level output varies across protocol/versions).  Instead we
build a *canonical text encoding* of the net structure and the workload
features, and hash it with SHA-256:

* **Nets** — every place (name, capacity) and transition (arcs, delay,
  guard, servers, priority, timeout) is rendered in sorted order.  Delay and
  guard callables are identified by their DSL source when the net came from
  ``.pnet`` text (the compiled expression's ``.src``), else by their
  compiled bytecode, constants, and closure values — so editing a formula
  *changes the fingerprint* and invalidates cached results.
* **Workload features** — plain data (numbers, strings, containers,
  dataclasses, enums, numpy arrays) is encoded recursively with explicit
  type tags, so ``1`` and ``1.0`` and ``True`` never collide.

Anything we cannot encode stably raises :class:`UncacheableError`; callers
(see :class:`repro.perf.cache.EvalCache`) treat that as "simulate, don't
cache" and count it, rather than guessing a key.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import fields, is_dataclass
from typing import Any

from repro.petri.net import PetriNet, Transition


class UncacheableError(TypeError):
    """A value has no stable content encoding; do not cache results for it."""


def encode(value: Any) -> str:
    """Canonical text encoding of a workload-feature value.

    Deterministic across processes and sessions; raises
    :class:`UncacheableError` for values with unstable identity.
    """
    if value is None:
        return "N"
    if value is True:
        return "T"
    if value is False:
        return "F"
    if isinstance(value, int):
        return f"i{value}"
    if isinstance(value, float):
        return f"f{value.hex()}"
    if isinstance(value, str):
        return f"s{len(value)}:{value}"
    if isinstance(value, bytes):
        return f"b{value.hex()}"
    if isinstance(value, enum.Enum):
        return f"e{type(value).__qualname__}.{value.name}"
    if isinstance(value, (list, tuple)):
        tag = "l" if isinstance(value, list) else "t"
        return tag + "(" + ",".join(encode(v) for v in value) + ")"
    if isinstance(value, (set, frozenset)):
        return "S(" + ",".join(sorted(encode(v) for v in value)) + ")"
    if isinstance(value, dict):
        items = sorted((encode(k), encode(v)) for k, v in value.items())
        return "d(" + ",".join(f"{k}={v}" for k, v in items) + ")"
    if is_dataclass(value) and not isinstance(value, type):
        body = ",".join(
            f"{f.name}={encode(getattr(value, f.name))}" for f in fields(value)
        )
        return f"D{type(value).__qualname__}({body})"
    # numpy arrays and scalars, without importing numpy here.
    if hasattr(value, "tobytes") and hasattr(value, "dtype"):
        shape = getattr(value, "shape", ())
        return f"a{value.dtype}{shape}:{value.tobytes().hex()}"
    if callable(value):
        return callable_fingerprint(value)
    raise UncacheableError(
        f"cannot build a stable cache key for {type(value).__qualname__} value {value!r}"
    )


def callable_fingerprint(fn: Any) -> str:
    """Content identity for a guard/delay callable.

    DSL-compiled expressions carry their source (``fn.src``); plain Python
    functions are identified by bytecode + constants + names + closure
    values + defaults.  Builtins / C callables have no inspectable content
    and are rejected.
    """
    src = getattr(fn, "src", None)
    if isinstance(src, str):
        return f"src:{src}"
    code = getattr(fn, "__code__", None)
    if code is None:
        raise UncacheableError(
            f"callable {fn!r} has no source or code object to fingerprint"
        )
    parts = [
        code.co_code.hex(),
        ",".join(encode(c) if not callable(c) else callable_fingerprint(c)
                 for c in code.co_consts
                 if not isinstance(c, type(code))),
        ",".join(code.co_names),
        ",".join(code.co_varnames[: code.co_argcount]),
    ]
    # Nested function constants (comprehensions, inner lambdas): hash their
    # bytecode too, since co_consts skips raw code objects above.
    inner = [c for c in code.co_consts if isinstance(c, type(code))]
    parts.extend(c.co_code.hex() for c in inner)
    closure = getattr(fn, "__closure__", None)
    if closure:
        parts.append("|".join(encode(cell.cell_contents) for cell in closure))
    defaults = getattr(fn, "__defaults__", None)
    if defaults:
        parts.append(encode(defaults))
    return "code:" + ":".join(parts)


def _transition_lines(t: Transition) -> list[str]:
    """Canonical description of one transition.

    The *current* ``delay``/``guard`` objects are authoritative — the
    DSL's ``delay_src``/``guard_src`` attributes are ignored, since they
    go stale if a transition is mutated after parsing.  (DSL-compiled
    expression callables carry their own ``.src``, which
    :func:`callable_fingerprint` prefers, so ``.pnet`` nets still key on
    source text, not bytecode.)
    """
    delay = (
        callable_fingerprint(t.delay)
        if callable(t.delay)
        else f"const:{float(t.delay).hex()}"
    )
    guard = "none" if t.guard is None else callable_fingerprint(t.guard)
    produce = "none" if t.produce is None else callable_fingerprint(t.produce)
    timeout = (
        "none" if t.timeout is None else f"{float(t.timeout[0]).hex()}->{t.timeout[1]}"
    )
    return [
        f"transition {t.name}",
        "  in " + " ".join(f"{a.place}:{a.weight}" for a in t.inputs),
        "  out " + " ".join(f"{a.place}:{a.weight}" for a in t.outputs),
        f"  delay {delay}",
        f"  guard {guard}",
        f"  produce {produce}",
        f"  servers {t.servers}",
        f"  priority {t.priority}",
        f"  timeout {timeout}",
    ]


def net_fingerprint(net: PetriNet) -> str:
    """SHA-256 hex digest of the net's performance-relevant content.

    Stable across processes; changes whenever any structural element or
    any delay/guard formula changes.  Simulation *state* (markings, busy
    counts, statistics) is deliberately excluded — the simulator resets it
    at the start of every run, so it cannot affect results.
    """
    lines = [f"net {net.name}"]
    for name in sorted(net.places):
        place = net.places[name]
        lines.append(f"place {name} capacity={place.capacity}")
    for name in sorted(net.transitions):
        lines.extend(_transition_lines(net.transitions[name]))
    digest = hashlib.sha256("\n".join(lines).encode()).hexdigest()
    return digest


def workload_key(features: Any) -> str:
    """SHA-256 hex digest of canonical workload features.

    Raises :class:`UncacheableError` when the features have no stable
    encoding (opaque objects, C callables, ...).
    """
    return hashlib.sha256(encode(features).encode()).hexdigest()
