"""``python -m repro.scale plan`` — capacity planning from the shell.

Feed a traffic forecast (mix + mean inter-arrival gap) and an SLO;
get back the cheapest fleet composition that provably meets it, plus
the runner-up table.  With ``--cache`` the interface pricing rides a
persistent EvalCache, so re-planning a tweaked SLO is free.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.perf import EvalCache
from repro.workloads import ALL_MIXES

from .planner import CapacityPlanner
from .slo import SLO
from .templates import standard_templates

MIXES = {mix.name: mix for mix in ALL_MIXES}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scale",
        description="Interface-priced capacity planning.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    plan = sub.add_parser(
        "plan", help="search fleet compositions for the cheapest SLO-meeting one"
    )
    plan.add_argument(
        "--mix", choices=sorted(MIXES), default="enterprise", help="traffic forecast"
    )
    plan.add_argument(
        "--gap", type=float, default=1_000.0, help="mean inter-arrival gap, cycles"
    )
    plan.add_argument(
        "--budget", type=float, default=30_000.0, help="latency budget, cycles"
    )
    plan.add_argument(
        "--quantile", type=float, default=0.95, help="latency quantile in (0, 1)"
    )
    plan.add_argument(
        "--max-loss", type=float, default=0.01, help="loss-rate ceiling in [0, 1]"
    )
    plan.add_argument(
        "--reps", type=int, default=64, help="representative sample size"
    )
    plan.add_argument("--seed", type=int, default=17, help="sample seed")
    plan.add_argument(
        "--max-per-kind", type=int, default=4, help="search ceiling per device kind"
    )
    plan.add_argument(
        "--cache", metavar="PATH", default=None, help="persistent EvalCache JSONL"
    )
    plan.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    plan.add_argument(
        "--top", type=int, default=5, help="how many alternatives to show"
    )
    return parser


def _plan_dict(plan) -> dict:
    return {
        "composition": plan.composition,
        "cost": plan.cost,
        "utilization": plan.utilization,
        "predicted_latency": plan.predicted_latency,
        "bound_latency": plan.bound_latency,
        "traffic": plan.traffic,
    }


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    slo = SLO(
        latency_budget=args.budget,
        latency_quantile=args.quantile,
        max_loss_rate=args.max_loss,
    )
    cache = EvalCache(args.cache) if args.cache else EvalCache()
    templates = standard_templates(seed=args.seed, cache=cache)
    planner = CapacityPlanner(templates, reps=args.reps, seed=args.seed)
    best, evaluated = planner.plan(
        MIXES[args.mix], args.gap, slo, max_per_kind=args.max_per_kind
    )
    feasible = [p for p in evaluated if planner.meets(p, slo)]

    if args.json:
        payload = {
            "mix": args.mix,
            "mean_gap": args.gap,
            "slo": slo.describe(),
            "best": _plan_dict(best) if best is not None else None,
            "feasible": len(feasible),
            "evaluated": len(evaluated),
            "alternatives": [_plan_dict(p) for p in feasible[: args.top]],
        }
        print(json.dumps(payload, indent=2))
        return 0 if best is not None else 1

    print(f"forecast: {args.mix} mix, mean gap {args.gap:g} cycles")
    print(f"slo:      {slo.describe()}")
    print(f"searched: {len(evaluated)} compositions, {len(feasible)} feasible")
    if best is None:
        print("no searched fleet provably meets the SLO — buy different")
        print("hardware, raise --max-per-kind, or relax the promise")
        return 1
    print()
    print(f"cheapest: {best.describe()}  (cost {best.cost:g})")
    print(
        f"  p{slo.latency_quantile * 100:g} predicted "
        f"{best.predicted_latency:,.0f} / bound {best.bound_latency:,.0f} "
        f"/ budget {slo.latency_budget:,.0f} cycles"
    )
    print(f"  peak device utilization {best.utilization:.2f}")
    for kind, frac in sorted(best.traffic.items(), key=lambda kv: -kv[1]):
        if frac:
            print(f"  traffic -> {kind}: {frac:.0%}")
    others = [p for p in feasible if p is not best][: args.top - 1]
    if others:
        print()
        print("alternatives (feasible, by cost):")
        for p in others:
            print(
                f"  {p.describe():34}  cost {p.cost:5g}  "
                f"bound p{slo.latency_quantile * 100:g} {p.bound_latency:,.0f}"
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
