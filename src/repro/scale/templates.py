"""The standard scale-out catalog: what the autoscaler/planner can buy.

One :class:`~repro.scale.autoscaler.DeviceTemplate` per kind in
:data:`~repro.runtime.pool.RPC_DEVICE_KINDS`, built through the same
:func:`~repro.runtime.pool.rpc_device` factory the base fleet uses —
a scaled-out Protoacc is byte-identical in behaviour (interface,
contract, breaker, retry) to a provisioned one, which is what makes
the planner's predictions transfer to the autoscaler's reality.
"""

from __future__ import annotations

from repro.runtime.pool import RPC_DEVICE_COSTS, RPC_DEVICE_KINDS, rpc_device

from .autoscaler import DeviceTemplate


def standard_templates(
    *,
    kinds=RPC_DEVICE_KINDS,
    costs=None,
    seed: int = 17,
    cache=None,
    obs=None,
) -> list[DeviceTemplate]:
    """Templates for the requested kinds, sharing one eval cache.

    ``costs`` overrides the default relative prices
    (:data:`RPC_DEVICE_COSTS`) — capacity planning answers change with
    the price list, the serving behaviour does not.
    """
    costs = dict(RPC_DEVICE_COSTS if costs is None else costs)

    def make(kind: str) -> DeviceTemplate:
        def build(name: str, _kind=kind):
            return rpc_device(_kind, name=name, seed=seed, cache=cache, obs=obs)

        return DeviceTemplate(kind=kind, cost=costs[kind], build=build)

    return [make(kind) for kind in kinds]
