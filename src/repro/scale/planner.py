"""Offline capacity planning: buy the fleet by pricing it, not running it.

This is the paper's "predict before you commit hardware" workflow made
executable.  Given a traffic forecast (an :class:`~repro.workloads.rpc.RpcMix`
plus a mean inter-arrival gap) and an :class:`~repro.scale.slo.SLO`,
the planner searches fleet compositions over the device templates and
returns the cheapest one that *provably* meets the SLO — "provably"
meaning the latency estimate is taken at each device's
:class:`~repro.lint.PerfContract` upper envelope (interface prediction
inflated by the contract's validated ``epsilon``), so a fleet that
passes here carries a contract-backed margin, not a point estimate.

No composition is ever simulated.  Per kind, one batched interface
pass prices a representative request sample ("Performance
Representatives": a small sample stands in for the full workload);
per composition, closed-form M/G/1 queueing (Pollaczek–Khinchine) adds
the contention the no-contention interfaces cannot see.  A thousand
compositions cost one engine pass per device kind — and with a
persistent :class:`~repro.perf.EvalCache` attached, a re-plan costs
zero.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from itertools import product

from .autoscaler import DeviceTemplate
from .slo import SLO, quantile

#: Per-device utilization above which the M/G/1 wait estimate is too
#: fragile to promise an SLO on (and loss-free serving is implausible).
DEFAULT_RHO_MAX = 0.85


@dataclass(frozen=True)
class KindProfile:
    """One device kind's priced behaviour on the representative sample."""

    kind: str
    cost: float
    #: Interface-predicted service + offload overhead per sample
    #: request, cycles (one batched engine pass).
    services: tuple[float, ...]
    #: Contract relative tolerance: the validated epsilon for
    #: contracted kinds, 0 for ground-truth (software) interfaces.
    epsilon: float
    #: Contract no-contention envelope, for the upper bound's sanity
    #: clamp (inf when uncontracted).
    max_latency: float

    @property
    def mean_service(self) -> float:
        return sum(self.services) / len(self.services)


@dataclass(frozen=True)
class FleetPlan:
    """One evaluated composition."""

    composition: dict[str, int]
    cost: float
    #: Highest per-device utilization across kinds.
    utilization: float
    #: Point estimate of the SLO quantile (interface prediction + P-K
    #: wait), cycles; None when the composition cannot carry the load.
    predicted_latency: float | None
    #: Contract-bounded estimate of the same quantile: per-request
    #: service at the (1 + epsilon) envelope.  The feasibility verdict
    #: uses this, not the point estimate.
    bound_latency: float | None
    #: Traffic fraction routed to each kind (fastest-kind assignment).
    traffic: dict[str, float] = field(default_factory=dict)

    @property
    def devices(self) -> int:
        return sum(self.composition.values())

    def describe(self) -> str:
        parts = [
            f"{count}x {kind}"
            for kind, count in sorted(self.composition.items())
            if count
        ]
        return " + ".join(parts) if parts else "(empty)"


class CapacityPlanner:
    """Search fleet compositions by interface pricing.

    Args:
        templates: the device kinds money can buy (see
            :func:`~repro.scale.templates.standard_templates`).
        reps: representative sample size per plan.
        seed: sample seed — plans are deterministic.
        rho_max: per-device utilization ceiling for feasibility.
    """

    def __init__(
        self,
        templates: Sequence[DeviceTemplate],
        *,
        reps: int = 64,
        seed: int = 17,
        rho_max: float = DEFAULT_RHO_MAX,
    ):
        if not templates:
            raise ValueError("planner needs at least one device template")
        if reps < 1:
            raise ValueError("reps must be >= 1")
        if not 0.0 < rho_max < 1.0:
            raise ValueError("rho_max must lie in (0, 1)")
        self.templates = list(templates)
        self.reps = reps
        self.seed = seed
        self.rho_max = rho_max

    # ------------------------------------------------------------------
    # Pricing
    # ------------------------------------------------------------------
    def profile_kinds(self, mix) -> dict[str, KindProfile]:
        """Price the representative sample on every kind — one batched
        interface pass each (`price_batch` → ``evaluate_batch``)."""
        sample = mix.sample(self.seed, self.reps)
        profiles: dict[str, KindProfile] = {}
        for template in self.templates:
            probe = template.build(f"plan-probe-{template.kind}")
            # A fresh device at t=0 has no backlog, so price - now is
            # pure interface-predicted service + offload overhead.
            services = tuple(p - 0.0 for p in probe.price_batch(sample, 0.0))
            contract = getattr(probe, "contract", None)
            profiles[template.kind] = KindProfile(
                kind=template.kind,
                cost=template.cost,
                services=services,
                epsilon=contract.epsilon if contract is not None else 0.0,
                max_latency=(
                    contract.max_latency if contract is not None else float("inf")
                ),
            )
        return profiles

    # ------------------------------------------------------------------
    # One composition
    # ------------------------------------------------------------------
    def evaluate(
        self,
        composition: dict[str, int],
        profiles: dict[str, KindProfile],
        mean_gap: float,
        slo: SLO,
    ) -> FleetPlan:
        """Closed-form verdict for one composition.

        Requests are assigned to the kind that serves them fastest
        among the kinds present (what ``interface_predicted`` routing
        converges to under light load), load inside a kind spreads
        evenly over its copies, and each copy is an M/G/1 queue whose
        mean wait is Pollaczek–Khinchine:
        ``W = lambda * E[S^2] / (2 * (1 - rho))``.
        """
        present = [k for k, n in composition.items() if n > 0]
        cost = sum(profiles[k].cost * n for k, n in composition.items())
        if not present:
            return FleetPlan(dict(composition), cost, float("inf"), None, None)

        # Fastest-kind assignment per representative request.
        assigned: dict[str, list[int]] = {k: [] for k in present}
        for i in range(self.reps):
            best = min(present, key=lambda k: profiles[k].services[i])
            assigned[best].append(i)

        arrival_rate = 1.0 / mean_gap
        utilization = 0.0
        waits: dict[str, float] = {}
        traffic: dict[str, float] = {}
        for kind in present:
            idx = assigned[kind]
            traffic[kind] = len(idx) / self.reps
            if not idx:
                waits[kind] = 0.0
                continue
            services = [profiles[kind].services[i] for i in idx]
            mean_s = sum(services) / len(services)
            mean_s2 = sum(s * s for s in services) / len(services)
            per_copy_rate = arrival_rate * traffic[kind] / composition[kind]
            rho = per_copy_rate * mean_s
            utilization = max(utilization, rho)
            if rho >= 1.0:
                waits[kind] = float("inf")
            else:
                waits[kind] = per_copy_rate * mean_s2 / (2.0 * (1.0 - rho))

        if utilization >= 1.0:
            return FleetPlan(
                dict(composition), cost, utilization, None, None, traffic
            )

        totals: list[float] = []
        bounds: list[float] = []
        for kind in present:
            profile = profiles[kind]
            for i in assigned[kind]:
                s = profile.services[i]
                totals.append(waits[kind] + s)
                # The contract envelope: prediction inflated by the
                # validated epsilon, clamped to the symbolic max bound.
                bounded_s = min(s * (1.0 + profile.epsilon), profile.max_latency)
                bounds.append(waits[kind] + bounded_s)
        return FleetPlan(
            composition=dict(composition),
            cost=cost,
            utilization=utilization,
            predicted_latency=quantile(totals, slo.latency_quantile),
            bound_latency=quantile(bounds, slo.latency_quantile),
            traffic=traffic,
        )

    def meets(self, plan: FleetPlan, slo: SLO) -> bool:
        """Does the plan *provably* meet the SLO?  Contract-bounded
        quantile within budget and every device under ``rho_max`` (the
        loss guard: a fleet with utilization headroom and a sane queue
        bound serves open-loop traffic essentially loss-free)."""
        return (
            plan.bound_latency is not None
            and plan.bound_latency <= slo.latency_budget
            and plan.utilization <= self.rho_max
        )

    # ------------------------------------------------------------------
    # The search
    # ------------------------------------------------------------------
    def plan(
        self,
        mix,
        mean_gap: float,
        slo: SLO,
        *,
        max_per_kind: int = 4,
    ) -> tuple[FleetPlan | None, list[FleetPlan]]:
        """Search every composition with up to ``max_per_kind`` copies
        per kind; return ``(cheapest feasible plan, all evaluated
        plans)``.  ``None`` means no searched fleet can carry the
        forecast within the SLO — buy different hardware or relax the
        promise."""
        if mean_gap <= 0:
            raise ValueError("mean_gap must be positive cycles")
        profiles = self.profile_kinds(mix)
        kinds = [t.kind for t in self.templates]
        evaluated: list[FleetPlan] = []
        for counts in product(range(max_per_kind + 1), repeat=len(kinds)):
            if sum(counts) == 0:
                continue
            composition = dict(zip(kinds, counts, strict=True))
            evaluated.append(self.evaluate(composition, profiles, mean_gap, slo))
        evaluated.sort(
            key=lambda p: (
                p.cost,
                p.bound_latency if p.bound_latency is not None else float("inf"),
            )
        )
        for plan in evaluated:
            if self.meets(plan, slo):
                return plan, evaluated
        return None, evaluated

    # ------------------------------------------------------------------
    # Realization
    # ------------------------------------------------------------------
    def build_fleet(self, plan: FleetPlan) -> list:
        """Instantiate the plan as pooled devices (named
        ``<kind>-p<i>``), ready for ``DevicePool(...)`` — how the E17
        benchmark turns the paper plan into a served fleet."""
        by_kind = {t.kind: t for t in self.templates}
        devices = []
        for kind, count in sorted(plan.composition.items()):
            template = by_kind[kind]
            for i in range(count):
                devices.append(template.build(f"{kind}-p{i}"))
        return devices
