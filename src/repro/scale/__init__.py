"""SLO-guarded autoscaling, brownout, and interface-priced capacity planning.

The paper's argument is that a performance interface lets you *predict*
hardware before committing to it.  This package spends that prediction
three ways:

* **Live scaling** — :class:`Autoscaler` grows and shrinks a
  :class:`~repro.runtime.pool.DevicePool` from observed SLO pressure,
  queue depth, breaker state, and drift, pricing every scale-out
  candidate through its Petri-net interface before it joins
  (:mod:`.autoscaler`).
* **Brownout** — :class:`DegradationLadder` trades features for latency
  in explicit rungs (hedging → low-priority shedding → coarse pricing →
  admission rejection) under sustained SLO violation, and climbs back
  down on recovery (:mod:`.brownout`).
* **Capacity planning** — :class:`CapacityPlanner` searches fleet
  compositions offline by batch-pricing a representative workload
  sample, returning the cheapest fleet that provably (per
  :class:`~repro.lint.PerfContract` bounds) meets the SLO
  (:mod:`.planner`); ``python -m repro.scale plan`` is the CLI.

:class:`ScaleController` binds the live pieces to an
:class:`~repro.runtime.serving.OpenLoopServer` via its duck-typed
controller hooks (:mod:`.controller`).  ``docs/robustness.md`` has the
operator chapter, including the rung table.
"""

from .autoscaler import Autoscaler, DeviceTemplate, ScaleEvent, ScalePolicy
from .brownout import BrownoutPolicy, DegradationLadder, Rung, RungTransition
from .controller import ScaleController
from .planner import DEFAULT_RHO_MAX, CapacityPlanner, FleetPlan, KindProfile
from .scenario import (
    base_fleet,
    diurnal_arrivals,
    priority_assigner,
    run_scale_scenario,
)
from .slo import SLO, SloMonitor, SloStatus, quantile
from .templates import standard_templates

__all__ = [
    "DEFAULT_RHO_MAX",
    "SLO",
    "Autoscaler",
    "BrownoutPolicy",
    "CapacityPlanner",
    "DegradationLadder",
    "DeviceTemplate",
    "FleetPlan",
    "KindProfile",
    "Rung",
    "RungTransition",
    "ScaleController",
    "ScaleEvent",
    "ScalePolicy",
    "SloMonitor",
    "SloStatus",
    "base_fleet",
    "diurnal_arrivals",
    "priority_assigner",
    "quantile",
    "run_scale_scenario",
    "standard_templates",
]
