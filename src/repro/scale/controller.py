"""The live control plane binding SLO monitor, ladder, and autoscaler
to an :class:`~repro.runtime.serving.OpenLoopServer`.

The server stays ignorant of scaling: it exposes duck-typed hooks
(``attach`` / ``tick`` / ``admission_reason`` / ``observe`` /
``observe_loss``) and this controller implements them, so the whole
control plane can be attached or dropped without touching the serving
loop.  One controller owns one pool's scaling story:

* every served request feeds the :class:`~repro.scale.slo.SloMonitor`
  (end-to-end latency) and the autoscaler's pricing sample;
* every refusal feeds the monitor's loss window;
* every ``decision_interval`` cycles the controller takes one SLO
  verdict and hands it to the :class:`DegradationLadder` (rung moves)
  and the :class:`Autoscaler` (membership moves);
* brownout admission questions are answered from the current rung.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.runtime.serving import REASON_ADMISSION_REJECTED, REASON_PRIORITY_SHED

from .autoscaler import Autoscaler, DeviceTemplate, ScalePolicy
from .brownout import BrownoutPolicy, DegradationLadder
from .slo import SLO, SloMonitor


class ScaleController:
    """Wire an SLO, a brownout ladder, and an autoscaler to a server.

    Pass as ``OpenLoopServer(pool, controller=...)``.  Any of the three
    legs can be disabled: ``templates=()`` runs brownout without
    scaling, ``ladder=False`` runs scaling without brownout.
    """

    def __init__(
        self,
        pool,
        slo: SLO,
        *,
        templates: Sequence[DeviceTemplate] = (),
        monitor: SloMonitor | None = None,
        scale_policy: ScalePolicy | None = None,
        brownout_policy: BrownoutPolicy | None = None,
        ladder: bool = True,
        decision_interval: float = 2_000.0,
        obs=None,
    ):
        if decision_interval <= 0:
            raise ValueError("decision_interval must be positive cycles")
        self.pool = pool
        self.slo = slo
        self.obs = obs if obs is not None else getattr(pool, "obs", None)
        self.monitor = monitor or SloMonitor(slo)
        self.ladder = (
            DegradationLadder(pool, brownout_policy, obs=self.obs) if ladder else None
        )
        self.scaler = (
            Autoscaler(pool, templates, scale_policy, obs=self.obs)
            if templates
            else None
        )
        self.decision_interval = decision_interval
        self._tsdb = getattr(self.obs, "tsdb", None)
        self.server = None
        self._queue_limit = 1
        self._last_decision = -float("inf")
        self.decisions = 0
        self.intentional_losses = 0
        self.statuses: list = []

    # ------------------------------------------------------------------
    # OpenLoopServer hooks (the duck-typed controller protocol)
    # ------------------------------------------------------------------
    def attach(self, server) -> None:
        self.server = server
        self._queue_limit = max(1, server.queue_limit)

    def tick(self, now: float, queue_depth: int) -> None:
        if now - self._last_decision < self.decision_interval:
            return
        self._last_decision = now
        self.decisions += 1
        status = self.monitor.status(now)
        self.statuses.append(status)
        if self._tsdb is not None:
            # Every SLO verdict lands in the store, so a post-hoc
            # timeline can show *when* the SLO broke, not just that it
            # did (``perfscope timeline`` reads these back).  Latency
            # is None until the monitor has a sample in its horizon.
            if status.latency is not None:
                self._tsdb.record("slo_latency", now, status.latency)
            self._tsdb.record("slo_loss_rate", now, status.loss_rate)
            self._tsdb.record("slo_ok", now, 1.0 if status.ok else 0.0)
            self._tsdb.record("pool_device_count", now, len(self.pool.devices))
        if self.ladder is not None:
            self.ladder.update(status)
        if self.scaler is not None:
            self.scaler.update(now, status, queue_depth / self._queue_limit)

    def admission_reason(
        self, request, priority: str, now: float, queue_depth: int
    ) -> str | None:
        if self.ladder is None:
            return None
        return self.ladder.admission_reason(priority)

    def observe(self, result, breakdown) -> None:
        self.monitor.record_served(breakdown.end_to_end, breakdown.completed)
        if self.scaler is not None:
            self.scaler.note_request(result.request, breakdown.completed)

    def observe_loss(self, reason: str, now: float) -> None:
        # Brownout's own sheds are intentional output, not a health
        # signal: feeding them back into the loss window would make the
        # high rungs self-sustaining (reject -> loss SLO violated ->
        # stay up).  The offline verdict still counts them; the control
        # loop listens only to losses it did not itself cause.
        if reason in (REASON_ADMISSION_REJECTED, REASON_PRIORITY_SHED):
            self.intentional_losses += 1
            return
        self.monitor.record_loss(now)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        snap = {
            "slo": self.slo.describe(),
            "decisions": self.decisions,
            "observed": self.monitor.observed,
            "lost": self.monitor.lost,
            "intentional_losses": self.intentional_losses,
        }
        if self.statuses:
            last = self.statuses[-1]
            snap["last_status"] = {
                "at": last.at,
                "latency": last.latency,
                "loss_rate": last.loss_rate,
                "ok": last.ok,
            }
        if self.ladder is not None:
            snap["brownout"] = self.ladder.snapshot()
        if self.scaler is not None:
            snap["scaling"] = self.scaler.snapshot()
        return snap
