"""The shared autoscaling scenario: a diurnal trace with a fault storm.

One trace generator and one runner, reused by the E17 benchmark, the
``perfscope scale`` report, the ``scaling-smoke`` CI job, and the chaos
soak test — so every consumer exercises the same arc:

* **diurnal arrivals** — the inter-arrival gap tightens sinusoidally
  to a peak and relaxes again (a compressed day of traffic);
* **a rolling fault storm** — mid-trace, the base Protoacc's fault
  plan turns hostile for a bounded invocation window, then recovers
  (:class:`~repro.runtime.faults.WindowedFaultPlan`);
* an SLO-guarded control plane (monitor + brownout ladder +
  autoscaler) or, for the comparison arm, a fixed fleet serving the
  identical trace.
"""

from __future__ import annotations

import numpy as np

from repro.obs import Obs
from repro.perf import EvalCache
from repro.runtime import OpenLoopServer, WindowedFaultPlan
from repro.runtime.faults import FaultPlan, FaultSpec
from repro.runtime.pool import DevicePool, rpc_device
from repro.workloads import STORAGE_MIX

from .autoscaler import ScalePolicy
from .brownout import BrownoutPolicy
from .controller import ScaleController
from .slo import SLO, SloMonitor
from .templates import standard_templates

#: The storm thrown at the base Protoacc mid-trace: hostile enough to
#: trip its breaker, bounded so the fleet can recover and the ladder
#: can descend.
STORM_SPEC = FaultSpec(hang_rate=0.30, drop_rate=0.15, corrupt_rate=0.05)

#: Scaling thresholds tuned for the scenario's cycle scale: scale out
#: on the first pressure decision (the capacity guard and cooldown
#: bound the churn), scale in lazily, and keep the fleet within 6.
SCENARIO_SCALE_POLICY = ScalePolicy(
    cooldown=12_000.0,
    scale_out_after=1,
    scale_in_after=8,
    scale_out_queue_frac=0.25,
    max_devices=6,
)

#: Ladder pacing for the scenario: patient on the way up (give the
#: autoscaler first crack at the pressure), quick on the way down.
SCENARIO_BROWNOUT_POLICY = BrownoutPolicy(climb_after=6, descend_after=3)

#: How requests split into priority classes (seeded, per request).
PRIORITY_CLASSES = ("low", "normal", "high")
PRIORITY_WEIGHTS = (0.3, 0.5, 0.2)


def diurnal_arrivals(
    mix,
    *,
    seed: int,
    count: int,
    base_gap: float,
    peak_factor: float = 3.0,
    periods: float = 1.0,
    sharpness: float = 2.0,
):
    """Sample ``count`` requests with a sinusoidally-modulated Poisson
    arrival process: the rate swings from the ``base_gap`` trough up to
    ``peak_factor``× and back, ``periods`` times over the trace.
    ``sharpness`` raises the sinusoid to a power — higher values
    concentrate the peak into a shorter burst with longer troughs (the
    shape that separates an adaptive fleet from a fixed-average one).

    Returns ``(requests, arrivals)`` like ``RpcMix.sample_open`` —
    deterministic in ``seed``.
    """
    if base_gap <= 0:
        raise ValueError("base_gap must be positive")
    if peak_factor < 1.0:
        raise ValueError("peak_factor must be >= 1 (it multiplies the rate)")
    if sharpness <= 0:
        raise ValueError("sharpness must be positive")
    requests = mix.sample(seed, count)
    rng = np.random.default_rng((seed, 0xD1))
    arrivals: list[float] = []
    t = 0.0
    for i in range(count):
        # Rate factor in [1, peak_factor], peaking mid-period.
        phase = 2.0 * np.pi * periods * i / count
        shape = (0.5 * (1.0 - np.cos(phase))) ** sharpness
        factor = 1.0 + (peak_factor - 1.0) * shape
        t += float(rng.exponential(base_gap / factor))
        arrivals.append(t)
    return requests, arrivals


def priority_assigner(requests, seed: int):
    """A deterministic ``priority_fn`` for a known request list: each
    request draws its class once (seeded), keyed by identity."""
    rng = np.random.default_rng((seed, 0x9B))
    draws = rng.choice(len(PRIORITY_CLASSES), size=len(requests), p=PRIORITY_WEIGHTS)
    by_id = {id(r): PRIORITY_CLASSES[d] for r, d in zip(requests, draws, strict=True)}
    return lambda request: by_id[id(request)]


def base_fleet(
    *,
    seed: int = 17,
    cache=None,
    obs=None,
    storm_window: tuple[int, int] | None = None,
    extra_kinds=(),
):
    """The provisioned fleet: one Protoacc + one CPU server (the hard
    floor), plus ``extra_kinds`` copies for fixed-fleet comparison
    arms.  ``storm_window`` arms the Protoacc with a rolling storm over
    that invocation window."""
    fault_plan = None
    if storm_window is not None:
        start, stop = storm_window
        fault_plan = WindowedFaultPlan(FaultPlan(seed, STORM_SPEC), start, stop)
    devices = [
        rpc_device("protoacc", seed=seed, cache=cache, obs=obs, fault_plan=fault_plan),
        rpc_device("cpu", obs=obs),
    ]
    for i, kind in enumerate(extra_kinds):
        devices.append(
            rpc_device(kind, name=f"{kind}-f{i}", seed=seed + 2 + i, cache=cache, obs=obs)
        )
    return devices


def run_scale_scenario(
    *,
    mix=STORAGE_MIX,
    count: int = 1_000,
    base_gap: float = 2_600.0,
    peak_factor: float = 3.5,
    sharpness: float = 1.0,
    seed: int = 17,
    slo: SLO | None = None,
    deadline: float = 80_000.0,
    queue_limit: int = 48,
    storm_window: tuple[int, int] | None = (30, 150),
    autoscale: bool = True,
    brownout: bool = True,
    fixed_extra_kinds=(),
    scale_policy: ScalePolicy | None = None,
    brownout_policy: BrownoutPolicy | None = None,
    decision_interval: float = 1_500.0,
    monitor_horizon: float = 40_000.0,
    cache=None,
    obs=None,
) -> dict:
    """Serve one diurnal + storm trace and return the full story.

    With ``autoscale`` (the treatment arm) the pool starts at the
    two-device floor and the controller may grow it; with
    ``autoscale=False`` the same trace hits a fixed fleet of the floor
    plus ``fixed_extra_kinds`` (the comparison arm).  Returns a dict:
    ``result`` (ServeResult), ``verdict`` (offline SloStatus),
    ``pool``, ``controller`` (None in the fixed arm), ``snapshot``,
    ``requests``/``arrivals``, and ``avg_devices`` (time-averaged pool
    size over the serving span).
    """
    slo = slo or SLO(latency_budget=30_000.0, latency_quantile=0.95, max_loss_rate=0.08)
    cache = cache if cache is not None else EvalCache()
    obs = obs if obs is not None else Obs.enabled(drift=False)
    requests, arrivals = diurnal_arrivals(
        mix,
        seed=seed,
        count=count,
        base_gap=base_gap,
        peak_factor=peak_factor,
        sharpness=sharpness,
    )
    devices = base_fleet(
        seed=seed,
        cache=cache,
        obs=obs,
        storm_window=storm_window,
        extra_kinds=() if autoscale else fixed_extra_kinds,
    )
    pool = DevicePool(devices, policy="interface_predicted", cache=cache, obs=obs)
    controller = None
    if autoscale or brownout:
        controller = ScaleController(
            pool,
            slo,
            templates=(
                standard_templates(seed=seed + 100, cache=cache, obs=obs)
                if autoscale
                else ()
            ),
            monitor=SloMonitor(slo, horizon=monitor_horizon),
            scale_policy=scale_policy or SCENARIO_SCALE_POLICY,
            brownout_policy=brownout_policy or SCENARIO_BROWNOUT_POLICY,
            ladder=brownout,
            decision_interval=decision_interval,
            obs=obs,
        )
    server = OpenLoopServer(
        pool,
        queue_limit=queue_limit,
        deadline=deadline,
        priority_fn=priority_assigner(requests, seed),
        controller=controller,
        obs=obs,
    )
    result = server.run(requests, arrivals)
    verdict = SloMonitor(slo).evaluate(result)
    return {
        "slo": slo,
        "result": result,
        "verdict": verdict,
        "pool": pool,
        "controller": controller,
        "server": server,
        "snapshot": pool.snapshot(),
        "requests": requests,
        "arrivals": arrivals,
        "avg_devices": _avg_devices(pool, arrivals, result),
    }


def _avg_devices(pool, arrivals, result) -> float:
    """Time-averaged pool size over the serving span, reconstructed
    from the scaler's event log (a fixed fleet averages its size)."""
    span_start = arrivals[0] if arrivals else 0.0
    span_end = max(
        (b.completed for b in result.breakdowns), default=span_start
    )
    scaler = pool.scaler
    if scaler is None or not scaler.events or span_end <= span_start:
        return float(len(pool.devices))
    # Walk the event log: count changes at each event time.
    count = scaler.floor
    weighted = 0.0
    t = span_start
    for event in scaler.events:
        at = min(max(event.at, span_start), span_end)
        weighted += count * (at - t)
        count += 1 if event.action == "out" else -1
        t = at
    weighted += count * (span_end - t)
    return weighted / (span_end - span_start)
