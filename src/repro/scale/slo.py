"""Explicit service-level objectives, checked live and offline.

The autoscaler and the brownout ladder both act on one question — *is
the fleet meeting its promise right now?* — so the promise must be a
first-class object, not a threshold buried in a loop.  :class:`SLO`
states it (a latency quantile within a cycle budget, a loss-rate
ceiling), :class:`SloMonitor` answers it over rolling windows of served
breakdowns and losses, and :meth:`SloMonitor.evaluate` answers it
offline for a whole :class:`~repro.runtime.serving.ServeResult` (the
form the capacity planner and the E17 benchmark verify against).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SLO:
    """A serving promise: "the ``latency_quantile`` of end-to-end
    latency stays within ``latency_budget`` cycles, and no more than
    ``max_loss_rate`` of offered requests go unanswered."

    Latency is *end-to-end from arrival* (admission queue included) —
    the only latency a client can observe — and losses count every way
    a request dies: queue-full drops, deadline/brownout sheds, and
    pool-level failures.
    """

    latency_budget: float
    latency_quantile: float = 0.95
    max_loss_rate: float = 0.01

    def __post_init__(self) -> None:
        if self.latency_budget <= 0:
            raise ValueError("latency_budget must be positive cycles")
        if not 0.0 < self.latency_quantile < 1.0:
            raise ValueError("latency_quantile must lie in (0, 1)")
        if not 0.0 <= self.max_loss_rate <= 1.0:
            raise ValueError("max_loss_rate must lie in [0, 1]")

    def describe(self) -> str:
        return (
            f"p{self.latency_quantile * 100:g} <= {self.latency_budget:g} "
            f"cycles, loss <= {self.max_loss_rate:.2%}"
        )


@dataclass(frozen=True)
class SloStatus:
    """One verdict: the SLO checked against a window (or a whole run)."""

    at: float
    #: Observed latency at the SLO's quantile; ``None`` when the window
    #: holds no served requests yet.
    latency: float | None
    loss_rate: float
    served: int
    losses: int
    latency_ok: bool
    loss_ok: bool

    @property
    def ok(self) -> bool:
        return self.latency_ok and self.loss_ok

    def pressure(self, slo: SLO) -> float:
        """How close the window is to the latency budget: observed
        quantile / budget.  > 1 means the SLO is being violated; the
        ladder climbs on sustained pressure above 1 and descends when
        it falls comfortably below."""
        if self.latency is None:
            return 0.0
        return self.latency / slo.latency_budget


def quantile(values, q: float) -> float:
    """The repo-standard sample quantile (matches ``Summary``'s
    percentiles: linear interpolation)."""
    return float(np.percentile(np.asarray(values, dtype=float), q * 100.0))


class SloMonitor:
    """Rolling SLO verdicts from live serving signals.

    Fed by the :class:`~repro.scale.controller.ScaleController` hooks:
    every served request contributes its end-to-end latency, every
    refusal contributes a loss mark.  ``status(at)`` checks the SLO
    against the samples of the trailing ``horizon`` cycles — a *time*
    window, not a count window, so a browned-out server (few requests
    admitted) recovers its verdict as fast as a busy one: stale bad
    samples age out by the clock, they are not held hostage waiting
    for fresh traffic to push them out.
    """

    def __init__(
        self,
        slo: SLO,
        *,
        horizon: float = 40_000.0,
        min_samples: int = 12,
    ):
        if horizon <= 0:
            raise ValueError("horizon must be positive cycles")
        if min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        self.slo = slo
        self.horizon = horizon
        self.min_samples = min_samples
        self._served: deque[tuple[float, float]] = deque()  # (at, latency)
        self._losses: deque[float] = deque()  # loss times
        self.observed = 0
        self.lost = 0

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------
    def record_served(self, end_to_end: float, at: float) -> None:
        self._served.append((float(at), float(end_to_end)))
        self.observed += 1

    def record_loss(self, at: float) -> None:
        self._losses.append(float(at))
        self.observed += 1
        self.lost += 1

    def _prune(self, at: float) -> None:
        cutoff = at - self.horizon
        while self._served and self._served[0][0] < cutoff:
            self._served.popleft()
        while self._losses and self._losses[0] < cutoff:
            self._losses.popleft()

    # ------------------------------------------------------------------
    # Verdicts
    # ------------------------------------------------------------------
    def status(self, at: float) -> SloStatus:
        """The SLO checked against the trailing-``horizon`` window.

        Until ``min_samples`` latencies populate the window the latency
        verdict abstains (reports OK): a two-request window would make
        the ladder flap on startup noise, which is exactly what its
        hysteresis exists to prevent.
        """
        self._prune(at)
        served = len(self._served)
        losses = len(self._losses)
        finished = served + losses
        loss_rate = losses / finished if finished else 0.0
        lat = None
        if served:
            lat = quantile([s[1] for s in self._served], self.slo.latency_quantile)
        latency_ok = (
            lat <= self.slo.latency_budget if served >= self.min_samples else True
        )
        return SloStatus(
            at=at,
            latency=lat,
            loss_rate=loss_rate,
            served=served,
            losses=losses,
            latency_ok=latency_ok,
            loss_ok=loss_rate <= self.slo.max_loss_rate,
        )

    def evaluate(self, result) -> SloStatus:
        """Offline verdict over a whole
        :class:`~repro.runtime.serving.ServeResult` — the form the E17
        benchmark asserts and the capacity planner validates against."""
        latencies = [b.end_to_end for b in result.breakdowns]
        at = max((b.completed for b in result.breakdowns), default=0.0)
        lat = quantile(latencies, self.slo.latency_quantile) if latencies else None
        loss_rate = result.loss_rate
        return SloStatus(
            at=at,
            latency=lat,
            loss_rate=loss_rate,
            served=len(latencies),
            losses=result.losses,
            latency_ok=lat is None or lat <= self.slo.latency_budget,
            loss_ok=loss_rate <= self.slo.max_loss_rate,
        )
