"""SLO-guarded autoscaling: fleet membership as a control loop.

The autoscaler closes the loop the ROADMAP left open: from observed
serving signals (SLO verdicts, admission-queue depth, breaker states,
drift) to :meth:`~repro.runtime.pool.DevicePool.add_device` /
:meth:`~repro.runtime.pool.DevicePool.remove_device` calls.  Three
design rules keep it from thrashing:

* **Hysteresis** — scaling needs a *streak* of pressure (or calm)
  verdicts, not one bad sample.
* **Cooldown** — after any scale event the scaler sits out a fixed
  span of cycles, so one burst cannot trigger a step per arrival.
* **Hard floor** — the scaler only ever removes devices *it added*;
  the base fleet is untouchable, so a flapping fault can never shrink
  the pool below its provisioned size.

And the paper's thesis rule: a candidate device is **priced through
its Petri-net interface before it joins**.  Scale-out batch-evaluates
every template against a rolling sample of live requests
(:meth:`~repro.runtime.pool.PooledDevice.price_batch`, one engine pass
per candidate) and admits the one with the best predicted service per
unit cost — capacity is bought by prediction, not by guesswork.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field


@dataclass(frozen=True)
class DeviceTemplate:
    """A device the autoscaler (or planner) can instantiate.

    ``build(name)`` must return a fresh
    :class:`~repro.runtime.pool.PooledDevice` whose pricing interface
    is live — it is batch-evaluated before the device is admitted.
    ``cost`` is the relative price the planner minimizes and the
    scaler's value-for-money scoring divides by.
    """

    kind: str
    cost: float
    build: Callable[[str], object]


@dataclass(frozen=True)
class ScalePolicy:
    """Thresholds and guards of the scaling loop."""

    #: Queue depth / queue limit at or above which an observation
    #: counts as pressure even when the SLO still holds (leading
    #: indicator: the queue fills before the tail blows).
    scale_out_queue_frac: float = 0.5
    #: Queue fraction at or below which an observation counts as calm.
    scale_in_queue_frac: float = 0.05
    #: Consecutive pressure observations before scaling out.
    scale_out_after: int = 2
    #: Consecutive calm observations before scaling in.  Larger than
    #: ``scale_out_after``: adding capacity is urgent, removing it is
    #: housekeeping.
    scale_in_after: int = 8
    #: Minimum cycles between scale events.
    cooldown: float = 50_000.0
    #: Ceiling on total pool size (base fleet + scaled devices).
    max_devices: int = 8
    #: How many recent live requests the candidate pricing batch uses.
    pricing_sample: int = 16
    #: Scale-in safety margin: a device is removed only if the
    #: *remaining* fleet's interface-predicted utilization at the
    #: observed arrival rate stays at or below this — capacity is
    #: released by prediction, exactly as it was bought.
    scale_in_rho: float = 0.6

    def __post_init__(self) -> None:
        if not 0.0 <= self.scale_in_queue_frac <= self.scale_out_queue_frac <= 1.0:
            raise ValueError(
                "need 0 <= scale_in_queue_frac <= scale_out_queue_frac <= 1"
            )
        if self.scale_out_after < 1 or self.scale_in_after < 1:
            raise ValueError("scale_out_after and scale_in_after must be >= 1")
        if self.cooldown < 0:
            raise ValueError("cooldown must be non-negative")
        if self.max_devices < 1:
            raise ValueError("max_devices must be >= 1")
        if self.pricing_sample < 1:
            raise ValueError("pricing_sample must be >= 1")
        if not 0.0 < self.scale_in_rho < 1.0:
            raise ValueError("scale_in_rho must lie in (0, 1)")


@dataclass(frozen=True)
class ScaleEvent:
    """One membership change (or a considered-and-refused one)."""

    at: float
    action: str  # "out" | "in"
    device: str
    kind: str
    reason: str
    #: Mean interface-predicted service cycles of the pricing batch on
    #: the admitted candidate (scale-out only).
    predicted_service: float | None = None
    #: kind -> mean predicted service, for every candidate scored.
    candidate_scores: dict = field(default_factory=dict)


class Autoscaler:
    """The membership control loop for one :class:`DevicePool`.

    Fed by the :class:`~repro.scale.controller.ScaleController`:
    ``note_request`` keeps the rolling pricing sample,
    ``update(now, status, queue_frac)`` runs one decision step.
    """

    def __init__(
        self,
        pool,
        templates: Sequence[DeviceTemplate],
        policy: ScalePolicy | None = None,
        *,
        obs=None,
    ):
        if not templates:
            raise ValueError("autoscaler needs at least one device template")
        self.pool = pool
        self.templates = list(templates)
        self.policy = policy or ScalePolicy()
        self.obs = obs if obs is not None else getattr(pool, "obs", None)
        self._tracer = getattr(self.obs, "tracer", None)
        self._metrics = getattr(self.obs, "metrics", None)
        self._tsdb = getattr(self.obs, "tsdb", None)
        #: Names of devices this scaler added — the only ones it may
        #: remove.  The base fleet is the hard floor.
        self.added: list[str] = []
        self.events: list[ScaleEvent] = []
        self.floor = len(pool.devices)
        self._sample: deque = deque(maxlen=self.policy.pricing_sample)
        self._completions: deque[float] = deque(maxlen=32)
        self._pressure_streak = 0
        self._calm_streak = 0
        self._last_event_at = -float("inf")
        self._spawned = 0
        pool.scaler = self

    # ------------------------------------------------------------------
    # Signals
    # ------------------------------------------------------------------
    def note_request(self, request, completed: float | None = None) -> None:
        """Feed one live request into the candidate-pricing sample (and
        its completion time into the arrival-rate estimate)."""
        self._sample.append(request)
        if completed is not None:
            self._completions.append(completed)

    def _observed_rate(self) -> float | None:
        """Recent request throughput (requests/cycle), from completion
        timestamps.  ``None`` until enough history accumulates."""
        if len(self._completions) < 8:
            return None
        span = self._completions[-1] - self._completions[0]
        if span <= 0:
            return None
        return (len(self._completions) - 1) / span

    def _breaker_pressure(self, now: float) -> float:
        """Fraction of the fleet whose breakers refuse calls at ``now``."""
        down = sum(not d.available(now) for d in self.pool.devices)
        return down / len(self.pool.devices)

    def _drifting(self) -> bool:
        observatory = getattr(self.obs, "observatory", None)
        if observatory is None:
            return False
        pooled = {d.name for d in self.pool.devices}
        return any(dev in pooled for dev, _ in observatory.drifting_keys())

    # ------------------------------------------------------------------
    # The decision step
    # ------------------------------------------------------------------
    def update(self, now: float, status, queue_frac: float) -> ScaleEvent | None:
        """One control step: classify the moment, advance the streaks,
        maybe scale.  Returns the event if membership changed."""
        pressure = (
            not status.ok
            or queue_frac >= self.policy.scale_out_queue_frac
            or self._breaker_pressure(now) >= 0.5
            or self._drifting()
        )
        # Calm deliberately ignores breaker state: a tripped base
        # device parks its breaker open for its whole recovery span,
        # and holding surplus capacity hostage to that timer would
        # inflate the fleet long after the queue has drained.
        calm = status.ok and queue_frac <= self.policy.scale_in_queue_frac
        if pressure:
            self._pressure_streak += 1
            self._calm_streak = 0
        elif calm:
            self._calm_streak += 1
            self._pressure_streak = 0
        else:  # in between: decay both, move nothing
            self._pressure_streak = 0
            self._calm_streak = 0

        if now - self._last_event_at < self.policy.cooldown:
            return None
        if (
            self._pressure_streak >= self.policy.scale_out_after
            and len(self.pool.devices) < self.policy.max_devices
        ):
            event = self._scale_out(now)
            if event is not None:
                self._pressure_streak = 0
            return event
        if self._calm_streak >= self.policy.scale_in_after and self.added:
            event = self._scale_in(now)
            if event is not None:
                self._calm_streak = 0
            return event
        return None

    def _scale_out(self, now: float) -> ScaleEvent | None:
        """Price every template against the live sample; admit the best
        predicted-service-per-cost candidate."""
        sample = list(self._sample)
        if not sample:
            return None  # nothing observed yet: nothing to price against
        scored: list[tuple[float, float, DeviceTemplate, object]] = []
        scores: dict[str, float] = {}
        for template in self.templates:
            name = f"{template.kind}-s{self._spawned}"
            candidate = template.build(name)
            # One batched engine pass; busy_until == now on a fresh
            # device, so this is pure predicted service + overhead.
            predicted = candidate.price_batch(sample, now)
            mean_service = sum(p - now for p in predicted) / len(predicted)
            scores[template.kind] = mean_service
            scored.append((mean_service, template.cost, template, candidate))
        # Fastest predicted service wins, cost breaks ties: the live
        # loop's job is restoring the SLO, and the capacity planner —
        # not a moment of pressure — is where cost gets optimized.
        scored.sort(key=lambda s: (s[0], s[1]))
        mean_service, _, template, candidate = scored[0]
        self.pool.add_device(candidate)
        self.added.append(candidate.name)
        self._spawned += 1
        event = ScaleEvent(
            at=now,
            action="out",
            device=candidate.name,
            kind=template.kind,
            reason="slo_pressure",
            predicted_service=mean_service,
            candidate_scores=scores,
        )
        self._record(event)
        return event

    def _mean_service(self, pooled, now: float, sample) -> float:
        """Interface-predicted mean service of the sample on one device
        (backlog excluded) — one batched engine pass, cache-backed."""
        start = pooled.busy_until(now)
        predicted = pooled.price_batch(sample, now)
        return sum(p - start for p in predicted) / len(predicted)

    def _removal_safe(self, name: str, now: float) -> bool:
        """Would the fleet minus ``name`` still clear the observed
        arrival rate at ``scale_in_rho`` or below?  Capacity is the sum
        of 1/mean-predicted-service over the remaining devices whose
        breakers currently admit — released by prediction, exactly as
        scale-out bought it.  Unknown rate or unpriceable remainder
        counts as unsafe."""
        rate = self._observed_rate()
        sample = list(self._sample)
        if rate is None or not sample:
            return False
        capacity = 0.0
        for d in self.pool.devices:
            if d.name == name or not d.available(now):
                continue
            mean_service = self._mean_service(d, now, sample)
            if mean_service > 0:
                capacity += 1.0 / mean_service
        if capacity <= 0:
            return False
        return rate / capacity <= self.policy.scale_in_rho

    def _scale_in(self, now: float) -> ScaleEvent | None:
        """Retire one scaler-added device — never a base-fleet member,
        never one the healer is mid-refit on (its shadow validation
        needs the live traffic; see
        :meth:`~repro.heal.HealingManager.busy_devices`), and never
        when the remaining fleet's predicted capacity could not carry
        the observed load (:meth:`_removal_safe`)."""
        busy = (
            self.pool.healer.busy_devices()
            if self.pool.healer is not None
            else set()
        )
        removable = [n for n in self.added if n not in busy]
        if not removable:
            return None  # every scaled device is mid-heal: pause scale-in
        # Retire the idlest of the removable (fewest in flight).
        name = min(
            removable, key=lambda n: self.pool.device(n).outstanding(now)
        )
        if not self._removal_safe(name, now):
            return None
        self.pool.remove_device(name)
        self.added.remove(name)
        kind = name.rsplit("-s", 1)[0]
        event = ScaleEvent(
            at=now, action="in", device=name, kind=kind, reason="sustained_calm"
        )
        self._record(event)
        return event

    def _record(self, event: ScaleEvent) -> None:
        self.events.append(event)
        self._last_event_at = event.at
        if self._tracer is not None:
            self._tracer.instant(
                f"scale:{event.action}",
                event.at,
                cat="runtime.scale",
                tid="autoscaler",
                args={
                    "device": event.device,
                    "kind": event.kind,
                    "reason": event.reason,
                },
            )
        if self._metrics is not None:
            self._metrics.counter(
                "autoscaler_events_total", action=event.action, kind=event.kind
            ).inc()
            self._metrics.gauge("pool_devices").set(len(self.pool.devices))
        if self._tsdb is not None:
            self._tsdb.event(
                f"scale:{event.action}",
                event.at,
                device=event.device,
                kind=event.kind,
                reason=event.reason,
            )
            self._tsdb.record(
                "autoscaler_devices", event.at, len(self.pool.devices)
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def scale_outs(self) -> int:
        return sum(e.action == "out" for e in self.events)

    def scale_ins(self) -> int:
        return sum(e.action == "in" for e in self.events)

    def snapshot(self) -> dict:
        return {
            "devices": len(self.pool.devices),
            "floor": self.floor,
            "added": list(self.added),
            "scale_outs": self.scale_outs(),
            "scale_ins": self.scale_ins(),
            "events": [
                {
                    "at": e.at,
                    "action": e.action,
                    "device": e.device,
                    "kind": e.kind,
                    "reason": e.reason,
                    "predicted_service": e.predicted_service,
                }
                for e in self.events
            ],
        }
