"""Brownout: a degradation ladder climbed under sustained SLO pressure.

When the fleet cannot meet its SLO, the worst response is to keep
serving everyone badly.  Brownout trades *features* for *latency* in
explicit, ordered, reversible rungs:

====  ====================  ============================================
rung  name                  what the fleet gives up
====  ====================  ============================================
0     ``normal``            nothing
1     ``no_hedging``        mid-flight failures are no longer
                            re-dispatched — a failed call fails instead
                            of burning a second device
2     ``shed_low``          the lowest-priority class is refused at
                            admission (``priority_shed``)
3     ``coarse_pricing``    routing prices from the per-size-class
                            cache instead of per-request interface
                            evaluation — zero engine cycles per decision
4     ``reject_admission``  everything but the protected class is
                            refused at the door (``admission_rejected``)
====  ====================  ============================================

Each rung *includes* the ones below it.  The ladder climbs one rung per
``climb_after`` consecutive violating verdicts and descends one rung
per ``descend_after`` consecutive healthy ones — asymmetric on purpose
(fast to protect, slow to relax), so a flapping fault cannot make the
server oscillate between full service and rejection.  Every transition
is emitted as an ``obs`` instant + counter and is visible in
``pool.snapshot()["brownout"]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

from repro.runtime.serving import (
    REASON_ADMISSION_REJECTED,
    REASON_PRIORITY_SHED,
)

from .slo import SloStatus


class Rung(IntEnum):
    """The ladder's rungs, in climbing order."""

    NORMAL = 0
    NO_HEDGING = 1
    SHED_LOW = 2
    COARSE_PRICING = 3
    REJECT_ADMISSION = 4

    @property
    def label(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class BrownoutPolicy:
    """When to climb and descend, and which classes the rungs touch."""

    #: Consecutive violating verdicts before climbing one rung.
    climb_after: int = 3
    #: Consecutive healthy verdicts before descending one rung.  Kept
    #: larger than ``climb_after``: recovery must be *sustained*.
    descend_after: int = 6
    #: Priority class refused from rung ``SHED_LOW`` up.
    low_priority: str = "low"
    #: The only class still admitted at ``REJECT_ADMISSION``.
    protected_priority: str = "high"

    def __post_init__(self) -> None:
        if self.climb_after < 1 or self.descend_after < 1:
            raise ValueError("climb_after and descend_after must be >= 1")


@dataclass(frozen=True)
class RungTransition:
    """One recorded ladder move."""

    at: float
    direction: str  # "climb" or "descend"
    from_rung: Rung
    to_rung: Rung


class DegradationLadder:
    """The live brownout state machine for one pool.

    ``update(status)`` moves the rung; the ladder immediately applies
    the rung's side effects to the pool (hedging switch, coarse
    pricing) and answers the server's admission questions for the
    class-shedding rungs via :meth:`admission_reason`.
    """

    def __init__(self, pool, policy: BrownoutPolicy | None = None, *, obs=None):
        self.pool = pool
        self.policy = policy or BrownoutPolicy()
        self.obs = obs if obs is not None else getattr(pool, "obs", None)
        self._tracer = getattr(self.obs, "tracer", None)
        self._metrics = getattr(self.obs, "metrics", None)
        self._tsdb = getattr(self.obs, "tsdb", None)
        self.rung = Rung.NORMAL
        self.transitions: list[RungTransition] = []
        self._bad_streak = 0
        self._good_streak = 0
        pool.ladder = self
        self._apply()

    # ------------------------------------------------------------------
    # State machine
    # ------------------------------------------------------------------
    def update(self, status: SloStatus) -> Rung:
        """Feed one SLO verdict; returns the (possibly new) rung."""
        if status.ok:
            self._good_streak += 1
            self._bad_streak = 0
            if (
                self._good_streak >= self.policy.descend_after
                and self.rung > Rung.NORMAL
            ):
                self._move(Rung(self.rung - 1), "descend", status.at)
                self._good_streak = 0
        else:
            self._bad_streak += 1
            self._good_streak = 0
            if (
                self._bad_streak >= self.policy.climb_after
                and self.rung < Rung.REJECT_ADMISSION
            ):
                self._move(Rung(self.rung + 1), "climb", status.at)
                self._bad_streak = 0
        return self.rung

    def _move(self, to: Rung, direction: str, at: float) -> None:
        transition = RungTransition(at, direction, self.rung, to)
        self.transitions.append(transition)
        self.rung = to
        self._apply()
        if self._tracer is not None:
            self._tracer.instant(
                f"brownout:{direction}",
                at,
                cat="runtime.scale",
                tid="brownout",
                args={
                    "from": transition.from_rung.label,
                    "to": to.label,
                    "rung": int(to),
                },
            )
        if self._metrics is not None:
            self._metrics.counter(
                "brownout_transitions_total", direction=direction, rung=to.label
            ).inc()
            self._metrics.gauge("brownout_rung").set(int(self.rung))
        if self._tsdb is not None:
            self._tsdb.event(
                f"brownout:{direction}",
                at,
                from_rung=transition.from_rung.label,
                to_rung=to.label,
                rung=int(to),
            )
            self._tsdb.record("brownout_rung", at, int(to))

    def _apply(self) -> None:
        """Project the rung onto the pool's switches.  Idempotent."""
        self.pool.hedging_enabled = self.rung < Rung.NO_HEDGING
        self.pool.set_coarse_pricing(self.rung >= Rung.COARSE_PRICING)

    # ------------------------------------------------------------------
    # Admission (consumed by the server's controller hooks)
    # ------------------------------------------------------------------
    def admission_reason(self, priority: str) -> str | None:
        """Why a request of ``priority`` is refused at the current rung
        (``None`` = admitted)."""
        if (
            self.rung >= Rung.REJECT_ADMISSION
            and priority != self.policy.protected_priority
        ):
            return REASON_ADMISSION_REJECTED
        if self.rung >= Rung.SHED_LOW and priority == self.policy.low_priority:
            return REASON_PRIORITY_SHED
        return None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def climbed(self) -> int:
        return sum(t.direction == "climb" for t in self.transitions)

    def descended(self) -> int:
        return sum(t.direction == "descend" for t in self.transitions)

    def snapshot(self) -> dict:
        return {
            "rung": int(self.rung),
            "rung_label": self.rung.label,
            "hedging_enabled": self.pool.hedging_enabled,
            "transitions": [
                {
                    "at": t.at,
                    "direction": t.direction,
                    "from": t.from_rung.label,
                    "to": t.to_rung.label,
                }
                for t in self.transitions
            ],
            "climbs": self.climbed(),
            "descents": self.descended(),
        }
