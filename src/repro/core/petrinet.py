"""Petri-net performance interfaces (the paper's third representation).

:class:`PetriNetInterface` adapts a :class:`repro.petri.PetriNet` into
the common :class:`~repro.core.interface.PerformanceInterface` contract:
it knows how to turn one workload item into tokens (``tokenize``), run
the net, and read a latency out of the completions.

The net itself is the shippable artifact — authors provide it as
``.pnet`` text (kept in ``pnet_text`` for the Table 1 complexity
metric) or as a programmatic factory.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Generic, TypeVar

from repro.petri import (
    BatchEvaluator,
    PetriNet,
    SimResult,
    SimulationError,
    default_engine,
    make_simulator,
)

from .interface import PerformanceInterface

if TYPE_CHECKING:
    from repro.perf import EvalCache

ItemT = TypeVar("ItemT")


@dataclass(frozen=True)
class Injection:
    """One token to feed into the net for a workload item."""

    place: str
    payload: Any
    at: float = 0.0


class PetriNetInterface(PerformanceInterface[ItemT], Generic[ItemT]):
    """Runs a performance-IR net over workload items.

    Args:
        accelerator: Name of the accelerator described.
        net_factory: Builds the net (called once; the simulator resets
            marking between runs).
        tokenize: Maps a workload item to the tokens to inject.
        sink: Place whose completions mark finished work.
        epilogue: Fixed cycles appended after the last completion
            (drain/flush the net does not model).
        expected_completions: How many sink completions one item should
            produce.  Defaults to the number of injected tokens; nets
            with resident bookkeeping tokens (mutexes, credits) override
            this, since those legitimately remain after quiescence.
        engine: Simulation engine — ``"auto"`` (compiled when supported,
            with a documented fallback), ``"reference"``, or
            ``"compiled"``.  ``None`` defers to the
            ``REPRO_PETRI_ENGINE`` environment variable / the default.
        cache: Optional :class:`repro.perf.EvalCache`: identical
            (net, injections) evaluations are served from the cache
            instead of re-simulated.  May also be attached later by
            assigning to ``self.cache``.
        tracer: Optional :class:`repro.obs.Tracer`: simulations emit
            per-firing spans into it (see :mod:`repro.petri.simulate`).
            Cache *hits* skip the simulation entirely and therefore
            emit no spans — the trace shows work actually done.
    """

    representation = "petri-net"

    def __init__(
        self,
        accelerator: str,
        net_factory: Callable[[], PetriNet],
        tokenize: Callable[[ItemT], Sequence[Injection]],
        *,
        sink: str = "out",
        epilogue: float = 0.0,
        pnet_text: str | None = None,
        expected_completions: Callable[[ItemT], int] | None = None,
        engine: str | None = None,
        cache: "EvalCache | None" = None,
        tracer=None,
    ):
        self.accelerator = accelerator
        self.net = net_factory()
        self.tokenize = tokenize
        self.sink = sink
        self.epilogue = epilogue
        self.pnet_text = pnet_text
        self._expected = expected_completions
        self.engine = engine
        self.cache = cache
        self.tracer = tracer
        # Lazily-built batch evaluator (False = not yet tried,
        # None = tried and unsupported).  Built only when a batch
        # actually misses the cache, so a warm-cache process never
        # constructs an engine at all.
        self._batch: BatchEvaluator | None | bool = False

    def _run(self, injections: Sequence[Injection], expected: int) -> SimResult:
        def compute() -> SimResult:
            sim = make_simulator(
                self.net, sinks=(self.sink,), engine=self.engine, tracer=self.tracer
            )
            for inj in injections:
                sim.inject(inj.place, inj.payload, at=inj.at)
            result = sim.run()
            done = len(result.completions[self.sink])
            if done != expected:
                raise RuntimeError(
                    f"net {self.net.name!r} completed {done}/{expected} tokens; "
                    f"stuck marking: { {p: n for p, n in self.net.marking().items() if n} }"
                )
            return result

        if self.cache is None:
            return compute()
        features = (expected, [(i.place, i.payload, i.at) for i in injections])
        return self.cache.get_or_compute(self.net, features, compute)

    def simulate(self, item: ItemT) -> SimResult:
        """Run the net on one item and return the raw result."""
        injections = self.tokenize(item)
        expected = (
            self._expected(item) if self._expected is not None else len(injections)
        )
        return self._run(injections, expected)

    def latency(self, item: ItemT) -> float:
        result = self.simulate(item)
        return result.makespan() + self.epilogue

    # ------------------------------------------------------------------
    # Batched evaluation
    # ------------------------------------------------------------------
    @property
    def batch_evaluator(self) -> BatchEvaluator | None:
        """The batch engine this interface has built, if any (exposes
        ``engine`` / ``items_codegen`` / ``items_columnar`` for tests,
        benches, and reports)."""
        return self._batch if isinstance(self._batch, BatchEvaluator) else None

    def _batch_engine(self) -> BatchEvaluator | None:
        if self._batch is False:
            try:
                self._batch = BatchEvaluator(self.net, (self.sink,))
            except SimulationError:
                self._batch = None
        return self._batch if isinstance(self._batch, BatchEvaluator) else None

    def evaluate_batch(self, items: Sequence[ItemT]) -> list[float]:
        """Latency for every item through the batch engine.

        The net is lowered once and all cache misses run in a single
        pass — bit-identical per item to the compiled engine (enforced
        by ``repro.petri.differential``).  Falls back to the per-item
        path when the engine choice is pinned (``engine=`` or
        ``$REPRO_PETRI_ENGINE`` set to ``reference``/``compiled``), when
        a tracer is attached (the batch engines emit no spans, and a
        trace must show the work done), or when the net uses features
        the compiled form does not support.

        With a cache attached, makespans are cached under a dedicated
        ``("makespan", ...)`` feature key whose values are plain floats
        — so they spill to a persistent tier and a warm process answers
        the whole batch with zero engine invocations.
        """
        engine = self.engine if self.engine is not None else default_engine()
        if engine != "auto" or self.tracer is not None:
            return [self.latency(item) for item in items]
        injections = [self.tokenize(item) for item in items]
        expecteds = [
            self._expected(item) if self._expected is not None else len(injs)
            for item, injs in zip(items, injections)
        ]
        out: list[float | None] = [None] * len(items)
        misses: list[int] = []
        feats: list[Any] = [None] * len(items)
        if self.cache is not None:
            for i, injs in enumerate(injections):
                feats[i] = (
                    "makespan",
                    expecteds[i],
                    [(inj.place, inj.payload, inj.at) for inj in injs],
                )
                hit = self.cache.get(self.net, feats[i])
                if hit is self.cache.MISS:
                    misses.append(i)
                else:
                    out[i] = hit + self.epilogue
        else:
            misses = list(range(len(items)))
        if misses:
            evaluator = self._batch_engine()
            if evaluator is None:
                # Unsupported net: the per-item path (with its own
                # reference-engine fallback) handles these items.
                for i in misses:
                    out[i] = self.latency(items[i])
                return out  # type: ignore[return-value]
            results = evaluator.evaluate([injections[i] for i in misses])
            for i, res in zip(misses, results):
                done = res.counts.get(self.sink, 0)
                if done != expecteds[i]:
                    # Re-run the stuck item per-item: _run raises the
                    # canonical completed-n/m error with the marking.
                    res_full = self._run(injections[i], expecteds[i])
                    out[i] = res_full.makespan() + self.epilogue
                    continue
                if self.cache is not None and feats[i] is not None:
                    self.cache.put(self.net, feats[i], res.makespan)
                out[i] = res.makespan + self.epilogue
        return out  # type: ignore[return-value]

    def describe(self) -> str:
        n_places = len(self.net.places)
        n_trans = len(self.net.transitions)
        return (
            f"petri-net performance interface for {self.accelerator} "
            f"({n_places} places, {n_trans} transitions)"
        )
