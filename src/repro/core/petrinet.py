"""Petri-net performance interfaces (the paper's third representation).

:class:`PetriNetInterface` adapts a :class:`repro.petri.PetriNet` into
the common :class:`~repro.core.interface.PerformanceInterface` contract:
it knows how to turn one workload item into tokens (``tokenize``), run
the net, and read a latency out of the completions.

The net itself is the shippable artifact — authors provide it as
``.pnet`` text (kept in ``pnet_text`` for the Table 1 complexity
metric) or as a programmatic factory.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Generic, TypeVar

from repro.petri import PetriNet, SimResult, make_simulator

from .interface import PerformanceInterface

if TYPE_CHECKING:
    from repro.perf import EvalCache

ItemT = TypeVar("ItemT")


@dataclass(frozen=True)
class Injection:
    """One token to feed into the net for a workload item."""

    place: str
    payload: Any
    at: float = 0.0


class PetriNetInterface(PerformanceInterface[ItemT], Generic[ItemT]):
    """Runs a performance-IR net over workload items.

    Args:
        accelerator: Name of the accelerator described.
        net_factory: Builds the net (called once; the simulator resets
            marking between runs).
        tokenize: Maps a workload item to the tokens to inject.
        sink: Place whose completions mark finished work.
        epilogue: Fixed cycles appended after the last completion
            (drain/flush the net does not model).
        expected_completions: How many sink completions one item should
            produce.  Defaults to the number of injected tokens; nets
            with resident bookkeeping tokens (mutexes, credits) override
            this, since those legitimately remain after quiescence.
        engine: Simulation engine — ``"auto"`` (compiled when supported,
            with a documented fallback), ``"reference"``, or
            ``"compiled"``.  ``None`` defers to the
            ``REPRO_PETRI_ENGINE`` environment variable / the default.
        cache: Optional :class:`repro.perf.EvalCache`: identical
            (net, injections) evaluations are served from the cache
            instead of re-simulated.  May also be attached later by
            assigning to ``self.cache``.
        tracer: Optional :class:`repro.obs.Tracer`: simulations emit
            per-firing spans into it (see :mod:`repro.petri.simulate`).
            Cache *hits* skip the simulation entirely and therefore
            emit no spans — the trace shows work actually done.
    """

    representation = "petri-net"

    def __init__(
        self,
        accelerator: str,
        net_factory: Callable[[], PetriNet],
        tokenize: Callable[[ItemT], Sequence[Injection]],
        *,
        sink: str = "out",
        epilogue: float = 0.0,
        pnet_text: str | None = None,
        expected_completions: Callable[[ItemT], int] | None = None,
        engine: str | None = None,
        cache: "EvalCache | None" = None,
        tracer=None,
    ):
        self.accelerator = accelerator
        self.net = net_factory()
        self.tokenize = tokenize
        self.sink = sink
        self.epilogue = epilogue
        self.pnet_text = pnet_text
        self._expected = expected_completions
        self.engine = engine
        self.cache = cache
        self.tracer = tracer

    def _run(self, injections: Sequence[Injection], expected: int) -> SimResult:
        def compute() -> SimResult:
            sim = make_simulator(
                self.net, sinks=(self.sink,), engine=self.engine, tracer=self.tracer
            )
            for inj in injections:
                sim.inject(inj.place, inj.payload, at=inj.at)
            result = sim.run()
            done = len(result.completions[self.sink])
            if done != expected:
                raise RuntimeError(
                    f"net {self.net.name!r} completed {done}/{expected} tokens; "
                    f"stuck marking: { {p: n for p, n in self.net.marking().items() if n} }"
                )
            return result

        if self.cache is None:
            return compute()
        features = (expected, [(i.place, i.payload, i.at) for i in injections])
        return self.cache.get_or_compute(self.net, features, compute)

    def simulate(self, item: ItemT) -> SimResult:
        """Run the net on one item and return the raw result."""
        injections = self.tokenize(item)
        expected = (
            self._expected(item) if self._expected is not None else len(injections)
        )
        return self._run(injections, expected)

    def latency(self, item: ItemT) -> float:
        result = self.simulate(item)
        return result.makespan() + self.epilogue

    def describe(self) -> str:
        n_places = len(self.net.places)
        n_trans = len(self.net.transitions)
        return (
            f"petri-net performance interface for {self.accelerator} "
            f"({n_places} places, {n_trans} transitions)"
        )
