"""Petri-net performance interfaces (the paper's third representation).

:class:`PetriNetInterface` adapts a :class:`repro.petri.PetriNet` into
the common :class:`~repro.core.interface.PerformanceInterface` contract:
it knows how to turn one workload item into tokens (``tokenize``), run
the net, and read a latency out of the completions.

The net itself is the shippable artifact — authors provide it as
``.pnet`` text (kept in ``pnet_text`` for the Table 1 complexity
metric) or as a programmatic factory.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Generic, TypeVar

from repro.petri import (
    BatchEvaluator,
    PetriNet,
    SimResult,
    SimulationError,
    default_engine,
    make_simulator,
)

from .interface import PerformanceInterface

if TYPE_CHECKING:
    from repro.perf import EvalCache

ItemT = TypeVar("ItemT")


@dataclass(frozen=True)
class Injection:
    """One token to feed into the net for a workload item."""

    place: str
    payload: Any
    at: float = 0.0


#: Transition-name substrings that classify a transition into the
#: ``memory`` stage under the default stage map (DRAM bursts, DMA
#: descriptor fetches, loads).  Everything else is ``compute``.
MEMORY_STAGE_HINTS = ("dram", "mem", "dma", "load", "fetch", "read")


def default_stage_map(transition_name: str) -> str:
    """Classify one transition into the attribution stage vocabulary
    (see :data:`repro.obs.attribution.STAGES`)."""
    lowered = transition_name.lower()
    if any(hint in lowered for hint in MEMORY_STAGE_HINTS):
        return "memory"
    return "compute"


@dataclass(frozen=True)
class PredictedDecomposition:
    """The interface's predicted per-stage latency split for one item.

    ``stages`` folds per-transition busy cycles into the shared stage
    vocabulary, plus the interface ``epilogue`` and an ``overlap``
    residual (negative when transitions run concurrently — their busy
    cycles then sum to *more* than the makespan; positive when tokens
    sat in places with no transition busy).  Left-to-right summation of
    ``stages`` values is **bit-identical** to :attr:`total`, which is
    itself bit-identical to ``PetriNetInterface.latency(item)`` — the
    same invariant :mod:`repro.obs.attribution` maintains on the
    observed side, so the two decompositions can be compared stage by
    stage with no float slop.
    """

    accelerator: str
    total: float  # == interface.latency(item), bit-exact
    stages: dict[str, float]  # insertion-ordered; "overlap" last
    transitions: dict[str, float]  # per-transition busy cycles


def _exact_residual(prefix: list[float], total: float) -> float:
    """Residual ``r`` with ``fold(prefix + [r]) == total`` bit-exactly
    (float addition is not associative, so the first guess can be an
    ulp off; nudge until the left-to-right fold lands).  Kept local —
    ``repro.core`` sits below ``repro.obs`` in the dependency order, so
    it cannot import the attribution module's twin."""

    def fold(values) -> float:
        acc = 0.0
        for v in values:
            acc += v
        return acc

    residual = total - fold(prefix)
    for _ in range(64):
        current = fold(prefix) + residual
        if current == total:
            return residual
        residual += total - current
    return residual


class PetriNetInterface(PerformanceInterface[ItemT], Generic[ItemT]):
    """Runs a performance-IR net over workload items.

    Args:
        accelerator: Name of the accelerator described.
        net_factory: Builds the net (called once; the simulator resets
            marking between runs).
        tokenize: Maps a workload item to the tokens to inject.
        sink: Place whose completions mark finished work.
        epilogue: Fixed cycles appended after the last completion
            (drain/flush the net does not model).
        expected_completions: How many sink completions one item should
            produce.  Defaults to the number of injected tokens; nets
            with resident bookkeeping tokens (mutexes, credits) override
            this, since those legitimately remain after quiescence.
        engine: Simulation engine — ``"auto"`` (compiled when supported,
            with a documented fallback), ``"reference"``, or
            ``"compiled"``.  ``None`` defers to the
            ``REPRO_PETRI_ENGINE`` environment variable / the default.
        cache: Optional :class:`repro.perf.EvalCache`: identical
            (net, injections) evaluations are served from the cache
            instead of re-simulated.  May also be attached later by
            assigning to ``self.cache``.
        tracer: Optional :class:`repro.obs.Tracer`: simulations emit
            per-firing spans into it (see :mod:`repro.petri.simulate`).
            Cache *hits* skip the simulation entirely and therefore
            emit no spans — the trace shows work actually done.
    """

    representation = "petri-net"

    def __init__(
        self,
        accelerator: str,
        net_factory: Callable[[], PetriNet],
        tokenize: Callable[[ItemT], Sequence[Injection]],
        *,
        sink: str = "out",
        epilogue: float = 0.0,
        pnet_text: str | None = None,
        expected_completions: Callable[[ItemT], int] | None = None,
        engine: str | None = None,
        cache: "EvalCache | None" = None,
        tracer=None,
    ):
        self.accelerator = accelerator
        self.net = net_factory()
        self.tokenize = tokenize
        self.sink = sink
        self.epilogue = epilogue
        self.pnet_text = pnet_text
        self._expected = expected_completions
        self.engine = engine
        self.cache = cache
        self.tracer = tracer
        # Lazily-built batch evaluator (False = not yet tried,
        # None = tried and unsupported).  Built only when a batch
        # actually misses the cache, so a warm-cache process never
        # constructs an engine at all.
        self._batch: BatchEvaluator | None | bool = False

    def _run(self, injections: Sequence[Injection], expected: int) -> SimResult:
        def compute() -> SimResult:
            sim = make_simulator(
                self.net, sinks=(self.sink,), engine=self.engine, tracer=self.tracer
            )
            for inj in injections:
                sim.inject(inj.place, inj.payload, at=inj.at)
            result = sim.run()
            done = len(result.completions[self.sink])
            if done != expected:
                raise RuntimeError(
                    f"net {self.net.name!r} completed {done}/{expected} tokens; "
                    f"stuck marking: { {p: n for p, n in self.net.marking().items() if n} }"
                )
            return result

        if self.cache is None:
            return compute()
        features = (expected, [(i.place, i.payload, i.at) for i in injections])
        return self.cache.get_or_compute(self.net, features, compute)

    def simulate(self, item: ItemT) -> SimResult:
        """Run the net on one item and return the raw result."""
        injections = self.tokenize(item)
        expected = (
            self._expected(item) if self._expected is not None else len(injections)
        )
        return self._run(injections, expected)

    def latency(self, item: ItemT) -> float:
        result = self.simulate(item)
        return result.makespan() + self.epilogue

    def predict_decomposition(
        self,
        item: ItemT,
        *,
        stage_map: Callable[[str], str] | dict[str, str] | None = None,
    ) -> PredictedDecomposition:
        """Predict *where* the cycles of one item go, not just how many.

        Runs the net once (per-item engine, no tracer — decomposition
        must never perturb a live trace) and harvests each transition's
        cumulative busy-time delta, then folds the deltas into the
        attribution stage vocabulary via ``stage_map`` (a callable or
        dict over transition names; defaults to
        :func:`default_stage_map`).  The stage values fold left-to-right
        to exactly :meth:`latency`'s scalar prediction — cached under a
        dedicated ``("stages", ...)`` key (JSON-friendly, so it spills
        to the persistent cache tier like makespans do).
        """
        injections = self.tokenize(item)
        expected = (
            self._expected(item) if self._expected is not None else len(injections)
        )
        features = (
            "stages",
            expected,
            [(i.place, i.payload, i.at) for i in injections],
        )
        per_transition: dict[str, float] | None = None
        makespan = 0.0
        if self.cache is not None:
            hit = self.cache.get(self.net, features)
            if hit is not self.cache.MISS:
                makespan, pairs = hit
                per_transition = {str(n): float(c) for n, c in pairs}
        if per_transition is None:
            # The harvest needs its own simulation: latency() may be
            # answered from the makespan cache without running the net,
            # and a cache hit leaves busy_time stale.  run() resets the
            # net first, so post-run busy_time IS this run's harvest.
            sim = make_simulator(
                self.net, sinks=(self.sink,), engine=self.engine, tracer=None
            )
            for inj in injections:
                sim.inject(inj.place, inj.payload, at=inj.at)
            result = sim.run()
            done = len(result.completions[self.sink])
            if done != expected:
                raise RuntimeError(
                    f"net {self.net.name!r} completed {done}/{expected} tokens; "
                    f"stuck marking: { {p: n for p, n in self.net.marking().items() if n} }"
                )
            makespan = result.makespan()
            per_transition = {
                n: t.busy_time for n, t in self.net.transitions.items()
            }
            if self.cache is not None:
                self.cache.put(
                    self.net,
                    features,
                    [makespan, [[n, c] for n, c in per_transition.items()]],
                )
        total = makespan + self.epilogue
        if stage_map is None:
            classify: Callable[[str], str] = default_stage_map
        elif isinstance(stage_map, dict):
            classify = lambda name: stage_map.get(name, "compute")  # noqa: E731
        else:
            classify = stage_map
        folded: dict[str, float] = {"memory": 0.0, "compute": 0.0}
        for name, cycles in per_transition.items():
            stage = classify(name)
            folded[stage] = folded.get(stage, 0.0) + cycles
        folded["epilogue"] = self.epilogue
        folded["overlap"] = _exact_residual(list(folded.values()), total)
        return PredictedDecomposition(
            accelerator=self.accelerator,
            total=total,
            stages=folded,
            transitions=per_transition,
        )

    # ------------------------------------------------------------------
    # Batched evaluation
    # ------------------------------------------------------------------
    @property
    def batch_evaluator(self) -> BatchEvaluator | None:
        """The batch engine this interface has built, if any (exposes
        ``engine`` / ``items_codegen`` / ``items_columnar`` for tests,
        benches, and reports)."""
        return self._batch if isinstance(self._batch, BatchEvaluator) else None

    def _batch_engine(self) -> BatchEvaluator | None:
        if self._batch is False:
            try:
                self._batch = BatchEvaluator(self.net, (self.sink,))
            except SimulationError:
                self._batch = None
        return self._batch if isinstance(self._batch, BatchEvaluator) else None

    def evaluate_batch(self, items: Sequence[ItemT]) -> list[float]:
        """Latency for every item through the batch engine.

        The net is lowered once and all cache misses run in a single
        pass — bit-identical per item to the compiled engine (enforced
        by ``repro.petri.differential``).  Falls back to the per-item
        path when the engine choice is pinned (``engine=`` or
        ``$REPRO_PETRI_ENGINE`` set to ``reference``/``compiled``), when
        a tracer is attached (the batch engines emit no spans, and a
        trace must show the work done), or when the net uses features
        the compiled form does not support.

        With a cache attached, makespans are cached under a dedicated
        ``("makespan", ...)`` feature key whose values are plain floats
        — so they spill to a persistent tier and a warm process answers
        the whole batch with zero engine invocations.
        """
        engine = self.engine if self.engine is not None else default_engine()
        if engine != "auto" or self.tracer is not None:
            return [self.latency(item) for item in items]
        injections = [self.tokenize(item) for item in items]
        expecteds = [
            self._expected(item) if self._expected is not None else len(injs)
            for item, injs in zip(items, injections)
        ]
        out: list[float | None] = [None] * len(items)
        misses: list[int] = []
        feats: list[Any] = [None] * len(items)
        if self.cache is not None:
            for i, injs in enumerate(injections):
                feats[i] = (
                    "makespan",
                    expecteds[i],
                    [(inj.place, inj.payload, inj.at) for inj in injs],
                )
                hit = self.cache.get(self.net, feats[i])
                if hit is self.cache.MISS:
                    misses.append(i)
                else:
                    out[i] = hit + self.epilogue
        else:
            misses = list(range(len(items)))
        if misses:
            evaluator = self._batch_engine()
            if evaluator is None:
                # Unsupported net: the per-item path (with its own
                # reference-engine fallback) handles these items.
                for i in misses:
                    out[i] = self.latency(items[i])
                return out  # type: ignore[return-value]
            results = evaluator.evaluate([injections[i] for i in misses])
            for i, res in zip(misses, results):
                done = res.counts.get(self.sink, 0)
                if done != expecteds[i]:
                    # Re-run the stuck item per-item: _run raises the
                    # canonical completed-n/m error with the marking.
                    res_full = self._run(injections[i], expecteds[i])
                    out[i] = res_full.makespan() + self.epilogue
                    continue
                if self.cache is not None and feats[i] is not None:
                    self.cache.put(self.net, feats[i], res.makespan)
                out[i] = res.makespan + self.epilogue
        return out  # type: ignore[return-value]

    def describe(self) -> str:
        n_places = len(self.net.places)
        n_trans = len(self.net.transitions)
        return (
            f"petri-net performance interface for {self.accelerator} "
            f"({n_places} places, {n_trans} transitions)"
        )
