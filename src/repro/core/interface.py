"""The performance-interface abstraction.

A performance interface answers, for a *workload item* (an image, an
RPC message, an instruction sequence), the two questions the paper
argues developers must be able to ask of any accelerator:

* ``latency(item)`` — predicted cycles to process ``item`` in isolation.
* ``throughput(item)`` — predicted sustained items/cycle when streaming
  items like ``item``.

Interfaces may also expose *bounds* when a point prediction is not
honest (the paper's Protoacc latency interface does exactly this).

The three concrete representations live in sibling modules:
:mod:`repro.core.nl` (English), :mod:`repro.core.program` (executable
Python), and :mod:`repro.core.petrinet` (the Petri-net IR).
"""

from __future__ import annotations

import abc
from collections.abc import Sequence
from dataclasses import dataclass
from typing import Generic, TypeVar

ItemT = TypeVar("ItemT")


@dataclass(frozen=True)
class LatencyBounds:
    """A guaranteed latency interval ``[lower, upper]`` in cycles."""

    lower: float
    upper: float

    def __post_init__(self) -> None:
        if self.lower > self.upper:
            raise ValueError(f"lower bound {self.lower} exceeds upper {self.upper}")

    def contains(self, value: float, slack: float = 0.0) -> bool:
        """True when ``value`` lies inside the interval (± relative slack)."""
        lo = self.lower * (1 - slack)
        hi = self.upper * (1 + slack)
        return lo <= value <= hi

    @property
    def width(self) -> float:
        return self.upper - self.lower

    @property
    def midpoint(self) -> float:
        return (self.lower + self.upper) / 2


class PerformanceInterface(abc.ABC, Generic[ItemT]):
    """Base class for all interface representations.

    Attributes:
        accelerator: Name of the accelerator this interface describes.
        representation: One of ``"english"``, ``"program"``,
            ``"petri-net"`` — the paper's three candidates.
    """

    accelerator: str = "unknown"
    representation: str = "abstract"

    @abc.abstractmethod
    def latency(self, item: ItemT) -> float:
        """Predicted latency, in cycles, to process ``item`` in isolation."""

    def evaluate_batch(self, items: "Sequence[ItemT]") -> list[float]:
        """Predicted latency for every item, in input order.

        Semantically ``[self.latency(i) for i in items]`` — and that is
        the default — but representations with a cheaper whole-matrix
        path override it (the Petri-net interface lowers its net once
        and runs a batch engine); sweep-shaped consumers
        (:func:`repro.core.validation.validate_interface`,
        :class:`repro.perf.sweep.SweepRunner`, autotuners, pool pricing)
        call this instead of looping ``latency`` so they pick the fast
        path up automatically.
        """
        return [self.latency(item) for item in items]

    def throughput(self, item: ItemT) -> float:
        """Predicted sustained throughput (items/cycle) for a stream of
        items like ``item``.  Defaults to ``1 / latency`` — correct only
        for accelerators with no cross-item pipelining.
        """
        lat = self.latency(item)
        if lat <= 0:
            raise ValueError("latency must be positive to invert into throughput")
        return 1.0 / lat

    def latency_bounds(self, item: ItemT) -> LatencyBounds:
        """Guaranteed latency interval; defaults to the point prediction."""
        point = self.latency(item)
        return LatencyBounds(point, point)

    def describe(self) -> str:
        """One-line human description of what this interface covers."""
        return f"{self.representation} performance interface for {self.accelerator}"


class BoundsOnlyInterface(PerformanceInterface[ItemT]):
    """An interface that honestly provides only a latency interval.

    ``latency`` returns the interval midpoint so that tools expecting a
    point estimate still function; ``latency_bounds`` carries the real
    contract.  Subclasses implement :meth:`bounds`.
    """

    @abc.abstractmethod
    def bounds(self, item: ItemT) -> LatencyBounds:
        ...

    def latency_bounds(self, item: ItemT) -> LatencyBounds:
        return self.bounds(item)

    def latency(self, item: ItemT) -> float:
        return self.bounds(item).midpoint
