"""The paper's contribution: performance interfaces and their tooling.

Three representations (:mod:`.nl`, :mod:`.program`, :mod:`.petrinet`),
the validation harness that scores them against ground truth
(:mod:`.validation`), the Table 1 complexity metric (:mod:`.complexity`),
design-stage selection tooling (:mod:`.selection`), and the §5
record/replay offload estimator (:mod:`.offload`).
"""

from .complexity import (
    ComplexityReport,
    interface_complexity,
    loc_of_module,
    loc_of_text,
)
from .errors import OffloadError, ReplayDivergence
from .interface import BoundsOnlyInterface, LatencyBounds, PerformanceInterface
from .nl import EnglishInterface, PerformanceStatement, Relation
from .offload import (
    OffloadEstimate,
    OffloadEstimator,
    RecordingDevice,
    ReplayDevice,
    VirtualDevice,
)
from .petrinet import Injection, PetriNetInterface
from .program import ProgramInterface
from .selection import (
    Candidate,
    DesignPoint,
    Ranking,
    mean_workload_latency,
    offload_speedup,
    pareto_frontier,
    pick_under_area_budget,
    rank_by_latency,
    rank_by_speedup_per_dollar,
)
from .validation import (
    BoundsReport,
    InterfaceReport,
    accuracy_gain,
    compare_representations,
    online_drift,
    validate_interface,
)

__all__ = [
    "BoundsOnlyInterface",
    "BoundsReport",
    "Candidate",
    "ComplexityReport",
    "DesignPoint",
    "EnglishInterface",
    "Injection",
    "InterfaceReport",
    "LatencyBounds",
    "OffloadError",
    "OffloadEstimate",
    "OffloadEstimator",
    "PerformanceInterface",
    "PerformanceStatement",
    "PetriNetInterface",
    "ProgramInterface",
    "Ranking",
    "RecordingDevice",
    "Relation",
    "ReplayDevice",
    "ReplayDivergence",
    "VirtualDevice",
    "accuracy_gain",
    "compare_representations",
    "interface_complexity",
    "loc_of_module",
    "loc_of_text",
    "mean_workload_latency",
    "offload_speedup",
    "online_drift",
    "pareto_frontier",
    "pick_under_area_budget",
    "rank_by_latency",
    "rank_by_speedup_per_dollar",
    "validate_interface",
]
