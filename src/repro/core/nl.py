"""Natural-language performance interfaces (the paper's Fig. 1).

An English interface cannot predict numbers, but it is not *just* prose:
each sentence asserts a checkable relation between an input property and
a performance metric ("latency is inversely proportional to the
compression rate").  We therefore represent NL interfaces as structured
:class:`PerformanceStatement` objects that

* render to the English of the paper's Fig. 1, and
* can be *validated* against a ground-truth model by sweeping the input
  property and checking the asserted monotonicity/proportionality.

That machine-checkability is what separates a performance interface
from marketing copy, and it powers ``tests/integration`` E1 checks.
"""

from __future__ import annotations

import enum
import math
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import Any


class Relation(enum.Enum):
    """How a metric relates to an input property (or config parameter)."""

    PROPORTIONAL = "is proportional to"
    INVERSELY_PROPORTIONAL = "is inversely proportional to"
    INCREASES_WITH = "increases as {quantity} increases"
    DECREASES_WITH = "decreases as {quantity} increases"
    EQUALS_PARAM = "is equal to the configuration parameter {quantity}"
    CONSTANT = "does not vary with {quantity}"


@dataclass(frozen=True)
class PerformanceStatement:
    """One sentence of an English performance interface.

    Attributes:
        metric: Metric name as rendered ("Latency", "Throughput", ...).
        relation: The asserted relation.
        quantity: Human-readable name of the input property / parameter.
        accessor: Extracts the property's numeric value from a workload
            item (or a model configuration), enabling validation.
        measure: Extracts the metric from ``(model, item)``; defaults
            are installed by :func:`default_measure`.
    """

    metric: str
    relation: Relation
    quantity: str
    accessor: Callable[[Any], float] | None = None
    measure: Callable[[Any, Any], float] | None = None

    def render(self) -> str:
        rel = self.relation
        if rel in (Relation.PROPORTIONAL, Relation.INVERSELY_PROPORTIONAL):
            return f"{self.metric} {rel.value} {self.quantity}"
        return f"{self.metric} " + rel.value.format(quantity=self.quantity)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def check(
        self,
        pairs: Sequence[tuple[float, float]],
        *,
        tolerance: float = 0.15,
    ) -> bool:
        """Validate the statement against ``(property, metric)`` samples.

        ``pairs`` should come from a sweep where *only* the named
        property varies.  Proportionality is checked as constancy of the
        metric/property ratio (within ``tolerance`` relative spread);
        monotonic relations are checked on property-sorted samples;
        EQUALS_PARAM requires metric == property exactly (1% slack).
        """
        if len(pairs) < 2:
            raise ValueError("need at least two samples to check a relation")
        pts = sorted(pairs)
        xs = [p for p, _ in pts]
        ys = [m for _, m in pts]
        rel = self.relation
        if rel is Relation.EQUALS_PARAM:
            return all(abs(y - x) <= 0.01 * max(1.0, abs(x)) for x, y in pts)
        if rel is Relation.CONSTANT:
            return _spread(ys) <= tolerance
        if rel is Relation.PROPORTIONAL:
            return _spread([y / x for x, y in pts if x != 0]) <= tolerance
        if rel is Relation.INVERSELY_PROPORTIONAL:
            return _spread([y * x for x, y in pts]) <= tolerance
        if rel is Relation.INCREASES_WITH:
            return _mostly_monotone(xs, ys, sign=+1)
        if rel is Relation.DECREASES_WITH:
            return _mostly_monotone(xs, ys, sign=-1)
        raise AssertionError(f"unhandled relation {rel}")


def _spread(values: Sequence[float]) -> float:
    """Relative spread: (max - min) / mean."""
    if not values:
        return math.inf
    mean = sum(values) / len(values)
    if mean == 0:
        return math.inf
    return (max(values) - min(values)) / abs(mean)


def _mostly_monotone(xs: Sequence[float], ys: Sequence[float], sign: int) -> bool:
    """True when ys move with (sign=+1) / against (sign=-1) xs overall.

    Uses pairwise concordance (a Kendall-tau style count) so small local
    noise does not flip the verdict; requires >= 90% concordant pairs
    among pairs with distinct x.
    """
    concordant = discordant = 0
    n = len(xs)
    for i in range(n):
        for j in range(i + 1, n):
            if xs[i] == xs[j] or ys[i] == ys[j]:
                continue
            agree = (ys[j] - ys[i]) * (xs[j] - xs[i]) * sign > 0
            concordant += int(agree)
            discordant += int(not agree)
    total = concordant + discordant
    return total == 0 or concordant / total >= 0.9


@dataclass(frozen=True)
class EnglishInterface:
    """A complete Fig. 1-style interface: a list of statements."""

    accelerator: str
    statements: tuple[PerformanceStatement, ...]

    representation = "english"

    def render(self) -> str:
        return "\n".join(s.render() for s in self.statements)

    def __str__(self) -> str:
        return self.render()
