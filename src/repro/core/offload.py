"""The paper's §5 record/replay strawman for end-to-end estimation.

Question: *"What performance can I expect from my application if I
offload part of it to this accelerator?"*  Plugging an interface into
the code is not enough — interfaces return time, not semantically
meaningful responses.  The strawman:

1. Run the application against a **software implementation** of the
   accelerator's API, recording every request and response.
2. Re-run it against a **replay stub** that returns the recorded
   (correct) responses while charging each call the latency the
   *interface* predicts on a virtual clock.

Because accelerator invocations are typically pure functions, the
second run follows the same path and its virtual clock estimates the
offloaded end-to-end time.  :class:`OffloadEstimator` packages the two
phases; the host application interacts with a tiny `call()` API.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import Any, Generic, TypeVar

from .errors import ReplayDivergence
from .interface import PerformanceInterface

RequestT = TypeVar("RequestT")
ResponseT = TypeVar("ResponseT")

#: An application: receives a device and drives it; returns anything.
Application = Callable[["VirtualDevice"], Any]


class VirtualDevice(Generic[RequestT, ResponseT]):
    """What the application sees: a callable accelerator endpoint with a
    virtual clock.  Host-side work is charged via :meth:`host_work`."""

    def __init__(self) -> None:
        self.clock = 0.0
        self.calls = 0

    def call(self, request: RequestT) -> ResponseT:  # pragma: no cover - abstract
        raise NotImplementedError

    def host_work(self, cycles: float) -> None:
        """Charge non-offloaded application work to the virtual clock."""
        if cycles < 0:
            raise ValueError("cycles must be >= 0")
        self.clock += cycles


class RecordingDevice(VirtualDevice[RequestT, ResponseT]):
    """Phase 1: software implementation, recording request/response
    pairs.  ``software_fn`` is the functional (not timing) behaviour;
    ``software_latency`` optionally charges realistic software time."""

    def __init__(
        self,
        software_fn: Callable[[RequestT], ResponseT],
        software_latency: Callable[[RequestT], float] | None = None,
    ):
        super().__init__()
        self.software_fn = software_fn
        self.software_latency = software_latency
        self.tape: list[tuple[RequestT, ResponseT]] = []

    def call(self, request: RequestT) -> ResponseT:
        response = self.software_fn(request)
        self.tape.append((request, response))
        self.calls += 1
        if self.software_latency is not None:
            self.clock += self.software_latency(request)
        return response


class ReplayDevice(VirtualDevice[RequestT, ResponseT]):
    """Phase 2: returns recorded responses, charges interface latency.

    Requests are matched by call order; a mismatch (the application
    diverged, so it is not deterministic) raises ``ReplayDivergence``.
    """

    def __init__(
        self,
        tape: list[tuple[RequestT, ResponseT]],
        interface: PerformanceInterface[RequestT],
        invocation_overhead: Callable[[RequestT], float] | None = None,
    ):
        super().__init__()
        self.tape = tape
        self.interface = interface
        self.invocation_overhead = invocation_overhead

    def call(self, request: RequestT) -> ResponseT:
        index = self.calls + 1  # divergence reports are 1-based
        if self.calls >= len(self.tape):
            raise ReplayDivergence(
                f"application issued call #{index} but the tape has "
                f"only {len(self.tape)} entries",
                call=index,
                actual=request,
            )
        recorded_request, response = self.tape[self.calls]
        if recorded_request != request:
            raise ReplayDivergence(
                f"call #{index} diverged from the recorded run",
                call=index,
                expected=recorded_request,
                actual=request,
            )
        self.calls += 1
        self.clock += self._charge(index, request)
        return response

    def _charge(self, index: int, request: RequestT) -> float:
        """Virtual cycles to bill for (1-based) call ``index``.

        Subclasses (e.g. the fault-aware replay in
        :mod:`repro.runtime.tape`) override this to charge recorded
        rather than predicted latency.
        """
        cycles = self.interface.latency(request)
        if self.invocation_overhead is not None:
            cycles += self.invocation_overhead(request)
        return cycles


@dataclass(frozen=True)
class OffloadEstimate:
    """Result of the two-phase estimation."""

    software_cycles: float
    offloaded_cycles: float
    calls: int

    @property
    def speedup(self) -> float:
        if self.offloaded_cycles == 0:
            return float("inf")
        return self.software_cycles / self.offloaded_cycles


class OffloadEstimator(Generic[RequestT, ResponseT]):
    """Run the strawman end to end for one application."""

    def __init__(
        self,
        software_fn: Callable[[RequestT], ResponseT],
        software_latency: Callable[[RequestT], float],
        interface: PerformanceInterface[RequestT],
        invocation_overhead: Callable[[RequestT], float] | None = None,
    ):
        self.software_fn = software_fn
        self.software_latency = software_latency
        self.interface = interface
        self.invocation_overhead = invocation_overhead

    def estimate(self, application: Application) -> OffloadEstimate:
        recorder: RecordingDevice[RequestT, ResponseT] = RecordingDevice(
            self.software_fn, self.software_latency
        )
        application(recorder)

        replayer: ReplayDevice[RequestT, ResponseT] = ReplayDevice(
            recorder.tape, self.interface, self.invocation_overhead
        )
        application(replayer)
        return OffloadEstimate(
            software_cycles=recorder.clock,
            offloaded_cycles=replayer.clock,
            calls=recorder.calls,
        )
