"""Executable-program performance interfaces (the paper's Figs. 2-3).

A program interface is a small Python function (or set of functions)
mapping a workload item to predicted latency/throughput.  They are the
middle ground: more precise than English, still eyeball-able by a
developer, and runnable during system design when the accelerator is
not even available.

:class:`ProgramInterface` wraps the plain functions so the validation
harness can treat them like any other interface, while keeping the
functions themselves importable and readable — the readable function
*is* the interface, exactly as in the paper's figures.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Generic, TypeVar

from .interface import LatencyBounds, PerformanceInterface

ItemT = TypeVar("ItemT")


class ProgramInterface(PerformanceInterface[ItemT], Generic[ItemT]):
    """Adapter around latency/throughput interface functions.

    Args:
        accelerator: Name of the accelerator described.
        latency_fn: Point latency predictor (cycles).  May be omitted
            when only bounds are honest — then ``min_latency_fn`` /
            ``max_latency_fn`` must both be given and ``latency``
            returns the interval midpoint.
        throughput_fn: Items/cycle predictor; defaults to 1/latency.
        min_latency_fn, max_latency_fn: Optional guaranteed bounds.
    """

    representation = "program"

    def __init__(
        self,
        accelerator: str,
        latency_fn: Callable[[ItemT], float] | None = None,
        throughput_fn: Callable[[ItemT], float] | None = None,
        *,
        min_latency_fn: Callable[[ItemT], float] | None = None,
        max_latency_fn: Callable[[ItemT], float] | None = None,
    ):
        if latency_fn is None and (min_latency_fn is None or max_latency_fn is None):
            raise ValueError(
                "provide latency_fn, or both min_latency_fn and max_latency_fn"
            )
        self.accelerator = accelerator
        self._latency_fn = latency_fn
        self._throughput_fn = throughput_fn
        self._min_fn = min_latency_fn
        self._max_fn = max_latency_fn

    def latency(self, item: ItemT) -> float:
        if self._latency_fn is not None:
            return float(self._latency_fn(item))
        return self.latency_bounds(item).midpoint

    def throughput(self, item: ItemT) -> float:
        if self._throughput_fn is not None:
            return float(self._throughput_fn(item))
        return super().throughput(item)

    def latency_bounds(self, item: ItemT) -> LatencyBounds:
        if self._min_fn is not None and self._max_fn is not None:
            return LatencyBounds(float(self._min_fn(item)), float(self._max_fn(item)))
        return super().latency_bounds(item)

    @property
    def has_bounds(self) -> bool:
        return self._min_fn is not None and self._max_fn is not None
