"""Design-stage tooling built on performance interfaces.

These are the paper's motivating workflows, executable *without any
accelerator or ported code* — only interfaces and representative
workload descriptions are needed:

* example #1 (SoC designer): explore an area/performance frontier and
  pick configurations under an area budget;
* example #2 (infrastructure stack): rank candidate accelerators for a
  workload, per dollar, against a software baseline.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import Generic, TypeVar

from .interface import PerformanceInterface

ItemT = TypeVar("ItemT")


@dataclass(frozen=True)
class Candidate(Generic[ItemT]):
    """One accelerator option under consideration.

    Attributes:
        name: Display name.
        interface: Its (vendor-shipped) performance interface.
        price_dollars: Unit price for per-dollar rankings.
        invocation_overhead: Host-side cycles added per item when the
            accelerator is invoked as an offload (0 for on-CPU options).
    """

    name: str
    interface: PerformanceInterface[ItemT]
    price_dollars: float = 1.0
    invocation_overhead: Callable[[ItemT], float] | None = None

    def end_to_end_latency(self, item: ItemT) -> float:
        latency = self.interface.latency(item)
        if self.invocation_overhead is not None:
            latency += self.invocation_overhead(item)
        return latency


@dataclass(frozen=True)
class Ranking(Generic[ItemT]):
    """Candidates ordered by a figure of merit (best first)."""

    metric: str
    entries: list[tuple[str, float]]

    @property
    def best(self) -> str:
        return self.entries[0][0]

    def table(self) -> str:
        width = max(len(name) for name, _ in self.entries)
        return "\n".join(
            f"{name:<{width}}  {value:12.6g}" for name, value in self.entries
        )


def mean_workload_latency(
    candidate: Candidate[ItemT], workload: Sequence[ItemT]
) -> float:
    """Average end-to-end latency over a representative workload."""
    if not workload:
        raise ValueError("workload must not be empty")
    return sum(candidate.end_to_end_latency(item) for item in workload) / len(workload)


def rank_by_latency(
    candidates: Sequence[Candidate[ItemT]], workload: Sequence[ItemT]
) -> Ranking[ItemT]:
    """Example #2's first question: which candidate is fastest for *my*
    workload (not for the vendor's benchmark)?"""
    entries = sorted(
        (c.name, mean_workload_latency(c, workload)) for c in candidates
    )
    entries.sort(key=lambda e: e[1])
    return Ranking(metric="mean latency (cycles)", entries=entries)


def rank_by_speedup_per_dollar(
    candidates: Sequence[Candidate[ItemT]],
    workload: Sequence[ItemT],
    baseline_latency: Callable[[ItemT], float],
) -> Ranking[ItemT]:
    """Example #2's "best performance per dollar" question: speedup over
    the software baseline, normalized by unit price."""
    base = sum(baseline_latency(item) for item in workload) / len(workload)
    entries = []
    for c in candidates:
        speedup = base / mean_workload_latency(c, workload)
        entries.append((c.name, speedup / c.price_dollars))
    entries.sort(key=lambda e: -e[1])
    return Ranking(metric="speedup per dollar", entries=entries)


def offload_speedup(
    candidate: Candidate[ItemT],
    workload: Sequence[ItemT],
    baseline_latency: Callable[[ItemT], float],
) -> float:
    """Predicted speedup of offloading this workload to ``candidate``
    (values < 1 mean the offload would *hurt*, the paper's warning)."""
    base = sum(baseline_latency(item) for item in workload)
    accel = sum(candidate.end_to_end_latency(item) for item in workload)
    return base / accel


# ----------------------------------------------------------------------
# Example #1: SoC area/performance frontier
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class DesignPoint:
    """One configuration of a parameterizable IP block."""

    config: str
    area: float
    latency: float
    throughput: float


def pareto_frontier(points: Sequence[DesignPoint]) -> list[DesignPoint]:
    """Points not dominated in (area, latency): the curve an SoC
    designer actually chooses from."""
    frontier = []
    for p in points:
        dominated = any(
            (q.area <= p.area and q.latency <= p.latency)
            and (q.area < p.area or q.latency < p.latency)
            for q in points
        )
        if not dominated:
            frontier.append(p)
    return sorted(frontier, key=lambda p: p.area)


def pick_under_area_budget(
    points: Sequence[DesignPoint], area_budget: float
) -> DesignPoint:
    """Fastest configuration that fits the budget (example #1's
    "how big must each IP block be?")."""
    feasible = [p for p in points if p.area <= area_budget]
    if not feasible:
        raise ValueError(
            f"no configuration fits area budget {area_budget}; smallest is "
            f"{min(p.area for p in points)}"
        )
    return min(feasible, key=lambda p: p.latency)
