"""Validation harness: compare an interface's predictions to ground truth.

This is the machinery behind every accuracy number in the paper's §3:
run a workload through the accelerator model, run the same workload
through the interface, and report average/maximum relative error — plus
bound-satisfaction for interfaces that promise intervals instead of
points (Protoacc's latency).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING, Generic, TypeVar

from repro.accel.base import AcceleratorModel
from repro.hw.stats import ErrorReport

from .interface import PerformanceInterface

if TYPE_CHECKING:
    from repro.perf import EvalCache, SweepRunner

ItemT = TypeVar("ItemT")


@dataclass(frozen=True)
class BoundsReport:
    """Outcome of checking guaranteed latency intervals."""

    total: int
    violations: int
    worst_item: int | None  # index of the worst violator, if any

    @property
    def all_within(self) -> bool:
        return self.violations == 0


@dataclass(frozen=True)
class InterfaceReport(Generic[ItemT]):
    """Accuracy of one interface over one workload."""

    accelerator: str
    representation: str
    items: int
    latency: ErrorReport | None = None
    throughput: ErrorReport | None = None
    bounds: BoundsReport | None = None
    #: Evaluation-cache accounting for this run (see repro.perf), e.g.
    #: "cache: 40/50 hits (80%)".  None when no cache was used.
    cache_stats: str | None = None

    def summary(self) -> str:
        parts = [f"{self.accelerator}/{self.representation} (n={self.items})"]
        if self.latency is not None:
            parts.append(f"latency {self.latency.as_percent()}")
        if self.throughput is not None:
            parts.append(f"throughput {self.throughput.as_percent()}")
        if self.bounds is not None:
            parts.append(
                "bounds: all within"
                if self.bounds.all_within
                else f"bounds: {self.bounds.violations}/{self.bounds.total} outside"
            )
        if self.cache_stats is not None:
            parts.append(self.cache_stats)
        return " | ".join(parts)


def validate_interface(
    interface: PerformanceInterface[ItemT],
    model: AcceleratorModel[ItemT],
    workload: Sequence[ItemT],
    *,
    check_latency: bool = True,
    check_throughput: bool = True,
    check_bounds: bool = False,
    throughput_repeat: int = 8,
    cache: "EvalCache | None" = None,
    runner: "SweepRunner | None" = None,
) -> InterfaceReport[ItemT]:
    """Measure the model and score the interface on ``workload``.

    ``check_bounds`` verifies measured latency lies within the
    interface's guaranteed interval for every item (instead of scoring
    a point latency prediction — use for bounds-style interfaces).

    ``cache`` memoizes interface evaluations (attached to interfaces that
    expose a ``cache`` attribute, e.g. :class:`~.petrinet.PetriNetInterface`);
    the report's ``cache_stats`` records the hit rate this run contributed.
    ``runner`` fans the independent ground-truth measurements across worker
    processes (deterministic ordering; serial fallback when the model
    cannot cross a process boundary).  Neither changes any reported error
    number — only how fast (and how often) points are evaluated.
    """
    if not workload:
        raise ValueError("workload must not be empty")

    if cache is not None and hasattr(interface, "cache"):
        interface.cache = cache
    stats0 = (cache.stats.hits, cache.stats.lookups) if cache is not None else None

    def measure(fn, items):
        if runner is not None:
            return runner.map(fn, items)
        return [fn(item) for item in items]

    latency_report = None
    bounds_report = None
    if check_latency or check_bounds:
        actual_lat = measure(model.measure_latency, workload)
        if check_latency:
            # The batched path when the interface has one (identical
            # numbers, proven by repro.petri.differential), a plain
            # latency loop otherwise.
            predicted = interface.evaluate_batch(workload)
            latency_report = ErrorReport.of(predicted, actual_lat)
        if check_bounds:
            violations = 0
            worst = None
            worst_excess = 0.0
            for idx, (item, actual) in enumerate(zip(workload, actual_lat, strict=True)):
                bounds = interface.latency_bounds(item)
                if not bounds.contains(actual):
                    violations += 1
                    excess = max(bounds.lower - actual, actual - bounds.upper)
                    if excess > worst_excess:
                        worst_excess = excess
                        worst = idx
            bounds_report = BoundsReport(
                total=len(workload), violations=violations, worst_item=worst
            )

    throughput_report = None
    if check_throughput:
        actual_tp = measure(
            lambda item: model.measure_throughput(item, repeat=throughput_repeat),
            workload,
        )
        predicted_tp = [interface.throughput(item) for item in workload]
        throughput_report = ErrorReport.of(predicted_tp, actual_tp)

    cache_stats = None
    if cache is not None:
        hits = cache.stats.hits - stats0[0]
        lookups = cache.stats.lookups - stats0[1]
        rate = hits / lookups if lookups else 0.0
        cache_stats = f"cache: {hits}/{lookups} hits ({rate:.0%})"

    return InterfaceReport(
        accelerator=interface.accelerator,
        representation=interface.representation,
        items=len(workload),
        latency=latency_report,
        throughput=throughput_report,
        bounds=bounds_report,
        cache_stats=cache_stats,
    )


def online_drift(
    predicted: Sequence[float], observed: Sequence[float]
) -> ErrorReport:
    """Score a sliding window of live predictions against observations.

    The online counterpart of :func:`validate_interface`: the serving
    runtime (:mod:`repro.runtime.degrade`) feeds it the most recent
    (interface-predicted, model-observed) latency pairs to decide whether
    the interface has drifted off its calibrated envelope — the failure
    mode Lübeck et al. and Jung et al. document for fitted performance
    models off the calibrated path.
    """
    if not predicted or len(predicted) != len(observed):
        raise ValueError("need equal-length, non-empty prediction/observation windows")
    return ErrorReport.of(predicted, observed)


def compare_representations(
    interfaces: dict[str, PerformanceInterface[ItemT]],
    model: AcceleratorModel[ItemT],
    workload: Sequence[ItemT],
    **kwargs,
) -> dict[str, InterfaceReport[ItemT]]:
    """Validate several representations of the same accelerator on the
    same workload — the comparison behind "the Petri net is ~20x more
    accurate than the Python program"."""
    return {
        name: validate_interface(iface, model, workload, **kwargs)
        for name, iface in interfaces.items()
    }


def accuracy_gain(
    better: InterfaceReport, worse: InterfaceReport, metric: str = "latency"
) -> float:
    """How many times lower ``better``'s average error is."""
    a = getattr(better, metric)
    b = getattr(worse, metric)
    if a is None or b is None:
        raise ValueError(f"both reports need a {metric} measurement")
    if a.avg == 0:
        return float("inf")
    return b.avg / a.avg
