"""Interface-complexity metric (paper Table 1, "Complexity" column).

The paper measures a Petri-net interface's complexity as the ratio of
its lines of code to the implementation's (2.5% for the JPEG decoder,
2.6% for VTA): the interface is two orders of magnitude smaller than
the thing it summarizes, which is what makes it shippable and fast.

We apply the same metric: interface artifacts are ``.pnet`` documents
or Python interface modules; the implementation is the ground-truth
model plus the substrate modules it is built on (our stand-in for the
RTL, see DESIGN.md §2).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from types import ModuleType


def loc_of_text(text: str) -> int:
    """Non-blank, non-comment lines of a source document.

    Works for Python and for ``.pnet`` (both use ``#`` comments).
    """
    count = 0
    for line in text.splitlines():
        stripped = line.strip()
        if stripped and not stripped.startswith("#"):
            count += 1
    return count


def loc_of_module(module: ModuleType) -> int:
    """Effective LoC of a Python module (docstrings excluded).

    Comments and blanks are dropped by :func:`loc_of_text`; docstring
    lines are additionally excluded because they are documentation, not
    implementation.
    """
    source = inspect.getsource(module)
    total = loc_of_text(source)
    for node_src in _docstring_blocks(source):
        total -= loc_of_text(node_src)
    return max(1, total)


def _docstring_blocks(source: str) -> list[str]:
    import ast

    blocks: list[str] = []
    tree = ast.parse(source)
    for node in ast.walk(tree):
        if isinstance(node, (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)):
            doc = ast.get_docstring(node, clean=False)
            if doc is not None:
                blocks.append(doc)
    return blocks


@dataclass(frozen=True)
class ComplexityReport:
    """LoC comparison between an interface and its implementation."""

    interface_loc: int
    implementation_loc: int

    @property
    def ratio(self) -> float:
        return self.interface_loc / self.implementation_loc

    def as_percent(self) -> str:
        return f"{self.ratio * 100:.1f}%"


def interface_complexity(
    interface_source: str | ModuleType,
    implementation: ModuleType | list[ModuleType],
) -> ComplexityReport:
    """Compute the Table 1 complexity ratio.

    Args:
        interface_source: The shipped artifact — ``.pnet`` text or the
            interface module itself.
        implementation: The model module(s) the interface summarizes.
    """
    if isinstance(interface_source, ModuleType):
        iface_loc = loc_of_module(interface_source)
    else:
        iface_loc = loc_of_text(interface_source)
    modules = implementation if isinstance(implementation, list) else [implementation]
    impl_loc = sum(loc_of_module(m) for m in modules)
    return ComplexityReport(interface_loc=iface_loc, implementation_loc=impl_loc)
