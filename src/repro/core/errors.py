"""Exceptions raised by the offload estimation and serving tooling."""

from __future__ import annotations

from typing import Any


class OffloadError(RuntimeError):
    """Base class for record/replay offload errors."""


class ReplayDivergence(OffloadError):
    """The replayed application did not follow the recorded path.

    Attributes:
        call: 1-based index of the diverging call.
        expected: the recorded request at that position (``None`` when
            the tape was already exhausted).
        actual: the request the application actually issued.
    """

    def __init__(
        self,
        message: str,
        *,
        call: int | None = None,
        expected: Any = None,
        actual: Any = None,
    ):
        super().__init__(message)
        self.call = call
        self.expected = expected
        self.actual = actual
